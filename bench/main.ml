(* The benchmark harness: regenerates every table of the paper's
   evaluation (Tables 1-4) on the exom_bench suite, then runs one
   bechamel microbenchmark per table on the underlying machinery.

   Usage: dune exec bench/main.exe [-- --skip-bechamel] [--sched-json F]
     [--perf-json F]
*)

module B = Exom_bench.Bench_types
module Runner = Exom_bench.Runner
module Suite = Exom_bench.Suite
module Demand = Exom_core.Demand
module Oracle = Exom_core.Oracle
module Session = Exom_core.Session
module Interp = Exom_interp.Interp
module Relevant = Exom_ddg.Relevant
module Slice = Exom_ddg.Slice
module Table = Exom_util.Table
module Typecheck = Exom_lang.Typecheck

let fmt_sizes (s : Runner.sizes) =
  Printf.sprintf "%d/%d" s.Runner.static_size s.Runner.dynamic_size

let fmt_ratio a b =
  let r x y = if y = 0 then 0.0 else float_of_int x /. float_of_int y in
  Printf.sprintf "%.2f/%.2f"
    (r a.Runner.static_size b.Runner.static_size)
    (r a.Runner.dynamic_size b.Runner.dynamic_size)

let print_table_1 () =
  print_endline "== Table 1: Characteristics of benchmarks ==";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left; Table.Left ]
      [ "Benchmark"; "LOC"; "# of procedures"; "Error type"; "Description" ]
  in
  List.iter
    (fun b ->
      let prog = Typecheck.parse_and_check b.B.source in
      Table.add_row t
        [ b.B.name;
          string_of_int (B.loc_count b);
          string_of_int (B.procedure_count prog);
          b.B.error_type;
          b.B.description ])
    Suite.all;
  Table.print t;
  print_newline ()

let print_table_2 results =
  print_endline
    "== Table 2: Execution omission errors (slice sizes, static/dynamic) ==";
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Left ]
      [ "Benchmark"; "Error"; "RS"; "DS"; "PS"; "RS/DS"; "RS/PS"; "captured by" ]
  in
  List.iter
    (fun (r : Runner.result) ->
      let captured =
        String.concat ""
          [ (if r.Runner.root_in_rs then "RS " else "");
            (if r.Runner.root_in_ds then "DS " else "");
            (if r.Runner.root_in_ps then "PS" else "") ]
      in
      Table.add_row t
        [ r.Runner.bench.B.name;
          r.Runner.fault.B.fid;
          fmt_sizes r.Runner.rs;
          fmt_sizes r.Runner.ds;
          fmt_sizes r.Runner.ps;
          fmt_ratio r.Runner.rs r.Runner.ds;
          fmt_ratio r.Runner.rs r.Runner.ps;
          (if captured = "" then "none" else String.trim captured) ])
    results;
  Table.print t;
  let misses = List.filter (fun r -> not r.Runner.root_in_ds) results in
  Printf.printf
    "(RS captures %d/%d roots; DS misses %d/%d — the execution omission \
     errors)\n\n"
    (List.length (List.filter (fun r -> r.Runner.root_in_rs) results))
    (List.length results) (List.length misses) (List.length results)

let print_table_3 results =
  print_endline "== Table 3: Effectiveness ==";
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "Benchmark"; "Error"; "# of user prunings"; "# of verifications";
        "# of iterations"; "# of expanded edges"; "IPS"; "OS"; "located" ]
  in
  List.iter
    (fun (r : Runner.result) ->
      Table.add_row t
        [ r.Runner.bench.B.name;
          r.Runner.fault.B.fid;
          string_of_int r.Runner.report.Demand.user_prunings;
          string_of_int r.Runner.report.Demand.verifications;
          string_of_int r.Runner.report.Demand.iterations;
          string_of_int r.Runner.report.Demand.expanded_edges;
          fmt_sizes r.Runner.ips;
          (match r.Runner.os_ with Some s -> fmt_sizes s | None -> "-");
          (if r.Runner.report.Demand.found then "yes" else "NO") ])
    results;
  Table.print t;
  print_newline ()

let print_table_4 results =
  print_endline "== Table 4: Performance ==";
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "Benchmark"; "Error"; "Plain (sec.)"; "Graph (sec.)"; "Verif. (sec.)";
        "Graph/Plain" ]
  in
  List.iter
    (fun (r : Runner.result) ->
      let ratio =
        if r.Runner.plain_seconds > 0.0 then
          r.Runner.graph_seconds /. r.Runner.plain_seconds
        else 0.0
      in
      Table.add_row t
        [ r.Runner.bench.B.name;
          r.Runner.fault.B.fid;
          Printf.sprintf "%.5f" r.Runner.plain_seconds;
          Printf.sprintf "%.5f" r.Runner.graph_seconds;
          Printf.sprintf "%.5f" r.Runner.verif_seconds;
          Printf.sprintf "%.1f" ratio ])
    results;
  Table.print t;
  print_newline ()

let print_robustness results =
  print_endline
    "== Robustness telemetry (switched re-executions during Table 3/4 runs) ==";
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "Benchmark"; "Error"; "runs"; "completed"; "aborted"; "retried";
        "breaker trips/skips"; "deadline"; "captured" ]
  in
  List.iter
    (fun (r : Runner.result) ->
      let g = r.Runner.robustness in
      Table.add_row t
        [ r.Runner.bench.B.name;
          r.Runner.fault.B.fid;
          string_of_int r.Runner.report.Demand.verifications;
          string_of_int g.Exom_core.Guard.completed;
          string_of_int g.Exom_core.Guard.aborted;
          string_of_int g.Exom_core.Guard.retried;
          Printf.sprintf "%d/%d" g.Exom_core.Guard.breaker_trips
            g.Exom_core.Guard.breaker_skips;
          string_of_int g.Exom_core.Guard.deadline_expired;
          string_of_int g.Exom_core.Guard.captured ])
    results;
  Table.print t;
  print_newline ()

(* Ablations: the design decisions DESIGN.md calls out. *)

let print_ablations () =
  print_endline
    "== Ablation A: confidence over blind potential edges (the \"plausible \
     alternative\" of §3.2) ==";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Left ]
      [ "Benchmark"; "Error"; "C(root) verified"; "C(root) potential";
        "root sanitized?" ]
  in
  List.iter
    (fun (b, f) ->
      let s = Exom_bench.Ablation.potential_confidence_sanitizes b f in
      Table.add_row t
        [ b.B.name;
          f.B.fid;
          Printf.sprintf "%.3f" s.Exom_bench.Ablation.conf_verified;
          Printf.sprintf "%.3f" s.Exom_bench.Ablation.conf_potential;
          (if s.Exom_bench.Ablation.sanitized then "YES (root lost)" else "no")
        ])
    Suite.rows;
  Table.print t;
  print_newline ();
  print_endline
    "== Ablation B: edge-approximated vs path-exact VerifyDep (§3.2) ==";
  let t2 =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right;
          Table.Left; Table.Right; Table.Right ]
      [ "Benchmark"; "Error"; "edge: found"; "verif"; "edges"; "path: found";
        "verif"; "edges" ]
  in
  List.iter
    (fun (name, fid) ->
      let b = Option.get (Suite.find name) in
      let f = Option.get (Suite.find_fault b fid) in
      let c = Exom_bench.Ablation.compare_verify_modes b f in
      let yn r = if r.Demand.found then "yes" else "NO" in
      Table.add_row t2
        [ name; fid;
          yn c.Exom_bench.Ablation.edge_report;
          string_of_int c.Exom_bench.Ablation.edge_report.Demand.verifications;
          string_of_int c.Exom_bench.Ablation.edge_report.Demand.expanded_edges;
          yn c.Exom_bench.Ablation.path_report;
          string_of_int c.Exom_bench.Ablation.path_report.Demand.verifications;
          string_of_int c.Exom_bench.Ablation.path_report.Demand.expanded_edges
        ])
    [ ("flexsim", "V1-F9"); ("grepsim", "V4-F2"); ("gzipsim", "V2-F3");
      ("sedsim", "V3-F2") ];
  Table.print t2;
  print_newline ();
  print_endline
    "== Ablation C: condition (iv) backend — static analysis vs the \
     paper's union dependence graph ==";
  let t3 =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Left ]
      [ "Benchmark"; "Error"; "RS static-(iv)"; "RS union-(iv)";
        "union pairs"; "root kept" ]
  in
  List.iter
    (fun (b, f) ->
      let r = Exom_bench.Ablation.compare_rs_backends b f in
      let ss, sd = r.Exom_bench.Ablation.rs_static in
      let us, ud = r.Exom_bench.Ablation.rs_union in
      Table.add_row t3
        [ b.B.name; f.B.fid;
          Printf.sprintf "%d/%d" ss sd;
          Printf.sprintf "%d/%d" us ud;
          string_of_int r.Exom_bench.Ablation.union_pairs;
          (if r.Exom_bench.Ablation.root_in_union then "yes" else "LOST") ])
    Suite.rows;
  Table.print t3;
  print_newline ();
  print_endline
    "== Comparison D: critical-predicate search (ICSE'06 [18], §6) vs \
     demand-driven implicit dependences ==";
  let t4 =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Left ]
      [ "Benchmark"; "Error"; "critical preds found"; "re-executions";
        "demand verifications"; "demand located" ]
  in
  List.iter
    (fun (b, f) ->
      let c = Exom_bench.Ablation.compare_with_critical_search b f in
      Table.add_row t4
        [ b.B.name; f.B.fid;
          string_of_int c.Exom_bench.Ablation.critical_found;
          string_of_int c.Exom_bench.Ablation.critical_executions;
          string_of_int c.Exom_bench.Ablation.demand_verifications;
          (if c.Exom_bench.Ablation.demand_found then "yes" else "NO") ])
    Suite.rows;
  Table.print t4;
  print_endline
    "(a fault with 0 critical predicates cannot be found by whole-output \
     switching at any cost)";
  print_newline ()

(* Scheduler comparison: the whole suite at -j1 (cold store), -jN
   (cold) and -j1 again against the store the cold run just filled.
   Checks the determinism contract (bit-identical reports at any job
   count) while measuring it, and prices the warm-store shortcut. *)

module Pool = Exom_sched.Pool
module Store = Exom_sched.Store

let sched_jobs =
  (* architectural comparison, not a hardware claim: on a single-core
     runner the -jN pass measures scheduling overhead, not speedup *)
  match Sys.getenv_opt "EXOM_JOBS" with
  | Some v when (match int_of_string_opt v with Some n -> n > 1 | None -> false)
    -> int_of_string v
  | _ -> 4

(* Everything a localization claims, minus timings: the fields the
   determinism contract promises are identical at any -j and any store
   temperature. *)
let locate_signature (r : Runner.result) =
  let rep = r.Runner.report in
  ( rep.Demand.found, rep.Demand.user_prunings, rep.Demand.total_prunings,
    rep.Demand.iterations, rep.Demand.expanded_edges,
    rep.Demand.implicit_edges, rep.Demand.benign,
    Slice.sids rep.Demand.ips, Slice.sids rep.Demand.ds,
    Slice.sids rep.Demand.ps0, rep.Demand.os_chain )

(* Cold runs additionally promise identical run counts and robustness
   telemetry (warm runs skip the re-executions, so only the
   localization fields are comparable there). *)
let full_signature (r : Runner.result) =
  let rep = r.Runner.report in
  ( locate_signature r, rep.Demand.verifications, rep.Demand.verify_queries,
    rep.Demand.robustness, rep.Demand.failures )

type sched_row = {
  sr_bench : string;
  sr_fault : string;
  sr_seq : float;  (* whole run_fault wall secs, -j1, cold store *)
  sr_par : float;  (* -jN, cold store *)
  sr_warm : float;  (* -j1, warm store *)
  sr_verifs : int;
  sr_queries : int;
  sr_warm_hits : int;
  sr_identical : bool;  (* -j1 = -jN (full) and = warm (localization) *)
}

let run_sched_comparison () =
  Printf.printf
    "== Scheduler: sequential vs parallel (-j %d) vs warm store ==\n"
    sched_jobs;
  let seq_pool = Pool.create ~jobs:1 () in
  let par_pool = Pool.create ~jobs:sched_jobs () in
  let rows =
    List.map
      (fun (b, f) ->
        (* duration comes from the metrics registry of the run itself
           (one timing path shared with `exom stats`), not an ad-hoc
           stopwatch around it *)
        let timed pool store =
          let obs = Exom_obs.Obs.create () in
          let r =
            Exom_obs.Obs.timed obs "bench.run_fault" (fun () ->
                Runner.run_fault ~obs ~pool ?store b f)
          in
          ( r,
            Exom_obs.Metrics.timer_seconds
              (Exom_obs.Obs.metrics obs)
              "bench.run_fault" )
        in
        let store = Store.create () in
        let seq, seq_s = timed seq_pool (Some store) in
        let par, par_s = timed par_pool None in
        (* third pass re-reads the verdicts the -j1 pass stored *)
        let warm, warm_s = timed seq_pool (Some store) in
        {
          sr_bench = b.B.name;
          sr_fault = f.B.fid;
          sr_seq = seq_s;
          sr_par = par_s;
          sr_warm = warm_s;
          sr_verifs = seq.Runner.report.Demand.verifications;
          sr_queries = seq.Runner.report.Demand.verify_queries;
          sr_warm_hits =
            warm.Runner.report.Demand.store.Store.hits
            + warm.Runner.report.Demand.store.Store.disk_hits;
          sr_identical =
            full_signature seq = full_signature par
            && locate_signature seq = locate_signature warm;
        })
      Suite.rows
  in
  Pool.shutdown seq_pool;
  Pool.shutdown par_pool;
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Left ]
      [ "Benchmark"; "Error"; "verif/queries"; "-j1 (sec.)";
        Printf.sprintf "-j%d (sec.)" sched_jobs; "warm (sec.)"; "warm hits";
        "identical" ]
  in
  List.iter
    (fun row ->
      Table.add_row t
        [ row.sr_bench; row.sr_fault;
          Printf.sprintf "%d/%d" row.sr_verifs row.sr_queries;
          Printf.sprintf "%.4f" row.sr_seq;
          Printf.sprintf "%.4f" row.sr_par;
          Printf.sprintf "%.4f" row.sr_warm;
          string_of_int row.sr_warm_hits;
          (if row.sr_identical then "yes" else "NO") ])
    rows;
  Table.print t;
  let all_identical = List.for_all (fun r -> r.sr_identical) rows in
  Printf.printf
    "(reports %s across -j1 / -j%d / warm store; warm runs answered %d \
     verdicts without a single re-execution)\n\n"
    (if all_identical then "identical" else "DIVERGED")
    sched_jobs
    (List.fold_left (fun acc r -> acc + r.sr_warm_hits) 0 rows);
  rows

let write_sched_json path rows =
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let seq_total = total (fun r -> r.sr_seq) in
  let par_total = total (fun r -> r.sr_par) in
  let warm_total = total (fun r -> r.sr_warm) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n";
      Printf.fprintf oc "  \"jobs_parallel\": %d,\n" sched_jobs;
      Printf.fprintf oc "  \"sequential_seconds\": %.6f,\n" seq_total;
      Printf.fprintf oc "  \"parallel_seconds\": %.6f,\n" par_total;
      Printf.fprintf oc "  \"warm_store_seconds\": %.6f,\n" warm_total;
      Printf.fprintf oc "  \"identical_reports\": %b,\n"
        (List.for_all (fun r -> r.sr_identical) rows);
      Printf.fprintf oc "  \"faults\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"bench\": %S, \"fault\": %S, \"verifications\": %d, \
             \"queries\": %d, \"seq_seconds\": %.6f, \"par_seconds\": %.6f, \
             \"warm_seconds\": %.6f, \"warm_hits\": %d, \"identical\": %b}%s\n"
            r.sr_bench r.sr_fault r.sr_verifs r.sr_queries r.sr_seq r.sr_par
            r.sr_warm r.sr_warm_hits r.sr_identical
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n");
  Printf.printf "scheduler timings written to %s\n" path

(* Bechamel microbenchmarks: one Test.make per table, exercising the
   machinery that regenerates it. *)

let bechamel_tests () =
  let open Bechamel in
  let gzip = Exom_bench.Gzipsim.bench in
  let fault = List.hd gzip.B.faults in
  let faulty = Typecheck.parse_and_check (B.faulty_source gzip fault) in
  let correct = Typecheck.parse_and_check gzip.B.source in
  let input = fault.B.failing_input in
  let expected = Oracle.expected ~correct_prog:correct ~input in
  let table1 =
    Test.make ~name:"table1:parse+typecheck suite"
      (Staged.stage (fun () ->
           List.iter
             (fun b -> ignore (Typecheck.parse_and_check b.B.source))
             Suite.all))
  in
  let table2 =
    Test.make ~name:"table2:DS+RS slicing (gzip V2-F3)"
      (Staged.stage (fun () ->
           let s =
             Session.create ~prog:faulty ~input ~expected
               ~profile_inputs:gzip.B.test_inputs ()
           in
           let c = [ s.Session.wrong_output ] in
           ignore (Slice.compute s.Session.trace ~criteria:c);
           ignore (Relevant.relevant_slice s.Session.rel ~criteria:c)))
  in
  let table3 =
    Test.make ~name:"table3:demand-driven locate (gzip V2-F3)"
      (Staged.stage (fun () -> ignore (Runner.run_fault gzip fault)))
  in
  let table4 =
    Test.make ~name:"table4:plain vs traced execution"
      (Staged.stage (fun () ->
           ignore (Interp.run ~tracing:false faulty ~input);
           ignore (Interp.run ~tracing:true faulty ~input)))
  in
  Test.make_grouped ~name:"tables" [ table1; table2; table3; table4 ]

let run_bechamel () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  print_endline "== Bechamel microbenchmarks (one per table) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right ]
      [ "microbenchmark"; "time/run" ]
  in
  Hashtbl.iter
    (fun name ols_result ->
      let time =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) ->
          if est >= 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est >= 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else Printf.sprintf "%.2f us" (est /. 1e3)
        | _ -> "n/a"
      in
      Table.add_row t [ name; time ])
    results;
  Table.print t;
  print_newline ()

let () =
  let args = Array.to_list Sys.argv in
  let skip_bechamel =
    List.mem "--skip-bechamel" args || List.mem "--tables-only" args
  in
  let sched_only = List.mem "--sched-only" args in
  let rec flag_path name = function
    | f :: path :: _ when f = name -> Some path
    | _ :: rest -> flag_path name rest
    | [] -> None
  in
  let json_path = flag_path "--sched-json" args in
  let perf_path = flag_path "--perf-json" args in
  print_endline
    "exom benchmark harness: reproducing the evaluation of \"Towards \
     Locating Execution Omission Errors\" (PLDI 2007)";
  print_newline ();
  if sched_only then begin
    let rows = run_sched_comparison () in
    Option.iter (fun p -> write_sched_json p rows) json_path;
    if not (List.for_all (fun r -> r.sr_identical) rows) then exit 1
  end
  else begin
    print_table_1 ();
    print_endline "(running all 11 fault-localization experiments...)";
    let results = List.map (fun (b, f) -> Runner.run_fault b f) Suite.rows in
    print_newline ();
    print_table_2 results;
    print_table_3 results;
    print_table_4 results;
    print_robustness results;
    print_ablations ();
    let rows = run_sched_comparison () in
    Option.iter (fun p -> write_sched_json p rows) json_path;
    Option.iter
      (fun p ->
        let s = Exom_bench.Perf.run_suite ~label:"bench-harness" () in
        Exom_bench.Perf.write p s;
        Printf.printf "perf snapshot written to %s\n" p)
      perf_path;
    if not skip_bechamel then run_bechamel ();
    let located =
      List.length
        (List.filter (fun r -> r.Runner.report.Demand.found) results)
    in
    Printf.printf "Located %d/%d seeded execution omission errors.\n" located
      (List.length results);
    if not (List.for_all (fun r -> r.sr_identical) rows) then exit 1
  end
