(* Tests for the instrumented interpreter: semantics, tracing, dynamic
   dependences, predicate switching, budgets. *)

module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Cell = Exom_interp.Cell
module Chaos = Exom_interp.Chaos
module Interp = Exom_interp.Interp
module Profile = Exom_interp.Profile
module Trace = Exom_interp.Trace
module Trace_io = Exom_interp.Trace_io
module Value = Exom_interp.Value

let compile src = Typecheck.parse_and_check src

let run ?switch ?budget ?tracing src ~input =
  Interp.run ?switch ?budget ?tracing (compile src) ~input

let outputs ?switch ?budget ?tracing src ~input =
  Interp.output_values (run ?switch ?budget ?tracing src ~input)

let check_outputs name expected got =
  Alcotest.(check (list int)) name expected got

let trace_of run =
  match run.Interp.trace with
  | Some t -> t
  | None -> Alcotest.fail "expected a trace"

(* Find the sid of the statement on a given source line (1-based). *)
let sid_on_line prog line =
  let found = ref None in
  Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Ast.sloc = line && !found = None then
        found := Some s.Ast.sid)
    prog;
  match !found with
  | Some sid -> sid
  | None -> Alcotest.failf "no statement on line %d" line

(* Basic semantics *)

let test_arith () =
  check_outputs "arith"
    [ 7; 1; 6; 2; 1; -5 ]
    (outputs
       "void main() { print(3 + 4); print(7 % 2); print(2 * 3); print(5 / \
        2); print(7 - 2 * 3); print(-5); }"
       ~input:[])

let test_comparisons_and_logic () =
  check_outputs "logic"
    [ 1; 0; 1; 1 ]
    (outputs
       {|
void main() {
  int t = 0;
  if (1 < 2 && 2 <= 2) { t = 1; } else { t = 0; }
  print(t);
  if (3 > 3 || false) { t = 1; } else { t = 0; }
  print(t);
  if (!(1 == 2)) { t = 1; } else { t = 0; }
  print(t);
  if (1 != 2) { t = 1; } else { t = 0; }
  print(t);
}
|}
       ~input:[])

let test_short_circuit () =
  (* The right operand of && must not run when the left is false:
     division by zero would crash. *)
  let r =
    run
      {|
void main() {
  int z = 0;
  if (z != 0 && 10 / z > 1) { print(1); } else { print(0); }
}
|}
      ~input:[]
  in
  Alcotest.(check bool) "no crash" true (r.Interp.outcome = Ok ());
  check_outputs "short circuit" [ 0 ] (Interp.output_values r)

let test_while_loop () =
  check_outputs "sum 1..5" [ 15 ]
    (outputs
       {|
void main() {
  int s = 0;
  int i = 1;
  while (i <= 5) {
    s = s + i;
    i = i + 1;
  }
  print(s);
}
|}
       ~input:[])

let test_break_continue () =
  check_outputs "skip evens, stop at 7"
    [ 1; 3; 5; 7 ]
    (outputs
       {|
void main() {
  int i = 0;
  while (true) {
    i = i + 1;
    if (i % 2 == 0) { continue; }
    print(i);
    if (i >= 7) { break; }
  }
}
|}
       ~input:[])

let test_input () =
  check_outputs "echo sum" [ 30 ]
    (outputs "void main() { int a = input(); int b = input(); print(a + b); }"
       ~input:[ 10; 20 ])

let test_arrays () =
  check_outputs "array ops"
    [ 0; 42; 5 ]
    (outputs
       {|
void main() {
  int[] a = new_array(5);
  print(a[3]);
  a[3] = 42;
  print(a[3]);
  print(len(a));
}
|}
       ~input:[])

let test_array_aliasing () =
  check_outputs "aliased write" [ 9 ]
    (outputs
       {|
void main() {
  int[] a = new_array(2);
  int[] b = a;
  b[0] = 9;
  print(a[0]);
}
|}
       ~input:[])

let test_functions_and_recursion () =
  check_outputs "fib" [ 55 ]
    (outputs
       {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(10)); }
|}
       ~input:[])

let test_array_by_reference () =
  check_outputs "callee writes caller array" [ 7 ]
    (outputs
       {|
void set(int[] xs, int i, int v) { xs[i] = v; }
void main() {
  int[] a = new_array(3);
  set(a, 1, 7);
  print(a[1]);
}
|}
       ~input:[])

let test_globals () =
  check_outputs "global updated by callee" [ 1; 2 ]
    (outputs
       {|
int counter = 0;
void tick() { counter = counter + 1; }
void main() { tick(); print(counter); tick(); print(counter); }
|}
       ~input:[])

(* Crashes and budgets *)

let expect_crash name src input =
  let r = run src ~input in
  match r.Interp.outcome with
  | Error (Interp.Crashed _) -> ()
  | Ok () -> Alcotest.failf "%s: expected a crash" name
  | Error Interp.Budget_exhausted -> Alcotest.failf "%s: unexpected budget abort" name

let test_crashes () =
  expect_crash "div by zero" "void main() { int z = 0; print(1 / z); }" [];
  expect_crash "mod by zero" "void main() { int z = 0; print(1 % z); }" [];
  expect_crash "oob read"
    "void main() { int[] a = new_array(2); print(a[5]); }" [];
  expect_crash "oob write"
    "void main() { int[] a = new_array(2); a[-1] = 0; }" [];
  expect_crash "null array" "void main() { int[] a; print(a[0]); }" [];
  expect_crash "input exhausted" "void main() { print(input()); }" [];
  expect_crash "negative array size"
    "void main() { int[] a = new_array(0 - 3); }" []

let test_budget () =
  let r = run "void main() { while (true) { } }" ~budget:1000 ~input:[] in
  (match r.Interp.outcome with
  | Error Interp.Budget_exhausted -> ()
  | _ -> Alcotest.fail "expected budget exhaustion");
  Alcotest.(check bool) "steps within budget+1" true (r.Interp.steps <= 1001)

(* Tracing *)

let traced_src =
  {|
void main() {
  int x = 2;
  int y = x + 3;
  print(y);
}
|}

let test_trace_structure () =
  let r = run traced_src ~input:[] in
  let t = trace_of r in
  Alcotest.(check int) "three instances" 3 (Trace.length t);
  let x_inst = Trace.get t 0 in
  let y_inst = Trace.get t 1 in
  let p_inst = Trace.get t 2 in
  Alcotest.(check bool) "x defines" true
    (List.exists (fun (c, _) -> Cell.static_var c = Some "x") x_inst.Trace.defs);
  (* y's use of x must point at x's instance *)
  (match y_inst.Trace.uses with
  | [ (c, def, v) ] ->
    Alcotest.(check bool) "use of x" true (Cell.static_var c = Some "x");
    Alcotest.(check int) "def idx" 0 def;
    Alcotest.(check bool) "value 2" true (Value.equal v (Value.Vint 2))
  | _ -> Alcotest.fail "expected exactly one use");
  (match p_inst.Trace.kind with
  | Trace.Koutput -> ()
  | _ -> Alcotest.fail "print should be an output instance");
  Alcotest.(check bool) "output value" true
    (Value.equal p_inst.Trace.value (Value.Vint 5))

let test_control_parents () =
  let src =
    {|
void main() {
  int x = 1;
  if (x == 1) {
    print(10);
  }
  while (x < 3) {
    x = x + 1;
  }
  print(x);
}
|}
  in
  let r = run src ~input:[] in
  let t = trace_of r in
  (* instance layout: 0 decl, 1 if-pred, 2 print10, 3 while#1, 4 x=x+1,
     5 while#2, 6 x=x+1, 7 while#3, 8 print(x) *)
  Alcotest.(check int) "trace length" 9 (Trace.length t);
  let parent i = (Trace.get t i).Trace.parent in
  Alcotest.(check int) "print10 under if" 1 (parent 2);
  Alcotest.(check int) "while#1 at top" (-1) (parent 3);
  Alcotest.(check int) "body1 under while#1" 3 (parent 4);
  Alcotest.(check int) "while#2 under while#1" 3 (parent 5);
  Alcotest.(check int) "body2 under while#2" 5 (parent 6);
  Alcotest.(check int) "while#3 under while#2" 5 (parent 7);
  Alcotest.(check int) "final print at top" (-1) (parent 8)

let test_callee_parents () =
  let src =
    {|
int double(int n) { return n + n; }
void main() {
  int y = double(4);
  print(y);
}
|}
  in
  let r = run src ~input:[] in
  let t = trace_of r in
  (* 0: y decl (the call site), 1: return inside double, 2: print *)
  Alcotest.(check int) "length" 3 (Trace.length t);
  let ret = Trace.get t 1 in
  Alcotest.(check int) "return nests under call site" 0 ret.Trace.parent;
  (match ret.Trace.kind with
  | Trace.Kreturn -> ()
  | _ -> Alcotest.fail "expected return instance");
  (* y's uses include the return cell defined at instance 1 *)
  let y = Trace.get t 0 in
  Alcotest.(check bool) "use of ret" true
    (List.exists
       (fun (c, d, _) -> match c with Cell.Ret _ -> d = 1 | _ -> false)
       y.Trace.uses)

let test_elem_def_use () =
  let src =
    {|
void main() {
  int[] a = new_array(3);
  a[1] = 5;
  print(a[1]);
  print(a[2]);
}
|}
  in
  let r = run src ~input:[] in
  let t = trace_of r in
  (* 0 alloc, 1 store, 2 print a[1], 3 print a[2] *)
  let p1 = Trace.get t 2 in
  Alcotest.(check bool) "a[1] read points at store" true
    (List.exists
       (fun (c, d, _) -> match c with Cell.Elem (_, 1) -> d = 1 | _ -> false)
       p1.Trace.uses);
  let p2 = Trace.get t 3 in
  Alcotest.(check bool) "untouched element points at allocation" true
    (List.exists
       (fun (c, d, _) -> match c with Cell.Elem (_, 2) -> d = 0 | _ -> false)
       p2.Trace.uses)

let test_occurrences () =
  let src =
    {|
void main() {
  int i = 0;
  while (i < 4) {
    i = i + 1;
  }
  print(i);
}
|}
  in
  let r = run src ~input:[] in
  let t = trace_of r in
  let prog = compile src in
  let while_sid = sid_on_line prog 4 in
  Alcotest.(check int) "5 predicate instances" 5 (Trace.occurrences t while_sid);
  match Trace.find_instance t ~sid:while_sid ~occ:5 with
  | Some inst -> (
    match inst.Trace.kind with
    | Trace.Kpredicate false -> ()
    | _ -> Alcotest.fail "last loop predicate should be false")
  | None -> Alcotest.fail "missing instance"

(* Predicate switching *)

let switch_src =
  {|
void main() {
  int flag = 0;
  int x = 10;
  if (flag == 1) {
    x = 99;
  }
  print(x);
}
|}

let test_switching_changes_output () =
  let prog = compile switch_src in
  let if_sid = sid_on_line prog 5 in
  check_outputs "unswitched" [ 10 ] (outputs switch_src ~input:[]);
  let r =
    Interp.run prog
      ~switch:{ Interp.switch_sid = if_sid; switch_occ = 1 }
      ~input:[]
  in
  Alcotest.(check bool) "switch fired" true r.Interp.switch_fired;
  check_outputs "switched takes branch" [ 99 ] (Interp.output_values r)

let test_switch_specific_occurrence () =
  let src =
    {|
void main() {
  int i = 0;
  while (i < 3) {
    if (i == 99) {
      print(1000 + i);
    }
    i = i + 1;
  }
}
|}
  in
  let prog = compile src in
  let if_sid = sid_on_line prog 5 in
  (* Only the 2nd instance of the if is switched: exactly one output. *)
  let r =
    Interp.run prog
      ~switch:{ Interp.switch_sid = if_sid; switch_occ = 2 }
      ~input:[]
  in
  Alcotest.(check bool) "fired" true r.Interp.switch_fired;
  check_outputs "one flipped branch" [ 1001 ] (Interp.output_values r)

let test_switch_loop_predicate_exits_early () =
  let src =
    {|
void main() {
  int i = 0;
  while (i < 10) {
    i = i + 1;
  }
  print(i);
}
|}
  in
  let prog = compile src in
  let w_sid = sid_on_line prog 4 in
  let r =
    Interp.run prog
      ~switch:{ Interp.switch_sid = w_sid; switch_occ = 3 }
      ~input:[]
  in
  (* Third evaluation (i=2) flipped to false: loop exits with i=2. *)
  check_outputs "early exit" [ 2 ] (Interp.output_values r)

let test_value_switch () =
  let src =
    {|
void main() {
  int a = 5;
  int b = a + 1;
  print(b);
}
|}
  in
  let prog = compile src in
  let a_sid = sid_on_line prog 3 in
  let r =
    Interp.run prog
      ~vswitch:
        { Interp.vswitch_sid = a_sid; vswitch_occ = 1;
          vswitch_value = Value.Vint 100 }
      ~input:[]
  in
  Alcotest.(check bool) "fired" true r.Interp.switch_fired;
  check_outputs "perturbed value propagates" [ 101 ] (Interp.output_values r)

let test_value_switch_specific_occurrence () =
  let src =
    {|
void main() {
  int i = 0;
  int acc = 0;
  while (i < 3) {
    acc = acc + i;
    i = i + 1;
  }
  print(acc);
}
|}
  in
  let prog = compile src in
  let acc_sid = sid_on_line prog 6 in
  (* perturb only the 2nd execution of acc = acc + i *)
  let r =
    Interp.run prog
      ~vswitch:
        { Interp.vswitch_sid = acc_sid; vswitch_occ = 2;
          vswitch_value = Value.Vint 50 }
      ~input:[]
  in
  (* iterations: acc=0, then forced 50, then 50+2 = 52 *)
  check_outputs "one perturbed iteration" [ 52 ] (Interp.output_values r)

let test_switch_not_fired_when_unreached () =
  let prog = compile switch_src in
  let r =
    Interp.run prog
      ~switch:{ Interp.switch_sid = 0; switch_occ = 5 }
      ~input:[]
  in
  Alcotest.(check bool) "not fired" false r.Interp.switch_fired

(* Determinism: two traced runs on the same input yield identical traces
   (instance-by-instance), which the alignment machinery depends on. *)
let test_deterministic_replay () =
  let src =
    {|
int helper(int n) { return n * 2 + 1; }
void main() {
  int i = 0;
  int acc = 0;
  while (i < input()) {
    acc = acc + helper(i);
    i = i + 1;
  }
  print(acc);
}
|}
  in
  let prog = compile src in
  let r1 = Interp.run prog ~input:[ 6 ] in
  let r2 = Interp.run prog ~input:[ 6 ] in
  let t1 = trace_of r1 and t2 = trace_of r2 in
  Alcotest.(check int) "same length" (Trace.length t1) (Trace.length t2);
  for i = 0 to Trace.length t1 - 1 do
    let a = Trace.get t1 i and b = Trace.get t2 i in
    Alcotest.(check int) "sid" a.Trace.sid b.Trace.sid;
    Alcotest.(check int) "occ" a.Trace.occ b.Trace.occ;
    Alcotest.(check int) "parent" a.Trace.parent b.Trace.parent;
    Alcotest.(check bool) "value" true (Value.equal a.Trace.value b.Trace.value)
  done

(* Trace serialization *)

let trace_equal t1 t2 =
  Trace.length t1 = Trace.length t2
  && begin
       let ok = ref true in
       for i = 0 to Trace.length t1 - 1 do
         let a = Trace.get t1 i and b = Trace.get t2 i in
         if
           a.Trace.sid <> b.Trace.sid
           || a.Trace.occ <> b.Trace.occ
           || a.Trace.parent <> b.Trace.parent
           || a.Trace.kind <> b.Trace.kind
           || a.Trace.uses <> b.Trace.uses
           || a.Trace.defs <> b.Trace.defs
           || not (Value.equal a.Trace.value b.Trace.value)
         then ok := false
       done;
       !ok
     end

let test_trace_roundtrip () =
  let src =
    {|
int g = 7;
int helper(int k) { return k * g; }
void main() {
  int[] a = new_array(3);
  int i = 0;
  while (i < 3) {
    a[i] = helper(i);
    i = i + 1;
  }
  print(a[2]);
}
|}
  in
  let r = run src ~input:[] in
  let t = trace_of r in
  let t' = Exom_interp.Trace_io.of_string (Exom_interp.Trace_io.to_string t) in
  Alcotest.(check bool) "round trip exact" true (trace_equal t t');
  (* occurrence counts survive too *)
  Trace.iter
    (fun inst ->
      Alcotest.(check int) "occurrences preserved"
        (Trace.occurrences t inst.Trace.sid)
        (Trace.occurrences t' inst.Trace.sid))
    t

let test_trace_io_rejects_garbage () =
  match Exom_interp.Trace_io.of_string "not a trace line" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

(* A moderately rich trace for the hardening tests: loops, calls,
   arrays, so the dump has many line shapes. *)
let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let io_fixture () =
  let src =
    {|
int g = 7;
int helper(int k) { return k * g; }
void main() {
  int[] a = new_array(3);
  int i = 0;
  while (i < 3) {
    a[i] = helper(i);
    i = i + 1;
  }
  print(a[2]);
}
|}
  in
  trace_of (run src ~input:[])

let test_trace_io_header () =
  let t = io_fixture () in
  let s = Trace_io.to_string t in
  (* dumps are versioned *)
  Alcotest.(check bool) "header first" true
    (String.length s > 14 && String.sub s 0 14 = "#exom-trace v1");
  (* a future version is refused, with the offending line number *)
  let future =
    "#exom-trace v99\n" ^ String.concat "\n" (List.tl (String.split_on_char '\n' s))
  in
  (match Trace_io.of_string_result future with
  | Error e ->
    Alcotest.(check int) "error on line 1" 1 e.Trace_io.line;
    Alcotest.(check bool) "mentions the version" true
      (contains_sub (Trace_io.error_to_string e) "v99")
  | Ok _ -> Alcotest.fail "future version accepted");
  (* headerless dumps (pre-versioning) still load *)
  let headerless =
    String.concat "\n" (List.tl (String.split_on_char '\n' s))
  in
  (match Trace_io.of_string_result headerless with
  | Ok t' -> Alcotest.(check bool) "headerless round trip" true (trace_equal t t')
  | Error e -> Alcotest.failf "headerless refused: %s" (Trace_io.error_to_string e));
  (* comment lines are skipped *)
  match Trace_io.of_string_result ("# a comment\n" ^ s) with
  | Ok t' -> Alcotest.(check bool) "comments skipped" true (trace_equal t t')
  | Error e -> Alcotest.failf "comment refused: %s" (Trace_io.error_to_string e)

let test_trace_io_reports_line_number () =
  let t = io_fixture () in
  let lines = String.split_on_char '\n' (Trace_io.to_string t) in
  (* garble an instance line in the middle of the dump *)
  let victim = 1 + ((List.length lines - 2) / 2) in
  let garbled =
    String.concat "\n"
      (List.mapi
         (fun i l -> if i = victim - 1 then "12 zz" ^ l else l)
         lines)
  in
  (match Trace_io.of_string_result garbled with
  | Ok _ -> Alcotest.fail "garbled dump accepted"
  | Error e -> Alcotest.(check int) "offending line" victim e.Trace_io.line);
  (* the raising reader carries the same position in its message *)
  match Trace_io.of_string garbled with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    let expect = Printf.sprintf "line %d:" victim in
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg expect)
      true (contains_sub msg expect)

let test_trace_io_salvage_clean_prefix () =
  let t = io_fixture () in
  let lines =
    String.split_on_char '\n' (Trace_io.to_string t)
    |> List.filter (fun l -> l <> "")
  in
  let n = Trace.length t in
  (* dropping k whole instance lines salvages exactly the remaining
     prefix, with nothing to report *)
  for k = 0 to n do
    let kept = List.filteri (fun i _ -> i < List.length lines - k) lines in
    let t', err = Trace_io.salvage_of_string (String.concat "\n" kept) in
    Alcotest.(check int)
      (Printf.sprintf "prefix length with %d lines dropped" k)
      (n - k) (Trace.length t');
    Alcotest.(check bool) "no error" true (err = None);
    for i = 0 to Trace.length t' - 1 do
      let a = Trace.get t i and b = Trace.get t' i in
      Alcotest.(check bool) "prefix instance matches" true
        (a.Trace.sid = b.Trace.sid && a.Trace.occ = b.Trace.occ
        && a.Trace.uses = b.Trace.uses && a.Trace.defs = b.Trace.defs
        && Value.equal a.Trace.value b.Trace.value)
    done
  done

let test_trace_io_salvage_torn_line () =
  let t = io_fixture () in
  let s = Trace_io.to_string t in
  (* tear the final line before its uses separator — definitely
     malformed: salvage recovers everything before it and reports where
     parsing stopped *)
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> l <> "")
  in
  let last = List.nth lines (List.length lines - 1) in
  let torn =
    String.concat "\n"
      (List.filteri (fun i _ -> i < List.length lines - 1) lines
      @ [ String.sub last 0 (String.index last '|') ])
  in
  let t', err = Trace_io.salvage_of_string torn in
  Alcotest.(check int) "all but the torn instance"
    (Trace.length t - 1) (Trace.length t');
  match err with
  | None -> Alcotest.fail "torn line not reported"
  | Some e ->
    (* header is line 1, instance i on line i + 1 *)
    Alcotest.(check int) "error on the torn line" (Trace.length t + 1)
      e.Trace_io.line;
  (* the strict readers refuse the same input *)
  (match Trace_io.of_string_result torn with
  | Ok _ -> Alcotest.fail "strict reader accepted a torn dump"
  | Error e' ->
    Alcotest.(check int) "same position" e.Trace_io.line e'.Trace_io.line)

let prop_salvage_never_raises =
  (* salvage at any byte cut: no exception, and everything recovered
     except possibly the torn last instance is an exact prefix *)
  QCheck.Test.make ~name:"salvage of any truncation is a valid prefix"
    ~count:120
    QCheck.(int_range 0 10000)
    (fun cut ->
      let t = io_fixture () in
      let s = Trace_io.to_string t in
      let cut = cut mod (String.length s + 1) in
      let t', _ = Trace_io.salvage_of_string (String.sub s 0 cut) in
      Trace.length t' <= Trace.length t
      && begin
           (* the last recovered instance may have lost the tail of its
              defs to the tear; everything before it is exact *)
           let exact = ref true in
           for i = 0 to Trace.length t' - 2 do
             let a = Trace.get t i and b = Trace.get t' i in
             if
               a.Trace.sid <> b.Trace.sid
               || a.Trace.occ <> b.Trace.occ
               || a.Trace.uses <> b.Trace.uses
               || a.Trace.defs <> b.Trace.defs
               || not (Value.equal a.Trace.value b.Trace.value)
             then exact := false
           done;
           !exact
         end)

(* Chaos: deterministic fault injection *)

let chaos_src =
  {|
void main() {
  int i = 0;
  int acc = 0;
  while (i < 50) {
    acc = acc + i;
    i = i + 1;
  }
  print(acc);
}
|}

let test_chaos_of_seed_deterministic () =
  for seed = 0 to 40 do
    Alcotest.(check bool) "same seed, same fault" true
      (Chaos.of_seed seed = Chaos.of_seed seed)
  done;
  (* a small seed sweep exercises every fault kind *)
  let kinds =
    List.init 64 (fun seed ->
        match (Chaos.of_seed seed).Chaos.fault with
        | Chaos.Crash_at _ -> 0
        | Chaos.Truncate_budget _ -> 1
        | Chaos.Corrupt_value _ -> 2
        | Chaos.Raise_at _ -> 3
        | Chaos.Kill_worker _ -> 4)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "all kinds reachable" [ 0; 1; 2; 3; 4 ] kinds

let test_chaos_crash_at () =
  let chaos = { Chaos.seed = 0; fault = Chaos.Crash_at 20 } in
  let r = Interp.run ~chaos (compile chaos_src) ~input:[] in
  (match r.Interp.outcome with
  | Error (Interp.Crashed _) -> ()
  | _ -> Alcotest.fail "expected an injected crash");
  Alcotest.(check int) "at the chosen step" 20 r.Interp.steps

let test_chaos_truncate_budget () =
  let chaos = { Chaos.seed = 0; fault = Chaos.Truncate_budget 10 } in
  let r = Interp.run ~chaos (compile chaos_src) ~input:[] in
  Alcotest.(check bool) "budget abort" true
    (r.Interp.outcome = Error Interp.Budget_exhausted);
  (* the step that tripped the truncated budget is counted *)
  Alcotest.(check int) "at the truncated budget" 11 r.Interp.steps

let test_chaos_raise_at () =
  let chaos = { Chaos.seed = 0; fault = Chaos.Raise_at 15 } in
  match Interp.run ~chaos (compile chaos_src) ~input:[] with
  | _ -> Alcotest.fail "expected the injected exception to escape"
  | exception Chaos.Injected _ -> ()

let test_chaos_corrupt_value () =
  let clean = Interp.output_values (Interp.run (compile chaos_src) ~input:[]) in
  let chaos = { Chaos.seed = 0; fault = Chaos.Corrupt_value 8 } in
  let r1 = Interp.run ~chaos (compile chaos_src) ~input:[] in
  let r2 = Interp.run ~chaos (compile chaos_src) ~input:[] in
  (* the poison changes the result, deterministically *)
  Alcotest.(check bool) "output corrupted" true
    (Interp.output_values r1 <> clean || r1.Interp.outcome <> Ok ());
  Alcotest.(check bool) "corruption deterministic" true
    (Interp.output_values r1 = Interp.output_values r2
    && r1.Interp.outcome = r2.Interp.outcome)

let test_chaos_none_is_inert () =
  let clean = run chaos_src ~input:[] in
  let r = Interp.run ?chaos:None (compile chaos_src) ~input:[] in
  Alcotest.(check bool) "no chaos, same run" true
    (Interp.output_values clean = Interp.output_values r
    && clean.Interp.steps = r.Interp.steps)

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace serialization round-trips" ~count:25
    QCheck.(int_range 0 12)
    (fun n ->
      let src =
        {|
void main() {
  int n = input();
  int s = 0;
  int i = 0;
  while (i < n) {
    if (i % 2 == 0) {
      s = s + i;
    }
    i = i + 1;
  }
  print(s);
}
|}
      in
      let r = run src ~input:[ n ] in
      match r.Interp.trace with
      | None -> false
      | Some t ->
        trace_equal t
          (Exom_interp.Trace_io.of_string (Exom_interp.Trace_io.to_string t)))

(* Value profiles *)

let test_profile () =
  let src =
    {|
void main() {
  int n = input();
  int sq = n * n;
  print(sq);
}
|}
  in
  let prog = compile src in
  let profile = Profile.collect prog [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  Alcotest.(check int) "three runs" 3 (Profile.runs profile);
  let sq_sid = sid_on_line prog 4 in
  Alcotest.(check (list int))
    "squares profiled" [ 1; 4; 9 ]
    (Profile.range profile sq_sid ~observed:(Value.Vint 4));
  Alcotest.(check (list int))
    "observed joins range" [ 1; 4; 9; 25 ]
    (Profile.range profile sq_sid ~observed:(Value.Vint 25))

(* Properties *)

let prop_loop_count =
  QCheck.Test.make ~name:"counting loop prints its bound" ~count:50
    QCheck.(int_range 0 60)
    (fun n ->
      outputs
        {|
void main() {
  int n = input();
  int i = 0;
  while (i < n) { i = i + 1; }
  print(i);
}
|}
        ~input:[ n ]
      = [ n ])

let prop_switch_prefix_identical =
  (* Before the switched instance, the switched run's trace is identical
     to the original: the foundation of the alignment algorithm. *)
  QCheck.Test.make ~name:"switched run shares the prefix before the switch"
    ~count:30
    QCheck.(int_range 1 5)
    (fun occ ->
      let src =
        {|
void main() {
  int i = 0;
  int acc = 0;
  while (i < 5) {
    if (i % 2 == 0) {
      acc = acc + i;
    }
    i = i + 1;
  }
  print(acc);
}
|}
      in
      let prog = compile src in
      let if_sid = sid_on_line prog 6 in
      let base = Interp.run prog ~input:[] in
      let switched =
        Interp.run prog
          ~switch:{ Interp.switch_sid = if_sid; switch_occ = occ }
          ~input:[]
      in
      let t1 = trace_of base and t2 = trace_of switched in
      let switch_idx =
        match Trace.find_instance t1 ~sid:if_sid ~occ with
        | Some i -> i.Trace.idx
        | None -> -1
      in
      switch_idx >= 0
      && Trace.length t2 > switch_idx
      &&
      let ok = ref true in
      for i = 0 to switch_idx - 1 do
        let a = Trace.get t1 i and b = Trace.get t2 i in
        if
          a.Trace.sid <> b.Trace.sid
          || a.Trace.occ <> b.Trace.occ
          || not (Value.equal a.Trace.value b.Trace.value)
        then ok := false
      done;
      !ok)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "interp"
    [ ( "semantics",
        [ tc "arithmetic" test_arith;
          tc "comparisons and logic" test_comparisons_and_logic;
          tc "short circuit" test_short_circuit;
          tc "while" test_while_loop;
          tc "break/continue" test_break_continue;
          tc "input" test_input;
          tc "arrays" test_arrays;
          tc "array aliasing" test_array_aliasing;
          tc "recursion" test_functions_and_recursion;
          tc "array by reference" test_array_by_reference;
          tc "globals" test_globals ] );
      ( "failures",
        [ tc "crashes" test_crashes; tc "budget" test_budget ] );
      ( "tracing",
        [ tc "trace structure" test_trace_structure;
          tc "control parents" test_control_parents;
          tc "callee parents" test_callee_parents;
          tc "array element def-use" test_elem_def_use;
          tc "occurrences" test_occurrences;
          tc "deterministic replay" test_deterministic_replay ] );
      ( "switching",
        [ tc "changes output" test_switching_changes_output;
          tc "specific occurrence" test_switch_specific_occurrence;
          tc "loop predicate early exit" test_switch_loop_predicate_exits_early;
          tc "unreached switch" test_switch_not_fired_when_unreached;
          tc "value switch" test_value_switch;
          tc "value switch occurrence" test_value_switch_specific_occurrence ] );
      ( "serialization",
        [ tc "round trip" test_trace_roundtrip;
          tc "rejects garbage" test_trace_io_rejects_garbage;
          tc "versioned header" test_trace_io_header;
          tc "errors carry line numbers" test_trace_io_reports_line_number;
          tc "salvage of a clean prefix" test_trace_io_salvage_clean_prefix;
          tc "salvage of a torn line" test_trace_io_salvage_torn_line ] );
      ( "chaos",
        [ tc "seed derivation deterministic" test_chaos_of_seed_deterministic;
          tc "injected crash" test_chaos_crash_at;
          tc "truncated budget" test_chaos_truncate_budget;
          tc "injected exception escapes" test_chaos_raise_at;
          tc "value corruption" test_chaos_corrupt_value;
          tc "no chaos, no effect" test_chaos_none_is_inert ] );
      ("profiles", [ tc "collect" test_profile ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_loop_count; prop_switch_prefix_identical;
            prop_trace_roundtrip; prop_salvage_never_raises ] ) ]
