(* Property-based and differential tests over randomly generated MCL
   programs.

   Programs come from the corpus factory ({!Exom_corpus.Factory}, the
   library promotion of the generator this file used to embed): small
   well-typed programs whose loops are all counter-bounded, so they
   terminate well inside the interpreter's step budget.

   Properties:
   - pretty-print ∘ parse round-trips (fixpoint on the printed form);
   - the region tree is a well-formed projection of the trace;
   - aligning an execution against itself is the identity;
   - the tracing and plain interpreter modes agree on outputs, step
     counts and outcome (differential), on generated programs and on
     every program in examples/programs/. *)

module Pretty = Exom_lang.Pretty
module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Region = Exom_align.Region
module Align = Exom_align.Align
module Factory = Exom_corpus.Factory
module Ast = Exom_lang.Ast
module Rank = Exom_rank.Rank

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (try int_of_string s with _ -> 42)
  | None -> 42

(* {2 Program generator} *)

let gen_program = Factory.gen_program

let print_case (prog, input) =
  Printf.sprintf "%s\n// input: [%s]"
    (Pretty.program_to_string prog)
    (String.concat "; " (List.map string_of_int input))

let arb = QCheck.make ~print:print_case gen_program

(* {2 Properties} *)

let prop_roundtrip =
  QCheck.Test.make ~name:"pretty-print . parse round-trips" ~count:80 arb
    (fun (prog, _) ->
      let src = Pretty.program_to_string prog in
      Pretty.program_to_string (Typecheck.parse_and_check src) = src)

let traced prog input = Interp.run ~tracing:true prog ~input

let prop_region_well_formed =
  QCheck.Test.make ~name:"region tree projects the trace" ~count:60 arb
    (fun (prog, input) ->
      let r = traced prog input in
      let tr = Option.get r.Interp.trace in
      let reg = Region.build tr in
      Region.length reg = Trace.length tr
      && List.for_all
           (fun idx ->
             let inst = Region.get reg idx in
             let p = inst.Trace.parent in
             inst.Trace.idx = idx && p < idx
             && Region.in_region reg ~u:idx ~r:Region.root
             && (p < 0
                || Region.in_region reg ~u:idx ~r:p
                   && Region.depth reg idx = Region.depth reg p + 1
                   && List.mem idx (Region.children reg p)))
           (List.init (Trace.length tr) Fun.id))

let sample_indices n =
  (* All indices on short traces, a spread otherwise: property checks
     stay linear-ish in trace length. *)
  if n <= 64 then List.init n Fun.id
  else List.init 64 (fun i -> i * n / 64)

let prop_self_alignment =
  QCheck.Test.make ~name:"self-alignment is the identity" ~count:60 arb
    (fun (prog, input) ->
      let r = traced prog input in
      let tr = Option.get r.Interp.trace in
      let reg = Region.build tr in
      let n = Trace.length tr in
      let indices = sample_indices n in
      let root_ok =
        List.for_all
          (fun u -> Align.match_root reg reg ~u = Align.Found u)
          indices
      in
      (* From any predicate instance, an execution still aligns with
         itself everywhere. *)
      let pred =
        List.find_opt (fun u -> Trace.is_predicate (Region.get reg u)) indices
      in
      let from_ok =
        match pred with
        | None -> true
        | Some p ->
          List.for_all
            (fun u -> Align.match_from reg reg ~p ~u = Align.Found u)
            indices
      in
      root_ok && from_ok)

let modes_agree prog input =
  let a = Interp.run ~tracing:true prog ~input in
  let b = Interp.run ~tracing:false prog ~input in
  Interp.output_values a = Interp.output_values b
  && a.Interp.steps = b.Interp.steps
  && a.Interp.outcome = b.Interp.outcome
  && a.Interp.switch_fired = b.Interp.switch_fired

let prop_differential =
  QCheck.Test.make ~name:"tracing and plain modes agree" ~count:80 arb
    (fun (prog, input) -> modes_agree prog input)

(* {2 Differential check over the example corpus} *)

(* Under `dune runtest` the cwd is the sandboxed test directory and
   the glob_files dep places the corpus at ../examples/programs; under
   `dune exec test/test_prop.exe` the cwd is the project root.  Resolve
   relative to the executable first, then the two cwd layouts. *)
let examples_dir =
  let rel = Filename.concat "examples" "programs" in
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name)
        (Filename.concat ".." rel);
      Filename.concat ".." rel;
      rel;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> rel

let test_examples_differential () =
  let files =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
  in
  Alcotest.(check bool) "example corpus present" true (files <> []);
  List.iter
    (fun file ->
      let path = Filename.concat examples_dir file in
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let prog = Typecheck.parse_and_check src in
      (* A fixed input long enough for every example; extra ints are
         ignored, and both modes crash identically on exhaustion. *)
      let input = [ 6; 3; 9; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8; 9; 7 ] in
      Alcotest.(check bool)
        (file ^ ": modes agree")
        true (modes_agree prog input);
      Alcotest.(check bool)
        (file ^ ": short input agrees")
        true
        (modes_agree prog [ 2 ]))
    files

(* Ranking is a pure function of (static features, evidence): two
   scorers built from the same Factory program and fed the same verdict
   evidence — in any order, since per-predicate cells are independent
   counters — produce byte-identical scores and plans.  This is the
   unit-level face of the end-to-end claim that the ranked verification
   order is invariant across -j and warm/cold stores (test_rank). *)
let prop_ranking_pure =
  QCheck.Test.make ~name:"ranking is pure in (features, evidence)" ~count:60
    arb (fun (prog, input) ->
      let stmts = Ast.stmt_count prog in
      let preds = ref [] in
      Ast.iter_program
        (fun s -> if Ast.is_predicate s then preds := s.Ast.sid :: !preds)
        prog;
      let sids = match !preds with [] -> [ 1; 2; 3 ] | l -> List.rev l in
      (* a deterministic evidence stream derived from the program *)
      let evidence =
        List.concat_map
          (fun sid ->
            match (sid + List.length input) mod 3 with
            | 0 -> [ (sid, `Strong_id) ]
            | 1 -> [ (sid, `Id); (sid, `Not_id) ]
            | _ -> [ (sid, `Not_id); (sid, `Not_id) ])
          sids
      in
      let mk stream =
        let t =
          Rank.create ~stmts ~predicates:(List.length sids)
            Rank.default_config
        in
        List.iter (fun (sid, v) -> Rank.observe t ~sid ~verdict:v) stream;
        t
      in
      let candidates = List.mapi (fun i sid -> (i, sid)) (sids @ sids) in
      let t1 = mk evidence in
      let t2 = mk evidence in
      let t3 = mk (List.rev evidence) in
      Rank.plan t1 candidates = Rank.plan t2 candidates
      && Rank.plan t1 candidates = Rank.plan t3 candidates
      && List.for_all
           (fun (_, sid) -> Rank.score t1 ~sid = Rank.score t3 ~sid)
           candidates)

let () =
  let rand = Random.State.make [| seed |] in
  let q t = QCheck_alcotest.to_alcotest ~rand t in
  Alcotest.run "prop"
    [
      ( "generated",
        [
          q prop_roundtrip;
          q prop_region_well_formed;
          q prop_self_alignment;
          q prop_differential;
          q prop_ranking_pure;
        ] );
      ("examples", [ Alcotest.test_case "differential" `Quick test_examples_differential ]);
    ]
