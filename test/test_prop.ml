(* Property-based and differential tests over randomly generated MCL
   programs.

   The generator produces small well-typed programs: a few int globals
   and a [main] built from declarations, assignments, prints, bounded
   [while] loops and [if] statements over int/bool expressions.  All
   variable names are globally fresh (the typechecker rejects
   shadowing) and every loop is counter-bounded, so generated programs
   always terminate well inside the interpreter's step budget.

   Properties:
   - pretty-print ∘ parse round-trips (fixpoint on the printed form);
   - the region tree is a well-formed projection of the trace;
   - aligning an execution against itself is the identity;
   - the tracing and plain interpreter modes agree on outputs, step
     counts and outcome (differential), on generated programs and on
     every program in examples/programs/. *)

module Ast = Exom_lang.Ast
module Loc = Exom_lang.Loc
module Pretty = Exom_lang.Pretty
module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Region = Exom_align.Region
module Align = Exom_align.Align

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (try int_of_string s with _ -> 42)
  | None -> 42

(* {2 Program generator} *)

let e d = { Ast.edesc = d; eloc = Loc.dummy }
let s k = { Ast.sid = 0; sloc = Loc.dummy; skind = k }

(* A [QCheck.Gen.t] is a function of the random state; generating
   imperatively keeps the fresh-name counter and scope threading
   readable. *)
let gen_program st =
  let ctr = ref 0 in
  let fresh () =
    incr ctr;
    Printf.sprintf "x%d" !ctr
  in
  let int_in lo hi = lo + Random.State.int st (hi - lo + 1) in
  let pick xs = List.nth xs (Random.State.int st (List.length xs)) in
  let rec gen_int depth vars =
    if depth = 0 || int_in 0 2 = 0 then
      match vars with
      | [] -> e (Ast.Eint (int_in (-20) 20))
      | _ when int_in 0 1 = 0 -> e (Ast.Evar (pick vars))
      | _ -> e (Ast.Eint (int_in (-20) 20))
    else
      match int_in 0 4 with
      | 0 -> e (Ast.Eunop (Ast.Neg, gen_int (depth - 1) vars))
      | 1 -> e (Ast.Ecall ("input", []))
      | _ ->
        let op = pick [ Ast.Add; Ast.Sub; Ast.Mul ] in
        e (Ast.Ebinop (op, gen_int (depth - 1) vars, gen_int (depth - 1) vars))
  in
  let rec gen_bool depth vars =
    if depth = 0 || int_in 0 1 = 0 then
      let op = pick [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ] in
      e (Ast.Ebinop (op, gen_int 1 vars, gen_int 1 vars))
    else
      match int_in 0 2 with
      | 0 -> e (Ast.Eunop (Ast.Not, gen_bool (depth - 1) vars))
      | _ ->
        let op = pick [ Ast.And; Ast.Or ] in
        e
          (Ast.Ebinop (op, gen_bool (depth - 1) vars, gen_bool (depth - 1) vars))
  in
  let print_stmt vars = s (Ast.Sexpr (e (Ast.Ecall ("print", [ gen_int 2 vars ])))) in
  (* Returns the statements plus the scope extended with this level's
     declarations; declarations inside nested blocks stay local. *)
  let rec gen_stmts depth vars budget =
    if budget = 0 then ([], vars)
    else
      let stmt, vars =
        match int_in 0 5 with
        | 0 ->
          let x = fresh () in
          (s (Ast.Sdecl (Ast.Tint, x, Some (gen_int 2 vars))), x :: vars)
        | 1 when vars <> [] ->
          (s (Ast.Sassign (pick vars, gen_int 2 vars)), vars)
        | 2 -> (print_stmt vars, vars)
        | 3 when depth > 0 ->
          let then_b, _ = gen_stmts (depth - 1) vars (int_in 1 3) in
          let else_b, _ =
            if int_in 0 1 = 0 then ([], vars)
            else gen_stmts (depth - 1) vars (int_in 1 3)
          in
          (s (Ast.Sif (gen_bool 1 vars, then_b, else_b)), vars)
        | 4 when depth > 0 ->
          (* Counter-bounded loop; the counter is never in scope for the
             body, so no generated assignment can unbound it. *)
          let i = fresh () in
          let body, _ = gen_stmts (depth - 1) vars (int_in 1 3) in
          let incr_i =
            s
              (Ast.Sassign
                 (i, e (Ast.Ebinop (Ast.Add, e (Ast.Evar i), e (Ast.Eint 1)))))
          in
          let cond =
            e (Ast.Ebinop (Ast.Lt, e (Ast.Evar i), e (Ast.Eint (int_in 0 4))))
          in
          ( s
              (Ast.Sif
                 ( e (Ast.Ebool true),
                   [
                     s (Ast.Sdecl (Ast.Tint, i, Some (e (Ast.Eint 0))));
                     s (Ast.Swhile (cond, body @ [ incr_i ]));
                   ],
                   [] )),
            vars )
        | _ ->
          let x = fresh () in
          (s (Ast.Sdecl (Ast.Tint, x, Some (gen_int 2 vars))), x :: vars)
      in
      let rest, vars = gen_stmts depth vars (budget - 1) in
      (stmt :: rest, vars)
  in
  let n_globals = int_in 0 2 in
  let globals = ref [] and global_vars = ref [] in
  for _ = 1 to n_globals do
    let g = fresh () in
    globals :=
      s (Ast.Sdecl (Ast.Tint, g, Some (e (Ast.Eint (int_in (-9) 9)))))
      :: !globals;
    global_vars := g :: !global_vars
  done;
  let body, vars = gen_stmts 2 !global_vars (int_in 2 8) in
  let body = body @ [ print_stmt vars ] in
  let main =
    {
      Ast.fname = "main";
      fret = Ast.Tvoid;
      fparams = [];
      fbody = body;
      floc = Loc.dummy;
    }
  in
  let prog = { Ast.globals = List.rev !globals; funcs = [ main ] } in
  (* Re-parse so statement ids are assigned; the generator leaves them 0. *)
  let input = List.init (int_in 0 16) (fun _ -> int_in (-50) 50) in
  (Typecheck.parse_and_check (Pretty.program_to_string prog), input)

let print_case (prog, input) =
  Printf.sprintf "%s\n// input: [%s]"
    (Pretty.program_to_string prog)
    (String.concat "; " (List.map string_of_int input))

let arb = QCheck.make ~print:print_case gen_program

(* {2 Properties} *)

let prop_roundtrip =
  QCheck.Test.make ~name:"pretty-print . parse round-trips" ~count:80 arb
    (fun (prog, _) ->
      let src = Pretty.program_to_string prog in
      Pretty.program_to_string (Typecheck.parse_and_check src) = src)

let traced prog input = Interp.run ~tracing:true prog ~input

let prop_region_well_formed =
  QCheck.Test.make ~name:"region tree projects the trace" ~count:60 arb
    (fun (prog, input) ->
      let r = traced prog input in
      let tr = Option.get r.Interp.trace in
      let reg = Region.build tr in
      Region.length reg = Trace.length tr
      && List.for_all
           (fun idx ->
             let inst = Region.get reg idx in
             let p = inst.Trace.parent in
             inst.Trace.idx = idx && p < idx
             && Region.in_region reg ~u:idx ~r:Region.root
             && (p < 0
                || Region.in_region reg ~u:idx ~r:p
                   && Region.depth reg idx = Region.depth reg p + 1
                   && List.mem idx (Region.children reg p)))
           (List.init (Trace.length tr) Fun.id))

let sample_indices n =
  (* All indices on short traces, a spread otherwise: property checks
     stay linear-ish in trace length. *)
  if n <= 64 then List.init n Fun.id
  else List.init 64 (fun i -> i * n / 64)

let prop_self_alignment =
  QCheck.Test.make ~name:"self-alignment is the identity" ~count:60 arb
    (fun (prog, input) ->
      let r = traced prog input in
      let tr = Option.get r.Interp.trace in
      let reg = Region.build tr in
      let n = Trace.length tr in
      let indices = sample_indices n in
      let root_ok =
        List.for_all
          (fun u -> Align.match_root reg reg ~u = Align.Found u)
          indices
      in
      (* From any predicate instance, an execution still aligns with
         itself everywhere. *)
      let pred =
        List.find_opt (fun u -> Trace.is_predicate (Region.get reg u)) indices
      in
      let from_ok =
        match pred with
        | None -> true
        | Some p ->
          List.for_all
            (fun u -> Align.match_from reg reg ~p ~u = Align.Found u)
            indices
      in
      root_ok && from_ok)

let modes_agree prog input =
  let a = Interp.run ~tracing:true prog ~input in
  let b = Interp.run ~tracing:false prog ~input in
  Interp.output_values a = Interp.output_values b
  && a.Interp.steps = b.Interp.steps
  && a.Interp.outcome = b.Interp.outcome
  && a.Interp.switch_fired = b.Interp.switch_fired

let prop_differential =
  QCheck.Test.make ~name:"tracing and plain modes agree" ~count:80 arb
    (fun (prog, input) -> modes_agree prog input)

(* {2 Differential check over the example corpus} *)

(* Under `dune runtest` the cwd is the sandboxed test directory and
   the glob_files dep places the corpus at ../examples/programs; under
   `dune exec test/test_prop.exe` the cwd is the project root.  Resolve
   relative to the executable first, then the two cwd layouts. *)
let examples_dir =
  let rel = Filename.concat "examples" "programs" in
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name)
        (Filename.concat ".." rel);
      Filename.concat ".." rel;
      rel;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> rel

let test_examples_differential () =
  let files =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
  in
  Alcotest.(check bool) "example corpus present" true (files <> []);
  List.iter
    (fun file ->
      let path = Filename.concat examples_dir file in
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let prog = Typecheck.parse_and_check src in
      (* A fixed input long enough for every example; extra ints are
         ignored, and both modes crash identically on exhaustion. *)
      let input = [ 6; 3; 9; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8; 9; 7 ] in
      Alcotest.(check bool)
        (file ^ ": modes agree")
        true (modes_agree prog input);
      Alcotest.(check bool)
        (file ^ ": short input agrees")
        true
        (modes_agree prog [ 2 ]))
    files

let () =
  let rand = Random.State.make [| seed |] in
  let q t = QCheck_alcotest.to_alcotest ~rand t in
  Alcotest.run "prop"
    [
      ( "generated",
        [
          q prop_roundtrip;
          q prop_region_well_formed;
          q prop_self_alignment;
          q prop_differential;
        ] );
      ("examples", [ Alcotest.test_case "differential" `Quick test_examples_differential ]);
    ]
