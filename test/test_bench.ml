(* Tests for the benchmark suite: fault validity, the Table 1-3
   properties the paper's evaluation rests on, and end-to-end
   localization of representative faults from each benchmark. *)

module B = Exom_bench.Bench_types
module Runner = Exom_bench.Runner
module Suite = Exom_bench.Suite
module Demand = Exom_core.Demand
module Interp = Exom_interp.Interp
module Typecheck = Exom_lang.Typecheck

let find_bench name =
  match Suite.find name with
  | Some b -> b
  | None -> Alcotest.failf "no benchmark %s" name

let find_fault bench fid =
  match Suite.find_fault bench fid with
  | Some f -> f
  | None -> Alcotest.failf "no fault %s" fid

(* Infrastructure *)

let test_input_encoding () =
  Alcotest.(check (list int)) "abc" [ 3; 97; 98; 99 ] (B.input_of_string "abc");
  Alcotest.(check (list int)) "empty" [ 0 ] (B.input_of_string "")

let test_fault_line_and_source () =
  let bench = find_bench "gzipsim" in
  let fault = find_fault bench "V2-F3" in
  Alcotest.(check int) "fault on line 2" 2 (B.fault_line bench fault);
  let faulty = B.faulty_source bench fault in
  Alcotest.(check bool) "replacement applied" true
    (String.length faulty = String.length bench.B.source
    && faulty <> bench.B.source)

let test_root_sids () =
  let bench = find_bench "gzipsim" in
  let fault = find_fault bench "V2-F3" in
  let prog = Typecheck.parse_and_check (B.faulty_source bench fault) in
  let roots = B.root_sids bench fault prog in
  Alcotest.(check int) "single root" 1 (List.length roots)

let test_unknown_pattern_rejected () =
  let bench = find_bench "gzipsim" in
  let bogus =
    { B.fid = "X"; description = ""; pattern = "no such line";
      replacement = ""; failing_input = [] }
  in
  match B.faulty_source bench bogus with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Benchmark programs behave correctly (the correct versions). *)

let run_correct name input =
  let bench = find_bench name in
  let prog = Typecheck.parse_and_check bench.B.source in
  Interp.output_values (Interp.run ~tracing:false prog ~input)

let test_flexsim_scans () =
  (* "let x = 42;" => keyword(3), ident(1), punct(=), number(2), punct(;) *)
  let out = run_correct "flexsim" (B.input_of_string "let x = 42;") in
  let token_stream =
    (* (kind, len) pairs precede the 9 summary values *)
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    take (List.length out - 9) out
  in
  Alcotest.(check (list int))
    "token stream"
    [ 4; 3; 2; 1; 3; 1; 1; 2; 3; 1 ]
    token_stream

let test_grepsim_counts () =
  (* pattern "ab" over 4 lines, 3 contain ab (case folded) *)
  let bench = find_bench "grepsim" in
  let fault = find_fault bench "V4-F2" in
  let out = run_correct "grepsim" fault.B.failing_input in
  match out with
  | [ lines_seen; match_count; first_match; _check ] ->
    Alcotest.(check int) "lines" 4 lines_seen;
    Alcotest.(check int) "matches" 3 match_count;
    Alcotest.(check int) "first" 1 first_match
  | _ -> Alcotest.fail "unexpected output shape"

let test_gzipsim_header () =
  let out = run_correct "gzipsim" (B.input_of_string "abcabcabcxyz") in
  (match out with
  | m1 :: m2 :: meth :: flags :: _ ->
    Alcotest.(check int) "magic1" 31 m1;
    Alcotest.(check int) "magic2" 139 m2;
    Alcotest.(check int) "method" 8 meth;
    (* level bit (4) + name bit (8) *)
    Alcotest.(check int) "flags" 12 flags
  | _ -> Alcotest.fail "short output");
  (* repetitive input must produce at least one match, and the built-in
     decoder must round-trip: zero mismatches *)
  let nth_back k = List.nth out (List.length out - k) in
  Alcotest.(check bool) "lz77 found matches" true (nth_back 4 >= 1);
  Alcotest.(check int) "round trip clean" 0 (nth_back 1)

let test_gzipsim_roundtrippable () =
  (* every literal/match token must be decodable back to the input *)
  let text = "abcabcabcxyz" in
  let input = B.input_of_string text in
  let bench = find_bench "gzipsim" in
  let prog = Typecheck.parse_and_check bench.B.source in
  let run = Interp.run ~tracing:false prog ~input in
  let out = Array.of_list (Interp.output_values run) in
  (* outputs: 12 header/stream bytes, outcnt, literals, matches, crc; the
     full stream lives in outbuf, of which we see a prefix - so decode
     from a fresh run's full token list instead: re-simulate here *)
  ignore out;
  (* decode by re-running LZ77 in OCaml and comparing statistics *)
  let n = String.length text in
  let window = 16 and min_match = 3 in
  let literals = ref 0 and matches = ref 0 in
  let pos = ref 0 in
  while !pos < n do
    let best_len = ref 0 in
    let start = max 0 (!pos - window) in
    for cand = start to !pos - 1 do
      let len = ref 0 in
      while
        !pos + !len < n
        && text.[cand + !len] = text.[!pos + !len]
        && !len < 255
      do
        incr len
      done;
      if !len > !best_len then best_len := !len
    done;
    if !best_len >= min_match then begin
      incr matches;
      pos := !pos + !best_len
    end
    else begin
      incr literals;
      incr pos
    end
  done;
  let out_list = Interp.output_values run in
  (* outputs end with: ..., literals, matches, crc, dpos, mismatches *)
  let got_matches = List.nth out_list (List.length out_list - 4) in
  let got_literals = List.nth out_list (List.length out_list - 5) in
  Alcotest.(check int) "literal count agrees" !literals got_literals;
  Alcotest.(check int) "match count agrees" !matches got_matches

let test_sedsim_substitutes () =
  let out = run_correct "sedsim" (B.input_of_string "banana") in
  (* line number 1, then "bonono", newline, counters *)
  match out with
  | 1 :: rest ->
    let line = List.filteri (fun i _ -> i < 6) rest in
    Alcotest.(check (list int))
      "substituted" [ 98; 111; 110; 111; 110; 111 ] line
  | _ -> Alcotest.fail "expected line number first"

(* The benchmark sources exercise the whole front end: they must
   pretty-print and re-parse to the same statement structure, build
   CFGs for every function, and profile cleanly on their test suites. *)

let test_sources_roundtrip () =
  List.iter
    (fun b ->
      let prog = Typecheck.parse_and_check b.B.source in
      let printed = Exom_lang.Pretty.program_to_string prog in
      let reparsed = Typecheck.parse_and_check printed in
      Alcotest.(check int)
        (b.B.name ^ " statement count survives round trip")
        (Exom_lang.Ast.stmt_count prog)
        (Exom_lang.Ast.stmt_count reparsed))
    Suite.all

let test_sources_analyses () =
  List.iter
    (fun b ->
      let prog = Typecheck.parse_and_check b.B.source in
      let info = Exom_cfg.Proginfo.build prog in
      List.iter
        (fun fn ->
          let cfg = Exom_cfg.Proginfo.cfg_of info (Some fn.Exom_lang.Ast.fname) in
          Alcotest.(check bool)
            (b.B.name ^ "." ^ fn.Exom_lang.Ast.fname ^ " cfg nonempty")
            true
            (cfg.Exom_cfg.Cfg.nnodes >= 2);
          (* control dependence computes without blowing up *)
          Exom_lang.Ast.iter_stmts
            (fun s -> ignore (Exom_cfg.Proginfo.control_deps info s.Exom_lang.Ast.sid))
            fn.Exom_lang.Ast.fbody)
        prog.Exom_lang.Ast.funcs)
    Suite.all

let test_sources_pass_their_suites () =
  (* every test input runs the correct program to completion *)
  List.iter
    (fun b ->
      let prog = Typecheck.parse_and_check b.B.source in
      List.iter
        (fun input ->
          let r = Interp.run ~tracing:false prog ~input in
          Alcotest.(check bool)
            (b.B.name ^ " test input terminates normally")
            true
            (r.Interp.outcome = Ok ()))
        b.B.test_inputs)
    Suite.all

(* Fault validity: every seeded fault manifests as a wrong value. *)

let test_all_faults_valid () =
  List.iter (fun (b, f) -> Runner.validate_fault b f) Suite.rows

let test_suite_shape () =
  Alcotest.(check int) "four benchmarks" 4 (List.length Suite.all);
  Alcotest.(check bool) "at least 9 faults (paper's row count)" true
    (List.length Suite.rows >= 9)

(* End-to-end localization on one representative fault per benchmark.
   These are the paper's headline claims:
   - the dynamic slice misses the root (execution omission error),
   - the relevant slice catches it but is much bigger dynamically,
   - the demand-driven procedure locates it with few iterations/edges. *)

let check_localization ?(ips_factor = 5) name fid ~max_iterations =
  let bench = find_bench name in
  let fault = find_fault bench fid in
  let r = Runner.run_fault bench fault in
  Alcotest.(check bool) (fid ^ ": DS misses root") false r.Runner.root_in_ds;
  Alcotest.(check bool) (fid ^ ": RS catches root") true r.Runner.root_in_rs;
  Alcotest.(check bool)
    (fid ^ ": RS dynamic >= DS dynamic")
    true
    (r.Runner.rs.Runner.dynamic_size >= r.Runner.ds.Runner.dynamic_size);
  Alcotest.(check bool) (fid ^ ": located") true r.Runner.report.Demand.found;
  Alcotest.(check bool)
    (fid ^ ": few iterations")
    true
    (r.Runner.report.Demand.iterations <= max_iterations);
  Alcotest.(check bool)
    (fid ^ ": IPS is small")
    true
    (r.Runner.ips.Runner.dynamic_size * ips_factor
    <= max (25 * ips_factor) r.Runner.rs.Runner.dynamic_size)

let test_locate_gzip () = check_localization "gzipsim" "V2-F3" ~max_iterations:2
let test_locate_sed () = check_localization "sedsim" "V3-F2" ~max_iterations:2
let test_locate_flex () = check_localization "flexsim" "V5-F6" ~max_iterations:2

let test_locate_grep () =
  (* grep is the paper's hardest case: more iterations and edges *)
  check_localization ~ips_factor:2 "grepsim" "V4-F2" ~max_iterations:35

(* Scale: a trace in the tens of thousands of instances must still be
   handled, and the paper's static-vs-dynamic blowup grows with it. *)
let test_scale_gzip () =
  let bench = find_bench "gzipsim" in
  let base = "the quick brown fox jumps over the lazy dog; " in
  let big = String.concat "" (List.init 6 (fun _ -> base)) in
  let fault =
    { (find_fault bench "V2-F3") with B.failing_input = B.input_of_string big }
  in
  let r = Runner.run_fault bench fault in
  Alcotest.(check bool) "big trace" true (r.Runner.trace_length > 10_000);
  Alcotest.(check bool) "still located" true r.Runner.report.Demand.found;
  Alcotest.(check bool) "few verifications" true
    (r.Runner.report.Demand.verifications <= 10);
  (* RS dynamic blowup grows with trace size (paper: orders of magnitude) *)
  Alcotest.(check bool) "RS dynamic >> RS static" true
    (r.Runner.rs.Runner.dynamic_size > 100 * r.Runner.rs.Runner.static_size)

(* Ablations *)

let test_potential_confidence_sanitizes_gzip () =
  (* §3.2's rejected alternative, on the paper's own example: blind
     potential edges raise the faulty save_orig_name's confidence to 1 *)
  let bench = find_bench "gzipsim" in
  let fault = find_fault bench "V2-F3" in
  let s = Exom_bench.Ablation.potential_confidence_sanitizes bench fault in
  Alcotest.(check bool) "verified graph leaves root suspicious" true
    (s.Exom_bench.Ablation.conf_verified < 0.5);
  Alcotest.(check bool) "potential edges sanitize the root" true
    s.Exom_bench.Ablation.sanitized

let test_union_graph_backend () =
  (* the union-dependence-graph condition (iv): never loses the root,
     prunes false pairs — sharply on gzip V2-F3 *)
  let bench = find_bench "gzipsim" in
  let fault = find_fault bench "V2-F3" in
  let r = Exom_bench.Ablation.compare_rs_backends bench fault in
  Alcotest.(check bool) "root kept under static (iv)" true
    r.Exom_bench.Ablation.root_in_static;
  Alcotest.(check bool) "root kept under union (iv)" true
    r.Exom_bench.Ablation.root_in_union;
  let _, sd = r.Exom_bench.Ablation.rs_static in
  let _, ud = r.Exom_bench.Ablation.rs_union in
  Alcotest.(check bool) "union RS no larger" true (ud <= sd);
  Alcotest.(check bool) "union RS much smaller here" true (ud * 2 < sd)

let test_verify_modes_agree_on_suite () =
  (* the paper: "we have not encountered such a case in our study" —
     edge and path mode locate the same faults here too *)
  let bench = find_bench "sedsim" in
  let fault = find_fault bench "V3-F2" in
  let c = Exom_bench.Ablation.compare_verify_modes bench fault in
  Alcotest.(check bool) "edge mode finds" true
    c.Exom_bench.Ablation.edge_report.Demand.found;
  Alcotest.(check bool) "path mode finds" true
    c.Exom_bench.Ablation.path_report.Demand.found

let test_critical_search_comparison () =
  (* gzip V2-F3 (the paper's Figure 1): the flags bit and the name bytes
     hang under two instances of the faulty condition, so no single flip
     repairs the output — whole-output critical-predicate search finds
     nothing while the demand-driven technique locates the root *)
  let bench = find_bench "gzipsim" in
  let fault = find_fault bench "V2-F3" in
  let c = Exom_bench.Ablation.compare_with_critical_search bench fault in
  Alcotest.(check int) "no critical predicate exists" 0
    c.Exom_bench.Ablation.critical_found;
  Alcotest.(check bool) "demand-driven still locates" true
    c.Exom_bench.Ablation.demand_found;
  Alcotest.(check bool) "critical search cost is high" true
    (c.Exom_bench.Ablation.critical_executions
    > 10 * c.Exom_bench.Ablation.demand_verifications)

(* Robustness: a seed sweep of injected faults over real benchmark
   localizations.  Whatever the chaos does to the switched
   re-executions — crashes, truncated budgets, corrupted values, raw
   exceptions — the locator must return a report, and its robustness
   accounting must add up. *)
let test_chaos_sweep_never_raises () =
  let cases = [ ("gzipsim", "V2-F3"); ("sedsim", "V3-F2") ] in
  List.iter
    (fun (name, fid) ->
      let bench = find_bench name in
      let fault = find_fault bench fid in
      for seed = 0 to 19 do
        let chaos = Exom_interp.Chaos.of_seed seed in
        let label fmt =
          Printf.ksprintf
            (fun s ->
              Printf.sprintf "%s %s seed %d (%s): %s" name fid seed
                (Exom_interp.Chaos.fault_to_string chaos.Exom_interp.Chaos.fault)
                s)
            fmt
        in
        let r =
          try Runner.run_fault ~chaos bench fault
          with exn -> Alcotest.failf "%s" (label "raised %s" (Printexc.to_string exn))
        in
        let g = r.Runner.robustness in
        let module G = Exom_core.Guard in
        Alcotest.(check int)
          (label "every re-execution accounted")
          r.Runner.report.Demand.verifications
          (g.G.completed + g.G.aborted);
        Alcotest.(check bool)
          (label "retries bounded by aborts")
          true (g.G.retried <= g.G.aborted);
        Alcotest.(check bool)
          (label "counters non-negative")
          true
          (g.G.completed >= 0 && g.G.aborted >= 0 && g.G.retried >= 0
          && g.G.deadline_expired >= 0 && g.G.breaker_trips >= 0
          && g.G.breaker_skips >= 0 && g.G.captured >= 0);
        Alcotest.(check bool)
          (label "journal covers skips")
          true
          (List.length r.Runner.report.Demand.failures >= g.G.breaker_skips)
      done)
    cases

let test_chaos_free_runs_report_clean () =
  (* without chaos, the benchmark rows must report a clean bill: no
     retries, trips, skips, deadline expirations or captures (aborted
     switched runs are legitimate — a switch may genuinely hang) *)
  let bench = find_bench "sedsim" in
  let fault = find_fault bench "V3-F2" in
  let r = Runner.run_fault bench fault in
  let module G = Exom_core.Guard in
  let g = r.Runner.robustness in
  Alcotest.(check int) "no breaker trips" 0 g.G.breaker_trips;
  Alcotest.(check int) "no skips" 0 g.G.breaker_skips;
  Alcotest.(check int) "no captures" 0 g.G.captured;
  Alcotest.(check int) "no deadline expirations" 0 g.G.deadline_expired;
  Alcotest.(check int) "accounted" r.Runner.report.Demand.verifications
    (g.G.completed + g.G.aborted)

let test_sed_cascade_two_edges () =
  (* the two-deep omission cascade needs exactly two expansions along
     strong implicit dependence edges (the paper's sed V3-F2 row) *)
  let bench = find_bench "sedsim" in
  let fault = find_fault bench "V3-F2" in
  let r = Runner.run_fault bench fault in
  Alcotest.(check int) "2 iterations" 2 r.Runner.report.Demand.iterations;
  Alcotest.(check int) "2 edges" 2 r.Runner.report.Demand.expanded_edges

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "bench"
    [ ( "infrastructure",
        [ tc "input encoding" test_input_encoding;
          tc "fault line and source" test_fault_line_and_source;
          tc "root sids" test_root_sids;
          tc "unknown pattern" test_unknown_pattern_rejected;
          tc "suite shape" test_suite_shape ] );
      ( "program semantics",
        [ tc "flexsim scans" test_flexsim_scans;
          tc "grepsim counts" test_grepsim_counts;
          tc "gzipsim header" test_gzipsim_header;
          tc "gzipsim statistics" test_gzipsim_roundtrippable;
          tc "sedsim substitutes" test_sedsim_substitutes ] );
      ( "front-end coverage",
        [ tc "sources round-trip" test_sources_roundtrip;
          tc "static analyses" test_sources_analyses;
          tc "test suites pass" test_sources_pass_their_suites ] );
      ("fault validity", [ tc "all faults manifest" test_all_faults_valid ]);
      ( "localization",
        [ slow "gzip V2-F3 (figure 1)" test_locate_gzip;
          slow "sed V3-F2 (cascade)" test_locate_sed;
          slow "flex V5-F6" test_locate_flex;
          slow "grep V4-F2 (hardest)" test_locate_grep;
          slow "sed cascade needs 2 edges" test_sed_cascade_two_edges;
          slow "gzip at scale (35k instances)" test_scale_gzip ] );
      ( "robustness",
        [ slow "20-seed chaos sweep never raises" test_chaos_sweep_never_raises;
          slow "chaos-free runs report clean" test_chaos_free_runs_report_clean
        ] );
      ( "ablations",
        [ slow "potential-edge confidence sanitizes gzip"
            test_potential_confidence_sanitizes_gzip;
          slow "edge and path modes agree on the suite"
            test_verify_modes_agree_on_suite;
          slow "union-graph condition (iv)" test_union_graph_backend;
          slow "critical-predicate search fails where demand succeeds"
            test_critical_search_comparison ] ) ]
