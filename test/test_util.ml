(* Tests for the utility library: growable vectors, union-find, text
   tables, budget-escalation ladders. *)

module Vec = Exom_util.Vec
module Uf = Exom_util.Union_find
module Table = Exom_util.Table
module Backoff = Exom_util.Backoff
module Vfs = Exom_util.Vfs

(* Vec *)

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 7)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  (match Vec.get v 3 with
  | _ -> Alcotest.fail "expected out of bounds"
  | exception Invalid_argument _ -> ());
  match Vec.get v (-1) with
  | _ -> Alcotest.fail "expected out of bounds"
  | exception Invalid_argument _ -> ()

let test_vec_iteration () =
  let v = Vec.of_list ~dummy:0 [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 4; 1; 5 ] (Vec.to_list v);
  Alcotest.(check int) "fold sum" 14 (Vec.fold_left ( + ) 0 v);
  let idxs = ref [] in
  Vec.iteri (fun i x -> idxs := (i, x) :: !idxs) v;
  Alcotest.(check int) "iteri count" 5 (List.length !idxs);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 4) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  Alcotest.(check (option int)) "find" (Some 4) (Vec.find_opt (fun x -> x > 3) v)

let test_vec_clear () =
  let v = Vec.of_list ~dummy:0 [ 1; 2 ] in
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check int) "reusable" 9 (Vec.get v 0)

let prop_vec_matches_list =
  QCheck.Test.make ~name:"vec mirrors list operations" ~count:100
    QCheck.(list int)
    (fun xs ->
      let v = Vec.of_list ~dummy:0 xs in
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && Vec.fold_left ( + ) 0 v = List.fold_left ( + ) 0 xs)

(* Union-find *)

let test_uf_basic () =
  let uf = Uf.create () in
  Alcotest.(check bool) "singletons differ" false (Uf.same uf "a" "b");
  Uf.union uf "a" "b";
  Alcotest.(check bool) "united" true (Uf.same uf "a" "b");
  Uf.union uf "c" "d";
  Alcotest.(check bool) "separate classes" false (Uf.same uf "a" "c");
  Uf.union uf "b" "c";
  Alcotest.(check bool) "transitive" true (Uf.same uf "a" "d")

let test_uf_idempotent () =
  let uf = Uf.create () in
  Uf.union uf 1 2;
  Uf.union uf 1 2;
  Uf.union uf 2 1;
  Alcotest.(check bool) "still same" true (Uf.same uf 1 2);
  Alcotest.(check int) "find stable" (Uf.find uf 1) (Uf.find uf 2)

let prop_uf_equivalence =
  (* after arbitrary unions, same/find implement an equivalence
     relation consistent with the union history *)
  QCheck.Test.make ~name:"union-find equals reference partition" ~count:60
    QCheck.(list (pair (int_range 0 15) (int_range 0 15)))
    (fun pairs ->
      let uf = Uf.create () in
      List.iter (fun (a, b) -> Uf.union uf a b) pairs;
      (* reference: fixpoint of a naive partition *)
      let repr = Array.init 16 Fun.id in
      let rec root i = if repr.(i) = i then i else root repr.(i) in
      List.iter
        (fun (a, b) ->
          let ra = root a and rb = root b in
          if ra <> rb then repr.(ra) <- rb)
        pairs;
      let ok = ref true in
      for a = 0 to 15 do
        for b = 0 to 15 do
          if Uf.same uf a b <> (root a = root b) then ok := false
        done
      done;
      !ok)

(* Table *)

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: sep :: row1 :: row2 :: _ ->
    Alcotest.(check string) "header" "| name  |  n |" header;
    Alcotest.(check string) "separator" "|-------|----|" sep;
    Alcotest.(check string) "row1 left-padded" "| alpha |  1 |" row1;
    Alcotest.(check string) "row2 right-aligned" "| b     | 22 |" row2
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "all lines same width" true
    (match List.filter (fun l -> l <> "") lines with
    | [] -> false
    | l :: rest -> List.for_all (fun x -> String.length x = String.length l) rest)

let test_table_column_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  match Table.add_row t [ "only one" ] with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_table_aligns_mismatch () =
  match Table.create ~aligns:[ Table.Left ] [ "a"; "b" ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Backoff *)

let test_backoff_default_ladder () =
  Alcotest.(check (list int)) "doubling, capped at 8x"
    [ 1000; 2000; 4000 ]
    (Backoff.budgets Backoff.default ~base:1000);
  Alcotest.(check int) "attempts" 3 (Backoff.attempts Backoff.default)

let test_backoff_none () =
  Alcotest.(check (list int)) "single attempt" [ 500 ]
    (Backoff.budgets Backoff.none ~base:500);
  Alcotest.(check int) "one attempt" 1 (Backoff.attempts Backoff.none)

let test_backoff_cap_shortens_ladder () =
  (* three retries requested, but the cap (2x) admits one escalation *)
  let t = Backoff.make ~factor:2 ~max_retries:3 ~cap_factor:2 in
  Alcotest.(check (list int)) "cap cuts the ladder" [ 100; 200 ]
    (Backoff.budgets t ~base:100)

let test_backoff_validation () =
  let expect_invalid f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> Backoff.make ~factor:1 ~max_retries:1 ~cap_factor:2);
  expect_invalid (fun () ->
      Backoff.make ~factor:2 ~max_retries:(-1) ~cap_factor:2);
  expect_invalid (fun () -> Backoff.make ~factor:2 ~max_retries:1 ~cap_factor:0)

let test_backoff_overflow_safe () =
  (* a huge base must not wrap around to a negative budget *)
  let t = Backoff.make ~factor:2 ~max_retries:4 ~cap_factor:16 in
  let ladder = Backoff.budgets t ~base:(max_int / 3) in
  Alcotest.(check bool) "all positive" true (List.for_all (fun b -> b > 0) ladder)

let prop_backoff_ladder_shape =
  QCheck.Test.make ~name:"ladders are non-empty, increasing, capped" ~count:200
    QCheck.(
      quad (int_range 2 5) (int_range 0 6) (int_range 1 64) (int_range 1 100000))
    (fun (factor, max_retries, cap_factor, base) ->
      let t = Backoff.make ~factor ~max_retries ~cap_factor in
      let ladder = Backoff.budgets t ~base in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      ladder <> []
      && List.hd ladder = base
      && increasing ladder
      && List.length ladder <= Backoff.attempts t
      && List.for_all (fun b -> b <= base * cap_factor) ladder)

(* Vfs: the checked I/O façade and its injectable chaos *)

let tmp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "exom_vfs_test_%d_%d" (Unix.getpid ()) !n)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_disarmed f =
  Vfs.disarm ();
  Vfs.reset_counters ();
  Fun.protect ~finally:(fun () -> Vfs.disarm ()) f

let test_vfs_plain_roundtrip () =
  with_disarmed (fun () ->
      let p = tmp_path () in
      Alcotest.(check bool) "write ok" true
        (Vfs.write_file_atomic p "hello" = Ok ());
      Alcotest.(check string) "content" "hello" (read_all p);
      Alcotest.(check bool) "append ok" true (Vfs.append p " world" = Ok ());
      Alcotest.(check string) "appended" "hello world" (read_all p);
      (match Vfs.read_file p with
      | Ok s -> Alcotest.(check string) "read back" "hello world" s
      | Error e -> Alcotest.fail (Vfs.error_message e));
      Sys.remove p;
      let c = Vfs.counters () in
      Alcotest.(check int) "nothing injected" 0 c.Vfs.c_injected;
      Alcotest.(check int) "no real errors" 0 c.Vfs.c_real)

let test_vfs_real_error_is_typed () =
  with_disarmed (fun () ->
      match Vfs.write_file_atomic "/nonexistent_dir_xyz/f" "x" with
      | Ok () -> Alcotest.fail "write into a missing directory succeeded"
      | Error e ->
        Alcotest.(check bool) "real, not injected" true (e.Vfs.ve_fault = None);
        Alcotest.(check int) "counted as real" 1 (Vfs.counters ()).Vfs.c_real)

let test_vfs_targeted_fires_once () =
  with_disarmed (fun () ->
      let p = tmp_path () in
      Vfs.arm
        (Vfs.Io_chaos.targeted ~op:Vfs.Write ~path_substr:"exom_vfs_test"
           ~after:2 Vfs.Enospc);
      Alcotest.(check bool) "first write passes" true
        (Vfs.write_file_atomic p "one" = Ok ());
      (match Vfs.write_file_atomic p "two" with
      | Ok () -> Alcotest.fail "second write should fault"
      | Error e ->
        Alcotest.(check bool) "injected ENOSPC" true
          (e.Vfs.ve_fault = Some Vfs.Enospc);
        (* ENOSPC on an atomic write: the destination keeps its content *)
        Alcotest.(check string) "destination intact" "one" (read_all p);
        Vfs.ack e ~by:"test.io_failures");
      Alcotest.(check bool) "third write passes (budget spent)" true
        (Vfs.write_file_atomic p "three" = Ok ());
      Sys.remove p;
      let c = Vfs.counters () in
      Alcotest.(check int) "one injected" 1 c.Vfs.c_injected;
      Alcotest.(check int) "one acked" 1 c.Vfs.c_acked;
      Alcotest.(check (list (pair string int))) "tally names the consumer"
        [ ("test.io_failures", 1) ]
        (Vfs.ack_tally ()))

let test_vfs_seeded_deterministic () =
  with_disarmed (fun () ->
      let run () =
        Vfs.arm (Vfs.Io_chaos.of_seed ~rate:3 ~per_path:99 42);
        let decisions =
          List.init 40 (fun i ->
              match Vfs.probe Vfs.Write (Printf.sprintf "p%d" (i mod 7)) with
              | Some e -> Vfs.fault_to_string (Option.get e.Vfs.ve_fault)
              | None -> ".")
        in
        Vfs.disarm ();
        decisions
      in
      let a = run () and b = run () in
      Alcotest.(check (list string)) "same seed, same storm" a b;
      Alcotest.(check bool) "storm actually fired" true
        (List.exists (fun d -> d <> ".") a))

let test_vfs_per_path_budget () =
  with_disarmed (fun () ->
      (* rate 1 faults every eligible op; per_path 1 lets a retry against
         the same destination through *)
      let p = tmp_path () in
      Vfs.arm (Vfs.Io_chaos.of_seed ~rate:1 ~per_path:1 7);
      (match Vfs.write_file_atomic p "v" with
      | Ok () -> Alcotest.fail "rate-1 storm let the first write pass"
      | Error e -> Vfs.ack e ~by:"test.io_failures");
      Alcotest.(check bool) "retry passes under the path budget" true
        (Vfs.write_file_atomic p "v" = Ok ());
      Alcotest.(check string) "retry landed" "v" (read_all p);
      Sys.remove p)

let test_vfs_short_append_leaves_torn_tail () =
  with_disarmed (fun () ->
      let p = tmp_path () in
      Alcotest.(check bool) "seed line" true (Vfs.append p "full line\n" = Ok ());
      Vfs.arm
        (Vfs.Io_chaos.targeted ~op:Vfs.Write ~path_substr:"exom_vfs_test"
           ~after:1 Vfs.Short_write);
      (match Vfs.append p "0123456789\n" with
      | Ok () -> Alcotest.fail "short write should report an error"
      | Error e -> Vfs.ack e ~by:"test.io_failures");
      Alcotest.(check string) "torn prefix on disk" "full line\n01234"
        (read_all p);
      Sys.remove p)

let test_vfs_torn_rename_renames () =
  with_disarmed (fun () ->
      let p = tmp_path () in
      Vfs.arm
        (Vfs.Io_chaos.targeted ~op:Vfs.Rename ~path_substr:"exom_vfs_test"
           ~after:1 Vfs.Torn_rename);
      (match Vfs.write_file_atomic p "payload" with
      | Ok () -> Alcotest.fail "torn rename should report an error"
      | Error e ->
        Alcotest.(check bool) "torn-rename fault" true
          (e.Vfs.ve_fault = Some Vfs.Torn_rename);
        Vfs.ack e ~by:"test.io_failures");
      (* the rename itself happened: only durability was in doubt *)
      Alcotest.(check string) "destination renamed" "payload" (read_all p);
      Sys.remove p)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "util"
    [ ( "vec",
        [ tc "push/get/set" test_vec_push_get;
          tc "bounds" test_vec_bounds;
          tc "iteration" test_vec_iteration;
          tc "clear" test_vec_clear ] );
      ( "union-find",
        [ tc "basic" test_uf_basic; tc "idempotent" test_uf_idempotent ] );
      ( "table",
        [ tc "render" test_table_render;
          tc "column mismatch" test_table_column_mismatch;
          tc "aligns mismatch" test_table_aligns_mismatch ] );
      ( "backoff",
        [ tc "default ladder" test_backoff_default_ladder;
          tc "no escalation" test_backoff_none;
          tc "cap shortens ladder" test_backoff_cap_shortens_ladder;
          tc "field validation" test_backoff_validation;
          tc "overflow safe" test_backoff_overflow_safe ] );
      ( "vfs",
        [ tc "plain roundtrip" test_vfs_plain_roundtrip;
          tc "real error typed" test_vfs_real_error_is_typed;
          tc "targeted fires once" test_vfs_targeted_fires_once;
          tc "seeded deterministic" test_vfs_seeded_deterministic;
          tc "per-path budget" test_vfs_per_path_budget;
          tc "short append torn tail" test_vfs_short_append_leaves_torn_tail;
          tc "torn rename renames" test_vfs_torn_rename_renames ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_vec_matches_list; prop_uf_equivalence;
            prop_backoff_ladder_shape ] ) ]
