(* The provenance ledger: serialization strictness, byte determinism
   across job counts, the explain narrative naming the seeded root
   cause, and the perf-snapshot regression comparator. *)

module B = Exom_bench.Bench_types
module Suite = Exom_bench.Suite
module Runner = Exom_bench.Runner
module Perf = Exom_bench.Perf
module Ledger = Exom_ledger.Ledger
module Explain = Exom_ledger.Explain
module Pool = Exom_sched.Pool

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* One real localization, ledger attached, at a chosen job count with a
   fresh cold pool (no store: every verdict is recomputed, so -j1 and
   -j4 exercise genuinely different schedules). *)
let ledger_of_run ?(jobs = 1) name fid =
  let b = Option.get (Suite.find name) in
  let f = Option.get (Suite.find_fault b fid) in
  let ledger = Ledger.create () in
  let pool = Pool.create ~jobs () in
  let r = Runner.run_fault ~pool ~ledger b f in
  Pool.shutdown pool;
  (ledger, r)

let gzip_ledger = lazy (ledger_of_run "gzipsim" "V2-F3")

(* {2 Serialization} *)

let test_roundtrip () =
  let ledger, _ = Lazy.force gzip_ledger in
  let s = Ledger.to_string ledger in
  match Ledger.of_string s with
  | Error e -> Alcotest.fail ("ledger does not read back: " ^ e)
  | Ok events ->
    (* floats print through one codec, so string equality is the
       round-trip check *)
    Alcotest.(check string) "re-serialization is identity" s
      (Ledger.string_of_events events);
    Alcotest.(check int) "event count preserved"
      (List.length (Ledger.events ledger))
      (List.length events)

let test_version_check () =
  (match
     Ledger.of_string
       "{\"type\":\"header\",\"schema\":\"exom.ledger\",\"version\":99}\n"
   with
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error e ->
    Alcotest.(check bool) "error names the version" true (contains e "99"));
  (match
     Ledger.of_string
       "{\"type\":\"header\",\"schema\":\"someone.else\",\"version\":1}\n"
   with
  | Ok _ -> Alcotest.fail "foreign schema accepted"
  | Error _ -> ());
  match Ledger.of_string "" with
  | Ok _ -> Alcotest.fail "empty content accepted"
  | Error _ -> ()

let test_corruption_rejected () =
  let ledger, _ = Lazy.force gzip_ledger in
  let lines = String.split_on_char '\n' (Ledger.to_string ledger) in
  Alcotest.(check bool) "fixture has a middle to corrupt" true
    (List.length lines > 4);
  let mangle i replacement =
    String.concat "\n"
      (List.mapi (fun j l -> if j = i then replacement else l) lines)
  in
  (* a malformed line mid-file *)
  (match Ledger.of_string (mangle 2 "{\"ev\":\"sess") with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error e -> Alcotest.(check bool) "error is located" true (contains e "line"));
  (* a well-formed line of an unknown event kind *)
  (match Ledger.of_string (mangle 2 "{\"ev\":\"mystery\",\"x\":1}") with
  | Ok _ -> Alcotest.fail "unknown event accepted"
  | Error _ -> ());
  (* a known event missing a required field *)
  match Ledger.of_string (mangle 2 "{\"ev\":\"prune\",\"iter\":0}") with
  | Ok _ -> Alcotest.fail "skeletal event accepted"
  | Error _ -> ()

(* {2 Rank events (schema v3)} *)

let test_rank_event_codec () =
  (* explicit round-trip of the v3 rank event through the textual form *)
  let l = Ledger.create () in
  let u = { Ledger.idx = 7; sid = 3; line = 14; occ = 2 } in
  let decisions =
    [
      { Ledger.rd_idx = 3; rd_sid = 9; rd_score = 0.8333; rd_kept = true };
      { Ledger.rd_idx = 5; rd_sid = 9; rd_score = 0.8333; rd_kept = false };
      { Ledger.rd_idx = 1; rd_sid = 4; rd_score = 0.5; rd_kept = true };
    ]
  in
  Ledger.rank l ~iter:2 ~u ~prior:0.5 ~decisions;
  let s = Ledger.to_string l in
  Alcotest.(check bool) "serialized as a rank event" true
    (contains s "\"ev\":\"rank\"");
  match Ledger.of_string s with
  | Error e -> Alcotest.fail ("rank event does not read back: " ^ e)
  | Ok events -> (
    Alcotest.(check string) "re-serialization is identity" s
      (Ledger.string_of_events events);
    match events with
    | [ Ledger.Rank r ] ->
      Alcotest.(check int) "iter" 2 r.iter;
      Alcotest.(check int) "u idx" 7 r.u.Ledger.idx;
      Alcotest.(check (float 1e-9)) "prior" 0.5 r.prior;
      Alcotest.(check int) "decision count" 3 (List.length r.decisions);
      Alcotest.(check bool) "decisions preserved in order" true
        (r.decisions = decisions)
    | _ -> Alcotest.fail "expected exactly the rank event")

let test_rank_events_in_real_run () =
  (* a ranked localization journals its ordering; the fixture expands
     at least once, so at least one rank event must be present *)
  let ledger, _ = Lazy.force gzip_ledger in
  let ranks =
    List.filter
      (function Ledger.Rank _ -> true | _ -> false)
      (Ledger.events ledger)
  in
  Alcotest.(check bool) "run journaled rank events" true (ranks <> []);
  let out = Explain.render (Ledger.events ledger) in
  Alcotest.(check bool) "explain narrates the ranked order" true
    (contains out "Ranked verification order")

let test_v2_readback () =
  (* v2 ledgers (no rank events) still read: the vocabulary is a strict
     subset of v3's *)
  (match
     Ledger.of_string
       "{\"type\":\"header\",\"schema\":\"exom.ledger\",\"version\":2}\n"
   with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "header-only v2 stream produced events"
  | Error e -> Alcotest.fail ("v2 header rejected: " ^ e));
  (* a v3 stream downgraded to a v2 header reads as long as it carries
     no v3 events *)
  let ledger, _ = Lazy.force gzip_ledger in
  let lines = String.split_on_char '\n' (Ledger.to_string ledger) in
  let v2 =
    List.mapi
      (fun i l ->
        if i = 0 then
          "{\"type\":\"header\",\"schema\":\"exom.ledger\",\"version\":2}"
        else l)
      lines
    |> List.filter (fun l -> not (contains l "\"ev\":\"rank\""))
    |> String.concat "\n"
  in
  match Ledger.of_string v2 with
  | Ok evs ->
    Alcotest.(check bool) "v2 stream carries no rank events" true
      (List.for_all (function Ledger.Rank _ -> false | _ -> true) evs)
  | Error e -> Alcotest.fail ("downgraded v2 stream rejected: " ^ e)

let test_is_ledger () =
  let ledger, _ = Lazy.force gzip_ledger in
  Alcotest.(check bool) "sniffs its own output" true
    (Ledger.is_ledger (Ledger.to_string ledger));
  Alcotest.(check bool) "rejects MCL source" false
    (Ledger.is_ledger "proc main() { x := 1; }");
  Alcotest.(check bool) "rejects an obs event log" false
    (Ledger.is_ledger
       "{\"type\":\"header\",\"schema\":\"exom.obs\",\"version\":1}\n")

(* {2 Determinism: -j1 vs -j4} *)

let test_jobs_determinism () =
  let l1, r1 = ledger_of_run ~jobs:1 "gzipsim" "V2-F3" in
  let l4, r4 = ledger_of_run ~jobs:4 "gzipsim" "V2-F3" in
  Alcotest.(check bool) "both locate" true
    (r1.Runner.report.Exom_core.Demand.found
    && r4.Runner.report.Exom_core.Demand.found);
  Alcotest.(check string) "ledgers byte-identical at -j1 and -j4"
    (Ledger.to_string l1) (Ledger.to_string l4)

(* {2 Checkpoints, journal, crash recovery} *)

let temp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "exom_ledger_test_%d_%d" (Unix.getpid ()) !n)

let with_temp_path f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_checkpoint_events () =
  (* every verification batch is chased by its checkpoint, and the
     checkpoint codec round-trips through the textual form *)
  let ledger, _ = Lazy.force gzip_ledger in
  let events = Ledger.events ledger in
  let checkpoints =
    List.filter_map
      (function Ledger.Checkpoint c -> Some c | _ -> None)
      events
  in
  let batches =
    List.length
      (List.filter (function Ledger.Batch _ -> true | _ -> false) events)
  in
  Alcotest.(check bool) "fixture has checkpoints" true (checkpoints <> []);
  Alcotest.(check int) "one checkpoint per batch" batches
    (List.length checkpoints);
  let reread =
    match Ledger.of_string (Ledger.string_of_events events) with
    | Ok evs -> evs
    | Error e -> Alcotest.fail e
  in
  let reread_cks =
    List.filter_map
      (function Ledger.Checkpoint c -> Some c | _ -> None)
      reread
  in
  Alcotest.(check bool) "checkpoints round-trip structurally" true
    (checkpoints = reread_cks);
  (* the last checkpoint carries the run's cumulative verification
     count: enough on its own to restore the resumable state *)
  let last = List.nth checkpoints (List.length checkpoints - 1) in
  let g = last.Ledger.ck_guard in
  Alcotest.(check bool) "cumulative counts" true
    (g.Ledger.g_completed + g.Ledger.g_aborted > 0)

let test_recover_torn_tail () =
  let ledger, _ = Lazy.force gzip_ledger in
  let s = Ledger.to_string ledger in
  let n_events = List.length (Ledger.events ledger) in
  (* an intact journal recovers whole *)
  (match Ledger.recover_string s with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "all events salvaged" n_events
      (List.length r.Ledger.r_events);
    Alcotest.(check bool) "not truncated" false r.Ledger.r_truncated);
  (* a torn final line — the crash left half a JSON object — is dropped,
     everything before it salvaged *)
  let torn = String.sub s 0 (String.length s - 7) in
  (match Ledger.recover_string torn with
  | Error e -> Alcotest.fail ("torn tail not tolerated: " ^ e)
  | Ok r ->
    Alcotest.(check int) "all but the torn line" (n_events - 1)
      (List.length r.Ledger.r_events);
    Alcotest.(check bool) "truncation reported" true r.Ledger.r_truncated);
  (* strict of_string still refuses the same bytes *)
  match Ledger.of_string torn with
  | Ok _ -> Alcotest.fail "strict reader accepted a torn ledger"
  | Error _ -> ()

let test_recover_rejects_midfile_corruption () =
  (* tolerance is for the tail only: damage anywhere earlier means the
     journal cannot be trusted, torn tail or not *)
  let ledger, _ = Lazy.force gzip_ledger in
  let lines = String.split_on_char '\n' (Ledger.to_string ledger) in
  let mangled =
    String.concat "\n"
      (List.mapi (fun j l -> if j = 2 then "{\"ev\":\"sess" else l) lines)
  in
  match Ledger.recover_string mangled with
  | Ok _ -> Alcotest.fail "mid-file corruption accepted"
  | Error e ->
    Alcotest.(check bool) "error is located" true (contains e "line")

let test_atomic_write () =
  (* Ledger.write goes through a same-directory temp file and rename:
     the destination is either the old content or the new, never a
     prefix — and no temp droppings survive *)
  with_temp_path (fun path ->
      let oc = open_out_bin path in
      output_string oc "previous generation";
      close_out oc;
      let ledger, _ = Lazy.force gzip_ledger in
      Ledger.write path ledger;
      Alcotest.(check string) "destination is the full new content"
        (Ledger.to_string ledger) (read_file path);
      let dir = Filename.dirname path and base = Filename.basename path in
      let droppings =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f ->
               f <> base
               && String.length f >= String.length base
               && String.sub f 0 (String.length base) = base)
      in
      Alcotest.(check (list string)) "no temp file left behind" [] droppings)

let test_journal_and_resume_marker () =
  (* the write-ahead journal reproduces the canonical serialization,
     and resume markers are meta lines: counted by the tolerant reader,
     invisible to the event stream *)
  with_temp_path (fun path ->
      let ledger, _ = Lazy.force gzip_ledger in
      Ledger.attach_journal ledger path;
      Alcotest.(check (option string)) "journal attached" (Some path)
        (Ledger.journal_path ledger);
      Ledger.resume_marker ledger ~replayed:7 ~truncated:true;
      Ledger.sync ledger;
      Ledger.close_journal ledger;
      (match Ledger.recover_file path with
      | Error e -> Alcotest.fail e
      | Ok r ->
        Alcotest.(check int) "events journaled verbatim"
          (List.length (Ledger.events ledger))
          (List.length r.Ledger.r_events);
        Alcotest.(check int) "marker counted" 1 r.Ledger.r_markers;
        Alcotest.(check bool) "marker is not an event truncation" false
          r.Ledger.r_truncated);
      (* the journal minus its marker line is the canonical form *)
      let journal_lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> not (contains l "\"type\":\"resume\""))
      in
      Alcotest.(check string) "journal = canonical serialization"
        (Ledger.to_string ledger)
        (String.concat "\n" journal_lines))

(* {2 Explain} *)

let explain_names_root name fid =
  let b = Option.get (Suite.find name) in
  let f = Option.get (Suite.find_fault b fid) in
  let root_line = B.fault_line b f in
  let ledger, r = ledger_of_run name fid in
  Alcotest.(check bool) (name ^ " " ^ fid ^ " locates") true
    r.Runner.report.Exom_core.Demand.found;
  let events =
    match Ledger.of_string (Ledger.to_string ledger) with
    | Ok evs -> evs
    | Error e -> Alcotest.fail e
  in
  let out = Explain.render events in
  Alcotest.(check bool) "narrative reports the root cause found" true
    (contains out "root cause FOUND");
  Alcotest.(check bool)
    (Printf.sprintf "narrative names the seeded line %d" root_line)
    true
    (contains out (Printf.sprintf "seeded root cause at line %d" root_line));
  Alcotest.(check bool) "at least one verified implicit dependence" true
    (contains out "implicit dependence:");
  Alcotest.(check bool) "alignment evidence is rendered" true
    (contains out "alignment:");
  (* the DOT export styles implicit edges distinctly *)
  let dot = Explain.dot events in
  Alcotest.(check bool) "dot marks implicit edges" true
    (contains dot "strong id" || contains dot "label=\"id\"")

let test_explain_gzip () = explain_names_root "gzipsim" "V2-F3"
let test_explain_grep () = explain_names_root "grepsim" "V4-F2"
let test_explain_flex () = explain_names_root "flexsim" "V1-F9"
let test_explain_sed () = explain_names_root "sedsim" "V3-F2"

(* {2 Perf snapshots} *)

let snapshot ?(warm_hit_rate = 0.95) ?(warm_verify_runs = 0) rows ~label
    ~verify_runs ~wall =
  {
    Perf.label;
    jobs = 1;
    rows;
    located = List.length (List.filter (fun r -> r.Perf.r_found) rows);
    total = List.length rows;
    verify_runs;
    verify_seconds = 0.1;
    interp_runs = 100;
    store_hit_rate = 0.5;
    warm_hit_rate;
    warm_verify_runs;
    wall_seconds = wall;
    traced_wall_seconds = 0.0;
    corpus = None;
  }

let row ?(found = true) ?(queries = 10) bench fault =
  {
    Perf.r_bench = bench;
    r_fault = fault;
    r_found = found;
    r_verifications = 5;
    r_queries = queries;
    r_iterations = 2;
    r_edges = 3;
    r_prunings = 7;
  }

let test_perf_roundtrip () =
  let s =
    snapshot
      [ row "gzipsim" "V2-F3"; row ~found:false "grepsim" "V4-F2" ]
      ~label:"base" ~verify_runs:50 ~wall:1.5
  in
  (match Perf.of_json (Perf.to_json s) with
  | Error e -> Alcotest.fail ("snapshot does not read back: " ^ e)
  | Ok s' ->
    Alcotest.(check string) "re-serialization is identity" (Perf.to_line s)
      (Perf.to_line s'));
  match
    Perf.of_json
      (Exom_obs.Json.Obj
         [ ("schema", Exom_obs.Json.Str "exom.bench");
           ("version", Exom_obs.Json.Num 99.0) ])
  with
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error _ -> ()

let test_perf_v1_compat () =
  (* a v1 snapshot (no warm-store legs) still reads, with the warm
     figures zeroed so the comparator sees "no baseline" *)
  let s =
    snapshot [ row "gzipsim" "V2-F3" ] ~label:"v1" ~verify_runs:50 ~wall:1.0
  in
  let v1_line =
    (* serialize as v2, then rewrite into a v1 object: drop the warm
       fields, patch the version *)
    match Perf.to_json s with
    | Exom_obs.Json.Obj fields ->
      Exom_obs.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             match k with
             | "warm_hit_rate" | "warm_verify_runs" -> None
             | "version" -> Some (k, Exom_obs.Json.Num 1.0)
             | _ -> Some (k, v))
           fields)
    | _ -> Alcotest.fail "snapshot did not serialize to an object"
  in
  match Perf.of_json v1_line with
  | Error e -> Alcotest.fail ("v1 snapshot rejected: " ^ e)
  | Ok s' ->
    Alcotest.(check (float 0.0)) "warm rate defaults to 0" 0.0
      s'.Perf.warm_hit_rate;
    Alcotest.(check int) "warm runs default to 0" 0 s'.Perf.warm_verify_runs;
    (* and zeroed warm baselines must not flag the v2 candidate *)
    let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 s' s in
    Alcotest.(check bool) "no spurious warm regression" false
      (Perf.has_regression findings)

let test_perf_v3_compat_and_traced_gate () =
  (* a v3 snapshot (no traced re-run) still reads, with the traced wall
     clock zeroed; the comparator only gates traced_wall_seconds when
     both sides measured it *)
  let base =
    snapshot [ row "gzipsim" "V2-F3" ] ~label:"v3" ~verify_runs:50 ~wall:1.0
  in
  let s = { base with Perf.traced_wall_seconds = 2.0 } in
  let v3_line =
    match Perf.to_json s with
    | Exom_obs.Json.Obj fields ->
      Exom_obs.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             match k with
             | "traced_wall_seconds" -> None
             | "version" -> Some (k, Exom_obs.Json.Num 3.0)
             | _ -> Some (k, v))
           fields)
    | _ -> Alcotest.fail "snapshot did not serialize to an object"
  in
  match Perf.of_json v3_line with
  | Error e -> Alcotest.fail ("v3 snapshot rejected: " ^ e)
  | Ok v3 ->
    Alcotest.(check (float 0.0)) "traced wall defaults to 0" 0.0
      v3.Perf.traced_wall_seconds;
    (* unmeasured baseline: the traced candidate is not flagged *)
    let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 v3 s in
    Alcotest.(check bool) "no traced gate without both sides" false
      (List.exists
         (fun f -> f.Perf.metric = "traced_wall_seconds")
         findings);
    (* both measured: a large traced-pass slowdown is flagged loosely *)
    let slow = { s with Perf.traced_wall_seconds = 9.0 } in
    let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 s slow in
    Alcotest.(check bool) "traced slowdown beyond tolerance flagged" true
      (List.exists
         (fun f ->
           f.Perf.metric = "traced_wall_seconds"
           && f.Perf.severity = Perf.Regression)
         findings)

let test_perf_warm_regression () =
  let old_s =
    snapshot [ row "gzipsim" "V2-F3" ] ~label:"old" ~verify_runs:100 ~wall:1.0
  in
  (* warm hit rate collapse is a regression *)
  let cold_cache =
    snapshot
      ~warm_hit_rate:0.4
      [ row "gzipsim" "V2-F3" ]
      ~label:"new" ~verify_runs:100 ~wall:1.0
  in
  let findings =
    Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 old_s cold_cache
  in
  Alcotest.(check bool) "warm hit rate collapse flagged" true
    (Perf.has_regression findings);
  Alcotest.(check bool) "named in the findings" true
    (contains (Perf.render findings) "warm_hit_rate");
  (* new switched runs in the warm pass are a regression even from a
     zero baseline *)
  let leaky =
    snapshot
      ~warm_verify_runs:7
      [ row "gzipsim" "V2-F3" ]
      ~label:"new" ~verify_runs:100 ~wall:1.0
  in
  let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 old_s leaky in
  Alcotest.(check bool) "warm dispatches flagged" true
    (Perf.has_regression findings);
  Alcotest.(check bool) "warm_verify_runs named" true
    (contains (Perf.render findings) "warm_verify_runs");
  (* a better warm rate is an improvement, not a regression *)
  let better =
    snapshot
      ~warm_hit_rate:1.0
      [ row "gzipsim" "V2-F3" ]
      ~label:"new" ~verify_runs:100 ~wall:1.0
  in
  let findings = Perf.compare ~tolerance:0.03 ~time_tolerance:0.5 old_s better in
  Alcotest.(check bool) "warm improvement is not a regression" false
    (Perf.has_regression findings)

let test_perf_compare () =
  let old_s =
    snapshot [ row "gzipsim" "V2-F3" ] ~label:"old" ~verify_runs:100 ~wall:1.0
  in
  (* within tolerance: nothing flagged *)
  let same =
    snapshot [ row "gzipsim" "V2-F3" ] ~label:"new" ~verify_runs:105 ~wall:1.1
  in
  let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 old_s same in
  Alcotest.(check bool) "small drift tolerated" false
    (Perf.has_regression findings);
  (* deterministic count growth beyond tolerance *)
  let slow =
    snapshot [ row "gzipsim" "V2-F3" ] ~label:"new" ~verify_runs:150 ~wall:1.0
  in
  let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 old_s slow in
  Alcotest.(check bool) "count growth flagged" true
    (Perf.has_regression findings);
  Alcotest.(check bool) "rendered with the metric name" true
    (contains (Perf.render findings) "verify_runs");
  (* a previously located fault now missed *)
  let missed =
    snapshot
      [ row ~found:false "gzipsim" "V2-F3" ]
      ~label:"new" ~verify_runs:100 ~wall:1.0
  in
  let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 old_s missed in
  Alcotest.(check bool) "lost localization flagged" true
    (Perf.has_regression findings);
  (* improvements are Info, not regressions *)
  let faster =
    snapshot [ row "gzipsim" "V2-F3" ] ~label:"new" ~verify_runs:50 ~wall:1.0
  in
  let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 old_s faster in
  Alcotest.(check bool) "improvement is not a regression" false
    (Perf.has_regression findings);
  Alcotest.(check bool) "improvement is still reported" true (findings <> [])

let test_perf_corpus_leg () =
  let leg located =
    {
      Perf.c_seed = 1;
      c_count = 10;
      c_located = located;
      c_total = 10;
      c_failed = 0;
      c_mean_iterations = 0.5;
      c_mean_verifications = 2.25;
      c_wall_seconds = 3.0;
    }
  in
  let with_leg l s = { s with Perf.corpus = l } in
  let old_s =
    with_leg (Some (leg 10))
      (snapshot [ row "gzipsim" "V2-F3" ] ~label:"old" ~verify_runs:100
         ~wall:1.0)
  in
  (* the leg round-trips byte-for-byte *)
  (match Perf.of_json (Perf.to_json old_s) with
  | Error e -> Alcotest.fail ("corpus snapshot does not read back: " ^ e)
  | Ok s' ->
    Alcotest.(check string) "re-serialization is identity" (Perf.to_line old_s)
      (Perf.to_line s'));
  (* a located drop on the same (seed, count) is a regression *)
  let worse = with_leg (Some (leg 8)) old_s in
  let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 old_s worse in
  Alcotest.(check bool) "corpus located drop flagged" true
    (Perf.has_regression findings);
  Alcotest.(check bool) "corpus.located named" true
    (contains (Perf.render findings) "corpus.located");
  (* a different corpus is no baseline: nothing to compare *)
  let other = with_leg (Some { (leg 8) with Perf.c_seed = 2 }) old_s in
  let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 old_s other in
  Alcotest.(check bool) "foreign corpus not compared" false
    (Perf.has_regression findings);
  (* a v2 baseline without the leg is no baseline either *)
  let v2 = with_leg None old_s in
  let findings = Perf.compare ~tolerance:0.1 ~time_tolerance:0.5 v2 old_s in
  Alcotest.(check bool) "missing baseline leg tolerated" false
    (Perf.has_regression findings)

let () =
  Alcotest.run "ledger"
    [
      ( "serialization",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "version check" `Quick test_version_check;
          Alcotest.test_case "corruption rejected" `Quick
            test_corruption_rejected;
          Alcotest.test_case "rank event codec" `Quick test_rank_event_codec;
          Alcotest.test_case "rank events journaled and narrated" `Quick
            test_rank_events_in_real_run;
          Alcotest.test_case "v2 readback" `Quick test_v2_readback;
          Alcotest.test_case "sniffing" `Quick test_is_ledger;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j1 vs -j4 byte-identical" `Quick
            test_jobs_determinism;
        ] );
      ( "crash safety",
        [
          Alcotest.test_case "checkpoint per batch, codec round-trip" `Quick
            test_checkpoint_events;
          Alcotest.test_case "torn tail tolerated" `Quick
            test_recover_torn_tail;
          Alcotest.test_case "mid-file corruption rejected" `Quick
            test_recover_rejects_midfile_corruption;
          Alcotest.test_case "atomic write" `Quick test_atomic_write;
          Alcotest.test_case "journal and resume marker" `Quick
            test_journal_and_resume_marker;
        ] );
      ( "explain",
        [
          Alcotest.test_case "gzipsim V2-F3 names the root" `Quick
            test_explain_gzip;
          Alcotest.test_case "grepsim V4-F2 names the root" `Quick
            test_explain_grep;
          Alcotest.test_case "flexsim V1-F9 names the root" `Quick
            test_explain_flex;
          Alcotest.test_case "sedsim V3-F2 names the root" `Quick
            test_explain_sed;
        ] );
      ( "perf",
        [
          Alcotest.test_case "snapshot round-trip" `Quick test_perf_roundtrip;
          Alcotest.test_case "v1 snapshot compatibility" `Quick
            test_perf_v1_compat;
          Alcotest.test_case "v3 compatibility and traced gate" `Quick
            test_perf_v3_compat_and_traced_gate;
          Alcotest.test_case "regression comparator" `Quick test_perf_compare;
          Alcotest.test_case "warm-store regression gates" `Quick
            test_perf_warm_regression;
          Alcotest.test_case "corpus leg round-trip and gates" `Quick
            test_perf_corpus_leg;
        ] );
    ]
