(* End-to-end tests of the paper's technique: VerifyDep (Definitions 2
   and 4), the demand-driven LocateFault (Algorithm 2), the oracle, and
   the Table 5 feasibility/soundness scenarios. *)

module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Backoff = Exom_util.Backoff
module Chaos = Exom_interp.Chaos
module Demand = Exom_core.Demand
module Guard = Exom_core.Guard
module Oracle = Exom_core.Oracle
module Session = Exom_core.Session
module Verdict = Exom_core.Verdict
module Verify = Exom_core.Verify
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Relevant = Exom_ddg.Relevant
module Slice = Exom_ddg.Slice

let compile src = Typecheck.parse_and_check src

let sid_on_line prog line =
  let found = ref None in
  Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Ast.sloc = line && !found = None then
        found := Some s.Ast.sid)
    prog;
  match !found with
  | Some sid -> sid
  | None -> Alcotest.failf "no statement on line %d" line

let instance_of t ~sid ~occ =
  match Trace.find_instance t ~sid ~occ with
  | Some i -> i.Trace.idx
  | None -> Alcotest.failf "no instance of s%d" sid

(* The full gzip scenario of Figure 1, with both the true implicit
   dependence (if(save_orig_name) -> outbuf[1]=flags, the paper's
   S4 -> S6) and the false potential-dependence candidate
   (second if -> print(outbuf[1]), the paper's S7 -> S10).

   Faulty: save_orig_name = 0.  Correct: save_orig_name = 1. *)

let gzip_template son =
  Printf.sprintf
    {|
int save_orig_name = %d;
int flags = 0;
void main() {
  int[] outbuf = new_array(4);
  int outcnt = 0;
  int deflated = 8;
  outbuf[outcnt] = deflated;
  outcnt = outcnt + 1;
  if (save_orig_name == 1) {
    flags = flags + 32;
  }
  outbuf[outcnt] = flags;
  outcnt = outcnt + 1;
  if (save_orig_name == 1) {
    outbuf[outcnt] = 127;
    outcnt = outcnt + 1;
  }
  print(outbuf[0]);
  print(outbuf[1]);
}
|}
    son

let gzip_faulty = gzip_template 0
let gzip_correct = gzip_template 1

(* Line map for the template *)
let l_root = 2 (* int save_orig_name *)
let l_if_flags = 10 (* if (save_orig_name == 1) guarding flags *)
let l_store_flags = 13 (* outbuf[outcnt] = flags *)
let l_if_127 = 15 (* second if *)

let gzip_session () =
  let faulty = compile gzip_faulty in
  let correct = compile gzip_correct in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  let session =
    Session.create ~prog:faulty ~input:[] ~expected ~profile_inputs:[ [] ] ()
  in
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input:[]
  in
  (faulty, session, oracle)

let test_session_output_classification () =
  let _, session, _ = gzip_session () in
  Alcotest.(check int) "one correct output" 1
    (List.length session.Session.correct_outputs);
  Alcotest.(check bool) "expected value is 32" true
    (session.Session.vexp = Some (Exom_interp.Value.Vint 32));
  let wrong = Trace.get session.Session.trace session.Session.wrong_output in
  Alcotest.(check bool) "wrong output is an output instance" true
    (wrong.Trace.kind = Trace.Koutput)

let test_verify_strong_id () =
  let prog, session, _ = gzip_session () in
  let t = session.Session.trace in
  let p = instance_of t ~sid:(sid_on_line prog l_if_flags) ~occ:1 in
  let u = instance_of t ~sid:(sid_on_line prog l_store_flags) ~occ:1 in
  Alcotest.(check string) "S4 -> S6 is STRONG_ID" "STRONG_ID"
    (Verdict.to_string (Verify.verify session ~p ~u))

let test_verify_not_id () =
  let prog, session, _ = gzip_session () in
  let t = session.Session.trace in
  let p = instance_of t ~sid:(sid_on_line prog l_if_127) ~occ:1 in
  let u = session.Session.wrong_output in
  Alcotest.(check string) "S7 -> S10 is NOT_ID" "NOT_ID"
    (Verdict.to_string (Verify.verify session ~p ~u))

let test_verify_counts_runs () =
  let prog, session, _ = gzip_session () in
  let t = session.Session.trace in
  let p = instance_of t ~sid:(sid_on_line prog l_if_flags) ~occ:1 in
  let u = instance_of t ~sid:(sid_on_line prog l_store_flags) ~occ:1 in
  ignore (Verify.verify session ~p ~u);
  ignore (Verify.verify session ~p ~u);
  (* cached *)
  Alcotest.(check int) "one re-execution" 1 (Session.verifications session)

let test_locate_gzip () =
  let prog, session, oracle = gzip_session () in
  let root = sid_on_line prog l_root in
  let report = Demand.locate session ~oracle ~root_sids:[ root ] in
  Alcotest.(check bool) "root cause located" true report.Demand.found;
  (* the dynamic slice alone missed it *)
  Alcotest.(check bool) "DS missed it" false
    (Slice.mem_sid report.Demand.ds root);
  (* few iterations, few edges: the paper's headline result *)
  Alcotest.(check bool) "iterations <= 2" true (report.Demand.iterations <= 2);
  Alcotest.(check bool) "at least one implicit edge" true
    (report.Demand.expanded_edges >= 1);
  Alcotest.(check bool) "verifications bounded" true
    (report.Demand.verifications <= 10);
  (* IPS contains the failure-explaining chain *)
  Alcotest.(check bool) "IPS contains root" true
    (Slice.mem_sid report.Demand.ips root);
  Alcotest.(check bool) "IPS contains the if" true
    (Slice.mem_sid report.Demand.ips (sid_on_line prog l_if_flags));
  (* OS exists and ends at the wrong output *)
  match report.Demand.os_chain with
  | Some chain ->
    Alcotest.(check int) "chain ends at failure" session.Session.wrong_output
      (List.nth chain (List.length chain - 1));
    Alcotest.(check int) "chain starts at root" root
      (Trace.get session.Session.trace (List.hd chain)).Trace.sid
  | None -> Alcotest.fail "no OS chain"

let test_locate_no_failure () =
  let correct = compile gzip_correct in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  match
    Session.create ~prog:correct ~input:[] ~expected ~profile_inputs:[] ()
  with
  | _ -> Alcotest.fail "expected No_failure"
  | exception Session.No_failure -> ()

(* A classic (non-omission) error for contrast: the dynamic slice
   already contains the root cause and no expansion is needed. *)
let test_locate_value_error () =
  let faulty =
    compile
      {|
void main() {
  int a = 5;
  int b = a * 3;
  print(b);
}
|}
  in
  let correct =
    compile
      {|
void main() {
  int a = 5;
  int b = a * 2;
  print(b);
}
|}
  in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  let session =
    Session.create ~prog:faulty ~input:[] ~expected ~profile_inputs:[ [] ] ()
  in
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input:[]
  in
  let root = sid_on_line (session.Session.prog) 4 in
  let report = Demand.locate session ~oracle ~root_sids:[ root ] in
  Alcotest.(check bool) "found" true report.Demand.found;
  Alcotest.(check int) "no expansion needed" 0 report.Demand.expanded_edges;
  Alcotest.(check int) "no verifications" 0 report.Demand.verifications

(* Table 5(a): feasibility.  P1 true implies P2 false in the faulty
   program, yet switching P2 exposes an implicit dependence — the paper
   argues this is the right call, since the predicates themselves may be
   the error. *)
let test_feasibility_table5a () =
  let src =
    {|
int a = 15;
void main() {
  int x = 1;
  if (a > 10) {
    x = 2;
  }
  if (a > 100) {
    x = 3;
  }
  print(x);
}
|}
  in
  let prog = compile src in
  (* expected: pretend the correct program yields 3 at the print *)
  let session =
    Session.create ~prog ~input:[] ~expected:[ 3 ] ~profile_inputs:[ [] ] ()
  in
  let t = session.Session.trace in
  let p2 = instance_of t ~sid:(sid_on_line prog 8) ~occ:1 in
  let u = session.Session.wrong_output in
  (* switching the infeasible P2 produces x = 3 = vexp: strong *)
  Alcotest.(check string) "infeasible switch still verifies" "STRONG_ID"
    (Verdict.to_string (Verify.verify session ~p:p2 ~u))

(* Table 5(b): soundness gap.  Both predicates test the same A; flipping
   P1 alone lets P2 evaluate (to false), so S3 still does not execute
   and the implicit dependence is missed — the paper's known unsound
   case. *)
let test_soundness_table5b () =
  let src =
    {|
int a = 5;
void main() {
  int x = 1;
  if (a > 10) {
    if (a < 5) {
      x = 2;
    }
  }
  print(x);
}
|}
  in
  let prog = compile src in
  let session =
    Session.create ~prog ~input:[] ~expected:[ 2 ] ~profile_inputs:[ [] ] ()
  in
  let t = session.Session.trace in
  let p1 = instance_of t ~sid:(sid_on_line prog 5) ~occ:1 in
  let u = session.Session.wrong_output in
  Alcotest.(check string) "nested same-variable predicates are missed"
    "NOT_ID"
    (Verdict.to_string (Verify.verify session ~p:p1 ~u))

(* Edge vs path VerifyDep (§3.2): the paper's chained case — switching P
   reroutes x through t and the loop, an explicit *path* p' -> t=1' ->
   while' -> x=7' -> u' with no direct rerouted edge.  Path mode sees the
   dependence at once; edge mode must discover the chain in two steps
   ("the algorithm is able to identify 2 -> 6 and 6 -> 15"). *)

let chain_template p =
  Printf.sprintf
    {|
int p = %d;
int t = 0;
int x = 0;
void main() {
  if (p == 1) {
    t = 1;
  }
  int i = 0;
  while (i < t) {
    x = 7;
    i = i + 1;
  }
  print(x);
}
|}
    p

let chain_session () =
  let faulty = compile (chain_template 0) in
  let correct = compile (chain_template 1) in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  let session =
    Session.create ~prog:faulty ~input:[] ~expected ~profile_inputs:[ [] ] ()
  in
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input:[]
  in
  (faulty, session, oracle)

let test_edge_vs_path_verdicts () =
  let prog, session, _ = chain_session () in
  let t = session.Session.trace in
  let p = instance_of t ~sid:(sid_on_line prog 6) ~occ:1 in
  let u = session.Session.wrong_output in
  Alcotest.(check string) "edge mode misses the chained dependence" "NOT_ID"
    (Verdict.to_string
       (Verify.verify ~mode:Verify.Edge_approximation session ~p ~u));
  (* fresh session: verdicts are cached per session *)
  let _, session2, _ = chain_session () in
  let t2 = session2.Session.trace in
  let p2 = instance_of t2 ~sid:(sid_on_line prog 6) ~occ:1 in
  Alcotest.(check string) "path mode sees it (and it is strong)" "STRONG_ID"
    (Verdict.to_string
       (Verify.verify ~mode:Verify.Path_exact session2 ~p:p2
          ~u:session2.Session.wrong_output))

let test_edge_mode_finds_chain_eventually () =
  (* The paper's §3.2 claim: with edges instead of paths "the error will
     still be contained eventually" — here via two chained expansions. *)
  let prog, session, oracle = chain_session () in
  let root = sid_on_line prog 2 in
  let report = Demand.locate session ~oracle ~root_sids:[ root ] in
  Alcotest.(check bool) "found through the chain" true report.Demand.found;
  Alcotest.(check int) "two chained expansions" 2 report.Demand.iterations;
  Alcotest.(check bool) "at least two edges" true
    (report.Demand.expanded_edges >= 2)

(* Crash failures: the omitted clamp makes a loop overrun an array; the
   failure is a crash, not a wrong value, so there is no vexp and only
   plain (never strong) implicit dependences — yet the root is still
   located. *)

let crash_template ok =
  Printf.sprintf
    {|
int size_ok = %d;
void main() {
  int[] a = new_array(2);
  int n = 5;
  if (size_ok == 1) {
    n = 2;
  }
  int i = 0;
  while (i < n) {
    a[i] = i;
    i = i + 1;
  }
  print(a[0]);
}
|}
    ok

let test_crash_session () =
  let faulty = compile (crash_template 0) in
  let correct = compile (crash_template 1) in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  let session =
    Session.create ~prog:faulty ~input:[] ~expected ~profile_inputs:[ [] ] ()
  in
  Alcotest.(check bool) "no expected value" true (session.Session.vexp = None);
  Alcotest.(check bool) "run crashed" true
    (match session.Session.run.Interp.outcome with
    | Error (Interp.Crashed _) -> true
    | _ -> false);
  (* the criterion is the crashing store, with its reads recorded *)
  let crash = Trace.get session.Session.trace session.Session.wrong_output in
  Alcotest.(check int) "criterion is the last instance"
    (Trace.length session.Session.trace - 1)
    crash.Trace.idx;
  Alcotest.(check bool) "crash instance has recorded reads" true
    (crash.Trace.uses <> [])

let test_crash_locate () =
  let faulty = compile (crash_template 0) in
  let correct = compile (crash_template 1) in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  let session =
    Session.create ~prog:faulty ~input:[] ~expected ~profile_inputs:[ [] ] ()
  in
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input:[]
  in
  let root = sid_on_line faulty 2 in
  let report = Demand.locate session ~oracle ~root_sids:[ root ] in
  Alcotest.(check bool) "crash root located" true report.Demand.found;
  (* without vexp nothing can be strong; edges are plain IDs *)
  Alcotest.(check bool) "at least one edge" true
    (report.Demand.expanded_edges >= 1)

(* An infinite-loop omission fault: the guard that advances the loop
   counter is wrongly disabled, the failing run exhausts its step
   budget, and the budget-abort point anchors the localization. *)

let hang_template ok =
  Printf.sprintf
    {|
int advance_on = %d;
void main() {
  int i = 0;
  int acc = 0;
  while (i < 4) {
    acc = acc + i;
    if (advance_on == 1) {
      i = i + 1;
    }
  }
  print(acc);
}
|}
    ok

let test_hang_locate () =
  let faulty = compile (hang_template 0) in
  let correct = compile (hang_template 1) in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  let session =
    Session.create ~budget:5_000 ~prog:faulty ~input:[] ~expected
      ~profile_inputs:[] ()
  in
  Alcotest.(check bool) "budget-exhausted failing run" true
    (session.Session.run.Interp.outcome = Error Interp.Budget_exhausted);
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input:[]
  in
  let root = sid_on_line faulty 2 in
  let report = Demand.locate session ~oracle ~root_sids:[ root ] in
  Alcotest.(check bool) "hang root located" true report.Demand.found

(* Value perturbation (§5): nested predicates testing the same
   definition defeat predicate switching (Table 5(b)); perturbing the
   definition's value exposes the dependence. *)

let correlated_template a =
  Printf.sprintf
    {|
int a = %d;
void main() {
  int x = 1;
  if (a > 10) {
    if (a > 11) {
      x = 2;
    }
  }
  print(x);
}
|}
    a

let test_perturbation_recovers_soundness_gap () =
  let faulty = compile (correlated_template 5) in
  let session =
    Session.create ~prog:faulty ~input:[] ~expected:[ 2 ] ~profile_inputs:[ [] ]
      ()
  in
  let t = session.Session.trace in
  let p1 = instance_of t ~sid:(sid_on_line faulty 5) ~occ:1 in
  let u = session.Session.wrong_output in
  (* branch switching misses: the inner correlated predicate stays false *)
  Alcotest.(check string) "switching P1 misses" "NOT_ID"
    (Verdict.to_string (Verify.verify session ~p:p1 ~u));
  (* perturbing a's value to 12 satisfies both predicates *)
  let d = instance_of t ~sid:(sid_on_line faulty 2) ~occ:1 in
  Alcotest.(check string) "perturbing a catches it (strongly)" "STRONG_ID"
    (Verdict.to_string
       (Exom_core.Perturb.verify_value session ~d
          ~candidate:(Exom_interp.Value.Vint 12) ~u))

let test_perturbation_rejects_irrelevant_def () =
  let faulty = compile (correlated_template 5) in
  let session =
    Session.create ~prog:faulty ~input:[] ~expected:[ 2 ] ~profile_inputs:[ [] ]
      ()
  in
  let t = session.Session.trace in
  (* perturbing a to a value that still fails both predicates: NOT_ID *)
  let d = instance_of t ~sid:(sid_on_line faulty 2) ~occ:1 in
  Alcotest.(check string) "useless candidate" "NOT_ID"
    (Verdict.to_string
       (Exom_core.Perturb.verify_value session ~d
          ~candidate:(Exom_interp.Value.Vint 7)
          ~u:session.Session.wrong_output))

let test_perturbation_profile_search () =
  (* with a profile that contains a triggering value, the range search
     finds it without being told the candidate *)
  let src =
    {|
void main() {
  int a = input();
  int x = 1;
  if (a > 10) {
    if (a > 11) {
      x = 2;
    }
  }
  print(x);
}
|}
  in
  let prog = compile src in
  let session =
    Session.create ~prog ~input:[ 5 ] ~expected:[ 2 ]
      ~profile_inputs:[ [ 3 ]; [ 12 ]; [ 20 ] ] ()
  in
  let t = session.Session.trace in
  let d = instance_of t ~sid:(sid_on_line prog 3) ~occ:1 in
  Alcotest.(check string) "profile search succeeds" "STRONG_ID"
    (Verdict.to_string
       (Exom_core.Perturb.verify_over_profile session ~d
          ~u:session.Session.wrong_output))

(* Oracle behaviour *)

let test_oracle_benign_classification () =
  let _, session, oracle = gzip_session () in
  let t = session.Session.trace in
  let prog = session.Session.prog in
  (* deflated decl: same in both runs -> benign *)
  let defl = instance_of t ~sid:(sid_on_line prog 7) ~occ:1 in
  Alcotest.(check bool) "deflated benign" true (Oracle.benign oracle defl);
  (* the store of flags: 0 vs 32 -> corrupted *)
  let store = instance_of t ~sid:(sid_on_line prog l_store_flags) ~occ:1 in
  Alcotest.(check bool) "flags store corrupted" false
    (Oracle.benign oracle store);
  (* the root cause decl: 0 vs 1 -> corrupted *)
  let root = instance_of t ~sid:(sid_on_line prog l_root) ~occ:1 in
  Alcotest.(check bool) "root corrupted" false (Oracle.benign oracle root)

(* Budget exhaustion during verification: switching a predicate that
   makes the program loop forever must yield NOT_ID, not a hang. *)
let test_verification_timeout () =
  let faulty =
    compile
      {|
int stop = 1;
void main() {
  int x = 0;
  int i = 0;
  while (i < 3) {
    if (stop == 0) {
      i = i - 1;
    }
    i = i + 1;
    x = x + 1;
  }
  print(x);
}
|}
  in
  let session =
    Session.create ~budget:20_000 ~prog:faulty ~input:[] ~expected:[ 99 ]
      ~profile_inputs:[ [] ] ()
  in
  let t = session.Session.trace in
  let p =
    instance_of t ~sid:(sid_on_line session.Session.prog 7) ~occ:1
  in
  let u = session.Session.wrong_output in
  (* switching if(stop==0) makes i oscillate: infinite loop -> budget *)
  Alcotest.(check string) "budget abort is NOT_ID" "NOT_ID"
    (Verdict.to_string (Verify.verify session ~p ~u))

(* Resilience: the guard around switched re-executions.  Chaos faults
   are injected into every re-execution (never the failing run); the
   verifier must degrade to NOT_ID, count everything, and let nothing
   escape. *)

let gzip_session_with ?policy ?chaos () =
  let faulty = compile gzip_faulty in
  let correct = compile gzip_correct in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  let session =
    Session.create ?policy ?chaos ~prog:faulty ~input:[] ~expected
      ~profile_inputs:[ [] ] ()
  in
  (faulty, session)

let stats_of (s : Session.t) = Guard.stats s.Session.guard

let test_chaos_crash_degrades () =
  (* every switched run dies at its first step: the strong verdict of
     test_verify_strong_id degrades to NOT_ID, with the abort counted *)
  let prog, session =
    gzip_session_with ~chaos:{ Chaos.seed = 0; fault = Chaos.Crash_at 1 } ()
  in
  let t = session.Session.trace in
  let p = instance_of t ~sid:(sid_on_line prog l_if_flags) ~occ:1 in
  let u = instance_of t ~sid:(sid_on_line prog l_store_flags) ~occ:1 in
  Alcotest.(check string) "degrades to NOT_ID" "NOT_ID"
    (Verdict.to_string (Verify.verify session ~p ~u));
  let g = stats_of session in
  Alcotest.(check int) "aborted" 1 g.Guard.aborted;
  Alcotest.(check int) "completed" 0 g.Guard.completed;
  Alcotest.(check int) "accounted" (Session.verifications session)
    (g.Guard.completed + g.Guard.aborted);
  match Guard.failures session.Session.guard with
  | [ (_, Guard.Run_crashed _) ] -> ()
  | fs -> Alcotest.failf "unexpected journal (%d entries)" (List.length fs)

let test_chaos_exception_contained () =
  (* an exception the interpreter does not convert to an outcome must be
     captured by the guard, not propagated out of the verifier *)
  let prog, session =
    gzip_session_with ~chaos:{ Chaos.seed = 0; fault = Chaos.Raise_at 1 } ()
  in
  let t = session.Session.trace in
  let p = instance_of t ~sid:(sid_on_line prog l_if_flags) ~occ:1 in
  let u = instance_of t ~sid:(sid_on_line prog l_store_flags) ~occ:1 in
  Alcotest.(check string) "contained to NOT_ID" "NOT_ID"
    (Verdict.to_string (Verify.verify session ~p ~u));
  let g = stats_of session in
  Alcotest.(check int) "captured" 1 g.Guard.captured;
  Alcotest.(check int) "aborted" 1 g.Guard.aborted;
  (* the run attempt still counts toward the session tally *)
  Alcotest.(check int) "accounted" (Session.verifications session)
    (g.Guard.completed + g.Guard.aborted)

let test_chaos_worker_kill_quarantined () =
  (* a fatal Killed_worker escapes every containment layer by design;
     the batch planner quarantines the task after it kills three
     consecutive executors, and the verifier records the quarantine in
     the Guard accounting instead of raising *)
  let prog, session =
    gzip_session_with
      ~chaos:{ Chaos.seed = 0; fault = Chaos.Kill_worker 1 }
      ()
  in
  let t = session.Session.trace in
  let p = instance_of t ~sid:(sid_on_line prog l_if_flags) ~occ:1 in
  let u = instance_of t ~sid:(sid_on_line prog l_store_flags) ~occ:1 in
  Alcotest.(check string) "quarantine degrades to NOT_ID" "NOT_ID"
    (Verdict.to_string (Verify.verify session ~p ~u));
  let g = stats_of session in
  Alcotest.(check int) "quarantined counted" 1 g.Guard.quarantined;
  (* the dead attempts' runs are discarded wholesale, so the accounting
     identity is unperturbed: nothing completed, nothing aborted,
     nothing charged *)
  Alcotest.(check int) "accounted" (Session.verifications session)
    (g.Guard.completed + g.Guard.aborted);
  (match Guard.failures session.Session.guard with
  | [ (sid, Guard.Worker_quarantined kills) ] ->
    Alcotest.(check int) "journaled against the predicate"
      (sid_on_line prog l_if_flags) sid;
    Alcotest.(check int) "after three kills" 3 kills
  | fs -> Alcotest.failf "unexpected journal (%d entries)" (List.length fs));
  (* the quarantined verdict is an artifact of this run's hostility —
     it must never be persisted for a warm rerun to trust *)
  Alcotest.(check int) "nothing persisted" 0
    (Exom_sched.Store.mem_size session.Session.store)

let test_breaker_opens_and_skips () =
  (* two consecutive aborts of the same static predicate open its
     breaker; the third verification is skipped without a re-execution *)
  let policy = { Guard.default_policy with Guard.breaker_threshold = 2 } in
  let prog, session =
    gzip_session_with ~policy
      ~chaos:{ Chaos.seed = 0; fault = Chaos.Raise_at 1 } ()
  in
  let t = session.Session.trace in
  let sid_p = sid_on_line prog l_if_flags in
  let p = instance_of t ~sid:sid_p ~occ:1 in
  let u1 = instance_of t ~sid:(sid_on_line prog l_store_flags) ~occ:1 in
  let u2 = session.Session.wrong_output in
  let u3 = instance_of t ~sid:(sid_on_line prog 7) ~occ:1 in
  ignore (Verify.verify session ~p ~u:u1);
  Alcotest.(check bool) "breaker still closed" false
    (Guard.breaker_open session.Session.guard ~sid:sid_p);
  ignore (Verify.verify session ~p ~u:u2);
  Alcotest.(check bool) "breaker open after threshold" true
    (Guard.breaker_open session.Session.guard ~sid:sid_p);
  Alcotest.(check string) "skipped verification is NOT_ID" "NOT_ID"
    (Verdict.to_string (Verify.verify session ~p ~u:u3));
  let g = stats_of session in
  Alcotest.(check int) "one trip" 1 g.Guard.breaker_trips;
  Alcotest.(check int) "one skip" 1 g.Guard.breaker_skips;
  (* the skip performed no re-execution *)
  Alcotest.(check int) "two runs only" 2 (Session.verifications session);
  Alcotest.(check int) "accounted" (Session.verifications session)
    (g.Guard.completed + g.Guard.aborted)

(* Budget escalation: switching the guard sends the program through a
   long loop the base budget cannot afford, but one doubling can. *)

let escalation_template = {|
int skip = 1;
void main() {
  int x = 0;
  int i = 0;
  if (skip == 0) {
    while (i < 60) {
      i = i + 1;
    }
    x = 1;
  }
  print(x);
}
|}

let escalation_session policy =
  let faulty = compile escalation_template in
  let session =
    Session.create ~budget:100 ~policy ~prog:faulty ~input:[] ~expected:[ 1 ]
      ~profile_inputs:[ [] ] ()
  in
  let t = session.Session.trace in
  let p = instance_of t ~sid:(sid_on_line faulty 6) ~occ:1 in
  (faulty, session, p)

let test_escalation_rescues_tight_budget () =
  let policy =
    { Guard.strict_policy with
      Guard.backoff = Backoff.make ~factor:2 ~max_retries:2 ~cap_factor:8 }
  in
  let _, session, p = escalation_session policy in
  Alcotest.(check string) "verified after escalation" "STRONG_ID"
    (Verdict.to_string
       (Verify.verify session ~p ~u:session.Session.wrong_output));
  let g = stats_of session in
  Alcotest.(check bool) "at least one retry" true (g.Guard.retried >= 1);
  Alcotest.(check int) "final attempt completed" 1 g.Guard.completed;
  Alcotest.(check int) "earlier attempts aborted" g.Guard.retried
    g.Guard.aborted;
  Alcotest.(check int) "every attempt accounted" (Session.verifications session)
    (g.Guard.completed + g.Guard.aborted)

let test_no_escalation_misses () =
  (* differential: under the strict (no-retry) policy the same
     verification times out and is conservatively NOT_ID *)
  let _, session, p = escalation_session Guard.strict_policy in
  Alcotest.(check string) "timer abort without escalation" "NOT_ID"
    (Verdict.to_string
       (Verify.verify session ~p ~u:session.Session.wrong_output));
  let g = stats_of session in
  Alcotest.(check int) "no retries" 0 g.Guard.retried;
  Alcotest.(check int) "one abort" 1 g.Guard.aborted

let test_deadline_stops_escalation () =
  (* a zero deadline is always overdue after the first attempt: the
     ladder is abandoned even though retries remain *)
  let policy =
    { Guard.backoff = Backoff.make ~factor:2 ~max_retries:2 ~cap_factor:8;
      deadline = Some 0.0;
      breaker_threshold = max_int }
  in
  let _, session, p = escalation_session policy in
  Alcotest.(check string) "deadline abort is NOT_ID" "NOT_ID"
    (Verdict.to_string
       (Verify.verify session ~p ~u:session.Session.wrong_output));
  let g = stats_of session in
  Alcotest.(check int) "no retries" 0 g.Guard.retried;
  Alcotest.(check int) "deadline recorded" 1 g.Guard.deadline_expired;
  match Guard.failures session.Session.guard with
  | [ (_, Guard.Deadline_expired _) ] -> ()
  | fs -> Alcotest.failf "unexpected journal (%d entries)" (List.length fs)

let test_locate_under_chaos_never_raises () =
  (* a seed sweep over the full locate loop: whatever the injected fault
     does to the re-executions, locate returns a report whose robustness
     accounting is consistent *)
  for seed = 0 to 19 do
    let chaos = Chaos.of_seed ~max_step:48 seed in
    let faulty = compile gzip_faulty in
    let correct = compile gzip_correct in
    let expected = Oracle.expected ~correct_prog:correct ~input:[] in
    let session =
      Session.create ~chaos ~prog:faulty ~input:[] ~expected
        ~profile_inputs:[ [] ] ()
    in
    let oracle =
      Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
        ~input:[]
    in
    let root = sid_on_line faulty l_root in
    let report =
      try Demand.locate session ~oracle ~root_sids:[ root ]
      with exn ->
        Alcotest.failf "locate raised under %s: %s"
          (Chaos.fault_to_string chaos.Chaos.fault)
          (Printexc.to_string exn)
    in
    let g = report.Demand.robustness in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: every run accounted" seed)
      report.Demand.verifications
      (g.Guard.completed + g.Guard.aborted);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: retries bounded by aborts" seed)
      true
      (g.Guard.retried <= g.Guard.aborted);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: journal covers the failures" seed)
      true
      (List.length report.Demand.failures
      >= g.Guard.breaker_skips + g.Guard.deadline_expired)
  done

(* Systematic property: random programs with a synthesized execution
   omission error — a guarded update whose guard flag is wrongly 0 —
   must always be locatable.  The generator varies the arithmetic
   pipeline feeding the guarded variable, the guarded update itself,
   and trailing noise, so the slice shapes differ across cases. *)

let omission_program ~flag ~k1 ~k2 ~bump ~noise ~loops =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "int flag = %d;\n" flag;
  pr "void main() {\n";
  pr "  int a = input();\n";
  pr "  int b = a * %d + %d;\n" k1 k2;
  if loops then begin
    pr "  int i = 0;\n";
    pr "  while (i < 3) {\n";
    pr "    b = b + i;\n";
    pr "    i = i + 1;\n";
    pr "  }\n"
  end;
  pr "  if (flag == 1) {\n";
  pr "    b = b + %d;\n" bump;
  pr "  }\n";
  for j = 1 to noise do
    pr "  int n%d = a + %d;\n" j j
  done;
  pr "  print(a);\n";
  if noise > 0 then pr "  print(n1);\n";
  pr "  print(b);\n";
  pr "}\n";
  Buffer.contents buf

let prop_synthesized_omissions_located =
  QCheck.Test.make ~name:"synthesized omission faults are located" ~count:25
    QCheck.(
      quad (int_range 1 5) (int_range 0 9) (int_range 1 50)
        (pair (int_range 0 2) bool))
    (fun (k1, k2, bump, (noise, loops)) ->
      let faulty =
        compile (omission_program ~flag:0 ~k1 ~k2 ~bump ~noise ~loops)
      in
      let correct =
        compile (omission_program ~flag:1 ~k1 ~k2 ~bump ~noise ~loops)
      in
      let input = [ 7 ] in
      let expected = Oracle.expected ~correct_prog:correct ~input in
      let session =
        Session.create ~prog:faulty ~input ~expected
          ~profile_inputs:[ [ 1 ]; [ 2 ]; [ 5 ] ] ()
      in
      let oracle =
        Oracle.create ~faulty_trace:session.Session.trace
          ~correct_prog:correct ~input
      in
      let report = Demand.locate session ~oracle ~root_sids:[ 0 ] in
      (* the dynamic slice must have missed it AND locate must find it *)
      (not (Slice.mem_sid report.Demand.ds 0)) && report.Demand.found)

(* Property: locate never reports found=true without the root actually
   being in the final pruned slice. *)
let prop_found_implies_in_ips =
  QCheck.Test.make ~name:"found implies root in IPS" ~count:10
    QCheck.(int_range 1 20)
    (fun seed ->
      let faulty = compile gzip_faulty in
      let correct = compile gzip_correct in
      ignore seed;
      let expected = Oracle.expected ~correct_prog:correct ~input:[] in
      let session =
        Session.create ~prog:faulty ~input:[] ~expected ~profile_inputs:[ [] ]
          ()
      in
      let oracle =
        Oracle.create ~faulty_trace:session.Session.trace
          ~correct_prog:correct ~input:[]
      in
      let root = sid_on_line faulty l_root in
      let report = Demand.locate session ~oracle ~root_sids:[ root ] in
      (not report.Demand.found) || Slice.mem_sid report.Demand.ips root)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [ ( "session",
        [ tc "output classification" test_session_output_classification;
          tc "no failure" test_locate_no_failure ] );
      ( "verify",
        [ tc "strong implicit dependence" test_verify_strong_id;
          tc "no implicit dependence" test_verify_not_id;
          tc "caching" test_verify_counts_runs;
          tc "budget abort" test_verification_timeout ] );
      ( "table 5",
        [ tc "(a) feasibility" test_feasibility_table5a;
          tc "(b) soundness gap" test_soundness_table5b ] );
      ( "edge vs path",
        [ tc "verdicts differ on chains" test_edge_vs_path_verdicts;
          tc "edge mode chains eventually" test_edge_mode_finds_chain_eventually
        ] );
      ( "crash failures",
        [ tc "session classification" test_crash_session;
          tc "crash root located" test_crash_locate;
          tc "infinite-loop fault located" test_hang_locate ] );
      ( "value perturbation",
        [ tc "recovers the soundness gap"
            test_perturbation_recovers_soundness_gap;
          tc "rejects useless candidates"
            test_perturbation_rejects_irrelevant_def;
          tc "profile-driven search" test_perturbation_profile_search ] );
      ("oracle", [ tc "benign classification" test_oracle_benign_classification ]);
      ( "locate",
        [ tc "gzip scenario end-to-end" test_locate_gzip;
          tc "classic value error" test_locate_value_error ] );
      ( "resilience",
        [ tc "injected crash degrades" test_chaos_crash_degrades;
          tc "injected exception contained" test_chaos_exception_contained;
          tc "worker kill quarantined" test_chaos_worker_kill_quarantined;
          tc "circuit breaker opens and skips" test_breaker_opens_and_skips;
          tc "escalation rescues a tight budget"
            test_escalation_rescues_tight_budget;
          tc "no escalation misses it" test_no_escalation_misses;
          tc "deadline stops escalation" test_deadline_stops_escalation;
          tc "locate never raises under chaos"
            test_locate_under_chaos_never_raises ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_synthesized_omissions_located; prop_found_implies_in_ips ] ) ]
