(* Crash determinism: a journaled localization killed at an iteration
   boundary, mid-batch, or mid-line resumes — via Recover.plan_of_file
   and Session replay priming — to a final ledger byte-identical to the
   uninterrupted run's, at -j1 and -j4 alike, re-verifying only the
   work the killed run never checkpointed. *)

module B = Exom_bench.Bench_types
module Suite = Exom_bench.Suite
module Typecheck = Exom_lang.Typecheck
module Demand = Exom_core.Demand
module Oracle = Exom_core.Oracle
module Session = Exom_core.Session
module Recover = Exom_core.Recover
module Slice = Exom_ddg.Slice
module Pool = Exom_sched.Pool
module Ledger = Exom_ledger.Ledger
module Obs = Exom_obs.Obs
module Spine = Exom_obs.Spine
module Json = Exom_obs.Json
module Vfs = Exom_util.Vfs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let cleanup = ref []

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    let p =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "exom_recover_test_%d_%d" (Unix.getpid ()) !n)
    in
    cleanup := p :: !cleanup;
    p

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* The fixture: gzipsim V2-F3, the suite's journal-heaviest locate with
   switched-run dedup.  Build everything a localization session needs,
   the way the runner does. *)
let fixture =
  lazy
    (let bench = Option.get (Suite.find "gzipsim") in
     let fault = Option.get (Suite.find_fault bench "V2-F3") in
     let faulty = Typecheck.parse_and_check (B.faulty_source bench fault) in
     let correct = Typecheck.parse_and_check bench.B.source in
     let input = fault.B.failing_input in
     let expected = Oracle.expected ~correct_prog:correct ~input in
     (bench, fault, faulty, correct, input, expected))

(* One localization with a write-ahead journal at [path].  With [plan],
   the session is primed to replay it (the real --resume flow: match
   the journal against the session, prime, mark the new journal as a
   resumed continuation). *)
let journaled_run ?obs ?plan ~jobs path =
  let bench, fault, faulty, correct, input, expected = Lazy.force fixture in
  let ledger = Ledger.create () in
  let session =
    Session.create ?obs ~ledger ~prog:faulty ~input ~expected
      ~profile_inputs:bench.B.test_inputs ()
  in
  (match plan with
  | None -> ()
  | Some p ->
    Alcotest.(check bool) "plan matches the session" true
      (Recover.matches_session p session);
    Recover.prime session p);
  Ledger.attach_journal ledger path;
  (match plan with
  | None -> ()
  | Some p ->
    Ledger.resume_marker ledger ~replayed:p.Recover.salvaged_events
      ~truncated:p.Recover.truncated);
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input
  in
  let root_sids = B.root_sids bench fault faulty in
  let pool = Pool.create ~jobs () in
  let report = Demand.locate ~pool session ~oracle ~root_sids in
  Pool.shutdown pool;
  Ledger.close_journal ledger;
  (Ledger.to_string ledger, report)

(* Everything a resumed run must reproduce — including the robustness
   accounting and cumulative run counts restored from the checkpoint. *)
let report_sig (r : Demand.report) =
  ( r.Demand.found, r.Demand.user_prunings, r.Demand.total_prunings,
    r.Demand.iterations, r.Demand.expanded_edges, r.Demand.implicit_edges,
    r.Demand.benign, Slice.sids r.Demand.ips, Slice.sids r.Demand.ds,
    Slice.sids r.Demand.ps0, r.Demand.os_chain, r.Demand.verifications,
    r.Demand.verify_queries, r.Demand.robustness, r.Demand.failures )

let baseline_path = lazy (fresh_path ())
let baseline = lazy (journaled_run ~jobs:1 (Lazy.force baseline_path))

let baseline_plan () =
  ignore (Lazy.force baseline);
  match Recover.plan_of_file (Lazy.force baseline_path) with
  | Ok p -> p
  | Error e -> Alcotest.fail ("baseline journal unreadable: " ^ e)

(* Kill points: every checkpoint boundary (the journal as an fsynced
   iteration leaves it), one mid-batch cut (in-flight Verify events,
   no closing Batch/Checkpoint), and one torn final line. *)
let kill_variants journal =
  let lines =
    match List.rev (String.split_on_char '\n' journal) with
    | "" :: r -> List.rev r
    | r -> List.rev r
  in
  let prefix k =
    String.concat "\n" (List.filteri (fun i _ -> i < k) lines) ^ "\n"
  in
  let indices_of tag =
    let found = ref [] in
    List.iteri
      (fun i l ->
        if contains l ("\"ev\":\"" ^ tag ^ "\"") then found := i :: !found)
      lines;
    List.rev !found
  in
  let checkpoints = indices_of "checkpoint" in
  let verifies = indices_of "verify" in
  Alcotest.(check bool) "fixture journals checkpoints" true (checkpoints <> []);
  Alcotest.(check bool) "fixture journals verifies" true (verifies <> []);
  let boundary_cuts =
    List.map (fun i -> ("checkpoint boundary", prefix (i + 1))) checkpoints
  in
  (* cut just past the last Verify line: its batch is in flight *)
  let mid_batch =
    let last_v = List.nth verifies (List.length verifies - 1) in
    ("mid-batch", prefix (last_v + 1))
  in
  (* tear the journal's final line mid-JSON *)
  let torn =
    let s = prefix (List.length lines) in
    ("torn line", String.sub s 0 (String.length s - 9))
  in
  boundary_cuts @ [ mid_batch; torn ]

(* Line-level surgery shared by the kill-chain tests. *)
let journal_lines journal =
  match List.rev (String.split_on_char '\n' journal) with
  | "" :: r -> List.rev r
  | r -> List.rev r

let line_prefix lines k =
  String.concat "\n" (List.filteri (fun i _ -> i < k) lines) ^ "\n"

let checkpoint_indices lines =
  let found = ref [] in
  List.iteri
    (fun i l -> if contains l "\"ev\":\"checkpoint\"" then found := i :: !found)
    lines;
  List.rev !found

(* What a SIGKILL leaves when it lands while the line after checkpoint
   [n] (0-based) is being written: everything through the checkpoint,
   plus a torn fragment of the next line. *)
let torn_after_checkpoint journal n =
  let lines = journal_lines journal in
  let cks = checkpoint_indices lines in
  Alcotest.(check bool) "journal has checkpoints" true (cks <> []);
  let i = List.nth cks (min n (List.length cks - 1)) in
  let upto = min (i + 2) (List.length lines) in
  let s = line_prefix lines upto in
  String.sub s 0 (String.length s - 9)

let plan_of label path =
  match Recover.plan_of_file path with
  | Ok p -> p
  | Error e -> Alcotest.failf "%s: no plan: %s" label e

let test_resume_byte_identical () =
  let full_ledger, full_report = Lazy.force baseline in
  let journal = read_file (Lazy.force baseline_path) in
  List.iter
    (fun (label, content) ->
      let killed = fresh_path () in
      write_file killed content;
      let plan =
        match Recover.plan_of_file killed with
        | Ok p -> p
        | Error e -> Alcotest.failf "%s: no plan: %s" label e
      in
      Alcotest.(check bool)
        (label ^ ": interrupted journal is not complete")
        false plan.Recover.complete;
      List.iter
        (fun jobs ->
          let ledger, report = journaled_run ~plan ~jobs (fresh_path ()) in
          Alcotest.(check string)
            (Printf.sprintf "%s: resumed ledger byte-identical (-j%d)" label
               jobs)
            full_ledger ledger;
          Alcotest.(check bool)
            (Printf.sprintf "%s: resumed report identical (-j%d)" label jobs)
            true
            (report_sig report = report_sig full_report))
        [ 1; 4 ])
    (kill_variants journal)

let test_resume_accounting () =
  (* a boundary-killed run's plan salvages whole batches; the resumed
     run restores — rather than re-charges — their cumulative
     verification count *)
  let _, full_report = Lazy.force baseline in
  let journal = read_file (Lazy.force baseline_path) in
  match kill_variants journal with
  | (_, first_boundary) :: _ ->
    let killed = fresh_path () in
    write_file killed first_boundary;
    let plan = Result.get_ok (Recover.plan_of_file killed) in
    Alcotest.(check int) "one batch replayable" 1 plan.Recover.replayed_batches;
    Alcotest.(check bool) "verifications salvaged" true
      (plan.Recover.replayed_verifications > 0);
    Alcotest.(check int) "nothing dropped at a boundary" 0
      plan.Recover.dropped_events;
    let _, report = journaled_run ~plan ~jobs:1 (fresh_path ()) in
    Alcotest.(check int) "cumulative verifications preserved"
      full_report.Demand.verifications report.Demand.verifications
  | [] -> Alcotest.fail "no kill variants"

let test_complete_journal_resumes_to_itself () =
  (* resuming a run that actually finished replays every batch from the
     journal and still reproduces the ledger byte for byte *)
  let full_ledger, full_report = Lazy.force baseline in
  let plan = baseline_plan () in
  Alcotest.(check bool) "plan is complete" true plan.Recover.complete;
  Alcotest.(check int) "nothing in flight" 0 plan.Recover.dropped_events;
  let ledger, report = journaled_run ~plan ~jobs:1 (fresh_path ()) in
  Alcotest.(check string) "identical ledger" full_ledger ledger;
  Alcotest.(check bool) "identical report" true
    (report_sig report = report_sig full_report)

(* Crash chains: kill -> resume -> kill the resumed run later -> resume
   again.  Every generation's journal is torn mid-line (the realistic
   SIGKILL residue), every resume is primed through the real plan
   machinery, and the survivor of the second resume must still be
   byte-identical to the uninterrupted baseline — at -j1 and -j4. *)
let test_multi_generation_chain () =
  let full_ledger, full_report = Lazy.force baseline in
  let journal0 = read_file (Lazy.force baseline_path) in
  let ncks0 = List.length (checkpoint_indices (journal_lines journal0)) in
  Alcotest.(check bool) "baseline has at least two checkpoints" true
    (ncks0 >= 2);
  (* the fixture runs ranked, so every generation must reproduce the
     rank events too — the ordering is recomputed from replayed verdict
     evidence, not copied *)
  Alcotest.(check bool) "baseline journal carries rank events" true
    (contains journal0 "\"ev\":\"rank\"");
  List.iter
    (fun jobs ->
      (* generation 1: killed early, right after the first checkpoint *)
      let killed1 = fresh_path () in
      write_file killed1 (torn_after_checkpoint journal0 0);
      let plan1 = plan_of "gen1" killed1 in
      Alcotest.(check bool) "gen1: incomplete" false plan1.Recover.complete;
      Alcotest.(check bool) "gen1: torn tail detected" true
        plan1.Recover.truncated;
      Alcotest.(check int) "gen1: first resume in the chain" 0
        plan1.Recover.prior_resumes;
      let j1 = fresh_path () in
      ignore (journaled_run ~plan:plan1 ~jobs j1);
      let journal1 = read_file j1 in
      Alcotest.(check bool) "gen1: resumed journal carries its marker" true
        (contains journal1 "\"type\":\"resume\"");
      (* generation 2: the resumed run survives longer — killed after
         its last checkpoint *)
      let ncks1 = List.length (checkpoint_indices (journal_lines journal1)) in
      let killed2 = fresh_path () in
      write_file killed2 (torn_after_checkpoint journal1 (ncks1 - 1));
      let plan2 = plan_of "gen2" killed2 in
      Alcotest.(check bool) "gen2: incomplete" false plan2.Recover.complete;
      Alcotest.(check bool) "gen2: torn tail detected" true
        plan2.Recover.truncated;
      Alcotest.(check int) "gen2: one prior resume in the lineage" 1
        plan2.Recover.prior_resumes;
      Alcotest.(check bool) "gen2: the later kill salvages more batches"
        true
        (plan2.Recover.replayed_batches > plan1.Recover.replayed_batches);
      let ledger2, report2 = journaled_run ~plan:plan2 ~jobs (fresh_path ()) in
      Alcotest.(check bool)
        (Printf.sprintf
           "second-generation ledger carries rank events (-j%d)" jobs)
        true
        (contains ledger2 "\"ev\":\"rank\"");
      Alcotest.(check string)
        (Printf.sprintf
           "second-generation resume byte-identical to baseline (-j%d)" jobs)
        full_ledger ledger2;
      Alcotest.(check bool)
        (Printf.sprintf
           "second-generation report identical to baseline (-j%d)" jobs)
        true
        (report_sig report2 = report_sig full_report))
    [ 1; 4 ]

(* A degraded run's ledger differs from the baseline only in the Final
   event's [degraded] marker; everything else must still be identical. *)
let strip_degraded s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         if contains line "\"ev\":\"final\"" then
           match Json.parse line with
           | Ok (Json.Obj fields) ->
             Json.to_string
               (Json.Obj (List.filter (fun (k, _) -> k <> "degraded") fields))
           | Ok _ | Error _ -> line
         else line)
  |> String.concat "\n"

(* The storage-fault face of the same chain: generation 2 resumes while
   its journal's first fsync dies with an injected ENOSPC.  The run must
   converge to a ledger byte-identical to the uninterrupted baseline or
   an explicitly DEGRADED one whose only divergence is the degradation
   marker — and the verdict must match either way.  Never silently
   wrong, at -j1 and -j4 alike. *)
let test_multi_generation_chain_with_enospc () =
  let full_ledger, full_report = Lazy.force baseline in
  let journal0 = read_file (Lazy.force baseline_path) in
  List.iter
    (fun jobs ->
      (* generation 1: killed right after the first checkpoint *)
      let killed1 = fresh_path () in
      write_file killed1 (torn_after_checkpoint journal0 0);
      let plan1 = plan_of "enospc gen1" killed1 in
      let j1 = fresh_path () in
      ignore (journaled_run ~plan:plan1 ~jobs j1);
      (* generation 2: the resumed run killed after its last checkpoint *)
      let journal1 = read_file j1 in
      let ncks1 = List.length (checkpoint_indices (journal_lines journal1)) in
      let killed2 = fresh_path () in
      write_file killed2 (torn_after_checkpoint journal1 (ncks1 - 1));
      let plan2 = plan_of "enospc gen2" killed2 in
      let j2 = fresh_path () in
      Vfs.reset_counters ();
      Vfs.arm
        (Vfs.Io_chaos.targeted ~op:Vfs.Fsync
           ~path_substr:(Filename.basename j2) ~after:1 Vfs.Enospc);
      let ledger2, report2 =
        Fun.protect
          ~finally:(fun () -> Vfs.disarm ())
          (fun () -> journaled_run ~plan:plan2 ~jobs j2)
      in
      let c = Vfs.counters () in
      Alcotest.(check int)
        (Printf.sprintf "the ENOSPC actually fired (-j%d)" jobs)
        1 c.Vfs.c_injected;
      Alcotest.(check int)
        (Printf.sprintf "and was accounted exactly once (-j%d)" jobs)
        1 c.Vfs.c_acked;
      (* never wrong: the verdict matches the uninterrupted baseline *)
      Alcotest.(check bool)
        (Printf.sprintf "verdict matches baseline (-j%d)" jobs)
        true
        (report2.Demand.found = full_report.Demand.found
        && Slice.sids report2.Demand.ips = Slice.sids full_report.Demand.ips);
      if ledger2 <> full_ledger then begin
        (* not byte-identical, so it must be explicitly DEGRADED... *)
        (match report2.Demand.degraded with
        | Some reason ->
          Alcotest.(check bool)
            (Printf.sprintf "degradation names the journal (-j%d)" jobs)
            true
            (contains reason "journal write/sync failure")
        | None ->
          Alcotest.failf
            "ledger diverged without a DEGRADED report (-j%d)" jobs);
        (* ...and the divergence must be exactly the degradation marker *)
        Alcotest.(check string)
          (Printf.sprintf
             "identical outside the degradation marker (-j%d)" jobs)
          (strip_degraded full_ledger) (strip_degraded ledger2)
      end)
    [ 1; 4 ]

(* The trace-spine side of the same chain: a kill -> resume -> kill ->
   resume survivor must emit a coordinator span spine identical to the
   uninterrupted run's — replayed batches re-emit their lane-0
   verify.batch span but no worker-lane spans, so the Coordinator
   projection is the replay-invariant object while All lanes legitimately
   differ. *)
let test_kill_chain_spine () =
  List.iter
    (fun jobs ->
      let full_obs = Obs.create ~trace:true () in
      let jfull = fresh_path () in
      ignore (journaled_run ~obs:full_obs ~jobs jfull);
      let full_spans = Obs.spans full_obs in
      let full_coord =
        Spine.of_spans ~lanes:Spine.Coordinator full_spans
      in
      let journal0 = read_file jfull in
      (* generation 1: torn right after the first checkpoint *)
      let killed1 = fresh_path () in
      write_file killed1 (torn_after_checkpoint journal0 0);
      let plan1 = plan_of "spine gen1" killed1 in
      let j1 = fresh_path () in
      ignore (journaled_run ~plan:plan1 ~jobs j1);
      (* generation 2: the resumed run torn after its last checkpoint;
         the second resume is the traced survivor *)
      let journal1 = read_file j1 in
      let ncks1 = List.length (checkpoint_indices (journal_lines journal1)) in
      let killed2 = fresh_path () in
      write_file killed2 (torn_after_checkpoint journal1 (ncks1 - 1));
      let plan2 = plan_of "spine gen2" killed2 in
      Alcotest.(check int)
        (Printf.sprintf "chain depth recorded (-j%d)" jobs)
        1 plan2.Recover.prior_resumes;
      let resumed_obs = Obs.create ~trace:true () in
      ignore (journaled_run ~obs:resumed_obs ~plan:plan2 ~jobs (fresh_path ()));
      let resumed_spans = Obs.spans resumed_obs in
      let resumed_coord =
        Spine.of_spans ~lanes:Spine.Coordinator resumed_spans
      in
      Alcotest.(check string)
        (Printf.sprintf
           "survivor's coordinator spine identical to uninterrupted (-j%d)"
           jobs)
        (Spine.to_string full_coord)
        (Spine.to_string resumed_coord);
      Alcotest.(check int)
        (Printf.sprintf "coordinator edit script empty (-j%d)" jobs)
        0
        (List.length (Spine.diff full_coord resumed_coord));
      (* the replayed batches really were skipped: their worker-lane
         spans never exist, so the all-lane spines differ *)
      Alcotest.(check bool)
        (Printf.sprintf "all-lane spine shows the replay gap (-j%d)" jobs)
        true
        (Spine.diff
           (Spine.of_spans full_spans)
           (Spine.of_spans resumed_spans)
         <> []))
    [ 1; 4 ]

let test_foreign_journal_rejected () =
  (* a journal from a different program/input must not prime a session *)
  let other_bench = Option.get (Suite.find "sedsim") in
  let other_fault = Option.get (Suite.find_fault other_bench "V3-F2") in
  let other_prog =
    Typecheck.parse_and_check (B.faulty_source other_bench other_fault)
  in
  let other_input = other_fault.B.failing_input in
  let other_correct = Typecheck.parse_and_check other_bench.B.source in
  let other_expected =
    Oracle.expected ~correct_prog:other_correct ~input:other_input
  in
  let other_session =
    Session.create ~prog:other_prog ~input:other_input
      ~expected:other_expected ~profile_inputs:other_bench.B.test_inputs ()
  in
  let plan = baseline_plan () in
  Alcotest.(check bool) "foreign session rejected" false
    (Recover.matches_session plan other_session)

let test_describe () =
  let plan = baseline_plan () in
  let out = Recover.describe plan in
  Alcotest.(check bool) "counts the salvage" true
    (contains out "salvaged events:");
  Alcotest.(check bool) "reports completion" true
    (contains out "complete (Final event present)")

let () =
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) !cleanup)
    (fun () ->
      Alcotest.run "recover"
        [
          ( "resume",
            [
              Alcotest.test_case "kill points resume byte-identical" `Quick
                test_resume_byte_identical;
              Alcotest.test_case "replayed work is not re-charged" `Quick
                test_resume_accounting;
              Alcotest.test_case "complete journal replays entirely" `Quick
                test_complete_journal_resumes_to_itself;
              Alcotest.test_case "multi-generation crash chain" `Quick
                test_multi_generation_chain;
              Alcotest.test_case "crash chain with journal ENOSPC" `Quick
                test_multi_generation_chain_with_enospc;
              Alcotest.test_case "kill-chain coordinator spine" `Quick
                test_kill_chain_spine;
              Alcotest.test_case "foreign journal rejected" `Quick
                test_foreign_journal_rejected;
              Alcotest.test_case "salvage description" `Quick test_describe;
            ] );
        ])
