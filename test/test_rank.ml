(* The evidence-driven verification ranking (Exom_rank): adversarial
   model-file rejection, the static-order tie fallback and early-exit
   policy of the planner, cross-codec compatibility with the corpus
   miner's tables, and the end-to-end safety and determinism contracts
   — ranked localization locates everything the static order locates
   (suite and fixed-seed corpus), and the journaled ranked order is
   byte-identical across -j1/-j4 and warm/cold stores. *)

module B = Exom_bench.Bench_types
module Suite = Exom_bench.Suite
module Runner = Exom_bench.Runner
module Demand = Exom_core.Demand
module Pool = Exom_sched.Pool
module Store = Exom_sched.Store
module Obs = Exom_obs.Obs
module Ledger = Exom_ledger.Ledger
module Rank = Exom_rank.Rank
module Campaign = Exom_corpus.Campaign
module Mine = Exom_corpus.Mine

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "exom_rank_test_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

(* {2 Adversarial model files} *)

let valid_table =
  {|{"schema":"exom.corpus.mine","version":1,"total":10,"located":8,"not_located":2,"failed":0,"by_class":[],"by_family":[],"by_size":[{"key":"stmts<=10","n":5,"located":5,"not_located":0,"failed":0,"mean_iterations":1.0,"mean_verifications":2.0,"mean_verify_queries":2.0,"mean_store_hits":0.0},{"key":"stmts11-20","n":5,"located":1,"not_located":4,"failed":0,"mean_iterations":3.0,"mean_verifications":9.0,"mean_verify_queries":9.0,"mean_store_hits":0.0}],"by_density":[{"key":"density0-10","n":10,"located":8,"not_located":2,"failed":0,"mean_iterations":2.0,"mean_verifications":5.0,"mean_verify_queries":5.0,"mean_store_hits":0.0}]}|}

let expect_error what s =
  match Rank.model_of_string s with
  | Ok _ -> Alcotest.fail (what ^ ": accepted")
  | Error e ->
    Alcotest.(check bool) (what ^ ": diagnostic is non-empty") true (e <> "")

let test_model_adversarial () =
  (* the happy path first, so the rejections below mean something *)
  (match Rank.model_of_string valid_table with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("valid table rejected: " ^ e));
  expect_error "corrupt JSON" "{oops";
  expect_error "empty" "";
  (* a torn tail: the valid document cut mid-object *)
  expect_error "truncated"
    (String.sub valid_table 0 (String.length valid_table / 2));
  (* a well-formed document of someone else's schema *)
  (match
     Rank.model_of_string
       {|{"schema":"exom.bench","version":1,"by_size":[],"by_density":[]}|}
   with
  | Ok _ -> Alcotest.fail "foreign schema accepted"
  | Error e ->
    Alcotest.(check bool) "error names the schema" true
      (contains e "exom.bench"));
  (* a future version of the right schema *)
  (match
     Rank.model_of_string
       {|{"schema":"exom.corpus.mine","version":99,"by_size":[],"by_density":[]}|}
   with
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error e ->
    Alcotest.(check bool) "error names the version" true (contains e "99"));
  (* inconsistent bucket counts: located > n *)
  expect_error "inconsistent counts"
    {|{"schema":"exom.corpus.mine","version":1,"by_size":[{"key":"stmts<=10","n":2,"located":5}],"by_density":[]}|};
  (* a missing file is an Error, never an exception *)
  match Rank.load_model "/nonexistent/exom/rank/model.json" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

let test_model_mine_compat () =
  (* a table the real miner wrote parses, and the bucket keys line up:
     the prior of a small low-density program lands on the mined rates,
     not the base prior *)
  let outcome id status stmts predicates =
    {
      Campaign.o_id = id;
      o_class = "flow";
      o_family = "mixed";
      o_status = status;
      o_counts = [];
      o_stmts = stmts;
      o_predicates = predicates;
      o_loc = stmts;
    }
  in
  let rows =
    [
      outcome "t1" "located" 8 0;
      outcome "t2" "located" 9 0;
      outcome "t3" "not_located" 15 1;
      outcome "t4" "located" 16 1;
    ]
  in
  let doc = Mine.table_to_string (Mine.mine rows) in
  match Rank.model_of_string doc with
  | Error e -> Alcotest.fail ("mined table rejected: " ^ e)
  | Ok model ->
    let cfg = { Rank.default_config with Rank.model = Some model } in
    (* stmts<=10 bucket: 2/2 located; density0-10: 3/4 — prior is the
       clamped mean (2/2 + 3/4) / 2 = 0.875 *)
    let t = Rank.create ~stmts:8 ~predicates:0 cfg in
    Alcotest.(check (float 1e-9)) "prior from mined buckets" 0.875
      (Rank.prior t);
    (* an unmatched bucket falls back to the base prior *)
    let far = Rank.create ~stmts:1000 ~predicates:999 cfg in
    Alcotest.(check (float 1e-9)) "unmatched features use the base prior"
      Rank.default_config.Rank.base_prior (Rank.prior far)

(* {2 Planner: ordering, ties, early exit} *)

let test_zero_evidence_is_static_order () =
  let t = Rank.create Rank.default_config in
  (* deliberately shuffled idxs: with no evidence every score ties at
     the prior and the plan must come back in ascending idx = the
     paper's static order, everything kept *)
  let candidates = [ (9, 3); (2, 5); (7, 3); (4, 8) ] in
  let plan = Rank.plan t candidates in
  Alcotest.(check (list int)) "ascending idx order" [ 2; 4; 7; 9 ]
    (List.map (fun d -> d.Rank.d_idx) plan);
  Alcotest.(check bool) "everything kept" true
    (List.for_all (fun d -> d.Rank.d_kept) plan);
  Alcotest.(check bool) "every score is the prior" true
    (List.for_all
       (fun d -> d.Rank.d_score = Rank.prior t)
       plan)

let test_evidence_orders_and_cuts () =
  let cfg = Rank.default_config in
  let t = Rank.create cfg in
  (* sid 1: strong positive evidence; sid 2: a long refuted tail past
     min_obs; sid 3: cold (one observation) *)
  for _ = 1 to 3 do
    Rank.observe t ~sid:1 ~verdict:`Strong_id
  done;
  for _ = 1 to cfg.Rank.min_obs + 2 do
    Rank.observe t ~sid:2 ~verdict:`Not_id
  done;
  Rank.observe t ~sid:3 ~verdict:`Id;
  Alcotest.(check bool) "positive evidence scores above the prior" true
    (Rank.score t ~sid:1 > Rank.prior t);
  Alcotest.(check bool) "refuted tail scores below the cut" true
    (Rank.score t ~sid:2 < cfg.Rank.cut_threshold);
  let plan =
    Rank.plan t [ (10, 1); (11, 2); (12, 2); (13, 2); (14, 3) ]
  in
  let order = List.map (fun d -> d.Rank.d_idx) plan in
  Alcotest.(check (list int)) "descending score, ties static"
    [ 10; 14; 11; 12; 13 ] order;
  let kept d = List.find (fun x -> x.Rank.d_idx = d) plan in
  Alcotest.(check bool) "first instance of a refuted sid survives" true
    (kept 11).Rank.d_kept;
  Alcotest.(check bool) "its tail is cut" false (kept 12).Rank.d_kept;
  Alcotest.(check bool) "all of it" false (kept 13).Rank.d_kept;
  Alcotest.(check bool) "cold sids are never cut" true (kept 14).Rank.d_kept;
  (* under min_obs nothing is cut, however low the score *)
  let cold = Rank.create cfg in
  for _ = 1 to cfg.Rank.min_obs - 1 do
    Rank.observe cold ~sid:2 ~verdict:`Not_id
  done;
  let plan = Rank.plan cold [ (11, 2); (12, 2) ] in
  Alcotest.(check bool) "below min_obs everything is kept" true
    (List.for_all (fun d -> d.Rank.d_kept) plan)

(* {2 End-to-end: safety and determinism} *)

let run_fault ?config ?store ?ledger ~jobs bench fault =
  let pool = Pool.create ~jobs () in
  let r = Runner.run_fault ?config ?store ?ledger ~pool bench fault in
  Pool.shutdown pool;
  r

let static_config = { Demand.default_config with Demand.ranking = None }

let test_suite_safety () =
  (* every fault the static order locates, the ranked order locates;
     and ranked never does more switched work than static *)
  List.iter
    (fun (bench, fault) ->
      let s = run_fault ~config:static_config ~jobs:2 bench fault in
      let r = run_fault ~jobs:2 bench fault in
      let name = bench.B.name ^ " " ^ fault.B.fid in
      Alcotest.(check bool)
        (name ^ ": ranked locates whatever static locates")
        true
        ((not s.Runner.report.Demand.found) || r.Runner.report.Demand.found);
      Alcotest.(check bool)
        (name ^ ": ranked verifications never exceed static")
        true
        (r.Runner.report.Demand.verifications
        <= s.Runner.report.Demand.verifications))
    Suite.rows

let test_corpus_safety_sweep () =
  (* the fixed-seed 30-triple corpus: no fault located under the static
     order becomes NOT_ID under ranked early exit *)
  let manifest = Campaign.generate ~seed:1 ~count:30 () in
  let located_ids config =
    with_temp_dir (fun dir ->
        let rows, missing =
          Campaign.run_local ?config ~jobs:2 ~dir ~manifest ~shards:1 ()
        in
        Alcotest.(check (list string)) "no missing rows" [] missing;
        List.filter_map
          (fun r ->
            if Campaign.located r then Some r.Campaign.o_id else None)
          rows)
  in
  let static_ids = located_ids (Some static_config) in
  let ranked_ids = located_ids None in
  Alcotest.(check bool) "the static leg locates something" true
    (static_ids <> []);
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (id ^ " located statically is located ranked")
        true
        (List.mem id ranked_ids))
    static_ids

let rank_lines ledger =
  String.split_on_char '\n' (Ledger.to_string ledger)
  |> List.filter (fun l -> contains l "\"ev\":\"rank\"")

let test_rank_order_invariant () =
  (* the journaled ranked order is identical across job counts and
     across cold/warm stores: evidence comes from returned verdicts,
     which are the same whether a verdict was recomputed or replayed
     from the store *)
  let bench = Option.get (Suite.find "grepsim") in
  let fault = Option.get (Suite.find_fault bench "V4-F2") in
  let l1 = Ledger.create () in
  ignore (run_fault ~ledger:l1 ~jobs:1 bench fault);
  let l4 = Ledger.create () in
  ignore (run_fault ~ledger:l4 ~jobs:4 bench fault);
  Alcotest.(check bool) "the fixture journals rank events" true
    (rank_lines l1 <> []);
  Alcotest.(check (list string)) "-j1 and -j4 rank events identical"
    (rank_lines l1) (rank_lines l4);
  with_temp_dir (fun dir ->
      let obs = Obs.create () in
      let cold = Ledger.create () in
      ignore
        (run_fault ~store:(Store.create ~obs ~dir ()) ~ledger:cold ~jobs:2
           bench fault);
      let warm = Ledger.create () in
      ignore
        (run_fault ~store:(Store.create ~obs ~dir ()) ~ledger:warm ~jobs:2
           bench fault);
      Alcotest.(check (list string)) "cold and warm rank events identical"
        (rank_lines cold) (rank_lines warm);
      Alcotest.(check (list string)) "store and no-store agree too"
        (rank_lines l1) (rank_lines warm))

let () =
  Alcotest.run "rank"
    [
      ( "model",
        [
          Alcotest.test_case "adversarial files rejected" `Quick
            test_model_adversarial;
          Alcotest.test_case "miner tables parse" `Quick
            test_model_mine_compat;
        ] );
      ( "planner",
        [
          Alcotest.test_case "zero evidence = static order" `Quick
            test_zero_evidence_is_static_order;
          Alcotest.test_case "evidence orders, early exit cuts" `Quick
            test_evidence_orders_and_cuts;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "suite safety: ranked >= static" `Quick
            test_suite_safety;
          Alcotest.test_case "rank order invariant (-j, warm/cold)" `Quick
            test_rank_order_invariant;
          Alcotest.test_case "corpus safety sweep (30 triples)" `Slow
            test_corpus_safety_sweep;
        ] );
    ]
