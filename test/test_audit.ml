(* Tests for Exom_audit: loading runs from their on-disk artifacts
   (Chrome trace, obs JSONL, ledger/journal), the composed audit
   verdict — spine diff, metric drift, ledger diff — the explicit-leg
   gate semantics, and the resume-lineage / replay-story integration
   with exom explain. *)

module B = Exom_bench.Bench_types
module Suite = Exom_bench.Suite
module Typecheck = Exom_lang.Typecheck
module Demand = Exom_core.Demand
module Oracle = Exom_core.Oracle
module Session = Exom_core.Session
module Recover = Exom_core.Recover
module Pool = Exom_sched.Pool
module Obs = Exom_obs.Obs
module Metrics = Exom_obs.Metrics
module Spine = Exom_obs.Spine
module Export = Exom_obs.Export
module Json = Exom_obs.Json
module Ledger = Exom_ledger.Ledger
module Explain = Exom_ledger.Explain
module Audit = Exom_audit

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let cleanup = ref []

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    let p =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "exom_audit_test_%d_%d" (Unix.getpid ()) !n)
    in
    cleanup := p :: !cleanup;
    p

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let load_ok path =
  match Audit.load path with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s does not load: %s" path e

let audit_ok ?lanes ?tolerance ?legs a b =
  match Audit.audit ?lanes ?tolerance ?legs a b with
  | Ok t -> t
  | Error e -> Alcotest.fail ("audit failed: " ^ e)

(* {2 Fixtures} *)

let fixture =
  lazy
    (let bench = Option.get (Suite.find "gzipsim") in
     let fault = Option.get (Suite.find_fault bench "V2-F3") in
     let faulty = Typecheck.parse_and_check (B.faulty_source bench fault) in
     let correct = Typecheck.parse_and_check bench.B.source in
     let input = fault.B.failing_input in
     let expected = Oracle.expected ~correct_prog:correct ~input in
     (bench, fault, faulty, correct, input, expected))

(* One traced + journaled localization, the way bin/exom runs it. *)
let traced_run ?plan ~jobs journal_path =
  let bench, _, faulty, correct, input, expected = Lazy.force fixture in
  let obs = Obs.create ~trace:true () in
  let ledger = Ledger.create () in
  let session =
    Session.create ~obs ~ledger ~prog:faulty ~input ~expected
      ~profile_inputs:bench.B.test_inputs ()
  in
  (match plan with
  | None -> ()
  | Some p -> Recover.prime session p);
  Ledger.attach_journal ledger journal_path;
  (match plan with
  | None -> ()
  | Some p ->
    Ledger.resume_marker ledger ~replayed:p.Recover.salvaged_events
      ~truncated:p.Recover.truncated);
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input
  in
  let root_sids = B.root_sids bench (let _, f, _, _, _, _ = Lazy.force fixture in f) faulty in
  let pool = Pool.create ~jobs () in
  let report = Demand.locate ~pool session ~oracle ~root_sids in
  Pool.shutdown pool;
  Ledger.close_journal ledger;
  (obs, report)

let trace_file obs =
  let p = fresh_path () in
  write_file p (Json.to_string (Export.chrome_json obs) ^ "\n");
  p

let jsonl_file obs =
  let p = fresh_path () in
  Result.get_ok (Export.write_jsonl p obs);
  p

(* A tiny hand-built span tree, parameterized so the edit classes are
   easy to provoke. *)
let little_obs build =
  let obs = Obs.create ~trace:true () in
  Obs.with_span obs ~cat:"t" "root" (fun () -> build obs);
  obs

let span ?(args = []) obs name =
  Obs.with_span obs ~cat:"t" ~args name (fun () -> ())

(* {2 Loading} *)

let test_load_sniffing () =
  let obs = little_obs (fun obs -> span obs "x") in
  let chrome = load_ok (trace_file obs) in
  Alcotest.(check bool) "chrome trace yields spans" true
    (chrome.Audit.spans <> None);
  Alcotest.(check bool) "chrome trace has no metrics" true
    (chrome.Audit.metrics = None);
  let jsonl = load_ok (jsonl_file obs) in
  Alcotest.(check bool) "jsonl yields spans and metrics" true
    (jsonl.Audit.spans <> None && jsonl.Audit.metrics <> None);
  let ledger = Ledger.create () in
  Ledger.session ledger
    ~wrong:{ Ledger.idx = 0; sid = 1; line = 1; occ = 1 }
    ~vexp:None ~correct_outputs:1 ~budget:10 ~trace_len:5;
  let lpath = fresh_path () in
  write_file lpath (Ledger.to_string ledger);
  let lrun = load_ok lpath in
  Alcotest.(check bool) "ledger yields events" true
    (lrun.Audit.events <> None);
  Alcotest.(check bool) "ledger has no spans" true (lrun.Audit.spans = None);
  match Audit.load (fresh_path ()) with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error _ -> ()

(* {2 The composed verdict} *)

let test_j_invariance_clean () =
  let obs1, r1 = traced_run ~jobs:1 (fresh_path ()) in
  let obs4, r4 = traced_run ~jobs:4 (fresh_path ()) in
  Alcotest.(check bool) "both locate" true
    (r1.Demand.found && r4.Demand.found);
  let a = load_ok (trace_file obs1) and b = load_ok (trace_file obs4) in
  let t = audit_ok ~legs:[ Audit.Spine_leg ] a b in
  Alcotest.(check bool) "-j1 vs -j4 trace audit is clean" true
    (Audit.clean t);
  let out = Audit.render t in
  Alcotest.(check bool) "render says CLEAN" true
    (contains out "verdict: CLEAN");
  Alcotest.(check bool) "render names both runs" true
    (contains out a.Audit.path && contains out b.Audit.path)

let test_reorder_drifts () =
  let base =
    little_obs (fun obs ->
        span obs "x";
        span obs "y")
  in
  let swapped =
    little_obs (fun obs ->
        span obs "y";
        span obs "x")
  in
  let t =
    audit_ok (load_ok (trace_file base)) (load_ok (trace_file swapped))
  in
  Alcotest.(check bool) "reordered siblings are drift" false
    (Audit.clean t);
  let out = Audit.render t in
  Alcotest.(check bool) "edit script names the reorder" true
    (contains out "reordered");
  Alcotest.(check bool) "verdict is DRIFT" true (contains out "verdict: DRIFT")

let test_explicit_leg_must_exist () =
  let obs = little_obs (fun obs -> span obs "x") in
  let a = load_ok (trace_file obs) and b = load_ok (trace_file obs) in
  (match Audit.audit ~legs:[ Audit.Ledger_leg ] a b with
  | Ok _ -> Alcotest.fail "ledger leg on two traces must error"
  | Error e ->
    Alcotest.(check bool) "error names the missing leg" true
      (contains e "ledger"));
  (* without explicit legs the comparable subset is compared instead *)
  let t = audit_ok a b in
  Alcotest.(check bool) "auto mode compares the spine" true
    (t.Audit.spine <> None);
  Alcotest.(check bool) "auto mode skips the absent ledger" true
    (t.Audit.ledger = None)

let test_metric_drift_leg () =
  let reg_file v =
    let m = Metrics.create () in
    Metrics.add m "verify.runs" v;
    let p = fresh_path () in
    Result.get_ok (Export.write_metrics p m);
    p
  in
  let a = load_ok (reg_file 100) and b = load_ok (reg_file 104) in
  let strict = audit_ok ~legs:[ Audit.Metrics_leg ] a b in
  Alcotest.(check bool) "zero tolerance breaches" false (Audit.clean strict);
  Alcotest.(check bool) "render marks the drift" true
    (contains (Audit.render strict) "DRIFT");
  let loose = audit_ok ~tolerance:0.1 ~legs:[ Audit.Metrics_leg ] a b in
  Alcotest.(check bool) "+4% passes at 10% tolerance" true
    (Audit.clean loose)

let test_ledger_leg () =
  let ledger_file wrong_sid =
    let l = Ledger.create () in
    Ledger.session l
      ~wrong:{ Ledger.idx = 0; sid = wrong_sid; line = 1; occ = 1 }
      ~vexp:None ~correct_outputs:1 ~budget:10 ~trace_len:5;
    let p = fresh_path () in
    write_file p (Ledger.to_string l);
    p
  in
  let a = load_ok (ledger_file 1) and b = load_ok (ledger_file 2) in
  let t = audit_ok ~legs:[ Audit.Ledger_leg ] a b in
  Alcotest.(check bool) "diverging ledgers are drift" false (Audit.clean t);
  (match t.Audit.ledger with
  | Some d ->
    Alcotest.(check bool) "first divergence cited" true
      (d.Audit.ld_divergence <> None)
  | None -> Alcotest.fail "ledger leg missing");
  let out = Audit.render t in
  Alcotest.(check bool) "render shows the divergence" true
    (contains out "first divergence at event 0");
  let same = audit_ok ~legs:[ Audit.Ledger_leg ] a (load_ok (ledger_file 1)) in
  Alcotest.(check bool) "identical ledgers are clean" true (Audit.clean same)

(* {2 Resume lineage and the replay story} *)

(* Kill a traced run, resume it into a journal that carries the resume
   marker, kill that journal too: the survivor artifact is exactly what
   a fleet post-mortem starts from. *)
let test_lineage_and_replay_story () =
  let jfull = fresh_path () in
  ignore (traced_run ~jobs:1 jfull);
  let journal0 = read_file jfull in
  (* cut after the first checkpoint *)
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' journal0)
  in
  let cut = ref 0 in
  List.iteri
    (fun i l -> if !cut = 0 && contains l "\"ev\":\"checkpoint\"" then cut := i + 1)
    lines;
  Alcotest.(check bool) "fixture journals a checkpoint" true (!cut > 0);
  let killed1 = fresh_path () in
  write_file killed1
    (String.concat "\n" (List.filteri (fun i _ -> i < !cut) lines) ^ "\n");
  let plan =
    match Recover.plan_of_file killed1 with
    | Ok p -> p
    | Error e -> Alcotest.fail ("no plan: " ^ e)
  in
  let j1 = fresh_path () in
  ignore (traced_run ~plan ~jobs:1 j1);
  (* tear the resumed journal mid-line: its resume marker survives *)
  let journal1 = read_file j1 in
  let killed2 = fresh_path () in
  write_file killed2 (String.sub journal1 0 (String.length journal1 - 9));
  let run = load_ok killed2 in
  Alcotest.(check int) "one resume marker in the lineage" 1
    (List.length (Audit.replay_of run));
  Alcotest.(check bool) "torn journal tail recorded" true
    run.Audit.ledger_torn;
  (* the audit post-mortem cites the lineage *)
  let t = audit_ok ~legs:[ Audit.Ledger_leg ] (load_ok killed2) run in
  let out = Audit.render t in
  Alcotest.(check bool) "lineage section rendered" true
    (contains out "--- Lineage ---");
  Alcotest.(check bool) "resume marker cited" true
    (contains out "resume 1: replayed");
  Alcotest.(check bool) "torn tail cited" true
    (contains out "journal tail torn and dropped");
  (* and exom explain's narrative names replayed vs re-executed spans *)
  let events = Option.get run.Audit.events in
  let story = Explain.render ~replay:(Audit.replay_of run) events in
  Alcotest.(check bool) "replay story rendered" true
    (contains story "--- Resume replay ---");
  Alcotest.(check bool) "replayed batches named" true
    (contains story "replayed without re-execution: verify.batch span");
  (* without markers the section is absent *)
  let plain = Explain.render events in
  Alcotest.(check bool) "no story without markers" false
    (contains plain "Resume replay")

let test_torn_obs_log_lineage () =
  let obs = little_obs (fun obs -> span obs "x") in
  let p = jsonl_file obs in
  let content = read_file p in
  let torn = fresh_path () in
  write_file torn (String.sub content 0 (String.length content - 3));
  let run = load_ok torn in
  (match run.Audit.torn with
  | Some _ -> ()
  | None -> Alcotest.fail "torn obs tail not recorded");
  let t = audit_ok ~legs:[ Audit.Spine_leg ] run (load_ok p) in
  Alcotest.(check bool) "torn obs log cited with line and byte" true
    (contains (Audit.render t) "obs log torn at line")

let () =
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) !cleanup)
    (fun () ->
      Alcotest.run "audit"
        [
          ( "load",
            [ Alcotest.test_case "format sniffing" `Quick test_load_sniffing ]
          );
          ( "verdict",
            [
              Alcotest.test_case "-j1 vs -j4 is clean" `Quick
                test_j_invariance_clean;
              Alcotest.test_case "reorder drifts" `Quick test_reorder_drifts;
              Alcotest.test_case "explicit legs must exist" `Quick
                test_explicit_leg_must_exist;
              Alcotest.test_case "metric drift leg" `Quick
                test_metric_drift_leg;
              Alcotest.test_case "ledger leg" `Quick test_ledger_leg;
            ] );
          ( "lineage",
            [
              Alcotest.test_case "resume markers and replay story" `Quick
                test_lineage_and_replay_story;
              Alcotest.test_case "torn obs log" `Quick
                test_torn_obs_log_lineage;
            ] );
        ])
