(* Tests for the exom_obs observability layer: the metrics registry
   (kinds, merge, rendering), the JSON codec, span recording and lane
   forking, the two exporters (Chrome trace events and the JSONL event
   log) against a real localization, and the observability determinism
   contract — the metric tree with timings suppressed is bit-identical
   at -j1 and -j4. *)

module Obs = Exom_obs.Obs
module Metrics = Exom_obs.Metrics
module Span = Exom_obs.Span
module Export = Exom_obs.Export
module Json = Exom_obs.Json
module Pool = Exom_sched.Pool
module Demand = Exom_core.Demand
module Runner = Exom_bench.Runner
module Suite = Exom_bench.Suite
module B = Exom_bench.Bench_types

(* {2 Metrics registry} *)

let test_metric_kinds () =
  let m = Metrics.create () in
  Metrics.incr m "a.counter";
  Metrics.add m "a.counter" 4;
  Metrics.gauge m "a.gauge" 3;
  Metrics.gauge m "a.gauge" 7;
  Metrics.gauge m "a.gauge" 2;
  Metrics.observe m "a.timer" 0.5;
  Metrics.observe m "a.timer" 1.5;
  Alcotest.(check int) "counter sums" 5 (Metrics.counter_value m "a.counter");
  (match Metrics.find m "a.gauge" with
  | Some g -> Alcotest.(check int) "gauge keeps high water" 7 g.Metrics.value
  | None -> Alcotest.fail "gauge missing");
  Alcotest.(check int) "timer count" 2 (Metrics.timer_count m "a.timer");
  Alcotest.(check (float 1e-9)) "timer sum" 2.0 (Metrics.timer_seconds m "a.timer");
  Alcotest.(check int) "absent name reads 0" 0 (Metrics.counter_value m "nope")

let test_timed_charges_on_raise () =
  let m = Metrics.create () in
  (try Metrics.timed m "t" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "raising observation still counted" 1
    (Metrics.timer_count m "t")

let test_absorb () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a "c" 2;
  Metrics.add b "c" 3;
  Metrics.gauge a "g" 10;
  Metrics.gauge b "g" 4;
  Metrics.observe a "t" 1.0;
  Metrics.observe b "t" 3.0;
  Metrics.observe b "t" 0.5;
  Metrics.absorb ~into:a b;
  Alcotest.(check int) "counters sum" 5 (Metrics.counter_value a "c");
  (match Metrics.find a "g" with
  | Some g -> Alcotest.(check int) "gauges max" 10 g.Metrics.value
  | None -> Alcotest.fail "gauge missing");
  Alcotest.(check int) "timer counts sum" 3 (Metrics.timer_count a "t");
  (match Metrics.find a "t" with
  | Some t ->
    Alcotest.(check (float 1e-9)) "timer min merges" 0.5 t.Metrics.min_s;
    Alcotest.(check (float 1e-9)) "timer max merges" 3.0 t.Metrics.max_s
  | None -> Alcotest.fail "timer missing")

let test_render () =
  let m = Metrics.create () in
  Metrics.add m "verify.queries" 3;
  Metrics.observe m "verify.run" 0.1234;
  Metrics.gauge m "pool.queue_depth" 4;
  let full = Metrics.render m in
  let bare = Metrics.render ~timings:false m in
  let contains ~needle s =
    let n = String.length needle and l = String.length s in
    let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "tree groups by dot path" true
    (contains ~needle:"verify" full && contains ~needle:"queries" full);
  Alcotest.(check bool) "timings shown by default" true
    (contains ~needle:"s total" full);
  Alcotest.(check bool) "timings suppressed on demand" false
    (contains ~needle:"s total" bare);
  Alcotest.(check bool) "counts survive suppression" true
    (contains ~needle:"1 runs" bare)

(* {2 JSON codec} *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\n\tstring \\ here");
        ("n", Json.Num 42.0);
        ("f", Json.Num 1.5);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.0; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  let printed = Json.to_string v in
  match Json.parse printed with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok v' ->
    Alcotest.(check string) "print . parse . print is stable" printed
      (Json.to_string v')

let test_json_errors () =
  let bad s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty input rejected" true (bad "");
  Alcotest.(check bool) "unclosed object rejected" true (bad "{\"a\":1");
  Alcotest.(check bool) "trailing garbage rejected" true (bad "{} {}")

(* {2 Spans and lanes} *)

let test_span_nesting_and_fork () =
  let obs = Obs.create ~trace:true () in
  Obs.with_span obs "a" (fun () ->
      Obs.with_span obs "b" (fun () -> ());
      let w = Obs.fork obs in
      Obs.with_span w "c" (fun () -> ());
      Obs.absorb ~into:obs w);
  let spans = Obs.spans obs in
  let find name = List.find (fun s -> s.Span.name = name) spans in
  let a = find "a" and b = find "b" and c = find "c" in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  Alcotest.(check int) "root span has no parent" (-1) a.Span.parent;
  Alcotest.(check int) "inner span parents to outer" a.Span.id b.Span.parent;
  Alcotest.(check int) "forked lane parents to the open span" a.Span.id
    c.Span.parent;
  Alcotest.(check bool) "forked lane has its own tid" true (c.Span.tid > 0);
  Alcotest.(check int) "coordinator is lane 0" 0 a.Span.tid

let test_disabled_tracing_records_nothing () =
  let obs = Obs.create () in
  Obs.with_span obs "a" (fun () -> Obs.incr obs "c");
  Alcotest.(check int) "no spans without trace:true" 0
    (List.length (Obs.spans obs));
  Alcotest.(check int) "metrics still live" 1
    (Metrics.counter_value (Obs.metrics obs) "c")

(* {2 A real localization, traced} *)

let traced_run =
  lazy
    (let b = Option.get (Suite.find "gzipsim") in
     let f = Option.get (Suite.find_fault b "V2-F3") in
     let obs = Obs.create ~trace:true () in
     let pool = Pool.create ~jobs:2 () in
     let r = Runner.run_fault ~obs ~pool b f in
     Pool.shutdown pool;
     (obs, r))

let test_span_taxonomy () =
  let obs, r = Lazy.force traced_run in
  Alcotest.(check bool) "fault located" true r.Runner.report.Demand.found;
  let spans = Obs.spans obs in
  let all name = List.filter (fun s -> s.Span.name = name) spans in
  let ids name = List.map (fun s -> s.Span.id) (all name) in
  let locates = all "demand.locate" in
  Alcotest.(check int) "one locate span" 1 (List.length locates);
  let locate_id = (List.hd locates).Span.id in
  let iterations = all "demand.iteration" in
  Alcotest.(check bool) "iterations recorded" true (iterations <> []);
  List.iter
    (fun s ->
      Alcotest.(check int) "iteration nests in locate" locate_id s.Span.parent)
    iterations;
  let batches = all "verify.batch" in
  Alcotest.(check bool) "batches recorded" true (batches <> []);
  let iteration_ids = ids "demand.iteration" in
  List.iter
    (fun s ->
      Alcotest.(check bool) "batch nests in an iteration" true
        (List.mem s.Span.parent iteration_ids))
    batches;
  let reexecs = all "verify.reexec" in
  Alcotest.(check bool) "re-executions recorded" true (reexecs <> []);
  let batch_ids = ids "verify.batch" in
  List.iter
    (fun s ->
      Alcotest.(check bool) "re-execution nests in a batch" true
        (List.mem s.Span.parent batch_ids);
      Alcotest.(check bool) "re-execution runs on a worker lane" true
        (s.Span.tid > 0))
    reexecs;
  let reexec_ids = ids "verify.reexec" in
  Alcotest.(check bool) "interpreter runs nest in re-executions" true
    (List.exists
       (fun s -> List.mem s.Span.parent reexec_ids)
       (all "interp.run"))

let test_chrome_export_valid () =
  let obs, _ = Lazy.force traced_run in
  let doc = Json.to_string (Export.chrome_json obs) in
  match Json.parse doc with
  | Error e -> Alcotest.fail ("chrome JSON does not parse: " ^ e)
  | Ok j ->
    Alcotest.(check (option (float 0.0))) "schema version stamped"
      (Some (float_of_int Export.schema_version))
      Option.(bind (Json.member "schemaVersion" j) Json.to_float);
    let events =
      Option.value ~default:[]
        Option.(bind (Json.member "traceEvents" j) Json.to_list)
    in
    Alcotest.(check int) "one event per span" (List.length (Obs.spans obs))
      (List.length events);
    List.iter
      (fun e ->
        Alcotest.(check (option string)) "complete events" (Some "X")
          Option.(bind (Json.member "ph" e) Json.to_str);
        List.iter
          (fun key ->
            Alcotest.(check bool) (key ^ " present") true
              (Json.member key e <> None))
          [ "name"; "cat"; "ts"; "dur"; "pid"; "tid"; "args" ];
        let args = Option.get (Json.member "args" e) in
        Alcotest.(check bool) "args carry structural nesting" true
          (Json.member "id" args <> None && Json.member "parent" args <> None))
      events

let test_jsonl_roundtrip () =
  let obs, _ = Lazy.force traced_run in
  let content = String.concat "\n" (Export.jsonl_lines obs) ^ "\n" in
  (match Export.metrics_of_jsonl content with
  | Error e -> Alcotest.fail ("metrics do not read back: " ^ e)
  | Ok (reg, salvaged) ->
    Alcotest.(check bool) "a complete log needs no salvage" true
      (salvaged = None);
    Alcotest.(check string) "deterministic tree reads back identically"
      (Metrics.render ~timings:false (Obs.metrics obs))
      (Metrics.render ~timings:false reg);
    Alcotest.(check int) "timer counts read back"
      (Metrics.timer_count (Obs.metrics obs) "verify.run")
      (Metrics.timer_count reg "verify.run");
    Alcotest.(check (float 1e-4)) "timer seconds read back"
      (Metrics.timer_seconds (Obs.metrics obs) "verify.run")
      (Metrics.timer_seconds reg "verify.run"));
  (* version skew and foreign schemas are rejected, not misread *)
  let skewed =
    "{\"type\":\"header\",\"schema\":\"exom.obs\",\"version\":99}\n"
  in
  (match Export.metrics_of_jsonl skewed with
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error _ -> ());
  let foreign =
    "{\"type\":\"header\",\"schema\":\"someone.else\",\"version\":1}\n"
  in
  match Export.metrics_of_jsonl foreign with
  | Ok _ -> Alcotest.fail "foreign schema accepted"
  | Error _ -> ()

(* A log whose writer died mid-line is still usable: the truncated
   final record is dropped and flagged.  A malformed line with records
   after it is real corruption and stays an error. *)
let test_jsonl_salvage () =
  let obs, _ = Lazy.force traced_run in
  let content = String.concat "\n" (Export.jsonl_lines obs) ^ "\n" in
  let truncated = String.sub content 0 (String.length content - 7) in
  (match Export.metrics_of_jsonl truncated with
  | Error e -> Alcotest.fail ("truncated tail not salvaged: " ^ e)
  | Ok (reg, salvaged) ->
    (match salvaged with
    | None -> Alcotest.fail "salvage not flagged"
    | Some { Export.torn_line; torn_byte } ->
      (* the torn line is the last one, and the byte offset points at
         its first byte in the truncated content *)
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' truncated)
      in
      Alcotest.(check int) "salvage cites the torn line number"
        (List.length lines) torn_line;
      let last = List.nth lines (List.length lines - 1) in
      Alcotest.(check string) "salvage byte offset locates the torn line"
        last
        (String.sub truncated torn_byte
           (String.length truncated - torn_byte)));
    Alcotest.(check int) "salvaged registry keeps earlier records"
      (Metrics.timer_count (Obs.metrics obs) "verify.run")
      (Metrics.timer_count reg "verify.run"));
  let lines = String.split_on_char '\n' content in
  let corrupted =
    String.concat "\n"
      (List.mapi (fun i l -> if i = 1 then "{\"type\":\"met" else l) lines)
  in
  match Export.metrics_of_jsonl corrupted with
  | Ok _ -> Alcotest.fail "mid-file corruption accepted"
  | Error _ -> ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_render_diff () =
  let a = Metrics.create () in
  let b = Metrics.create () in
  Metrics.add a "interp.runs" 10;
  Metrics.add b "interp.runs" 12;
  Metrics.add b "store.hits" 3;
  let out = Metrics.render_diff ~timings:false a b in
  Alcotest.(check bool) "lists both registries' union" true
    (contains out "interp.runs" && contains out "store.hits");
  Alcotest.(check bool) "shows the delta" true (contains out "+2")

(* {2 The deterministic span spine} *)

module Spine = Exom_obs.Spine

(* A tiny hand-built span tree: root(a) { b {args}, worker-lane c }. *)
let little_tree () =
  let obs = Obs.create ~trace:true () in
  Obs.with_span obs ~cat:"t" "a" (fun () ->
      Obs.with_span obs ~cat:"t" ~args:[ ("k", "v") ] "b" (fun () -> ());
      let w = Obs.fork obs in
      Obs.with_span w ~cat:"t" "c" (fun () -> ());
      Obs.absorb ~into:obs w);
  Obs.spans obs

let test_spine_projection () =
  let spans = little_tree () in
  let all = Spine.of_spans spans in
  let coord = Spine.of_spans ~lanes:Spine.Coordinator spans in
  Alcotest.(check int) "all lanes keep every span" 3 (Spine.size all);
  Alcotest.(check int) "coordinator drops worker lanes" 2 (Spine.size coord);
  (match all.Spine.roots with
  | [ a ] ->
    Alcotest.(check string) "root name" "a" a.Spine.name;
    Alcotest.(check (list string)) "children in ordinal order" [ "b"; "c" ]
      (List.map (fun n -> n.Spine.name) a.Spine.children);
    (match a.Spine.children with
    | [ b; c ] ->
      Alcotest.(check (list (pair string string))) "args kept, sorted"
        [ ("k", "v") ] b.Spine.args;
      Alcotest.(check int) "worker lane recorded" 1 c.Spine.lane
    | _ -> Alcotest.fail "expected two children")
  | _ -> Alcotest.fail "expected one root");
  match coord.Spine.roots with
  | [ a ] ->
    Alcotest.(check (list string)) "coordinator projection keeps lane 0"
      [ "b" ]
      (List.map (fun n -> n.Spine.name) a.Spine.children)
  | _ -> Alcotest.fail "expected one coordinator root"

let test_spine_codec () =
  let spine = Spine.of_spans (little_tree ()) in
  (match Spine.of_string (Spine.to_string spine) with
  | Error e -> Alcotest.fail ("spine does not read back: " ^ e)
  | Ok spine' ->
    Alcotest.(check bool) "round-trip preserves the spine" true
      (Spine.equal spine spine');
    Alcotest.(check string) "codec is stable" (Spine.to_string spine)
      (Spine.to_string spine'));
  (match Spine.of_string "{\"schema\":\"someone.else\",\"version\":1}" with
  | Ok _ -> Alcotest.fail "foreign schema accepted"
  | Error _ -> ());
  match Spine.of_string "{\"schema\":\"exom.spine\",\"version\":99}" with
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error _ -> ()

(* Every edit class, from hand-built trees. *)
let test_spine_diff_edits () =
  let tree build =
    let obs = Obs.create ~trace:true () in
    Obs.with_span obs ~cat:"t" "root" (fun () -> build obs);
    Spine.of_spans (Obs.spans obs)
  in
  let span ?(args = []) obs name =
    Obs.with_span obs ~cat:"t" ~args name (fun () -> ())
  in
  let base =
    tree (fun obs ->
        span obs "x";
        span obs "y";
        span ~args:[ ("pairs", "3") ] obs "z")
  in
  (* removed + added *)
  let grown =
    tree (fun obs ->
        span obs "x";
        span ~args:[ ("pairs", "3") ] obs "z";
        span obs "w")
  in
  let edits = Spine.diff base grown in
  Alcotest.(check bool) "y removed" true
    (List.exists
       (function Spine.Removed { path; _ } -> contains path "y" | _ -> false)
       edits);
  Alcotest.(check bool) "w added" true
    (List.exists
       (function Spine.Added { path; _ } -> contains path "w" | _ -> false)
       edits);
  (* reordered *)
  let swapped =
    tree (fun obs ->
        span obs "y";
        span obs "x";
        span ~args:[ ("pairs", "3") ] obs "z")
  in
  Alcotest.(check bool) "sibling swap is a reorder" true
    (List.exists
       (function Spine.Reordered _ -> true | _ -> false)
       (Spine.diff base swapped));
  (* args changed *)
  let retuned =
    tree (fun obs ->
        span obs "x";
        span obs "y";
        span ~args:[ ("pairs", "5") ] obs "z")
  in
  (match Spine.diff base retuned with
  | [ Spine.Args_changed { key; older; newer; _ } ] ->
    Alcotest.(check string) "arg key" "pairs" key;
    Alcotest.(check string) "older value" "3" older;
    Alcotest.(check string) "newer value" "5" newer
  | edits ->
    Alcotest.fail
      (Printf.sprintf "expected one args edit, got:\n%s"
         (Spine.render_edits edits)));
  (* moved: an identical subtree reparented is one Moved, not
     removed + added *)
  let under_x =
    tree (fun obs ->
        Obs.with_span obs ~cat:"t" "x" (fun () -> span obs "leaf");
        span obs "y")
  in
  let under_y =
    tree (fun obs ->
        span obs "x";
        Obs.with_span obs ~cat:"t" "y" (fun () -> span obs "leaf"))
  in
  (match Spine.diff under_x under_y with
  | [ Spine.Moved { from_path; to_path; _ } ] ->
    Alcotest.(check bool) "moved cites both paths" true
      (contains from_path "x" && contains to_path "y")
  | edits ->
    Alcotest.fail
      (Printf.sprintf "expected one move, got:\n%s"
         (Spine.render_edits edits)));
  (* identical spines: empty script, fixed sentence *)
  Alcotest.(check int) "no edits on equal spines" 0
    (List.length (Spine.diff base base));
  Alcotest.(check bool) "empty script renders the fixed sentence" true
    (contains (Spine.render_edits []) "identical")

let test_spine_edit_script_readable () =
  let out =
    Spine.render_edits
      (Spine.diff
         (Spine.of_spans (little_tree ()))
         (Spine.of_spans []))
  in
  Alcotest.(check bool) "paths are slash-joined from the root" true
    (contains out "/a");
  Alcotest.(check bool) "script ends with a count" true (contains out "edit")

(* {2 Metric drift} *)

let test_drift_tolerance_and_direction () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a "verify.runs" 100;
  Metrics.add b "verify.runs" 104;
  Metrics.add a "store.hits" 50;
  Metrics.add b "store.hits" 40;
  Metrics.add a "steady" 7;
  Metrics.add b "steady" 7;
  (* default: any movement breaches, unmoved metrics are not reported *)
  let strict = Metrics.drift a b in
  Alcotest.(check int) "only moved metrics reported" 2 (List.length strict);
  Alcotest.(check bool) "zero tolerance breaches" true
    (Metrics.has_drift strict);
  (* 10% tolerance forgives the +4% but not the -20% *)
  let loose = Metrics.drift ~tolerance:0.1 a b in
  let breached =
    List.filter_map
      (fun f -> if f.Metrics.d_breach then Some f.Metrics.d_name else None)
      loose
  in
  Alcotest.(check (list string)) "only the large movement breaches"
    [ "store.hits" ] breached;
  (* direction-aware: hits shrinking is drift, runs shrinking is not *)
  let direction_of name =
    if name = "store.hits" then Metrics.Down else Metrics.Up
  in
  let down = Metrics.drift ~tolerance:0.1 ~direction_of b a in
  (* b -> a: runs shrink 104->100 (Up: ignored), hits grow 40->50
     (Down: ignored) *)
  Alcotest.(check bool) "movements against the counted direction pass"
    false
    (Metrics.has_drift down)

let test_drift_appearance_is_infinite () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add b "fresh" 3;
  (match Metrics.drift ~tolerance:1e6 a b with
  | [ f ] ->
    Alcotest.(check string) "appearing metric reported" "fresh"
      f.Metrics.d_name;
    Alcotest.(check bool) "appearance breaches any finite tolerance" true
      (f.Metrics.d_rel = infinity && f.Metrics.d_breach)
  | _ -> Alcotest.fail "expected exactly the appearing metric");
  let out = Metrics.render_drift (Metrics.drift a b) in
  Alcotest.(check bool) "breaches marked DRIFT" true (contains out "DRIFT")

(* {2 Observability determinism: -j1 vs -j4} *)

let metric_tree jobs =
  let b = Option.get (Suite.find "gzipsim") in
  let f = Option.get (Suite.find_fault b "V2-F3") in
  let obs = Obs.create () in
  let pool = Pool.create ~jobs () in
  let r = Runner.run_fault ~obs ~pool b f in
  Pool.shutdown pool;
  (Metrics.render ~timings:false (Obs.metrics obs), r)

let test_metric_tree_determinism () =
  let t1, r1 = metric_tree 1 in
  let t4, r4 = metric_tree 4 in
  Alcotest.(check bool) "both locate" true
    (r1.Runner.report.Demand.found && r4.Runner.report.Demand.found);
  Alcotest.(check string) "metric trees identical at -j1 and -j4" t1 t4

(* Lanes and span ids are assigned on the coordinator in submission
   order, so the whole spine — not just the metric tree — is
   j-invariant. *)
let traced_spine jobs =
  let b = Option.get (Suite.find "gzipsim") in
  let f = Option.get (Suite.find_fault b "V2-F3") in
  let obs = Obs.create ~trace:true () in
  let pool = Pool.create ~jobs () in
  ignore (Runner.run_fault ~obs ~pool b f);
  Pool.shutdown pool;
  Spine.of_spans (Obs.spans obs)

let test_spine_j_invariance () =
  let s1 = traced_spine 1 in
  let s4 = traced_spine 4 in
  Alcotest.(check int) "edit script empty at -j1 vs -j4" 0
    (List.length (Spine.diff s1 s4));
  Alcotest.(check string) "spine codec byte-identical at -j1 and -j4"
    (Spine.to_string s1) (Spine.to_string s4)

(* The registry is the single accounting path: the report's counters
   are views of it. *)
let test_report_reads_registry () =
  let obs, r = Lazy.force traced_run in
  let m = Obs.metrics obs in
  Alcotest.(check int) "verifications = verify.run count"
    r.Runner.report.Demand.verifications
    (Metrics.timer_count m "verify.run");
  Alcotest.(check int) "queries = verify.queries"
    r.Runner.report.Demand.verify_queries
    (Metrics.counter_value m "verify.queries");
  Alcotest.(check int) "guard sync matches robustness"
    r.Runner.report.Demand.robustness.Exom_core.Guard.completed
    (Metrics.counter_value m "guard.completed");
  Alcotest.(check bool) "store mirrored live" true
    (Metrics.counter_value m "store.misses"
     = r.Runner.report.Demand.store.Exom_sched.Store.misses)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "kinds" `Quick test_metric_kinds;
          Alcotest.test_case "timed charges on raise" `Quick
            test_timed_charges_on_raise;
          Alcotest.test_case "absorb" `Quick test_absorb;
          Alcotest.test_case "render" `Quick test_render;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and forks" `Quick
            test_span_nesting_and_fork;
          Alcotest.test_case "disabled tracing" `Quick
            test_disabled_tracing_records_nothing;
        ] );
      ( "export",
        [
          Alcotest.test_case "span taxonomy" `Quick test_span_taxonomy;
          Alcotest.test_case "chrome trace events" `Quick
            test_chrome_export_valid;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl salvage" `Quick test_jsonl_salvage;
          Alcotest.test_case "render diff" `Quick test_render_diff;
          Alcotest.test_case "report reads registry" `Quick
            test_report_reads_registry;
        ] );
      ( "spine",
        [
          Alcotest.test_case "projection" `Quick test_spine_projection;
          Alcotest.test_case "codec" `Quick test_spine_codec;
          Alcotest.test_case "diff edit classes" `Quick test_spine_diff_edits;
          Alcotest.test_case "edit script readable" `Quick
            test_spine_edit_script_readable;
        ] );
      ( "drift",
        [
          Alcotest.test_case "tolerance and direction" `Quick
            test_drift_tolerance_and_direction;
          Alcotest.test_case "appearance is infinite" `Quick
            test_drift_appearance_is_infinite;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j1 vs -j4 metric tree" `Quick
            test_metric_tree_determinism;
          Alcotest.test_case "-j1 vs -j4 spine" `Quick
            test_spine_j_invariance;
        ] );
    ]
