(* Tests for the Exom_sched subsystem: the verdict store (round-trip,
   LRU, corruption rejection), the domain pool and batch planner, and
   the scheduler's determinism contract — localization reports are
   bit-identical at -j1 and -j4, and warm-store reruns reproduce the
   cold localization without a single re-execution. *)

module Pool = Exom_sched.Pool
module Batch = Exom_sched.Batch
module Store = Exom_sched.Store
module Metrics = Exom_obs.Metrics
module Demand = Exom_core.Demand
module Slice = Exom_ddg.Slice
module B = Exom_bench.Bench_types
module Runner = Exom_bench.Runner
module Suite = Exom_bench.Suite

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "exom_store_test_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

(* {2 Store} *)

let test_digest () =
  Alcotest.(check string)
    "deterministic"
    (Store.digest [ "a"; "bc" ])
    (Store.digest [ "a"; "bc" ]);
  Alcotest.(check bool)
    "length-prefixed parts do not collide" false
    (Store.digest [ "ab"; "c" ] = Store.digest [ "a"; "bc" ]);
  Alcotest.(check bool)
    "part count matters" false
    (Store.digest [ "abc" ] = Store.digest [ "abc"; "" ])

let test_memory_round_trip () =
  let s = Store.create () in
  let k = Store.digest [ "k" ] in
  Alcotest.(check (option string)) "miss before add" None (Store.find s k);
  Store.add s ~key:k "payload";
  Alcotest.(check (option string))
    "hit after add" (Some "payload") (Store.find s k);
  Store.add s ~key:k "replaced";
  Alcotest.(check (option string))
    "add replaces" (Some "replaced") (Store.find s k);
  let st = Store.stats s in
  Alcotest.(check int) "two hits" 2 st.Store.hits;
  Alcotest.(check int) "one miss" 1 st.Store.misses;
  Alcotest.(check int) "no disk writes without a dir" 0 st.Store.writes

let test_lru_eviction () =
  let s = Store.create ~capacity:2 () in
  let k i = Store.digest [ string_of_int i ] in
  Store.add s ~key:(k 1) "one";
  Store.add s ~key:(k 2) "two";
  (* touch 1 so 2 becomes the LRU victim *)
  ignore (Store.find s (k 1));
  Store.add s ~key:(k 3) "three";
  Alcotest.(check int) "capacity respected" 2 (Store.mem_size s);
  Alcotest.(check (option string))
    "recently used survives" (Some "one")
    (Store.find s (k 1));
  Alcotest.(check (option string)) "LRU evicted" None (Store.find s (k 2));
  Alcotest.(check (option string))
    "newcomer present" (Some "three")
    (Store.find s (k 3));
  Alcotest.(check int) "one eviction" 1 (Store.stats s).Store.evictions

let test_disk_round_trip () =
  with_temp_dir (fun dir ->
      let k = Store.digest [ "persisted" ] in
      let s1 = Store.create ~dir () in
      Store.add s1 ~key:k "the payload\nwith a newline";
      Alcotest.(check int) "written" 1 (Store.stats s1).Store.writes;
      (* a fresh store over the same dir: miss in memory, hit on disk *)
      let s2 = Store.create ~dir () in
      Alcotest.(check (option string))
        "disk hit" (Some "the payload\nwith a newline")
        (Store.find s2 k);
      Alcotest.(check int) "counted as disk hit" 1
        (Store.stats s2).Store.disk_hits;
      (* promoted to memory: second lookup is a memory hit *)
      ignore (Store.find s2 k);
      Alcotest.(check int) "promoted" 1 (Store.stats s2).Store.hits)

(* Entry files only: skip the layout's own bookkeeping (MANIFEST,
   shard locks, quarantine). *)
let entry_files dir =
  let files = ref [] in
  let rec walk p =
    if Filename.basename p = "quarantine" then ()
    else if Sys.is_directory p then
      Array.iter (fun f -> walk (Filename.concat p f)) (Sys.readdir p)
    else
      let b = Filename.basename p in
      if b <> "MANIFEST" && not (Filename.check_suffix b ".lock") then
        files := p :: !files
  in
  walk dir;
  List.sort compare !files

let entry_file dir =
  (* the single entry's file, wherever the shard put it *)
  match entry_files dir with
  | [ f ] -> f
  | l -> Alcotest.failf "expected one entry file, found %d" (List.length l)

let corrupt_with dir content =
  let path = entry_file dir in
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let test_corrupted_rejected () =
  let try_corruption content =
    with_temp_dir (fun dir ->
        let k = Store.digest [ "x" ] in
        let s1 = Store.create ~dir () in
        Store.add s1 ~key:k "value";
        corrupt_with dir content;
        let s2 = Store.create ~dir () in
        let r = Store.find s2 k in
        Alcotest.(check (option string)) "rejected" None r;
        Alcotest.(check int) "counted corrupted" 1
          (Store.stats s2).Store.corrupted)
  in
  try_corruption "garbage";
  try_corruption "#exom-store v999\nwrongversion\n5\nvalue";
  (* right header, wrong key echo (a renamed/swapped file) *)
  try_corruption
    (Printf.sprintf "#exom-store v%d\n%s\n5\nvalue" Store.version
       (Store.digest [ "other" ]));
  (* truncated payload *)
  try_corruption
    (Printf.sprintf "#exom-store v%d\n%s\n100\nshort" Store.version
       (Store.digest [ "x" ]))

let test_hit_rate () =
  let s = Store.create () in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Store.hit_rate (Store.stats s));
  let k = Store.digest [ "k" ] in
  ignore (Store.find s k);
  Store.add s ~key:k "v";
  ignore (Store.find s k);
  Alcotest.(check (float 1e-9)) "1 hit / 2 lookups" 0.5
    (Store.hit_rate (Store.stats s))

(* {2 Multi-writer disk tier: manifest, locks, quarantine} *)

let test_manifest_governs_layout () =
  with_temp_dir (fun dir ->
      let s1 = Store.create ~dir ~shards:4 () in
      Alcotest.(check int) "requested shards adopted" 4 (Store.shard_count s1);
      Alcotest.(check bool) "manifest written" true
        (Sys.file_exists (Filename.concat dir "MANIFEST"));
      (* a second writer asking for a different partitioning must defer
         to the manifest, or the two would shard incompatibly *)
      let s2 = Store.create ~dir ~shards:32 () in
      Alcotest.(check int) "existing manifest wins" 4 (Store.shard_count s2);
      let k = Store.digest [ "cross" ] in
      Store.add s1 ~key:k "payload";
      Alcotest.(check (option string))
        "entry visible across handles" (Some "payload") (Store.find s2 k))

let test_foreign_layout_quarantined () =
  with_temp_dir (fun dir ->
      (* a directory claiming an alien layout, with content laid out
         under it: adopt nothing, quarantine everything, keep going *)
      Sys.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir "MANIFEST") in
      output_string oc "{\"schema\":\"someone-elses-cache\",\"version\":9}\n";
      close_out oc;
      Sys.mkdir (Filename.concat dir "shard-000") 0o755;
      let oc = open_out (Filename.concat dir "shard-000" ^ "/orphan") in
      output_string oc "alien bytes";
      close_out oc;
      let s = Store.create ~dir () in
      Alcotest.(check bool) "foreign content quarantined" true
        ((Store.lock_stats s).Store.lock_waits >= 0
        && (Store.lock_stats s).Store.quarantined >= 2);
      Alcotest.(check bool) "directory reinitialized" true
        (Sys.file_exists (Filename.concat dir "MANIFEST"));
      Alcotest.(check int) "fresh manifest adopted" Store.default_shards
        (Store.shard_count s);
      (* the store works normally afterwards *)
      let k = Store.digest [ "after" ] in
      Store.add s ~key:k "v";
      Alcotest.(check (option string)) "usable" (Some "v") (Store.find s k))

let test_stale_tmp_lock_swept () =
  with_temp_dir (fun dir ->
      (* a stealer crashed between its rename steps and a writer killed
         mid-entry leave pid-stamped litter behind; once their pids are
         dead, the next open sweeps both — live litter is left alone *)
      let k = Store.digest [ "sweep" ] in
      let s1 = Store.create ~dir () in
      Store.add s1 ~key:k "v";
      let drop path =
        let oc = open_out_bin path in
        close_out oc;
        path
      in
      (* far above any real pid_max, so provably dead *)
      let dead = 99_999_999 in
      let orphan_lock =
        drop (Filename.concat dir (Printf.sprintf "e.lock.stale.%d.3" dead))
      in
      let shard0 = Filename.concat dir "shard-000" in
      if not (Sys.file_exists shard0) then Unix.mkdir shard0 0o755;
      let orphan_tmp =
        drop (Filename.concat shard0 (Printf.sprintf "deadbeef.tmp.%d" dead))
      in
      let live_lock =
        drop
          (Filename.concat dir
             (Printf.sprintf "e.lock.stale.%d.1" (Unix.getpid ())))
      in
      let s2 = Store.create ~dir () in
      Alcotest.(check int) "both orphans counted" 2
        (Store.lock_stats s2).Store.tmp_swept;
      Alcotest.(check bool) "orphaned stale lock removed" false
        (Sys.file_exists orphan_lock);
      Alcotest.(check bool) "orphaned entry temp removed" false
        (Sys.file_exists orphan_tmp);
      Alcotest.(check bool) "live writer's litter untouched" true
        (Sys.file_exists live_lock);
      (* the swept store still serves the persisted entry *)
      Alcotest.(check (option string)) "store intact" (Some "v")
        (Store.find s2 k))

let test_corrupt_entry_quarantined () =
  with_temp_dir (fun dir ->
      let k = Store.digest [ "x" ] in
      let s1 = Store.create ~dir () in
      Store.add s1 ~key:k "value";
      corrupt_with dir "garbage";
      let s2 = Store.create ~dir () in
      Alcotest.(check (option string)) "rejected" None (Store.find s2 k);
      Alcotest.(check int) "moved aside" 1
        (Store.lock_stats s2).Store.quarantined;
      Alcotest.(check (list string)) "no entry left in the shard" []
        (entry_files dir);
      Alcotest.(check bool) "preserved for post-mortem" true
        (Sys.file_exists (Filename.concat dir "quarantine")
        && Sys.readdir (Filename.concat dir "quarantine") <> [||]);
      (* a second lookup is a clean miss, not a second corruption *)
      ignore (Store.find s2 k);
      Alcotest.(check int) "counted once" 1 (Store.stats s2).Store.corrupted)

(* A writer that died holding a shard lock must not wedge the cache:
   the pid in the lock is provably dead, so the next writer steals. *)
let test_dead_holder_lock_stolen () =
  with_temp_dir (fun dir ->
      let s = Store.create ~dir ~shards:1 () in
      let dead_pid =
        match Unix.fork () with
        | 0 -> Unix._exit 0
        | pid ->
          ignore (Unix.waitpid [] pid);
          pid
      in
      let lock = Filename.concat dir "shard-000.lock" in
      let oc = open_out lock in
      output_string oc (string_of_int dead_pid);
      close_out oc;
      let k = Store.digest [ "steal-me" ] in
      Store.add s ~key:k "v";
      Alcotest.(check int) "stolen immediately" 1
        (Store.lock_stats s).Store.lock_steals;
      Alcotest.(check (option string))
        "write went through" (Some "v")
        (Store.find (Store.create ~dir ()) k))

(* A live-but-wedged holder is stolen from once the lease expires. *)
let test_expired_lease_stolen () =
  with_temp_dir (fun dir ->
      let s = Store.create ~dir ~shards:1 ~lease:0.05 () in
      let lock = Filename.concat dir "shard-000.lock" in
      let oc = open_out lock in
      (* our own pid: alive, so only the lease can unstick this *)
      output_string oc (string_of_int (Unix.getpid ()));
      close_out oc;
      let past = Unix.gettimeofday () -. 10.0 in
      Unix.utimes lock past past;
      let k = Store.digest [ "lease" ] in
      Store.add s ~key:k "v";
      Alcotest.(check int) "stolen after the lease" 1
        (Store.lock_stats s).Store.lock_steals)

(* The acceptance test: two processes hammering one store directory
   concurrently lose no entries, corrupt no shards, and agree with the
   single-process result. *)
let test_two_process_hammer () =
  with_temp_dir (fun dir ->
      let n = 200 in
      let key i = Store.digest [ "hammer"; string_of_int i ] in
      let value i = Printf.sprintf "verdict-%d\nwith a newline" i in
      let child seed =
        match Unix.fork () with
        | 0 ->
          let ok =
            try
              let s = Store.create ~dir ~shards:8 () in
              (* interleave writes and reads over the shared keyspace,
                 each child starting from a different offset *)
              for j = 0 to n - 1 do
                let i = (j + seed) mod n in
                Store.add s ~key:(key i) (value i);
                ignore (Store.find s (key ((i + 7) mod n)))
              done;
              (Store.stats s).Store.corrupted = 0
            with _ -> false
          in
          Unix._exit (if ok then 0 else 1)
        | pid -> pid
      in
      let pids = [ child 0; child 101 ] in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, _ -> Alcotest.fail "hammer child failed")
        pids;
      (* no torn temp files, no stuck locks, nothing quarantined *)
      let leftovers =
        entry_files dir
        |> List.filter (fun f ->
               let b = Filename.basename f in
               not (String.length b = 32))
      in
      Alcotest.(check (list string)) "no temp litter" [] leftovers;
      Alcotest.(check bool) "no quarantine" true
        (not (Sys.file_exists (Filename.concat dir "quarantine")));
      (* every entry present, uncorrupted, and equal to what one
         process writing alone would have produced *)
      let survivor = Store.create ~dir () in
      for i = 0 to n - 1 do
        Alcotest.(check (option string))
          (Printf.sprintf "entry %d survives" i)
          (Some (value i))
          (Store.find survivor (key i))
      done;
      Alcotest.(check int) "no corruption" 0
        (Store.stats survivor).Store.corrupted;
      with_temp_dir (fun solo_dir ->
          let solo = Store.create ~dir:solo_dir ~shards:8 () in
          for i = 0 to n - 1 do
            Store.add solo ~key:(key i) (value i)
          done;
          let names d =
            entry_files d |> List.map Filename.basename |> List.sort compare
          in
          Alcotest.(check (list string))
            "same entries as the single-process run" (names solo_dir)
            (names dir)))

(* {2 Pool and Batch} *)

let test_pool_inline () =
  let p = Pool.create ~jobs:1 () in
  Alcotest.(check int) "one job" 1 (Pool.jobs p);
  let acc = ref [] in
  Pool.run p (List.map (fun i () -> acc := i :: !acc) [ 1; 2; 3 ]);
  (* jobs=1 runs inline, in order *)
  Alcotest.(check (list int)) "inline, in order" [ 3; 2; 1 ] !acc;
  Pool.shutdown p

let test_pool_parallel_completes () =
  let p = Pool.create ~jobs:4 () in
  let n = 100 in
  let hits = Array.make n false in
  Pool.run p (List.init n (fun i () -> hits.(i) <- true));
  Alcotest.(check bool) "every task ran" true (Array.for_all Fun.id hits);
  (* reusable across run calls *)
  let count = Atomic.make 0 in
  Pool.run p (List.init n (fun _ () -> Atomic.incr count));
  Alcotest.(check int) "second wave" n (Atomic.get count);
  Pool.shutdown p;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      Pool.run p [ (fun () -> ()) ])

let test_batch_order_and_errors () =
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs () in
      let tasks =
        List.init 20 (fun i () ->
            if i = 7 then failwith "boom" else i * 10)
      in
      let results = Batch.run_tasks p tasks in
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "submission order" (i * 10) v
          | Error (Failure msg) ->
            Alcotest.(check int) "only the failing slot" 7 i;
            Alcotest.(check string) "its exception" "boom" msg
          | Error e -> raise e)
        results;
      Pool.shutdown p)
    [ 1; 4 ]

let test_batch_cancel () =
  let p = Pool.create ~jobs:1 () in
  let ran = ref 0 in
  let results =
    Batch.run_tasks
      ~cancel:(fun () -> !ran >= 2)
      p
      (List.init 5 (fun i () ->
           incr ran;
           i))
  in
  Alcotest.(check int) "stopped after two" 2 !ran;
  Alcotest.(check int) "cancelled slots" 3
    (List.length
       (List.filter (function Error Batch.Cancelled -> true | _ -> false)
          results));
  Pool.shutdown p

let test_group_by_stable () =
  let groups =
    Batch.group_by ~key:(fun x -> x mod 3) [ 5; 3; 1; 4; 6; 2; 8 ]
  in
  Alcotest.(check (list (pair int (list int))))
    "keys by first occurrence, items in input order"
    [ (2, [ 5; 2; 8 ]); (0, [ 3; 6 ]); (1, [ 1; 4 ]) ]
    groups

(* The verification accounting contract formerly held by Tally, now
   carried by the verify.run timer of the metrics registry. *)
let test_verify_accounting () =
  let m = Metrics.create () in
  let v = Metrics.timed m "verify.run" (fun () -> 42) in
  Alcotest.(check int) "returns" 42 v;
  (try Metrics.timed m "verify.run" (fun () -> failwith "x")
   with Failure _ -> ());
  Alcotest.(check int) "raising runs still counted" 2
    (Metrics.timer_count m "verify.run");
  Alcotest.(check bool) "wall clock advances" true
    (Metrics.timer_seconds m "verify.run" >= 0.0);
  let into = Metrics.create () in
  Metrics.add into "verify.queries" 5;
  Metrics.absorb ~into m;
  Alcotest.(check int) "absorb sums" 2 (Metrics.timer_count into "verify.run");
  Alcotest.(check int) "absorb keeps counters" 5
    (Metrics.counter_value into "verify.queries")

(* {2 Supervision: worker death, quarantine, degraded pools} *)

module Chaos = Exom_interp.Chaos

let kill () = raise (Chaos.Killed_worker "test")

(* A task that kills every executor it lands on is quarantined after
   [default_quarantine_after] consecutive kills — identically at -j1
   (inline retries) and -j4 (real domain deaths) — while every other
   task still completes in its slot. *)
let test_quarantine_j_invariant () =
  let outcome jobs =
    let p = Pool.create ~jobs () in
    let tasks =
      List.init 9 (fun i () -> if i = 4 then kill () else i * 10)
    in
    let results = Batch.run_tasks ~fatal:Chaos.is_fatal p tasks in
    let sup = Pool.supervision p in
    Pool.shutdown p;
    (results, sup.Pool.kills, sup.Pool.dropped)
  in
  let check jobs =
    let results, kills, dropped = outcome jobs in
    List.iteri
      (fun i r ->
        match r with
        | Ok v -> Alcotest.(check int) "healthy slot" (i * 10) v
        | Error (Batch.Quarantined k) ->
          Alcotest.(check int) "only the killer slot" 4 i;
          Alcotest.(check int) "quarantined at the threshold"
            Batch.default_quarantine_after k
        | Error e -> raise e)
      results;
    (* the final raise is contained by the quarantine, so the pool sees
       one executor kill fewer than the slot's raise count *)
    Alcotest.(check int)
      (Printf.sprintf "kill count deterministic at -j%d" jobs)
      (Batch.default_quarantine_after - 1)
      kills;
    Alcotest.(check int) "quarantine preempts the pool's drop" 0 dropped;
    (results, kills)
  in
  Alcotest.(check bool)
    "-j1 and -j4 agree on every slot" true
    (check 1 = check 4)

(* A transient killer — takes one executor down, then succeeds on the
   requeued attempt.  The supervisor adopts the orphan; the task ends
   [Ok], not quarantined. *)
let test_transient_kill_recovers () =
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs () in
      let first = Atomic.make true in
      let tasks =
        List.init 6 (fun i () ->
            if i = 2 && Atomic.exchange first false then kill () else i)
      in
      let results = Batch.run_tasks ~fatal:Chaos.is_fatal p tasks in
      List.iteri
        (fun i r ->
          match r with
          | Ok v ->
            Alcotest.(check int)
              (Printf.sprintf "slot %d recovered (-j%d)" i jobs)
              i v
          | Error e -> raise e)
        results;
      Alcotest.(check int) "one kill recorded" 1 (Pool.supervision p).Pool.kills;
      Pool.shutdown p)
    [ 1; 4 ]

(* With a zero respawn budget the pool cannot replace dead domains: it
   degrades toward the coordinator draining alone — but still completes
   every task and flags the degradation.  A rendezvous barrier forces
   all four executors (coordinator + 3 workers) to hold a task at once;
   the three on worker domains then die, so the degradation is not at
   the mercy of which executor happened to pick the killer up. *)
let test_degraded_pool_completes () =
  let p = Pool.create ~jobs:4 ~respawn_budget:0 () in
  let coord = Domain.self () in
  let arrived = Atomic.make 0 in
  let tasks =
    List.init 4 (fun i () ->
        Atomic.incr arrived;
        while Atomic.get arrived < 4 do
          Domain.cpu_relax ()
        done;
        (* requeued orphans land on the coordinator, which survives *)
        if Domain.self () <> coord then kill ();
        i)
  in
  let results = Batch.run_tasks ~fatal:Chaos.is_fatal p tasks in
  let sup = Pool.supervision p in
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "completed despite the kills" i v
      | Error e -> raise e)
    results;
  Alcotest.(check int) "three workers died" 3 sup.Pool.kills;
  Alcotest.(check int) "no respawns without budget" 0 sup.Pool.respawns;
  Alcotest.(check bool) "degradation flagged" true sup.Pool.degraded;
  Pool.shutdown p

(* The observability contract: pool.kills and pool.quarantined land in
   the metric tree with the same deterministic values at any -j. *)
let test_supervision_obs () =
  let counters jobs =
    let obs = Exom_obs.Obs.create () in
    let p = Pool.create ~jobs () in
    let tasks = List.init 5 (fun i () -> if i = 1 then kill () else i) in
    ignore (Batch.run_tasks ~obs ~fatal:Chaos.is_fatal p tasks);
    Pool.shutdown p;
    let m = Exom_obs.Obs.metrics obs in
    (Metrics.counter_value m "pool.kills",
     Metrics.counter_value m "pool.quarantined")
  in
  let k1, q1 = counters 1 in
  Alcotest.(check int) "kills counted"
    (Batch.default_quarantine_after - 1)
    k1;
  Alcotest.(check int) "one quarantined slot" 1 q1;
  Alcotest.(check bool) "-j4 metrics identical" true ((k1, q1) = counters 4)

(* {2 Determinism: -j1 vs -j4, warm vs cold} *)

let fault_of name fid =
  let b = Option.get (Suite.find name) in
  (b, Option.get (Suite.find_fault b fid))

(* What a localization claims, minus timings. *)
let locate_sig (r : Runner.result) =
  let rep = r.Runner.report in
  ( rep.Demand.found, rep.Demand.user_prunings, rep.Demand.total_prunings,
    rep.Demand.iterations, rep.Demand.expanded_edges,
    rep.Demand.implicit_edges, rep.Demand.benign,
    Slice.sids rep.Demand.ips, Slice.sids rep.Demand.ds,
    Slice.sids rep.Demand.ps0, rep.Demand.os_chain )

(* Cold runs additionally promise identical accounting. *)
let full_sig (r : Runner.result) =
  let rep = r.Runner.report in
  ( locate_sig r, rep.Demand.verifications, rep.Demand.verify_queries,
    rep.Demand.robustness, rep.Demand.failures )

(* grep V4-F2 is the suite's heaviest locate (it also exercises
   switched-run dedup: more queries than runs); gzip V2-F9 dedups
   hardest. *)
let determinism_rows =
  [ ("grepsim", "V4-F2"); ("gzipsim", "V2-F9"); ("sedsim", "V3-F2") ]

let test_j1_vs_j4 () =
  let p1 = Pool.create ~jobs:1 () in
  let p4 = Pool.create ~jobs:4 () in
  List.iter
    (fun (name, fid) ->
      let b, f = fault_of name fid in
      let seq = Runner.run_fault ~pool:p1 b f in
      let par = Runner.run_fault ~pool:p4 b f in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: -j1 = -j4" name fid)
        true
        (full_sig seq = full_sig par);
      Alcotest.(check bool)
        (Printf.sprintf "%s %s locates" name fid)
        true seq.Runner.report.Demand.found)
    determinism_rows;
  Pool.shutdown p1;
  Pool.shutdown p4

let test_warm_vs_cold () =
  let pool = Pool.create ~jobs:2 () in
  List.iter
    (fun (name, fid) ->
      let b, f = fault_of name fid in
      let store = Store.create () in
      let cold = Runner.run_fault ~pool ~store b f in
      let warm = Runner.run_fault ~pool ~store b f in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: warm = cold localization" name fid)
        true
        (locate_sig cold = locate_sig warm);
      Alcotest.(check int)
        (Printf.sprintf "%s %s: warm run re-executes nothing" name fid)
        0 warm.Runner.report.Demand.verifications;
      Alcotest.(check int)
        (Printf.sprintf "%s %s: every warm query a hit" name fid)
        warm.Runner.report.Demand.verify_queries
        warm.Runner.report.Demand.store.Store.hits)
    determinism_rows;
  Pool.shutdown pool

let test_persistent_warm_across_stores () =
  (* cold process fills the disk tier; a second process (fresh store
     over the same dir) reproduces the localization from disk alone *)
  with_temp_dir (fun dir ->
      let b, f = fault_of "gzipsim" "V2-F3" in
      let cold = Runner.run_fault ~store:(Store.create ~dir ()) b f in
      let warm = Runner.run_fault ~store:(Store.create ~dir ()) b f in
      Alcotest.(check bool) "localization reproduced" true
        (locate_sig cold = locate_sig warm);
      Alcotest.(check int) "no re-executions" 0
        warm.Runner.report.Demand.verifications;
      Alcotest.(check int) "answered from disk"
        warm.Runner.report.Demand.verify_queries
        warm.Runner.report.Demand.store.Store.disk_hits)

let () =
  Alcotest.run "sched"
    [
      ( "store",
        [
          Alcotest.test_case "digest" `Quick test_digest;
          Alcotest.test_case "memory round-trip" `Quick test_memory_round_trip;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "disk round-trip" `Quick test_disk_round_trip;
          Alcotest.test_case "corrupted entries rejected" `Quick
            test_corrupted_rejected;
          Alcotest.test_case "hit rate" `Quick test_hit_rate;
        ] );
      ( "multi-writer",
        [
          Alcotest.test_case "manifest governs the layout" `Quick
            test_manifest_governs_layout;
          Alcotest.test_case "foreign layout quarantined" `Quick
            test_foreign_layout_quarantined;
          Alcotest.test_case "corrupt entry quarantined" `Quick
            test_corrupt_entry_quarantined;
          Alcotest.test_case "stale tmp locks swept" `Quick
            test_stale_tmp_lock_swept;
          Alcotest.test_case "dead holder's lock stolen" `Quick
            test_dead_holder_lock_stolen;
          Alcotest.test_case "expired lease stolen" `Quick
            test_expired_lease_stolen;
          Alcotest.test_case "two processes hammer one dir" `Quick
            test_two_process_hammer;
        ] );
      ( "pool",
        [
          Alcotest.test_case "jobs=1 runs inline" `Quick test_pool_inline;
          Alcotest.test_case "jobs=4 completes everything" `Quick
            test_pool_parallel_completes;
          Alcotest.test_case "batch preserves submission order" `Quick
            test_batch_order_and_errors;
          Alcotest.test_case "batch cancellation" `Quick test_batch_cancel;
          Alcotest.test_case "stable grouping" `Quick test_group_by_stable;
          Alcotest.test_case "verify accounting" `Quick test_verify_accounting;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "quarantine is j-invariant" `Quick
            test_quarantine_j_invariant;
          Alcotest.test_case "transient kill recovers" `Quick
            test_transient_kill_recovers;
          Alcotest.test_case "zero respawn budget degrades gracefully" `Quick
            test_degraded_pool_completes;
          Alcotest.test_case "supervision metrics" `Quick test_supervision_obs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j1 = -j4 reports" `Quick test_j1_vs_j4;
          Alcotest.test_case "warm store = cold localization" `Quick
            test_warm_vs_cold;
          Alcotest.test_case "warm across processes (disk tier)" `Quick
            test_persistent_warm_across_stores;
        ] );
    ]
