(* Tests for the Exom_corpus subsystem: the program factory's seed
   determinism, the seeder's validated-omission contract, manifest and
   campaign byte-determinism across job and shard counts, crash-safe
   campaign resume, the miner's roundtrip, and the committed example
   fixtures (collatz/histogram) as (faulty, correct, input, root)
   triples the seeder and locator both accept. *)

module Pretty = Exom_lang.Pretty
module Typecheck = Exom_lang.Typecheck
module Factory = Exom_corpus.Factory
module Seeder = Exom_corpus.Seeder
module Campaign = Exom_corpus.Campaign
module Mine = Exom_corpus.Mine
module Metrics = Exom_obs.Metrics
module Export = Exom_obs.Export

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "exom_corpus_test_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* {2 Factory} *)

let test_factory_deterministic () =
  List.iter
    (fun seed ->
      let p1, i1 = Factory.generate ~seed () in
      let p2, i2 = Factory.generate ~seed () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: same program" seed)
        (Pretty.program_to_string p1)
        (Pretty.program_to_string p2);
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: same input" seed)
        i1 i2)
    [ 0; 1; 7; 42 ];
  let p1, _ = Factory.generate ~seed:1 () in
  let p2, _ = Factory.generate ~seed:2 () in
  Alcotest.(check bool)
    "different seeds differ" false
    (Pretty.program_to_string p1 = Pretty.program_to_string p2)

let test_factory_families () =
  List.iter
    (fun (name, knobs) ->
      let prog, input = Factory.generate ~knobs ~seed:11 () in
      let f = Factory.features prog in
      Alcotest.(check bool)
        (name ^ ": has statements")
        true (f.Factory.f_stmts > 0);
      Alcotest.(check bool)
        (name ^ ": input consumed exactly")
        true
        (List.length input <= knobs.Factory.k_input);
      Alcotest.(check bool)
        (name ^ ": procs respected")
        true
        (f.Factory.f_procs <= knobs.Factory.k_procs + 1))
    Factory.families;
  Alcotest.(check bool)
    "unknown family" true
    (Factory.knobs_of_family "galactic" = None)

(* {2 Seeder} *)

let test_seeder_validates () =
  (* Search factory programs for a seedable fault; the corpus generator
     relies on this yield, so a handful of seeds must suffice. *)
  let rec find seed =
    if seed > 50 then Alcotest.fail "no seedable fault in 50 factory programs"
    else
      let prog, input = Factory.generate ~seed () in
      match Seeder.seed_fault ~seed ~prog ~input () with
      | Some sd -> (prog, sd)
      | None -> find (seed + 1)
  in
  let prog, sd = find 0 in
  Alcotest.(check bool)
    "validated against its own input" true
    (Seeder.validates ~correct:prog ~faulty:sd.Seeder.sd_faulty
       ~input:sd.Seeder.sd_input);
  Alcotest.(check bool) "root line recorded" true (sd.Seeder.sd_root_line > 0);
  Alcotest.(check bool)
    "root sids recorded" true
    (sd.Seeder.sd_root_sids <> []);
  Alcotest.(check bool)
    "sources differ" false
    (sd.Seeder.sd_correct_src = sd.Seeder.sd_faulty_src);
  (* identical programs never validate: no divergence to anchor *)
  Alcotest.(check bool)
    "self is not an omission" false
    (Seeder.validates ~correct:prog ~faulty:prog ~input:sd.Seeder.sd_input)

let test_seeder_rejects_misaligned_anchor () =
  (* cap = 0 suppresses the whole loop, so the faulty output stream is a
     positional shift of the correct one: the first divergent position
     compares different print statements.  Such faults prune the guard's
     entire backward slice (the misaligned "correct" output sanitizes
     it) and are unlocatable — the seeder must reject them even though
     outputs diverge and execution is omitted. *)
  let source cap =
    Printf.sprintf
      "int cap = %d;\n\
       void main() {\n\
      \  int x = input();\n\
      \  int steps = 0;\n\
      \  while (x != 1 && steps < cap) {\n\
      \    print(x);\n\
      \    if (x %% 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }\n\
      \    steps = steps + 1;\n\
      \  }\n\
      \  print(x);\n\
      \  print(steps);\n\
       }\n"
      cap
  in
  let correct = Typecheck.parse_and_check (source 200) in
  let faulty = Typecheck.parse_and_check (source 0) in
  Alcotest.(check bool)
    "positional-shift fault rejected" false
    (Seeder.validates ~correct ~faulty ~input:[ 6 ])

let test_seeder_deterministic () =
  let prog, input = Factory.generate ~seed:3 () in
  match
    ( Seeder.seed_fault ~seed:9 ~prog ~input (),
      Seeder.seed_fault ~seed:9 ~prog ~input () )
  with
  | Some a, Some b ->
    Alcotest.(check string)
      "same faulty source" a.Seeder.sd_faulty_src b.Seeder.sd_faulty_src;
    Alcotest.(check int)
      "same root line" a.Seeder.sd_root_line b.Seeder.sd_root_line
  | None, None -> ()
  | _ -> Alcotest.fail "seed_fault nondeterministic"

(* {2 Manifest} *)

let gen_manifest ?(count = 6) () = Campaign.generate ~seed:5 ~count ()

let test_manifest_deterministic () =
  let m1 = gen_manifest () and m2 = gen_manifest () in
  Alcotest.(check string)
    "byte-identical manifest"
    (Campaign.manifest_to_string m1)
    (Campaign.manifest_to_string m2);
  match Campaign.manifest_of_string (Campaign.manifest_to_string m1) with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check string)
      "roundtrip"
      (Campaign.manifest_to_string m1)
      (Campaign.manifest_to_string m)

let test_manifest_triples_validate () =
  let m = gen_manifest ~count:4 () in
  List.iter
    (fun t ->
      let correct = Typecheck.parse_and_check t.Campaign.t_correct in
      let faulty = Typecheck.parse_and_check t.Campaign.t_faulty in
      Alcotest.(check bool)
        (t.Campaign.t_id ^ " validates")
        true
        (Seeder.validates ~correct ~faulty ~input:t.Campaign.t_input))
    m.Campaign.m_triples

(* {2 Campaign determinism} *)

let outcomes_file dir = Filename.concat dir "outcomes.jsonl"

let run_campaign ?jobs ?resume ~shards manifest dir =
  let rows, missing = Campaign.run_local ?jobs ?resume ~dir ~manifest ~shards () in
  Alcotest.(check (list string)) "no missing rows" [] missing;
  rows

let test_campaign_deterministic () =
  let manifest = gen_manifest () in
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          let r1 = run_campaign ~jobs:1 ~shards:1 manifest d1 in
          let _r2 = run_campaign ~jobs:4 ~shards:2 manifest d2 in
          Alcotest.(check int)
            "all triples ran"
            (List.length manifest.Campaign.m_triples)
            (List.length r1);
          Alcotest.(check string)
            "outcomes byte-identical at -j1/x1 and -j4/x2"
            (read_file (outcomes_file d1))
            (read_file (outcomes_file d2))))

(* Per-shard metric registries merge to the campaign registry over any
   disjoint partition: counters sum, so absorbing the shard files must
   reproduce the registry computed from the merged rows byte for
   byte — the metric analogue of the outcomes.jsonl determinism. *)
let test_campaign_metric_registries () =
  let manifest = gen_manifest () in
  let registry_of_file path =
    match Export.metrics_of_jsonl (read_file path) with
    | Ok (reg, None) -> reg
    | Ok (_, Some _) -> Alcotest.failf "%s: unexpected salvage" path
    | Error e -> Alcotest.failf "%s: %s" path e
  in
  let tree reg = Metrics.render ~timings:false reg in
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          let rows = run_campaign ~jobs:1 ~shards:1 manifest d1 in
          ignore (run_campaign ~jobs:4 ~shards:2 manifest d2);
          let canonical = tree (Campaign.registry_of_rows rows) in
          Alcotest.(check string)
            "campaign registry derives from the merged rows" canonical
            (tree (registry_of_file (Campaign.campaign_metrics d1)));
          Alcotest.(check string)
            "campaign registry partition-invariant" canonical
            (tree (registry_of_file (Campaign.campaign_metrics d2)));
          let absorbed = Metrics.create () in
          List.iter
            (fun k ->
              Metrics.absorb ~into:absorbed
                (registry_of_file (Campaign.shard_metrics d2 k)))
            [ 0; 1 ];
          Alcotest.(check string)
            "absorbing the shard registries reproduces the campaign \
             registry"
            canonical (tree absorbed)));
  (* the rollup renders a per-class table from the same counters *)
  with_temp_dir (fun d ->
      let rows = run_campaign ~jobs:2 ~shards:1 manifest d in
      let out = Campaign.render_rollup rows in
      let contains needle =
        let nh = String.length out and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub out i nn = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (Exom_corpus.Seeder.class_to_string t.Campaign.t_class
            ^ " in the rollup")
            true
            (contains
               (Exom_corpus.Seeder.class_to_string t.Campaign.t_class)))
        manifest.Campaign.m_triples;
      Alcotest.(check bool) "verification histogram rendered" true
        (contains "verifications per triple (histogram)"))

let test_campaign_resume () =
  let manifest = gen_manifest () in
  with_temp_dir (fun full ->
      with_temp_dir (fun killed ->
          ignore (run_campaign ~jobs:2 ~shards:2 manifest full);
          let reference = read_file (outcomes_file full) in
          (* Simulate a campaign killed after one shard finished: only
             shard 0's rows exist; shard 1 never ran.  (Killing between
             triples is the clean crash point: each row is fsynced whole,
             and a triple killed mid-localization re-runs from its own
             journal — see the resume caveat in campaign.mli.) *)
          Campaign.ensure_layout killed;
          let skip _ = false in
          ignore
            (Campaign.run_shard ~jobs:2 ~dir:killed ~manifest ~shard:0
               ~shards:2 ~skip ());
          Alcotest.(check bool)
            "partial campaign is incomplete" true
            (List.length (Campaign.journaled_rows killed)
            < List.length manifest.Campaign.m_triples);
          let rows =
            run_campaign ~jobs:2 ~resume:true ~shards:2 manifest killed
          in
          Alcotest.(check int)
            "resume completes the campaign"
            (List.length manifest.Campaign.m_triples)
            (List.length rows);
          Alcotest.(check string)
            "resumed outcomes byte-identical to uninterrupted run" reference
            (read_file (outcomes_file killed));
          (* A second resume re-runs nothing and changes nothing. *)
          let again =
            run_campaign ~jobs:2 ~resume:true ~shards:2 manifest killed
          in
          Alcotest.(check int)
            "idempotent"
            (List.length rows)
            (List.length again);
          Alcotest.(check string)
            "still byte-identical" reference
            (read_file (outcomes_file killed))))

let test_campaign_located_rate () =
  let manifest = gen_manifest ~count:8 () in
  with_temp_dir (fun dir ->
      let rows = run_campaign ~jobs:2 ~shards:2 manifest dir in
      let s = Campaign.summarize rows in
      let rate =
        float_of_int s.Campaign.s_located /. float_of_int s.Campaign.s_total
      in
      Alcotest.(check bool)
        (Printf.sprintf "located rate %.2f >= 0.8" rate)
        true (rate >= 0.8))

(* {2 Miner} *)

let test_mine_roundtrip () =
  let manifest = gen_manifest () in
  with_temp_dir (fun dir ->
      let rows = run_campaign ~jobs:2 ~shards:1 manifest dir in
      let t1 = Mine.mine rows in
      let s1 = Mine.table_to_string t1 in
      Alcotest.(check string)
        "deterministic" s1
        (Mine.table_to_string (Mine.mine rows));
      (match Mine.table_of_string s1 with
      | Error e -> Alcotest.fail e
      | Ok t ->
        Alcotest.(check string) "roundtrip" s1 (Mine.table_to_string t));
      Alcotest.(check int)
        "totals cover every row"
        (List.length rows)
        (t1.Mine.mi_located + t1.Mine.mi_not_located + t1.Mine.mi_failed);
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        "render mentions located" true
        (contains (Mine.render t1) "located"))

(* {2 Example fixtures} *)

let examples_dir =
  let rel = Filename.concat "examples" "programs" in
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name)
        (Filename.concat ".." rel);
      Filename.concat ".." rel;
      rel;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> rel

(* (name, input, root line in the faulty file) — the Try: headers *)
let fixtures =
  [
    ("collatz", [ 6 ], 18);
    ("histogram", [ 6; 9; 7; 5; 1; 3; 3 ], 14);
    ("sensor", [ 6; 10; 60; 30; 80; 20; 55 ], 10);
  ]

let test_example_fixtures () =
  List.iter
    (fun (name, input, root_line) ->
      let load f =
        Typecheck.parse_and_check
          (read_file (Filename.concat examples_dir (f ^ ".mc")))
      in
      let faulty = load name and correct = load (name ^ "_fixed") in
      Alcotest.(check bool)
        (name ^ ": validated omission fault")
        true
        (Seeder.validates ~correct ~faulty ~input);
      (* run the full locator over the fixture via the campaign runner *)
      let root_sids = ref [] in
      Exom_lang.Ast.iter_program
        (fun st ->
          if Exom_lang.Loc.line st.Exom_lang.Ast.sloc = root_line then
            root_sids := st.Exom_lang.Ast.sid :: !root_sids)
        faulty;
      Alcotest.(check bool)
        (name ^ ": root line exists")
        true (!root_sids <> []);
      let triple =
        {
          Campaign.t_id = "t00000";
          t_seed = 0;
          t_family = "example";
          t_class = Seeder.Guard_strengthen;
          t_root_line = root_line;
          t_root_sids = List.rev !root_sids;
          t_stmts = 0;
          t_predicates = 0;
          t_procs = 0;
          t_loc = 0;
          t_input = input;
          t_correct = Pretty.program_to_string correct;
          t_faulty = Pretty.program_to_string faulty;
        }
      in
      (* line numbers shift under pretty-printing, so recompute the
         root sids against the printed faulty source the triple carries *)
      let printed = Typecheck.parse_and_check triple.Campaign.t_faulty in
      let printed_line =
        let l = ref 0 in
        Exom_lang.Ast.iter_program
          (fun st ->
            if
              List.mem st.Exom_lang.Ast.sid triple.Campaign.t_root_sids
              && !l = 0
            then l := Exom_lang.Loc.line st.Exom_lang.Ast.sloc)
          printed;
        !l
      in
      let sids = ref [] in
      Exom_lang.Ast.iter_program
        (fun st ->
          if Exom_lang.Loc.line st.Exom_lang.Ast.sloc = printed_line then
            sids := st.Exom_lang.Ast.sid :: !sids)
        printed;
      let triple =
        {
          triple with
          Campaign.t_root_line = printed_line;
          t_root_sids = List.rev !sids;
        }
      in
      with_temp_dir (fun dir ->
          Campaign.ensure_layout dir;
          let row = Campaign.run_triple ~dir triple in
          Alcotest.(check string)
            (name ^ ": located")
            "located" row.Campaign.o_status))
    fixtures

let () =
  Alcotest.run "corpus"
    [
      ( "factory",
        [
          Alcotest.test_case "seed-deterministic" `Quick
            test_factory_deterministic;
          Alcotest.test_case "families" `Quick test_factory_families;
        ] );
      ( "seeder",
        [
          Alcotest.test_case "validated omission" `Quick test_seeder_validates;
          Alcotest.test_case "rejects misaligned anchor" `Quick
            test_seeder_rejects_misaligned_anchor;
          Alcotest.test_case "deterministic" `Quick test_seeder_deterministic;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "byte-deterministic" `Quick
            test_manifest_deterministic;
          Alcotest.test_case "triples validate" `Quick
            test_manifest_triples_validate;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "rows byte-identical across jobs+shards" `Slow
            test_campaign_deterministic;
          Alcotest.test_case "metric registries partition-invariant" `Slow
            test_campaign_metric_registries;
          Alcotest.test_case "kill + resume byte-identical" `Slow
            test_campaign_resume;
          Alcotest.test_case "located rate" `Slow test_campaign_located_rate;
        ] );
      ( "mine",
        [ Alcotest.test_case "roundtrip" `Slow test_mine_roundtrip ] );
      ( "examples",
        [ Alcotest.test_case "fixtures locate" `Slow test_example_fixtures ] );
    ]
