(* The localization service: Proto codec and framing invariants, plus
   the daemon end-to-end over a real Unix-domain socket — serve a suite
   fault, replay the repeat from its journal, drain on SIGTERM, and
   resume a fabricated in-flight request to the same ledger bytes.
   (SIGKILL-mid-request crash chains live in CI's serve-stress job; the
   journal replay machinery itself is covered by test_recover.) *)

module B = Exom_bench.Bench_types
module Suite = Exom_bench.Suite
module Proto = Exom_serve.Proto
module Serve = Exom_serve.Serve
module Client = Exom_serve.Client

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let cleanup = ref []

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let p =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "exom_serve_test_%d_%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir p 0o755;
    cleanup := p :: !cleanup;
    p

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* {2 Proto codec} *)

let sample_locate =
  {
    Proto.lc_program = "int main() { print(1); }";
    lc_correct = "int main() { print(2); }";
    lc_input = [ 3; 1; 4; 1; 5 ];
    lc_root_line = Some 7;
    lc_deadline = Some 2.5;
  }

let check_request_roundtrip name req =
  match Proto.decode_request (Proto.encode_request req) with
  | Error e -> Alcotest.failf "%s: decode failed: %s" name e
  | Ok got -> Alcotest.(check bool) name true (got = req)

let test_request_roundtrip () =
  check_request_roundtrip "locate (all fields)" (Proto.Locate sample_locate);
  check_request_roundtrip "locate (bare)"
    (Proto.Locate
       { sample_locate with lc_root_line = None; lc_deadline = None });
  check_request_roundtrip "locate (empty input)"
    (Proto.Locate { sample_locate with lc_input = [] });
  check_request_roundtrip "ping" Proto.Ping;
  check_request_roundtrip "stats" Proto.Stats

let check_response_roundtrip name resp =
  match Proto.decode_response (Proto.encode_response resp) with
  | Error e -> Alcotest.failf "%s: decode failed: %s" name e
  | Ok got -> Alcotest.(check bool) name true (got = resp)

let test_response_roundtrip () =
  check_response_roundtrip "served"
    (Proto.Served
       {
         Proto.sv_found = true;
         sv_fingerprint = "abc123-r7";
         sv_ledger = "/state/ledgers/abc123-r7.ledger";
         sv_replayed = false;
         sv_report = "root cause: line 7\nwith \"quotes\" and\nnewlines";
         sv_counts = [ ("iterations", 3); ("verifications", 12) ];
       });
  check_response_roundtrip "shed" (Proto.Shed "queue full (64 pending)");
  check_response_roundtrip "failed" (Proto.Failed "parse error: line 3");
  check_response_roundtrip "pong" Proto.Pong;
  check_response_roundtrip "counters"
    (Proto.Counters [ ("accepted", 12); ("served", 11); ("queue_depth", 1) ])

let test_decode_rejects () =
  let reject name s =
    (match Proto.decode_request s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: request decode should have failed" name);
    match Proto.decode_response s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: response decode should have failed" name
  in
  reject "garbage" "not json at all";
  reject "foreign schema"
    {|{"schema":"exom.other","version":1,"req":"ping"}|};
  reject "future version"
    {|{"schema":"exom.serve","version":99,"req":"ping"}|};
  reject "no envelope" {|{"req":"ping"}|};
  (* a versioned envelope with an unknown operation is still rejected *)
  match
    Proto.decode_request {|{"schema":"exom.serve","version":1,"req":"melt"}|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op should have been rejected"

(* {2 Framing} *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payload = Proto.encode_request (Proto.Locate sample_locate) in
      Proto.write_frame a payload;
      (match Proto.read_frame b with
      | Ok (Some got) ->
        Alcotest.(check string) "payload survives framing" payload got
      | Ok None -> Alcotest.fail "unexpected EOF"
      | Error e -> Alcotest.failf "read_frame: %s" e);
      (* two frames back to back stay separate *)
      Proto.write_frame a "first";
      Proto.write_frame a "second";
      (match Proto.read_frame b with
      | Ok (Some s) -> Alcotest.(check string) "first frame" "first" s
      | _ -> Alcotest.fail "first frame lost");
      match Proto.read_frame b with
      | Ok (Some s) -> Alcotest.(check string) "second frame" "second" s
      | _ -> Alcotest.fail "second frame lost")

let test_frame_eof_and_torn () =
  (* clean EOF before any prefix byte: Ok None, not an error *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Proto.read_frame b with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "phantom frame at EOF"
      | Error e -> Alcotest.failf "clean EOF should not error: %s" e);
  (* a torn frame — length promised, connection cut mid-payload *)
  with_socketpair (fun a b ->
      let payload = "this payload will be cut short" in
      let len = String.length payload in
      let prefix = Bytes.create 4 in
      Bytes.set prefix 0 (Char.chr ((len lsr 24) land 0xff));
      Bytes.set prefix 1 (Char.chr ((len lsr 16) land 0xff));
      Bytes.set prefix 2 (Char.chr ((len lsr 8) land 0xff));
      Bytes.set prefix 3 (Char.chr (len land 0xff));
      ignore (Unix.write a prefix 0 4);
      ignore (Unix.write_substring a payload 0 5);
      Unix.close a;
      match Proto.read_frame b with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "torn frame should error");
  (* an absurd length prefix is refused before allocation *)
  with_socketpair (fun a b ->
      let prefix = Bytes.of_string "\x7f\xff\xff\xff" in
      ignore (Unix.write a prefix 0 4);
      match Proto.read_frame b with
      | Error e ->
        Alcotest.(check bool) "names the frame limit" true
          (contains e "frame")
      | Ok _ -> Alcotest.fail "oversized frame should be refused")

(* {2 The daemon, end to end} *)

(* gzipsim V2-F3: small enough to localize in well under a second, rich
   enough to journal batches worth replaying. *)
let fixture =
  lazy
    (let bench = Option.get (Suite.find "gzipsim") in
     let fault = Option.get (Suite.find_fault bench "V2-F3") in
     ( B.faulty_source bench fault,
       bench.B.source,
       fault.B.failing_input,
       B.fault_line bench fault ))

let locate_payload () =
  let faulty, correct, input, root_line = Lazy.force fixture in
  {
    Proto.lc_program = faulty;
    lc_correct = correct;
    lc_input = input;
    lc_root_line = Some root_line;
    lc_deadline = None;
  }

let locate_request () = Proto.Locate (locate_payload ())

(* Run a daemon on [state_dir], hand its socket to [f] once it is
   listening, then SIGTERM-drain it and return (exit code, f's value).
   The daemon runs in a domain of this very process, so the drain
   signal is simply a self-kill — Serve.run installs the handler. *)
let with_daemon ?(resume = false) ?(trace = false) state_dir f =
  let socket = Filename.concat state_dir "exom.sock" in
  let cfg =
    { (Serve.default_config ~socket_path:socket ~state_dir) with
      Serve.jobs = 2;
      resume;
      trace;
    }
  in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Serve.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  if not (Atomic.get ready) then Alcotest.fail "daemon never became ready";
  let v =
    Fun.protect
      ~finally:(fun () -> Unix.kill (Unix.getpid ()) Sys.sigterm)
      (fun () -> f socket)
  in
  let rc = Domain.join daemon in
  (rc, v)

let request_ok socket req =
  match Client.request ~socket req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "transport error: %s" e

let served socket req =
  match request_ok socket req with
  | Proto.Served s -> s
  | Proto.Shed why -> Alcotest.failf "shed: %s" why
  | Proto.Failed why -> Alcotest.failf "failed: %s" why
  | Proto.Pong | Proto.Counters _ -> Alcotest.fail "wrong response kind"

let counter resp name =
  match resp with
  | Proto.Counters kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> Alcotest.failf "no %s counter" name)
  | _ -> Alcotest.fail "expected counters"

let test_daemon_serves_and_replays () =
  let state = fresh_dir () in
  let rc, (first, second, ledger1) =
    with_daemon state (fun socket ->
        (match request_ok socket Proto.Ping with
        | Proto.Pong -> ()
        | _ -> Alcotest.fail "ping should pong");
        let first = served socket (locate_request ()) in
        Alcotest.(check bool) "found the root cause" true first.Proto.sv_found;
        Alcotest.(check bool) "first run is live" false first.Proto.sv_replayed;
        Alcotest.(check bool) "ledger exists on disk" true
          (Sys.file_exists first.Proto.sv_ledger);
        let ledger1 = read_file first.Proto.sv_ledger in
        (* the same request again: whole-journal replay, same bytes *)
        let second = served socket (locate_request ()) in
        let stats = request_ok socket Proto.Stats in
        Alcotest.(check int) "two served" 2 (counter stats "served");
        Alcotest.(check int) "one replayed" 1 (counter stats "replayed");
        Alcotest.(check int) "none shed" 0 (counter stats "shed");
        (first, second, ledger1))
  in
  Alcotest.(check int) "drained exit code" 0 rc;
  Alcotest.(check bool) "repeat is a replay" true second.Proto.sv_replayed;
  Alcotest.(check string) "same fingerprint" first.Proto.sv_fingerprint
    second.Proto.sv_fingerprint;
  Alcotest.(check string) "same report" first.Proto.sv_report
    second.Proto.sv_report;
  Alcotest.(check string) "replay rewrites identical ledger bytes" ledger1
    (read_file first.Proto.sv_ledger);
  (* drain removed the socket and exported the counters *)
  Alcotest.(check bool) "socket removed" false
    (Sys.file_exists (Filename.concat state "exom.sock"));
  let metrics = read_file (Filename.concat state "metrics.jsonl") in
  Alcotest.(check bool) "serve.served exported" true
    (contains metrics "serve.served");
  (* the request file was promoted from its provisional name *)
  let reqs = Sys.readdir (Filename.concat state "requests") in
  Alcotest.(check int) "one persisted request" 1 (Array.length reqs);
  Alcotest.(check string) "named by fingerprint"
    (first.Proto.sv_fingerprint ^ ".json")
    reqs.(0)

(* --trace: each served request leaves a Chrome trace under
   state/traces keyed by its fingerprint, with the whole localization
   nested under a serve.request span. *)
let test_daemon_per_request_trace () =
  let state = fresh_dir () in
  let rc, fp =
    with_daemon ~trace:true state (fun socket ->
        let s = served socket (locate_request ()) in
        s.Proto.sv_fingerprint)
  in
  Alcotest.(check int) "drained exit code" 0 rc;
  let trace_path =
    Filename.concat (Filename.concat state "traces") (fp ^ ".trace.json")
  in
  Alcotest.(check bool) "trace exported under the fingerprint" true
    (Sys.file_exists trace_path);
  let module Export = Exom_obs.Export in
  let module Spine = Exom_obs.Spine in
  match Export.spans_of_chrome (read_file trace_path) with
  | Error e -> Alcotest.fail ("trace does not read back: " ^ e)
  | Ok spans ->
    let spine = Spine.of_spans spans in
    (* two roots: session setup runs before the fingerprint exists,
       then the whole search nests under serve.request *)
    Alcotest.(check bool) "session setup traced" true
      (List.exists
         (fun n -> n.Spine.name = "session.create")
         spine.Spine.roots);
    match
      List.find_opt
        (fun n -> n.Spine.name = "serve.request")
        spine.Spine.roots
    with
    | None -> Alcotest.fail "no serve.request root"
    | Some root ->
      Alcotest.(check string) "serve lane category" "serve" root.Spine.cat;
      Alcotest.(check (list (pair string string)))
        "request fingerprint recorded as a span arg"
        [ ("fingerprint", fp) ]
        root.Spine.args;
      Alcotest.(check bool) "localization nested under the request" true
        (List.exists
           (fun n -> n.Spine.name = "demand.locate")
           root.Spine.children)

let test_daemon_concurrent_stress () =
  let state = fresh_dir () in
  let rc, result =
    with_daemon state (fun socket ->
        Client.stress ~socket ~clients:8 [ locate_payload () ])
  in
  Alcotest.(check int) "drained exit code" 0 rc;
  Alcotest.(check int) "all served" 8 result.Client.st_served;
  Alcotest.(check int) "none shed" 0 result.Client.st_shed;
  Alcotest.(check int) "none failed" 0 result.Client.st_failed;
  Alcotest.(check int) "no transport errors" 0 result.Client.st_errors;
  Alcotest.(check bool) "at least 7 journal replays" true
    (result.Client.st_replayed >= 7)

let test_daemon_resume_in_flight () =
  let state = fresh_dir () in
  (* first life: serve the request to completion, keep the bytes *)
  let _, (fp, ledger_bytes) =
    with_daemon state (fun socket ->
        let s = served socket (locate_request ()) in
        (s.Proto.sv_fingerprint, read_file s.Proto.sv_ledger))
  in
  (* fabricate the crash: the request back under a provisional name, its
     journal cut after the last checkpoint with a torn tail.  (Cutting
     mid-batch would also resume correctly, but the re-verified tail
     would then hit the store the first life warmed, and the ledger
     would honestly record cache:disk sources where an uninterrupted
     run recorded live runs — byte-identity is relative to the store
     state the run started from, so the byte-level fixture cuts where
     replay alone completes the journal.) *)
  let requests = Filename.concat state "requests" in
  let ledger = Filename.concat (Filename.concat state "ledgers") (fp ^ ".ledger") in
  Sys.rename
    (Filename.concat requests (fp ^ ".json"))
    (Filename.concat requests "q-99999-1.json");
  let torn =
    let marker = "\"ev\":\"checkpoint\"" in
    let rec last_from i acc =
      if i + String.length marker > String.length ledger_bytes then acc
      else if String.sub ledger_bytes i (String.length marker) = marker then
        last_from (i + 1) i
      else last_from (i + 1) acc
    in
    let ck = last_from 0 (-1) in
    Alcotest.(check bool) "journal has a checkpoint" true (ck >= 0);
    let eol = String.index_from ledger_bytes ck '\n' in
    (* keep the checkpoint line plus nine bytes of the next: the torn
       last line a SIGKILL mid-write leaves behind *)
    String.sub ledger_bytes 0 (eol + 1 + 9)
  in
  write_file ledger torn;
  (* second life: --resume replays it without any client asking *)
  let rc, () =
    with_daemon ~resume:true state (fun socket ->
        let deadline = Unix.gettimeofday () +. 30.0 in
        let rec wait () =
          let stats = request_ok socket Proto.Stats in
          if counter stats "served" >= 1 then stats
          else if Unix.gettimeofday () > deadline then
            Alcotest.fail "resume never served the in-flight request"
          else begin
            Unix.sleepf 0.05;
            wait ()
          end
        in
        let stats = wait () in
        Alcotest.(check int) "one request resumed" 1 (counter stats "resumed");
        Alcotest.(check int) "resume is a journal replay" 1
          (counter stats "replayed"))
  in
  Alcotest.(check int) "drained exit code" 0 rc;
  Alcotest.(check string) "resumed ledger is byte-identical" ledger_bytes
    (read_file ledger);
  (* the provisional request file was promoted again *)
  Alcotest.(check bool) "request promoted to fingerprint name" true
    (Sys.file_exists (Filename.concat requests (fp ^ ".json")))

let test_daemon_refuses_second_instance () =
  let state = fresh_dir () in
  let rc, rc2 =
    with_daemon state (fun socket ->
        let cfg =
          Serve.default_config ~socket_path:socket ~state_dir:state
        in
        Serve.run { cfg with Serve.jobs = 1 })
  in
  Alcotest.(check int) "first daemon drains clean" 0 rc;
  Alcotest.(check int) "second daemon refuses the live socket" 1 rc2

let () =
  let result =
    Alcotest.run ~and_exit:false "serve"
      [
        ( "proto",
          [
            Alcotest.test_case "request round-trip" `Quick
              test_request_roundtrip;
            Alcotest.test_case "response round-trip" `Quick
              test_response_roundtrip;
            Alcotest.test_case "foreign frames rejected" `Quick
              test_decode_rejects;
            Alcotest.test_case "framing round-trip" `Quick test_frame_roundtrip;
            Alcotest.test_case "EOF, torn and oversized frames" `Quick
              test_frame_eof_and_torn;
          ] );
        ( "daemon",
          [
            Alcotest.test_case "serves and replays over the socket" `Quick
              test_daemon_serves_and_replays;
            Alcotest.test_case "per-request trace export" `Quick
              test_daemon_per_request_trace;
            Alcotest.test_case "8 concurrent clients" `Quick
              test_daemon_concurrent_stress;
            Alcotest.test_case "resumes an in-flight request" `Quick
              test_daemon_resume_in_flight;
            Alcotest.test_case "refuses a second instance" `Quick
              test_daemon_refuses_second_instance;
          ] );
      ]
  in
  List.iter rm_rf !cleanup;
  match result with () -> ()
