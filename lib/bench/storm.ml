(* The `exom chaos` storm runner.  Each leg runs one localization (or
   one corpus campaign) under a specific storage weather and checks the
   standing invariants of DESIGN.md §15; the fault accounting
   (injected = acked) is audited per leg so a silently dropped fault
   names the leg that dropped it. *)

module Typecheck = Exom_lang.Typecheck
module Demand = Exom_core.Demand
module Oracle = Exom_core.Oracle
module Session = Exom_core.Session
module Recover = Exom_core.Recover
module Guard = Exom_core.Guard
module Slice = Exom_ddg.Slice
module Pool = Exom_sched.Pool
module Store = Exom_sched.Store
module Ledger = Exom_ledger.Ledger
module Chaos = Exom_interp.Chaos
module Campaign = Exom_corpus.Campaign
module Json = Exom_obs.Json
module Vfs = Exom_util.Vfs

type leg = {
  leg_label : string;
  leg_ok : bool;
  leg_notes : string list;
  leg_injected : int;
  leg_acked : int;
}

type report = {
  r_seed : int;
  r_legs : leg list;
  r_wrong : int;
  r_raised : int;
  r_unaccounted : int;
  r_ack_tally : (string * int) list;
  r_ok : bool;
}

(* The suite's own seed mixer (see [Exom_interp.Chaos]): sub-seeds for
   the legs must not correlate with each other or with the plan's own
   decision stream. *)
let mix x =
  let m = 0x45d9f3b in
  let x = x land max_int in
  let x = (x lxor (x lsr 16)) * m land max_int in
  let x = (x lxor (x lsr 16)) * m land max_int in
  x lxor (x lsr 16)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Plain unchecked writer: storm scaffolding (the torn journals it
   manufactures) must not itself sit under the armed plan. *)
let write_raw path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let ensure_dir_raw d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

(* {2 The suite fixture} *)

type fixture = {
  fx_label : string;
  fx_bench : Bench_types.t;
  fx_faulty : Exom_lang.Ast.program;
  fx_correct : Exom_lang.Ast.program;
  fx_input : int list;
  fx_expected : int list;
  fx_roots : int list;
}

let fixture (name, fid) =
  let bench =
    match Suite.find name with
    | Some b -> b
    | None -> failwith (Printf.sprintf "chaos: unknown benchmark %s" name)
  in
  let fault =
    match Suite.find_fault bench fid with
    | Some f -> f
    | None -> failwith (Printf.sprintf "chaos: unknown fault %s/%s" name fid)
  in
  let faulty = Typecheck.parse_and_check (Bench_types.faulty_source bench fault) in
  let correct = Typecheck.parse_and_check bench.Bench_types.source in
  let input = fault.Bench_types.failing_input in
  {
    fx_label = Printf.sprintf "%s/%s" name fid;
    fx_bench = bench;
    fx_faulty = faulty;
    fx_correct = correct;
    fx_input = input;
    fx_expected = Oracle.expected ~correct_prog:correct ~input;
    fx_roots = Bench_types.root_sids bench fault faulty;
  }

(* One journaled localization, the way the runner and the daemon build
   it.  Returns the canonical ledger, the report and the ledger's
   absorbed journal-failure count. *)
let journaled_run ?plan ?store ?chaos ~jobs fx journal =
  let ledger = Ledger.create () in
  let session =
    Session.create ?chaos ?store ~ledger ~prog:fx.fx_faulty ~input:fx.fx_input
      ~expected:fx.fx_expected ~profile_inputs:fx.fx_bench.Bench_types.test_inputs
      ()
  in
  (match plan with
  | None -> ()
  | Some p ->
    if not (Recover.matches_session p session) then
      failwith "chaos: salvage plan does not match the session";
    Recover.prime session p);
  Ledger.attach_journal ledger journal;
  (match plan with
  | None -> ()
  | Some p ->
    Ledger.resume_marker ledger ~replayed:p.Recover.salvaged_events
      ~truncated:p.Recover.truncated);
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace
      ~correct_prog:fx.fx_correct ~input:fx.fx_input
  in
  let pool = Pool.create ~jobs () in
  let report =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Demand.locate ~pool session ~oracle ~root_sids:fx.fx_roots)
  in
  Ledger.close_journal ledger;
  (Ledger.to_string ledger, report, Ledger.io_failures ledger)

let verdict (r : Demand.report) = (r.Demand.found, Slice.sids r.Demand.ips)

(* A degraded run's canonical ledger differs from the fault-free
   baseline in exactly one place: the Final event's [degraded] marker.
   Stripping that field lets the resume leg still assert byte-identity
   of everything the run was supposed to preserve. *)
let strip_degraded s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         if contains line "\"ev\":\"final\"" then
           match Json.parse line with
           | Ok (Json.Obj fields) ->
             Json.to_string
               (Json.Obj
                  (List.filter (fun (k, _) -> k <> "degraded") fields))
           | Ok _ | Error _ -> line
         else line)
  |> String.concat "\n"

(* What a SIGKILL leaves: everything through the first checkpoint plus
   a torn fragment of the next line (falling back to a mid-journal tear
   when the fixture checkpoints late). *)
let torn_cut journal =
  let lines =
    match List.rev (String.split_on_char '\n' journal) with
    | "" :: r -> List.rev r
    | r -> List.rev r
  in
  let cut =
    let found = ref None in
    List.iteri
      (fun i l ->
        if !found = None && contains l "\"ev\":\"checkpoint\"" then
          found := Some i)
      lines;
    match !found with
    | Some i -> min (i + 2) (List.length lines)
    | None -> max 1 (List.length lines / 2)
  in
  let s =
    String.concat "\n" (List.filteri (fun i _ -> i < cut) lines) ^ "\n"
  in
  String.sub s 0 (String.length s - min 9 (String.length s - 1))

(* {2 The leg harness} *)

type tally = { mutable wrong : int; mutable raised : int }

(* Run [f] with fault accounting scoped to the leg; whatever happens,
   the plan is disarmed before the next leg.  [note] records an
   invariant violation; an escaped exception is itself the violated
   no-raise invariant. *)
let leg_run tally label f =
  let before = Vfs.counters () in
  let notes = ref [] in
  let note s = notes := s :: !notes in
  (try f note with
  | e ->
    tally.raised <- tally.raised + 1;
    note ("raised: " ^ Printexc.to_string e));
  Vfs.disarm ();
  let after = Vfs.counters () in
  let injected = after.Vfs.c_injected - before.Vfs.c_injected in
  let acked = after.Vfs.c_acked - before.Vfs.c_acked in
  if injected <> acked then
    note (Printf.sprintf "accounting: %d injected fault(s), %d acked" injected acked);
  {
    leg_label = label;
    leg_ok = !notes = [];
    leg_notes = List.rev !notes;
    leg_injected = injected;
    leg_acked = acked;
  }

(* {2 Suite-fault legs} *)

let suite_legs tally ~seed ~jobs ~dir spec =
  let fx = fixture spec in
  let sub = Filename.concat dir (String.map (function '/' -> '_' | c -> c) fx.fx_label) in
  ensure_dir_raw sub;
  let path name = Filename.concat sub name in
  let baseline = ref None in
  let base_leg =
    leg_run tally (fx.fx_label ^ " baseline") (fun note ->
        let ledger, report, io = journaled_run ~jobs fx (path "baseline.jsonl") in
        if io > 0 then note (Printf.sprintf "fault-free baseline absorbed %d io failure(s)" io);
        baseline := Some (ledger, report))
  in
  match !baseline with
  | None -> [ base_leg ]
  | Some (base_ledger, base_report) ->
    let io_leg =
      leg_run tally (fx.fx_label ^ " io-chaos") (fun note ->
          let store = Store.create ~dir:(path "store") () in
          Vfs.arm (Vfs.Io_chaos.of_seed (mix (seed lxor 0x10c4a05)));
          let _, report, io = journaled_run ~store ~jobs fx (path "chaos.jsonl") in
          if verdict report <> verdict base_report then begin
            tally.wrong <- tally.wrong + 1;
            note "verdict drifted under io-chaos"
          end;
          if io > 0 && report.Demand.degraded = None then
            note (Printf.sprintf "%d journal failure(s) absorbed but run not marked degraded" io))
    in
    let resume_leg =
      leg_run tally (fx.fx_label ^ " kill+resume") (fun note ->
          let killed = path "killed.jsonl" in
          write_raw killed (torn_cut (read_file (path "baseline.jsonl")));
          let plan =
            match Recover.plan_of_file killed with
            | Ok p -> p
            | Error e -> failwith ("chaos: no salvage plan: " ^ e)
          in
          if plan.Recover.complete then
            note "torn journal salvaged as complete";
          (* the resumed generation runs with its journal fsync dying *)
          Vfs.arm
            (Vfs.Io_chaos.targeted ~op:Vfs.Fsync ~path_substr:"resumed.jsonl"
               ~after:1 Vfs.Enospc);
          let ledger, report, io =
            journaled_run ~plan ~jobs fx (path "resumed.jsonl")
          in
          if verdict report <> verdict base_report then begin
            tally.wrong <- tally.wrong + 1;
            note "verdict drifted across kill+resume"
          end;
          if ledger <> base_ledger then
            if io = 0 || report.Demand.degraded = None then begin
              tally.wrong <- tally.wrong + 1;
              note "resumed ledger not byte-identical and not DEGRADED"
            end
            else if strip_degraded ledger <> strip_degraded base_ledger then begin
              tally.wrong <- tally.wrong + 1;
              note "resumed ledger diverged beyond the degradation marker"
            end)
    in
    let kill_leg =
      leg_run tally (fx.fx_label ^ " kill-worker+io-chaos") (fun note ->
          let store = Store.create ~dir:(path "store_kw") () in
          Vfs.arm (Vfs.Io_chaos.of_seed (mix (seed lxor 0x5712b33)));
          let chaos =
            { Chaos.seed = mix (seed lxor 0x7ee1); fault = Chaos.Kill_worker 64 }
          in
          let _, report, _ =
            journaled_run ~store ~chaos ~jobs:(max 2 jobs) fx
              (path "killworker.jsonl")
          in
          (* worker quarantine legitimately degrades verdicts to NOT_ID;
             only an undegraded run must still agree with the baseline *)
          if
            report.Demand.degraded = None
            && report.Demand.robustness.Guard.quarantined = 0
            && verdict report <> verdict base_report
          then begin
            tally.wrong <- tally.wrong + 1;
            note "undegraded kill-worker run drifted from the baseline"
          end)
    in
    [ base_leg; io_leg; resume_leg; kill_leg ]

(* {2 The corpus legs} *)

let corpus_legs tally ~seed ~jobs ~count ~dir =
  let manifest = ref None in
  let base_rows = ref [] in
  let base_dir = Filename.concat dir "corpus_base" in
  let chaos_dir = Filename.concat dir "corpus_chaos" in
  let status_by_id rows =
    List.map (fun r -> (r.Campaign.o_id, r.Campaign.o_status)) rows
  in
  let gen_leg =
    leg_run tally "corpus baseline" (fun note ->
        let m = Campaign.generate ~seed ~count () in
        manifest := Some m;
        let rows, missing =
          Campaign.run_local ~jobs ~dir:base_dir ~manifest:m ~shards:2 ()
        in
        if missing <> [] then
          note (Printf.sprintf "fault-free campaign missing %d row(s)" (List.length missing));
        base_rows := status_by_id rows)
  in
  match !manifest with
  | None -> [ gen_leg ]
  | Some m ->
    let io_leg =
      leg_run tally "corpus io-chaos" (fun note ->
          (* lay the directories out before arming: a campaign that
             cannot even create its root has nothing to degrade to *)
          Campaign.ensure_layout chaos_dir;
          Vfs.arm (Vfs.Io_chaos.of_seed ~rate:5 (mix (seed lxor 0xc0f)));
          let rows, _missing =
            Campaign.run_local ~resume:true ~jobs ~dir:chaos_dir ~manifest:m
              ~shards:2 ()
          in
          (* shard quarantine may drop rows; every surviving row must
             agree with the fault-free campaign *)
          let base = !base_rows in
          List.iter
            (fun (id, st) ->
              match List.assoc_opt id base with
              | Some st' when st' <> st ->
                tally.wrong <- tally.wrong + 1;
                note (Printf.sprintf "triple %s drifted under io-chaos: %s vs %s" id st st')
              | Some _ -> ()
              | None -> note (Printf.sprintf "triple %s not in the manifest" id))
            (status_by_id rows))
    in
    let resume_leg =
      leg_run tally "corpus resume" (fun note ->
          let rows, missing =
            Campaign.run_local ~resume:true ~jobs ~dir:chaos_dir ~manifest:m
              ~shards:2 ()
          in
          if missing <> [] then
            note (Printf.sprintf "resumed campaign still missing %d row(s)" (List.length missing));
          let base = !base_rows in
          List.iter
            (fun (id, st) ->
              match List.assoc_opt id base with
              | Some st' when st' <> st ->
                tally.wrong <- tally.wrong + 1;
                note (Printf.sprintf "triple %s wrong after resume: %s vs %s" id st st')
              | _ -> ())
            (status_by_id rows))
    in
    [ gen_leg; io_leg; resume_leg ]

(* {2 The storm} *)

let default_faults = [ ("gzipsim", "V2-F3"); ("grepsim", "V4-F2") ]

let run ?(jobs = 2) ?(corpus = 20) ?(faults = default_faults) ~seed ~dir () =
  ensure_dir_raw dir;
  Vfs.disarm ();
  Vfs.reset_counters ();
  let tally = { wrong = 0; raised = 0 } in
  let legs =
    Fun.protect
      ~finally:(fun () -> Vfs.disarm ())
      (fun () ->
        List.concat_map (suite_legs tally ~seed ~jobs ~dir) faults
        @ (if corpus > 0 then
             corpus_legs tally ~seed ~jobs ~count:corpus ~dir
           else []))
  in
  let unaccounted =
    List.fold_left (fun n l -> n + (l.leg_injected - l.leg_acked)) 0 legs
  in
  {
    r_seed = seed;
    r_legs = legs;
    r_wrong = tally.wrong;
    r_raised = tally.raised;
    r_unaccounted = unaccounted;
    r_ack_tally = Vfs.ack_tally ();
    r_ok = List.for_all (fun l -> l.leg_ok) legs;
  }

(* {2 Reporting} *)

let num n = Json.Num (float_of_int n)

let leg_to_json l =
  Json.Obj
    [
      ("label", Json.Str l.leg_label);
      ("ok", Json.Bool l.leg_ok);
      ("notes", Json.Arr (List.map (fun s -> Json.Str s) l.leg_notes));
      ("injected", num l.leg_injected);
      ("acked", num l.leg_acked);
    ]

let report_to_json r =
  Json.Obj
    [
      ("schema", Json.Str "exom.chaos");
      ("version", num 1);
      ("seed", num r.r_seed);
      ("ok", Json.Bool r.r_ok);
      ("wrong", num r.r_wrong);
      ("raised", num r.r_raised);
      ("unaccounted", num r.r_unaccounted);
      ( "ack_tally",
        Json.Obj (List.map (fun (k, v) -> (k, num v)) r.r_ack_tally) );
      ("legs", Json.Arr (List.map leg_to_json r.r_legs));
    ]

let render r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "storm seed %d: %d leg(s)\n" r.r_seed (List.length r.r_legs);
  List.iter
    (fun l ->
      Printf.bprintf b "  %-4s %-38s injected %3d acked %3d\n"
        (if l.leg_ok then "ok" else "FAIL")
        l.leg_label l.leg_injected l.leg_acked;
      List.iter (fun n -> Printf.bprintf b "       - %s\n" n) l.leg_notes)
    r.r_legs;
  Printf.bprintf b "wrong answers: %d, escaped exceptions: %d\n" r.r_wrong
    r.r_raised;
  Printf.bprintf b "fault accounting: %d unaccounted\n" r.r_unaccounted;
  List.iter
    (fun (k, v) -> Printf.bprintf b "  acked by %-28s %d\n" k v)
    r.r_ack_tally;
  Printf.bprintf b "verdict: %s\n" (if r.r_ok then "CLEAN" else "VIOLATIONS");
  Buffer.contents b
