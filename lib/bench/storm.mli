(** The [exom chaos] storm runner: seeded storage-fault campaigns over
    suite faults and generated corpus triples, composed with worker
    kills and kill→resume cuts, asserting the standing invariants of
    the storage fault model (DESIGN.md §15):

    - a localization {e never raises} out of [Demand.locate], whatever
      the injected storage weather;
    - a located verdict under chaos {e matches the fault-free run's}
      (storage is caches and provenance, never the answer);
    - a resumed ledger is {e byte-identical} to the uninterrupted
      baseline — or the run is {e explicitly} DEGRADED with a matching
      verdict, never silently wrong;
    - every injected fault is {e accounted} in exactly one consumer
      counter ([Exom_util.Vfs.counters]: injected = acked).

    Deterministic in [seed]: the same storm replays the same faults at
    the same operations. *)

(** One storm leg's verdict: the label, what failed (empty = clean),
    and the fault accounting delta it was responsible for. *)
type leg = {
  leg_label : string;
  leg_ok : bool;
  leg_notes : string list;  (** violated invariants, oldest first *)
  leg_injected : int;  (** faults injected while this leg ran *)
  leg_acked : int;  (** of those, acknowledged by a consumer counter *)
}

type report = {
  r_seed : int;
  r_legs : leg list;
  r_wrong : int;  (** verdict mismatches vs the fault-free baselines *)
  r_raised : int;  (** exceptions that escaped a localization *)
  r_unaccounted : int;  (** injected - acked, summed over legs *)
  r_ack_tally : (string * int) list;  (** consumer counter → acks *)
  r_ok : bool;
}

(** [run ~seed ~dir ()] storms the storage layer under scratch
    directory [dir] (created; reused state is swept per leg):

    - per suite fault in [faults] (default gzipsim V2-F3 and grepsim
      V4-F2): a fault-free journaled baseline, a seeded {!Io_chaos}
      storm over the same localization, a kill→resume cut whose resumed
      generation runs under a targeted journal-fsync ENOSPC, and a
      composition leg pairing [Io_chaos] with an interpreter
      [Kill_worker];
    - when [corpus > 0] (default 20): a generated corpus campaign run
      fault-free, re-run under [Io_chaos] (shard quarantine allowed,
      surviving rows must match), then resumed fault-free to
      completion.

    [jobs] sizes the verification pools (default 2, so worker kills
    have a supervisor).  The armed plan is always disarmed on exit. *)
val run :
  ?jobs:int ->
  ?corpus:int ->
  ?faults:(string * string) list ->
  seed:int ->
  dir:string ->
  unit ->
  report

val report_to_json : report -> Exom_obs.Json.t
val render : report -> string
