module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Slice = Exom_ddg.Slice
module Relevant = Exom_ddg.Relevant
module Demand = Exom_core.Demand
module Obs = Exom_obs.Obs
module Oracle = Exom_core.Oracle
module Session = Exom_core.Session

(* Execute the full experiment for one seeded fault: run the failing
   program, compute the three slices of Table 2 (RS / DS / PS), run the
   demand-driven locator for Table 3, and time the plain / traced /
   verification executions for Table 4. *)

type sizes = { static_size : int; dynamic_size : int }

type result = {
  bench : Bench_types.t;
  fault : Bench_types.fault;
  rs : sizes;
  ds : sizes;
  ps : sizes;
  ips : sizes;
  os_ : sizes option;
  report : Demand.report;
  root_in_rs : bool;
  root_in_ds : bool;
  root_in_ps : bool;
  plain_seconds : float;
  graph_seconds : float;
  verif_seconds : float;
  trace_length : int;
  robustness : Exom_core.Guard.stats;
      (* switched-re-execution telemetry for this fault's locate run *)
}

let sizes_of_slice s =
  { static_size = Slice.static_size s; dynamic_size = Slice.dynamic_size s }

let sizes_of_chain trace chain =
  let sids =
    List.sort_uniq compare
      (List.map (fun i -> (Trace.get trace i).Trace.sid) chain)
  in
  { static_size = List.length sids; dynamic_size = List.length chain }

let run_fault ?obs ?config ?(budget = Interp.default_budget) ?policy ?chaos
    ?pool ?store ?ledger bench fault =
  (* All Table 4 timing reads come from the metrics registry (wall
     clock, not [Sys.time]: process CPU time double-counts across pool
     domains and under-counts blocking) — one accounting path shared
     with `exom stats`. *)
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let faulty_src = Bench_types.faulty_source bench fault in
  let faulty = Typecheck.parse_and_check faulty_src in
  let correct = Typecheck.parse_and_check bench.Bench_types.source in
  let input = fault.Bench_types.failing_input in
  let expected = Oracle.expected ~correct_prog:correct ~input in
  (* Table 4: plain vs graph-constructing execution *)
  let timer name f = Exom_obs.Obs.timed obs name f in
  let seconds name =
    Exom_obs.Metrics.timer_seconds (Exom_obs.Obs.metrics obs) name
  in
  let plain0 = seconds "runner.plain_run" in
  let graph0 = seconds "runner.session_build" in
  let _ =
    timer "runner.plain_run" (fun () ->
        Interp.run ~tracing:false ~budget faulty ~input)
  in
  let session =
    timer "runner.session_build" (fun () ->
        Session.create ~obs ~budget ?policy ?chaos ?store ?ledger ~prog:faulty
          ~input ~expected ~profile_inputs:bench.Bench_types.test_inputs ())
  in
  let plain_seconds = seconds "runner.plain_run" -. plain0 in
  let graph_seconds = seconds "runner.session_build" -. graph0 in
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input
  in
  let root_sids = Bench_types.root_sids bench fault faulty in
  (* Table 2: the relevant slice of the wrong output *)
  let rs_slice =
    Relevant.relevant_slice session.Session.rel
      ~criteria:[ session.Session.wrong_output ]
  in
  let report = Demand.locate ?config ?pool session ~oracle ~root_sids in
  let trace = session.Session.trace in
  let in_slice slice = List.exists (Slice.mem_sid slice) root_sids in
  {
    bench;
    fault;
    rs = sizes_of_slice rs_slice;
    ds = sizes_of_slice report.Demand.ds;
    ps = sizes_of_slice report.Demand.ps0;
    ips = sizes_of_slice report.Demand.ips;
    os_ = Option.map (sizes_of_chain trace) report.Demand.os_chain;
    report;
    root_in_rs = in_slice rs_slice;
    root_in_ds = in_slice report.Demand.ds;
    root_in_ps = in_slice report.Demand.ps0;
    plain_seconds;
    graph_seconds;
    verif_seconds = report.Demand.verif_seconds;
    trace_length = Trace.length trace;
    robustness = report.Demand.robustness;
  }

(* Sanity checks used by tests and the harness: every fault's faulty
   version must still typecheck, keep the statement count (sid
   stability) and actually fail on its failing input. *)
let validate_fault bench fault =
  let faulty = Typecheck.parse_and_check (Bench_types.faulty_source bench fault) in
  let correct = Typecheck.parse_and_check bench.Bench_types.source in
  if Ast.stmt_count faulty <> Ast.stmt_count correct then
    failwith (Printf.sprintf "%s: statement count changed" fault.Bench_types.fid);
  let input = fault.Bench_types.failing_input in
  let run_faulty = Interp.run ~tracing:false faulty ~input in
  let out_faulty = Interp.output_values run_faulty in
  let out_correct =
    Interp.output_values (Interp.run ~tracing:false correct ~input)
  in
  if out_faulty = out_correct && run_faulty.Interp.outcome = Ok () then
    failwith (Printf.sprintf "%s: fault does not manifest" fault.Bench_types.fid);
  (* The failure must be anchorable: an observable wrong value at a
     shared output position, or — for crash/hang faults — an aborting
     run (whose last trace instance anchors the session instead). *)
  match
    Session.classify_outputs
      ~outputs:(List.mapi (fun i v -> (i, v)) out_faulty)
      ~expected:out_correct
  with
  | _ -> ()
  | exception Session.No_failure ->
    if run_faulty.Interp.outcome = Ok () then
      failwith
        (Printf.sprintf
           "%s: no observable wrong value at a shared output position"
           fault.Bench_types.fid)

let validate_all () =
  List.iter (fun (b, f) -> validate_fault b f) Suite.rows
