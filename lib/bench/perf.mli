(** Suite-level performance snapshots and regression checks: the
    persistent perf trajectory behind [exom bench --history] /
    [BENCH_exom.json] and the [exom regress] comparator.

    A snapshot is one run of the whole benchmark suite reduced to the
    numbers worth tracking over time: localization outcomes per fault,
    verification work (queries / switched runs / interpreter runs),
    wall-clock sections, and the verdict-store hit rate.  Snapshots are
    schema-versioned JSON (one object per line, so a history file is
    plain JSONL) and {!compare} flags metric movements beyond tolerance
    — counts strictly (they are deterministic), timings loosely (they
    are not). *)

val schema_name : string
val schema_version : int

type row = {
  r_bench : string;
  r_fault : string;
  r_found : bool;
  r_verifications : int;
  r_queries : int;
  r_iterations : int;
  r_edges : int;
  r_prunings : int;
}

(** The optional corpus leg (schema v3): a fixed-seed generated
    campaign run end to end.  Counts are deterministic in
    [(c_seed, c_count)]; only [c_wall_seconds] is noisy. *)
type corpus_leg = {
  c_seed : int;
  c_count : int;
  c_located : int;
  c_total : int;
  c_failed : int;  (** no_failure + error rows *)
  c_mean_iterations : float;  (** over rows that ran *)
  c_mean_verifications : float;
  c_wall_seconds : float;
}

type snapshot = {
  label : string;  (** free-form tag, e.g. a date or a commit subject *)
  jobs : int;
  rows : row list;
  located : int;  (** faults whose root cause entered the slice *)
  total : int;
  verify_runs : int;  (** switched re-executions across the suite *)
  verify_seconds : float;
  interp_runs : int;  (** every interpreter execution, profiling included *)
  store_hit_rate : float;
      (** hit rate of the {e priming} pass over one shared disk store *)
  warm_hit_rate : float;
      (** hit rate of a second pass over the primed store: the
          cache-health number (should be close to 1) *)
  warm_verify_runs : int;
      (** switched runs the warm pass still had to dispatch (should be
          close to 0) *)
  wall_seconds : float;  (** whole-suite wall clock *)
  traced_wall_seconds : float;
      (** the cold suite re-run with span recording on (schema v4):
          tracks what [--trace-out] costs, so tracing never silently
          becomes a tax.  [0.0] on v1-v3 snapshots read back from
          disk; {!compare} only gates it when both sides measured
          it. *)
  corpus : corpus_leg option;
      (** [None] when the snapshot skipped the corpus leg (and on every
          v1/v2 snapshot read back from disk) *)
}

(** Run the full suite and reduce it to a snapshot: a cold pass (no
    store — the per-fault rows and run totals), then a priming pass and
    a warm pass over one shared disk store (the [store_hit_rate] /
    [warm_*] figures; each fault opens a fresh handle, so warm hits are
    honest disk hits).  [jobs] sizes the verification pool (default:
    [EXOM_JOBS] via the default pool).  [config] overrides the
    locator's configuration on every leg — e.g.
    [{ Demand.default_config with ranking = None }] measures the
    static-order control for the ranked-vs-static comparison. *)
val run_suite :
  ?config:Exom_core.Demand.config ->
  ?jobs:int ->
  ?label:string ->
  ?corpus_count:int ->
  unit ->
  snapshot

(** Run just the corpus leg: generate a [count]-triple corpus at
    [seed] and run its campaign in a scratch directory. *)
val run_corpus :
  ?config:Exom_core.Demand.config ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  corpus_leg

(** {2 Serialization} *)

val to_json : snapshot -> Exom_obs.Json.t
val of_json : Exom_obs.Json.t -> (snapshot, string) result

(** One JSON object on one line (both the single-snapshot file format
    and the history line format). *)
val to_line : snapshot -> string

(** Write a single-snapshot file (used for the committed baseline). *)
val write : string -> snapshot -> unit

(** Append one snapshot line to a history JSONL file (created if
    missing). *)
val append_history : string -> snapshot -> unit

(** Load the snapshot from [path]: the last non-empty line — so a
    baseline file and a history file read the same way. *)
val load : string -> (snapshot, string) result

(** {2 Regression comparison} *)

type severity = Regression | Info

type finding = { severity : severity; metric : string; detail : string }

(** [compare ~tolerance ~time_tolerance old_s new_s]: regressions are a
    drop in located faults (or any previously-located fault now
    missed), a deterministic count (queries, switched runs, interpreter
    runs) growing beyond [tolerance] (relative, e.g. [0.1] = +10%), or
    a timing growing beyond [time_tolerance]; improvements beyond the
    same thresholds are reported as [Info]. *)
val compare :
  tolerance:float -> time_tolerance:float -> snapshot -> snapshot ->
  finding list

val has_regression : finding list -> bool
val render : finding list -> string
