(** The experiment runner: executes one seeded fault end-to-end and
    collects every quantity of the paper's Tables 2-4. *)

type sizes = { static_size : int; dynamic_size : int }

type result = {
  bench : Bench_types.t;
  fault : Bench_types.fault;
  rs : sizes;  (** relevant slice of the wrong output *)
  ds : sizes;  (** dynamic slice *)
  ps : sizes;  (** initial pruned slice *)
  ips : sizes;  (** final pruned expanded slice *)
  os_ : sizes option;  (** failure-inducing dependence chain *)
  report : Exom_core.Demand.report;
  root_in_rs : bool;
  root_in_ds : bool;
  root_in_ps : bool;
  plain_seconds : float;
  graph_seconds : float;
  verif_seconds : float;
  trace_length : int;
  robustness : Exom_core.Guard.stats;
      (** switched-re-execution telemetry for this fault's locate run *)
}

(** [pool] drives the verification scheduler (inline sequential when
    omitted and [EXOM_JOBS] is unset); [store] supplies a verdict cache
    shared across faults or processes — results are identical at any
    job count and any store temperature (modulo timings).  [obs] is the
    observability context the session inherits (pass
    [Exom_obs.Obs.create ~trace:true ()] to record spans for
    [--trace-out]); timing fields are read back from its metrics
    registry ([runner.plain_run], [runner.session_build]).  [ledger]
    records the localization's provenance ([--ledger-out]). *)
val run_fault :
  ?obs:Exom_obs.Obs.t ->
  ?config:Exom_core.Demand.config ->
  ?budget:int ->
  ?policy:Exom_core.Guard.policy ->
  ?chaos:Exom_interp.Chaos.t ->
  ?pool:Exom_sched.Pool.t ->
  ?store:Exom_sched.Store.t ->
  ?ledger:Exom_ledger.Ledger.t ->
  Bench_types.t ->
  Bench_types.fault ->
  result

(** Raises [Failure] when a fault does not typecheck, changes the
    statement count, or fails to manifest observably — as a wrong value
    at a shared output position, or as a crash/hang of the failing
    run. *)
val validate_fault : Bench_types.t -> Bench_types.fault -> unit

val validate_all : unit -> unit
