module Json = Exom_obs.Json
module Metrics = Exom_obs.Metrics
module Obs = Exom_obs.Obs
module Pool = Exom_sched.Pool
module Store = Exom_sched.Store
module Demand = Exom_core.Demand

let schema_name = "exom.bench"
let schema_version = 1

type row = {
  r_bench : string;
  r_fault : string;
  r_found : bool;
  r_verifications : int;
  r_queries : int;
  r_iterations : int;
  r_edges : int;
  r_prunings : int;
}

type snapshot = {
  label : string;
  jobs : int;
  rows : row list;
  located : int;
  total : int;
  verify_runs : int;
  verify_seconds : float;
  interp_runs : int;
  store_hit_rate : float;
  wall_seconds : float;
}

(* Each fault gets its own registry and cold store so rows are
   independent measurements; the totals are sums over the rows' private
   registries. *)
let run_suite ?(jobs = Pool.default_jobs ()) ?(label = "") () =
  let pool = Pool.create ~jobs () in
  let t0 = Unix.gettimeofday () in
  let rows = ref [] in
  let verify_runs = ref 0 in
  let verify_seconds = ref 0.0 in
  let interp_runs = ref 0 in
  let store_hits = ref 0 in
  let store_queries = ref 0 in
  List.iter
    (fun (bench, fault) ->
      let obs = Obs.create () in
      let r = Runner.run_fault ~obs ~pool bench fault in
      let report = r.Runner.report in
      rows :=
        {
          r_bench = bench.Bench_types.name;
          r_fault = fault.Bench_types.fid;
          r_found = report.Demand.found;
          r_verifications = report.Demand.verifications;
          r_queries = report.Demand.verify_queries;
          r_iterations = report.Demand.iterations;
          r_edges = report.Demand.expanded_edges;
          r_prunings = report.Demand.total_prunings;
        }
        :: !rows;
      let reg = Obs.metrics obs in
      verify_runs := !verify_runs + Metrics.timer_count reg "verify.run";
      verify_seconds := !verify_seconds +. Metrics.timer_seconds reg "verify.run";
      interp_runs := !interp_runs + Metrics.counter_value reg "interp.runs";
      let st = report.Demand.store in
      store_hits := !store_hits + st.Store.hits + st.Store.disk_hits;
      store_queries :=
        !store_queries + st.Store.hits + st.Store.disk_hits + st.Store.misses)
    Suite.rows;
  Pool.shutdown pool;
  let rows = List.rev !rows in
  {
    label;
    jobs;
    rows;
    located = List.length (List.filter (fun r -> r.r_found) rows);
    total = List.length rows;
    verify_runs = !verify_runs;
    verify_seconds = !verify_seconds;
    interp_runs = !interp_runs;
    store_hit_rate =
      (if !store_queries = 0 then 0.0
       else float_of_int !store_hits /. float_of_int !store_queries);
    wall_seconds = Unix.gettimeofday () -. t0;
  }

(* {2 Serialization} *)

let num n = Json.Num (float_of_int n)

let row_json r =
  Json.Obj
    [
      ("bench", Json.Str r.r_bench);
      ("fault", Json.Str r.r_fault);
      ("found", Json.Bool r.r_found);
      ("verifications", num r.r_verifications);
      ("queries", num r.r_queries);
      ("iterations", num r.r_iterations);
      ("edges", num r.r_edges);
      ("prunings", num r.r_prunings);
    ]

let to_json s =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", num schema_version);
      ("label", Json.Str s.label);
      ("jobs", num s.jobs);
      ("located", num s.located);
      ("total", num s.total);
      ("verify_runs", num s.verify_runs);
      ("verify_seconds", Json.Num s.verify_seconds);
      ("interp_runs", num s.interp_runs);
      ("store_hit_rate", Json.Num s.store_hit_rate);
      ("wall_seconds", Json.Num s.wall_seconds);
      ("rows", Json.Arr (List.map row_json s.rows));
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %s" what)

let get_str j k = Option.bind (Json.member k j) Json.to_str
let get_num j k = Option.bind (Json.member k j) Json.to_float
let get_int j k = Option.map int_of_float (get_num j k)

let get_bool j k =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let row_of_json j =
  let* r_bench = require "row.bench" (get_str j "bench") in
  let* r_fault = require "row.fault" (get_str j "fault") in
  let* r_found = require "row.found" (get_bool j "found") in
  let* r_verifications = require "row.verifications" (get_int j "verifications") in
  let* r_queries = require "row.queries" (get_int j "queries") in
  let* r_iterations = require "row.iterations" (get_int j "iterations") in
  let* r_edges = require "row.edges" (get_int j "edges") in
  let* r_prunings = require "row.prunings" (get_int j "prunings") in
  Ok
    { r_bench; r_fault; r_found; r_verifications; r_queries; r_iterations;
      r_edges; r_prunings }

let of_json j =
  let* schema = require "schema" (get_str j "schema") in
  if schema <> schema_name then
    Error (Printf.sprintf "foreign schema %S" schema)
  else
    let* version = require "version" (get_int j "version") in
    if version <> schema_version then
      Error
        (Printf.sprintf "schema version %d (this reader understands %d)"
           version schema_version)
    else
      let* label = require "label" (get_str j "label") in
      let* jobs = require "jobs" (get_int j "jobs") in
      let* located = require "located" (get_int j "located") in
      let* total = require "total" (get_int j "total") in
      let* verify_runs = require "verify_runs" (get_int j "verify_runs") in
      let* verify_seconds = require "verify_seconds" (get_num j "verify_seconds") in
      let* interp_runs = require "interp_runs" (get_int j "interp_runs") in
      let* store_hit_rate = require "store_hit_rate" (get_num j "store_hit_rate") in
      let* wall_seconds = require "wall_seconds" (get_num j "wall_seconds") in
      let* rows_j = require "rows" (Option.bind (Json.member "rows" j) Json.to_list) in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest ->
          let* row = row_of_json r in
          go (row :: acc) rest
      in
      let* rows = go [] rows_j in
      Ok
        { label; jobs; rows; located; total; verify_runs; verify_seconds;
          interp_runs; store_hit_rate; wall_seconds }

let to_line s = Json.to_string (to_json s)

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let write path s = write_file path (to_line s ^ "\n")

let append_history path s =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_line s ^ "\n"))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | content -> (
    let lines =
      String.split_on_char '\n' content
      |> List.filter (fun l -> String.trim l <> "")
    in
    match List.rev lines with
    | [] -> Error "empty snapshot file"
    | last :: _ ->
      let* j = Json.parse last in
      of_json j)

(* {2 Regression comparison} *)

type severity = Regression | Info

type finding = { severity : severity; metric : string; detail : string }

(* Relative movement of a numeric metric against a threshold: growth
   beyond it is a regression, shrinkage beyond it an improvement. *)
let drift ~threshold ~metric ~fmt old_v new_v =
  if old_v <= 0.0 then []
  else
    let rel = (new_v -. old_v) /. old_v in
    if Float.abs rel <= threshold then []
    else
      [
        {
          severity = (if rel > 0.0 then Regression else Info);
          metric;
          detail =
            Printf.sprintf "%s -> %s (%+.1f%%, tolerance %.0f%%)" (fmt old_v)
              (fmt new_v) (100.0 *. rel) (100.0 *. threshold);
        };
      ]

let fmt_int v = string_of_int (int_of_float v)
let fmt_s v = Printf.sprintf "%.3fs" v

let compare ~tolerance ~time_tolerance old_s new_s =
  let findings = ref [] in
  let push f = findings := f :: !findings in
  (* localization outcomes: any drop is a regression, no tolerance *)
  if new_s.located < old_s.located then
    push
      {
        severity = Regression;
        metric = "located";
        detail =
          Printf.sprintf "%d/%d -> %d/%d faults located" old_s.located
            old_s.total new_s.located new_s.total;
      }
  else if new_s.located > old_s.located then
    push
      {
        severity = Info;
        metric = "located";
        detail =
          Printf.sprintf "%d/%d -> %d/%d faults located" old_s.located
            old_s.total new_s.located new_s.total;
      };
  List.iter
    (fun old_row ->
      match
        List.find_opt
          (fun r ->
            r.r_bench = old_row.r_bench && r.r_fault = old_row.r_fault)
          new_s.rows
      with
      | Some new_row when old_row.r_found && not new_row.r_found ->
        push
          {
            severity = Regression;
            metric =
              Printf.sprintf "%s %s" old_row.r_bench old_row.r_fault;
            detail = "previously located, now missed";
          }
      | Some _ -> ()
      | None ->
        push
          {
            severity = Info;
            metric =
              Printf.sprintf "%s %s" old_row.r_bench old_row.r_fault;
            detail = "row absent from the new snapshot";
          })
    old_s.rows;
  let counts =
    [
      ("verify_runs", float_of_int old_s.verify_runs,
       float_of_int new_s.verify_runs);
      ("interp_runs", float_of_int old_s.interp_runs,
       float_of_int new_s.interp_runs);
      ( "queries",
        float_of_int
          (List.fold_left (fun a r -> a + r.r_queries) 0 old_s.rows),
        float_of_int
          (List.fold_left (fun a r -> a + r.r_queries) 0 new_s.rows) );
    ]
  in
  List.iter
    (fun (metric, o, n) ->
      List.iter push (drift ~threshold:tolerance ~metric ~fmt:fmt_int o n))
    counts;
  List.iter
    (fun (metric, o, n) ->
      List.iter push (drift ~threshold:time_tolerance ~metric ~fmt:fmt_s o n))
    [
      ("verify_seconds", old_s.verify_seconds, new_s.verify_seconds);
      ("wall_seconds", old_s.wall_seconds, new_s.wall_seconds);
    ];
  List.rev !findings

let has_regression findings =
  List.exists (fun f -> f.severity = Regression) findings

let render findings =
  if findings = [] then "no metric moved beyond tolerance\n"
  else
    String.concat ""
      (List.map
         (fun f ->
           Printf.sprintf "%s %-16s %s\n"
             (match f.severity with
             | Regression -> "REGRESSION"
             | Info -> "info      ")
             f.metric f.detail)
         findings)
