module Json = Exom_obs.Json
module Metrics = Exom_obs.Metrics
module Obs = Exom_obs.Obs
module Pool = Exom_sched.Pool
module Store = Exom_sched.Store
module Demand = Exom_core.Demand
module Campaign = Exom_corpus.Campaign

let schema_name = "exom.bench"
let schema_version = 4

type row = {
  r_bench : string;
  r_fault : string;
  r_found : bool;
  r_verifications : int;
  r_queries : int;
  r_iterations : int;
  r_edges : int;
  r_prunings : int;
}

type corpus_leg = {
  c_seed : int;
  c_count : int;
  c_located : int;
  c_total : int;
  c_failed : int;
  c_mean_iterations : float;
  c_mean_verifications : float;
  c_wall_seconds : float;
}

type snapshot = {
  label : string;
  jobs : int;
  rows : row list;
  located : int;
  total : int;
  verify_runs : int;
  verify_seconds : float;
  interp_runs : int;
  store_hit_rate : float;
  warm_hit_rate : float;
  warm_verify_runs : int;
  wall_seconds : float;
  traced_wall_seconds : float;
      (* the cold suite re-run with span recording on (v4); 0.0 on
         v1-v3 snapshots read back from disk *)
  corpus : corpus_leg option;
}

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

(* The corpus leg: a fixed-seed generated campaign run start to finish
   (factory -> seeder -> localization) in a scratch directory.  The
   counts are deterministic in (seed, count) like the suite rows, so
   they regress-gate the generated-program path the hand-written suite
   cannot cover; only [c_wall_seconds] is noisy. *)
let run_corpus ?config ?(jobs = Pool.default_jobs ()) ~seed ~count () =
  let t0 = Unix.gettimeofday () in
  let manifest = Campaign.generate ~seed ~count () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "exom_bench_corpus_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let rows, _missing =
    Campaign.run_local ?config ~jobs ~dir ~manifest ~shards:1 ()
  in
  rm_rf dir;
  let s = Campaign.summarize rows in
  let failed =
    List.length
      (List.filter
         (fun r ->
           r.Campaign.o_status = "no_failure" || r.Campaign.o_status = "error")
         rows)
  in
  let ran =
    List.filter
      (fun r ->
        r.Campaign.o_status = "located" || r.Campaign.o_status = "not_located")
      rows
  in
  let mean key =
    match ran with
    | [] -> 0.0
    | _ ->
      float_of_int (List.fold_left (fun a r -> a + Campaign.count r key) 0 ran)
      /. float_of_int (List.length ran)
  in
  {
    c_seed = seed;
    c_count = count;
    c_located = s.Campaign.s_located;
    c_total = s.Campaign.s_total;
    c_failed = failed;
    c_mean_iterations = mean "iterations";
    c_mean_verifications = mean "verifications";
    c_wall_seconds = Unix.gettimeofday () -. t0;
  }

(* Each fault gets its own registry and cold store so rows are
   independent measurements; the totals are sums over the rows' private
   registries.  The cold pass is followed by two passes over one shared
   disk store — a priming pass that fills it and a warm pass that
   should answer (almost) every verification from it.  The warm figures
   are the cache's health check: a warm hit rate collapsing towards the
   cold one means the store has stopped earning its keep. *)
let run_suite ?config ?(jobs = Pool.default_jobs ()) ?(label = "")
    ?corpus_count () =
  let pool = Pool.create ~jobs () in
  let t0 = Unix.gettimeofday () in
  let rows = ref [] in
  let verify_runs = ref 0 in
  let verify_seconds = ref 0.0 in
  let interp_runs = ref 0 in
  List.iter
    (fun (bench, fault) ->
      let obs = Obs.create () in
      let r = Runner.run_fault ?config ~obs ~pool bench fault in
      let report = r.Runner.report in
      rows :=
        {
          r_bench = bench.Bench_types.name;
          r_fault = fault.Bench_types.fid;
          r_found = report.Demand.found;
          r_verifications = report.Demand.verifications;
          r_queries = report.Demand.verify_queries;
          r_iterations = report.Demand.iterations;
          r_edges = report.Demand.expanded_edges;
          r_prunings = report.Demand.total_prunings;
        }
        :: !rows;
      let reg = Obs.metrics obs in
      verify_runs := !verify_runs + Metrics.timer_count reg "verify.run";
      verify_seconds := !verify_seconds +. Metrics.timer_seconds reg "verify.run";
      interp_runs := !interp_runs + Metrics.counter_value reg "interp.runs")
    Suite.rows;
  (* wall clock covers the cold pass only, preserving the metric's
     meaning across snapshot history (v1 snapshots had no warm legs) *)
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (* traced pass (v4): the same cold suite with span recording on, so
     the history tracks what --trace-out costs; the spans themselves
     are discarded — only the wall figure matters here *)
  let t1 = Unix.gettimeofday () in
  List.iter
    (fun (bench, fault) ->
      let obs = Obs.create ~trace:true () in
      ignore (Runner.run_fault ?config ~obs ~pool bench fault))
    Suite.rows;
  let traced_wall_seconds = Unix.gettimeofday () -. t1 in
  (* warm-store legs: each fault opens a fresh handle (empty memory
     front) over the same directory, the way independent processes
     would, so warm hits are honest disk hits *)
  let store_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "exom_bench_store_%d" (Unix.getpid ()))
  in
  rm_rf store_dir;
  let store_pass () =
    let hits = ref 0 and queries = ref 0 and runs = ref 0 in
    List.iter
      (fun (bench, fault) ->
        let obs = Obs.create () in
        let store = Store.create ~obs ~dir:store_dir () in
        let r = Runner.run_fault ?config ~obs ~pool ~store bench fault in
        let st = r.Runner.report.Demand.store in
        hits := !hits + st.Store.hits + st.Store.disk_hits;
        queries :=
          !queries + st.Store.hits + st.Store.disk_hits + st.Store.misses;
        runs := !runs + Metrics.timer_count (Obs.metrics obs) "verify.run")
      Suite.rows;
    let rate =
      if !queries = 0 then 0.0
      else float_of_int !hits /. float_of_int !queries
    in
    (rate, !runs)
  in
  let prime_rate, _ = store_pass () in
  let warm_hit_rate, warm_verify_runs = store_pass () in
  rm_rf store_dir;
  Pool.shutdown pool;
  let corpus =
    (* fixed seed: the leg tracks locator behavior, not corpus variety *)
    Option.map
      (fun count -> run_corpus ?config ~jobs ~seed:1 ~count ())
      corpus_count
  in
  let rows = List.rev !rows in
  {
    label;
    jobs;
    rows;
    located = List.length (List.filter (fun r -> r.r_found) rows);
    total = List.length rows;
    verify_runs = !verify_runs;
    verify_seconds = !verify_seconds;
    interp_runs = !interp_runs;
    store_hit_rate = prime_rate;
    warm_hit_rate;
    warm_verify_runs;
    wall_seconds;
    traced_wall_seconds;
    corpus;
  }

(* {2 Serialization} *)

let num n = Json.Num (float_of_int n)

let row_json r =
  Json.Obj
    [
      ("bench", Json.Str r.r_bench);
      ("fault", Json.Str r.r_fault);
      ("found", Json.Bool r.r_found);
      ("verifications", num r.r_verifications);
      ("queries", num r.r_queries);
      ("iterations", num r.r_iterations);
      ("edges", num r.r_edges);
      ("prunings", num r.r_prunings);
    ]

let to_json s =
  Json.Obj
    ([
      ("schema", Json.Str schema_name);
      ("version", num schema_version);
      ("label", Json.Str s.label);
      ("jobs", num s.jobs);
      ("located", num s.located);
      ("total", num s.total);
      ("verify_runs", num s.verify_runs);
      ("verify_seconds", Json.Num s.verify_seconds);
      ("interp_runs", num s.interp_runs);
      ("store_hit_rate", Json.Num s.store_hit_rate);
      ("warm_hit_rate", Json.Num s.warm_hit_rate);
      ("warm_verify_runs", num s.warm_verify_runs);
      ("wall_seconds", Json.Num s.wall_seconds);
      ("traced_wall_seconds", Json.Num s.traced_wall_seconds);
      ("rows", Json.Arr (List.map row_json s.rows));
    ]
    @
    match s.corpus with
    | None -> []
    | Some c ->
      [
        ( "corpus",
          Json.Obj
            [
              ("seed", num c.c_seed);
              ("count", num c.c_count);
              ("located", num c.c_located);
              ("total", num c.c_total);
              ("failed", num c.c_failed);
              ("mean_iterations", Json.Num c.c_mean_iterations);
              ("mean_verifications", Json.Num c.c_mean_verifications);
              ("wall_seconds", Json.Num c.c_wall_seconds);
            ] );
      ])

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %s" what)

let get_str j k = Option.bind (Json.member k j) Json.to_str
let get_num j k = Option.bind (Json.member k j) Json.to_float
let get_int j k = Option.map int_of_float (get_num j k)

let get_bool j k =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let row_of_json j =
  let* r_bench = require "row.bench" (get_str j "bench") in
  let* r_fault = require "row.fault" (get_str j "fault") in
  let* r_found = require "row.found" (get_bool j "found") in
  let* r_verifications = require "row.verifications" (get_int j "verifications") in
  let* r_queries = require "row.queries" (get_int j "queries") in
  let* r_iterations = require "row.iterations" (get_int j "iterations") in
  let* r_edges = require "row.edges" (get_int j "edges") in
  let* r_prunings = require "row.prunings" (get_int j "prunings") in
  Ok
    { r_bench; r_fault; r_found; r_verifications; r_queries; r_iterations;
      r_edges; r_prunings }

let corpus_of_json j =
  let* c_seed = require "corpus.seed" (get_int j "seed") in
  let* c_count = require "corpus.count" (get_int j "count") in
  let* c_located = require "corpus.located" (get_int j "located") in
  let* c_total = require "corpus.total" (get_int j "total") in
  let* c_failed = require "corpus.failed" (get_int j "failed") in
  let* c_mean_iterations =
    require "corpus.mean_iterations" (get_num j "mean_iterations")
  in
  let* c_mean_verifications =
    require "corpus.mean_verifications" (get_num j "mean_verifications")
  in
  let* c_wall_seconds =
    require "corpus.wall_seconds" (get_num j "wall_seconds")
  in
  Ok
    { c_seed; c_count; c_located; c_total; c_failed; c_mean_iterations;
      c_mean_verifications; c_wall_seconds }

let of_json j =
  let* schema = require "schema" (get_str j "schema") in
  if schema <> schema_name then
    Error (Printf.sprintf "foreign schema %S" schema)
  else
    let* version = require "version" (get_int j "version") in
    (* v1 snapshots predate the warm-store legs (figures read back
       zeroed); v1 and v2 predate the corpus leg (reads back [None]);
       v1-v3 predate the traced pass (reads back 0.0).  All degrade to
       "no baseline" in the comparator, never to a fabricated drop. *)
    if version <> schema_version && not (List.mem version [ 1; 2; 3 ]) then
      Error
        (Printf.sprintf "schema version %d (this reader understands %d)"
           version schema_version)
    else
      let* label = require "label" (get_str j "label") in
      let* jobs = require "jobs" (get_int j "jobs") in
      let* located = require "located" (get_int j "located") in
      let* total = require "total" (get_int j "total") in
      let* verify_runs = require "verify_runs" (get_int j "verify_runs") in
      let* verify_seconds = require "verify_seconds" (get_num j "verify_seconds") in
      let* interp_runs = require "interp_runs" (get_int j "interp_runs") in
      let* store_hit_rate = require "store_hit_rate" (get_num j "store_hit_rate") in
      let* warm_hit_rate =
        if version = 1 then Ok 0.0
        else require "warm_hit_rate" (get_num j "warm_hit_rate")
      in
      let* warm_verify_runs =
        if version = 1 then Ok 0
        else require "warm_verify_runs" (get_int j "warm_verify_runs")
      in
      let* wall_seconds = require "wall_seconds" (get_num j "wall_seconds") in
      let* traced_wall_seconds =
        if version < 4 then Ok 0.0
        else require "traced_wall_seconds" (get_num j "traced_wall_seconds")
      in
      let* rows_j = require "rows" (Option.bind (Json.member "rows" j) Json.to_list) in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest ->
          let* row = row_of_json r in
          go (row :: acc) rest
      in
      let* rows = go [] rows_j in
      let* corpus =
        match Json.member "corpus" j with
        | None -> Ok None
        | Some c ->
          let* leg = corpus_of_json c in
          Ok (Some leg)
      in
      Ok
        { label; jobs; rows; located; total; verify_runs; verify_seconds;
          interp_runs; store_hit_rate; warm_hit_rate; warm_verify_runs;
          wall_seconds; traced_wall_seconds; corpus }

let to_line s = Json.to_string (to_json s)

let write_file path content =
  Exom_util.Vfs.get_ok
    (Exom_util.Vfs.write_file_atomic ~tmp:(path ^ ".tmp") path content)

let write path s = write_file path (to_line s ^ "\n")

let append_history path s =
  Exom_util.Vfs.get_ok (Exom_util.Vfs.append path (to_line s ^ "\n"))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | content -> (
    let lines =
      String.split_on_char '\n' content
      |> List.filter (fun l -> String.trim l <> "")
    in
    match List.rev lines with
    | [] -> Error "empty snapshot file"
    | last :: _ ->
      let* j = Json.parse last in
      of_json j)

(* {2 Regression comparison} *)

type severity = Regression | Info

type finding = { severity : severity; metric : string; detail : string }

(* Relative movement of a numeric metric against a threshold: growth
   beyond it is a regression, shrinkage beyond it an improvement. *)
let drift ~threshold ~metric ~fmt old_v new_v =
  if old_v <= 0.0 then []
  else
    let rel = (new_v -. old_v) /. old_v in
    if Float.abs rel <= threshold then []
    else
      [
        {
          severity = (if rel > 0.0 then Regression else Info);
          metric;
          detail =
            Printf.sprintf "%s -> %s (%+.1f%%, tolerance %.0f%%)" (fmt old_v)
              (fmt new_v) (100.0 *. rel) (100.0 *. threshold);
        };
      ]

(* Hit rates run the other way: shrinkage beyond the threshold is the
   regression, growth the improvement. *)
let rate_drift ~threshold ~metric old_v new_v =
  if old_v <= 0.0 then []
  else
    let rel = (new_v -. old_v) /. old_v in
    if Float.abs rel <= threshold then []
    else
      [
        {
          severity = (if rel < 0.0 then Regression else Info);
          metric;
          detail =
            Printf.sprintf "%.0f%% -> %.0f%% (%+.1f%%, tolerance %.0f%%)"
              (100.0 *. old_v) (100.0 *. new_v) (100.0 *. rel)
              (100.0 *. threshold);
        };
      ]

let fmt_int v = string_of_int (int_of_float v)
let fmt_s v = Printf.sprintf "%.3fs" v

let compare ~tolerance ~time_tolerance old_s new_s =
  let findings = ref [] in
  let push f = findings := f :: !findings in
  (* localization outcomes: any drop is a regression, no tolerance *)
  if new_s.located < old_s.located then
    push
      {
        severity = Regression;
        metric = "located";
        detail =
          Printf.sprintf "%d/%d -> %d/%d faults located" old_s.located
            old_s.total new_s.located new_s.total;
      }
  else if new_s.located > old_s.located then
    push
      {
        severity = Info;
        metric = "located";
        detail =
          Printf.sprintf "%d/%d -> %d/%d faults located" old_s.located
            old_s.total new_s.located new_s.total;
      };
  List.iter
    (fun old_row ->
      match
        List.find_opt
          (fun r ->
            r.r_bench = old_row.r_bench && r.r_fault = old_row.r_fault)
          new_s.rows
      with
      | Some new_row when old_row.r_found && not new_row.r_found ->
        push
          {
            severity = Regression;
            metric =
              Printf.sprintf "%s %s" old_row.r_bench old_row.r_fault;
            detail = "previously located, now missed";
          }
      | Some _ -> ()
      | None ->
        push
          {
            severity = Info;
            metric =
              Printf.sprintf "%s %s" old_row.r_bench old_row.r_fault;
            detail = "row absent from the new snapshot";
          })
    old_s.rows;
  let counts =
    [
      ("verify_runs", float_of_int old_s.verify_runs,
       float_of_int new_s.verify_runs);
      ("interp_runs", float_of_int old_s.interp_runs,
       float_of_int new_s.interp_runs);
      ( "queries",
        float_of_int
          (List.fold_left (fun a r -> a + r.r_queries) 0 old_s.rows),
        float_of_int
          (List.fold_left (fun a r -> a + r.r_queries) 0 new_s.rows) );
    ]
  in
  List.iter
    (fun (metric, o, n) ->
      List.iter push (drift ~threshold:tolerance ~metric ~fmt:fmt_int o n))
    counts;
  List.iter
    (fun (metric, o, n) ->
      List.iter push (rate_drift ~threshold:tolerance ~metric o n))
    [
      ("store_hit_rate", old_s.store_hit_rate, new_s.store_hit_rate);
      ("warm_hit_rate", old_s.warm_hit_rate, new_s.warm_hit_rate);
    ];
  (* the warm pass should re-execute (nearly) nothing; a baseline of
     zero gives drift no denominator, so new dispatches are flagged
     outright *)
  if old_s.warm_verify_runs = 0 && new_s.warm_verify_runs > 0 then
    push
      {
        severity = Regression;
        metric = "warm_verify_runs";
        detail =
          Printf.sprintf
            "warm pass dispatched %d switched run(s); the baseline \
             answered everything from the store"
            new_s.warm_verify_runs;
      }
  else
    List.iter push
      (drift ~threshold:tolerance ~metric:"warm_verify_runs" ~fmt:fmt_int
         (float_of_int old_s.warm_verify_runs)
         (float_of_int new_s.warm_verify_runs));
  List.iter
    (fun (metric, o, n) ->
      List.iter push (drift ~threshold:time_tolerance ~metric ~fmt:fmt_s o n))
    [
      ("verify_seconds", old_s.verify_seconds, new_s.verify_seconds);
      ("wall_seconds", old_s.wall_seconds, new_s.wall_seconds);
    ];
  (* tracing overhead (v4): loosely gated like the other timings, and
     only when both snapshots measured it — a pre-v4 baseline reads
     back 0.0 and must not fabricate a drop *)
  if old_s.traced_wall_seconds > 0.0 && new_s.traced_wall_seconds > 0.0 then
    List.iter push
      (drift ~threshold:time_tolerance ~metric:"traced_wall_seconds"
         ~fmt:fmt_s old_s.traced_wall_seconds new_s.traced_wall_seconds);
  (* corpus leg: gated only when both snapshots ran it over the same
     (seed, count) — otherwise the numbers measure different corpora *)
  (match (old_s.corpus, new_s.corpus) with
  | Some o, Some n when o.c_seed = n.c_seed && o.c_count = n.c_count ->
    if n.c_located < o.c_located then
      push
        {
          severity = Regression;
          metric = "corpus.located";
          detail =
            Printf.sprintf "%d/%d -> %d/%d corpus faults located" o.c_located
              o.c_total n.c_located n.c_total;
        }
    else if n.c_located > o.c_located then
      push
        {
          severity = Info;
          metric = "corpus.located";
          detail =
            Printf.sprintf "%d/%d -> %d/%d corpus faults located" o.c_located
              o.c_total n.c_located n.c_total;
        };
    List.iter
      (fun (metric, ov, nv) ->
        List.iter push
          (drift ~threshold:tolerance ~metric
             ~fmt:(fun v -> Printf.sprintf "%.2f" v)
             ov nv))
      [
        ("corpus.mean_iterations", o.c_mean_iterations, n.c_mean_iterations);
        ( "corpus.mean_verifications",
          o.c_mean_verifications,
          n.c_mean_verifications );
      ]
  | _ -> ());
  List.rev !findings

let has_regression findings =
  List.exists (fun f -> f.severity = Regression) findings

let render findings =
  if findings = [] then "no metric moved beyond tolerance\n"
  else
    String.concat ""
      (List.map
         (fun f ->
           Printf.sprintf "%s %-16s %s\n"
             (match f.severity with
             | Regression -> "REGRESSION"
             | Info -> "info      ")
             f.metric f.detail)
         findings)
