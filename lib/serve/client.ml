(* The service client.  One connection per request: connect, one
   frame out, one frame in.  Stress mode spawns one domain per
   concurrent client — the point is to exercise the daemon's listener,
   bounded queue and shed path under real concurrency, not to be a
   load-testing framework. *)

let request ~socket req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message e))
      | () -> (
        match Proto.write_frame fd (Proto.encode_request req) with
        | exception Unix.Unix_error (e, _, _) ->
          Error ("send failed: " ^ Unix.error_message e)
        | () -> (
          match Proto.read_frame fd with
          | Error e -> Error ("no reply: " ^ e)
          | Ok None -> Error "connection closed before a reply"
          | Ok (Some payload) -> Proto.decode_response payload)))

type stress_result = {
  st_served : int;
  st_shed : int;
  st_failed : int;
  st_errors : int;
  st_replayed : int;
}

let stress ~socket ~clients reqs =
  if clients < 1 then invalid_arg "Client.stress: clients must be >= 1";
  if reqs = [] then invalid_arg "Client.stress: no requests";
  let arr = Array.of_list reqs in
  let one i =
    let locate = arr.(i mod Array.length arr) in
    request ~socket (Proto.Locate locate)
  in
  let domains = List.init clients (fun i -> Domain.spawn (fun () -> one i)) in
  let results = List.map Domain.join domains in
  List.fold_left
    (fun acc r ->
      match r with
      | Ok (Proto.Served s) ->
        { acc with
          st_served = acc.st_served + 1;
          st_replayed = (acc.st_replayed + if s.Proto.sv_replayed then 1 else 0);
        }
      | Ok (Proto.Shed _) -> { acc with st_shed = acc.st_shed + 1 }
      | Ok (Proto.Failed _) -> { acc with st_failed = acc.st_failed + 1 }
      | Ok (Proto.Pong | Proto.Counters _) ->
        { acc with st_errors = acc.st_errors + 1 }
      | Error _ -> { acc with st_errors = acc.st_errors + 1 })
    { st_served = 0; st_shed = 0; st_failed = 0; st_errors = 0;
      st_replayed = 0 }
    results
