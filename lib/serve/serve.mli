(** Localization-as-a-service: a crash-safe daemon over one shared,
    sharded verdict store.

    The daemon listens on a Unix-domain socket for {!Proto} frames.  A
    listener domain accepts connections, answers [ping]/[stats]
    inline, and feeds [locate] requests into a bounded queue —
    persisting each request to the state directory {e before}
    acknowledging it, so a SIGKILL can lose no accepted work.  When the
    queue is full (or the daemon is draining) the request is shed with
    an explicit 429-style reply instead of growing memory.

    The service loop (the coordinator) serves requests one at a time —
    each localization already parallelizes its verification batches
    across the supervised domain pool — journaling every request's
    ledger with the crash-safe machinery: verdicts stream into the
    shared store, events into a write-ahead journal named after the
    request's {!Exom_core.Session.fingerprint}.  After a crash,
    [run ~resume:true] re-enqueues every request whose journal lacks a
    Final event and replays it to a byte-identical ledger.  Repeated
    requests (same fingerprint) are served by whole-journal replay — a
    warm answer with zero re-executions.

    A request whose localization comes back DEGRADED (transient worker
    kills exhausted the pool's respawn budget) is retried from a cold
    journal with exponential backoff, up to [request_retries] times.

    On SIGTERM/SIGINT the daemon drains: the listener stops accepting,
    queued requests are served to completion, counters are exported to
    [STATE/metrics.jsonl], and the socket is removed. *)

type config = {
  socket_path : string;
  state_dir : string;  (** requests/, ledgers/, store/ live under it *)
  jobs : int;  (** supervised pool size for verification batches *)
  queue_limit : int;  (** pending requests beyond this are shed *)
  shards : int;  (** store partition count (manifest wins if present) *)
  lease : float;  (** store writer-lock lease, seconds *)
  request_retries : int;  (** re-runs of a DEGRADED request *)
  resume : bool;  (** replay journaled in-flight requests at startup *)
  trace : bool;
      (** record per-request spans (the request under one
          [serve.request] span keyed by its fingerprint) and export
          each request's Chrome trace to
          [STATE/traces/<fingerprint>.trace.json] *)
}

val default_config : socket_path:string -> state_dir:string -> config

(** The structured counters a [locate] reply carries in
    [Proto.sv_counts]: every deterministic count of a
    {!Exom_core.Demand.report}, in a fixed key order.  Exposed so other
    machine consumers of reports (the corpus campaign runner) emit the
    same keys without depending on the daemon. *)
val counts_of_report : Exom_core.Demand.report -> (string * int) list

(** Run the daemon until drained.  Returns the process exit code.
    [on_ready] (default: nothing) fires once the socket is listening —
    tests use it to avoid polling. *)
val run : ?on_ready:(unit -> unit) -> config -> int
