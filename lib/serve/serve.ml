(* The exom localization daemon.

   Two domains share the work:

   - the listener accepts connections, answers ping/stats inline, and
     enqueues locate requests — persisting each one to
     STATE/requests/ *before* it is queued, so an accepted request
     survives SIGKILL;
   - the service loop (the coordinator, on the main domain) pops
     requests and runs one localization at a time, journaling it with
     the crash-safe ledger machinery over the shared sharded store.
     One-at-a-time is deliberate: each request already fans its
     verification batches out across the supervised pool, and the
     store/ledger coordinator-only discipline is what makes every
     request's ledger byte-identical to a single-process `exom locate`
     of the same program and input.

   Crash safety: a request's journal is named after its session
   fingerprint (content hash of program, input, expected stream,
   budget).  A SIGKILL mid-request leaves the journal behind;
   `run ~resume:true` re-enqueues every persisted request whose ledger
   lacks a Final event and replays it — completed batches from the
   journal, the in-flight batch live — to a byte-identical ledger.
   Repeated requests with the same fingerprint replay their complete
   journal: a warm answer, zero re-executions.

   Counters cross domains, so they are atomics; they are mirrored into
   the daemon's metrics registry under serve.* only from the service
   loop and at drain, keeping the registry coordinator-only. *)

module Typecheck = Exom_lang.Typecheck
module Loc = Exom_lang.Loc
module Ast = Exom_lang.Ast
module Proginfo = Exom_cfg.Proginfo
module Slice = Exom_ddg.Slice
module Session = Exom_core.Session
module Oracle = Exom_core.Oracle
module Demand = Exom_core.Demand
module Guard = Exom_core.Guard
module Recover = Exom_core.Recover
module Pool = Exom_sched.Pool
module Store = Exom_sched.Store
module Ledger = Exom_ledger.Ledger
module Obs = Exom_obs.Obs
module Export = Exom_obs.Export
module Vfs = Exom_util.Vfs

type config = {
  socket_path : string;
  state_dir : string;
  jobs : int;
  queue_limit : int;
  shards : int;
  lease : float;
  request_retries : int;
  resume : bool;
  trace : bool;
      (* per-request span recording, exported to
         STATE/traces/<fingerprint>.trace.json *)
}

let default_config ~socket_path ~state_dir =
  {
    socket_path;
    state_dir;
    jobs = Pool.default_jobs ();
    queue_limit = 64;
    shards = Store.default_shards;
    lease = Store.default_lease;
    request_retries = 2;
    resume = false;
    trace = false;
  }

(* {2 State} *)

type counters = {
  accepted : int Atomic.t;  (* locate requests taken into the queue *)
  served : int Atomic.t;  (* requests answered with a report *)
  shed : int Atomic.t;  (* rejected: queue full, draining, stale *)
  failed : int Atomic.t;  (* unservable: parse errors, agreement, ... *)
  resumed : int Atomic.t;  (* in-flight requests replayed at startup *)
  replayed : int Atomic.t;  (* requests served (partly) from a journal *)
  retries : int Atomic.t;  (* degraded requests re-run *)
  storage_unavailable : int Atomic.t;
      (* requests shed (507-style) because their request file could not
         be persisted: the daemon keeps draining on a hostile disk *)
}

type pending = {
  p_locate : Proto.locate;
  p_fd : Unix.file_descr option;  (* None for requests replayed at startup *)
  p_file : string option;  (* provisional request file, renamed when served *)
  p_enqueued : float;  (* wall clock, for the queue deadline only *)
}

type state = {
  cfg : config;
  drain : bool Atomic.t;
  mutex : Mutex.t;
  queue : pending Queue.t;
  counters : counters;
  obs : Obs.t;  (* service-loop only *)
  pool : Pool.t;
}

let requests_dir st = Filename.concat st.cfg.state_dir "requests"
let ledgers_dir st = Filename.concat st.cfg.state_dir "ledgers"
let store_dir st = Filename.concat st.cfg.state_dir "store"
let traces_dir st = Filename.concat st.cfg.state_dir "traces"
let ledger_path st fp = Filename.concat (ledgers_dir st) (fp ^ ".ledger")
let trace_path st fp = Filename.concat (traces_dir st) (fp ^ ".trace.json")

(* Startup state directories are mandatory: a daemon that cannot
   persist requests must not come up claiming crash safety. *)
let ensure_dir d = Vfs.get_ok (Vfs.ensure_dir d)

let write_file_atomic path content =
  Vfs.write_file_atomic
    ~tmp:(Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()))
    path content

let queue_depth st =
  Mutex.lock st.mutex;
  let n = Queue.length st.queue in
  Mutex.unlock st.mutex;
  n

let counter_list st =
  [ ("accepted", Atomic.get st.counters.accepted);
    ("served", Atomic.get st.counters.served);
    ("shed", Atomic.get st.counters.shed);
    ("failed", Atomic.get st.counters.failed);
    ("resumed", Atomic.get st.counters.resumed);
    ("replayed", Atomic.get st.counters.replayed);
    ("retries", Atomic.get st.counters.retries);
    ("storage_unavailable", Atomic.get st.counters.storage_unavailable);
    ("queue_depth", queue_depth st) ]

(* {2 The listener domain} *)

let send_response fd resp =
  match Proto.write_frame fd (Proto.encode_response resp) with
  | () -> ()
  | exception (Unix.Unix_error _ | Sys_error _) -> ()  (* client went away *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let provisional_seq = ref 0

(* Persist, then enqueue, then count: a request is only ever
   acknowledged after it can survive a SIGKILL.  A request that cannot
   be persisted is therefore shed (the 507: storage, not load) — the
   client is told to retry, nothing enters the queue, and the daemon
   keeps draining. *)
let enqueue_locate st fd locate =
  incr provisional_seq;
  let file =
    Filename.concat (requests_dir st)
      (Printf.sprintf "q-%d-%d.json" (Unix.getpid ()) !provisional_seq)
  in
  match
    write_file_atomic file (Proto.encode_request (Proto.Locate locate) ^ "\n")
  with
  | Error e ->
    Vfs.ack e ~by:"serve.storage_unavailable";
    (* whatever landed (a torn temp, a renamed-but-unsynced file) must
       not be replayed by --resume: the client was told to retry *)
    (try Sys.remove file with Sys_error _ -> ());
    Atomic.incr st.counters.storage_unavailable;
    Atomic.incr st.counters.shed;
    send_response fd (Proto.Shed "storage_unavailable");
    close_quietly fd
  | Ok () ->
    Mutex.lock st.mutex;
    Queue.add
      { p_locate = locate; p_fd = Some fd; p_file = Some file;
        p_enqueued = Unix.gettimeofday () }
      st.queue;
    Mutex.unlock st.mutex;
    Atomic.incr st.counters.accepted

let handle_connection st fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  match Proto.read_frame fd with
  | Ok None -> close_quietly fd
  | Error e ->
    send_response fd (Proto.Failed e);
    close_quietly fd
  | Ok (Some payload) -> (
    match Proto.decode_request payload with
    | Error e ->
      send_response fd (Proto.Failed e);
      close_quietly fd
    | Ok Proto.Ping ->
      send_response fd Proto.Pong;
      close_quietly fd
    | Ok Proto.Stats ->
      send_response fd (Proto.Counters (counter_list st));
      close_quietly fd
    | Ok (Proto.Locate locate) ->
      if Atomic.get st.drain then begin
        Atomic.incr st.counters.shed;
        send_response fd (Proto.Shed "draining");
        close_quietly fd
      end
      else if queue_depth st >= st.cfg.queue_limit then begin
        (* the 429: bounded queue, explicit reject, client backs off *)
        Atomic.incr st.counters.shed;
        send_response fd (Proto.Shed "queue full");
        close_quietly fd
      end
      else enqueue_locate st fd locate)

let listener_loop st lfd =
  let rec loop () =
    if Atomic.get st.drain then ()
    else begin
      (match Unix.select [ lfd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept lfd with
        | fd, _ -> (
          match handle_connection st fd with
          | () -> ()
          | exception _ -> close_quietly fd)
        | exception
            Unix.Unix_error
              ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                | Unix.ECONNABORTED ),
                _,
                _ ) ->
          ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  try Unix.close lfd with Unix.Unix_error _ -> ()

(* {2 Serving one request} *)

let compile kind source =
  try Ok (Typecheck.parse_and_check source) with
  | Loc.Error (loc, msg) ->
    Error
      (Printf.sprintf "%s:%d:%d: %s" kind (Loc.line loc) (Loc.col loc) msg)
  | Failure msg -> Error (Printf.sprintf "%s: %s" kind msg)

(* The deterministic report text: exactly the locate lines that carry
   no wall-clock and no scheduler state, so a client-side report can be
   diffed against a single-process `exom locate` run. *)
let report_text info (report : Demand.report) root_line =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "verifications: %d (of %d queries), iterations: %d, implicit edges: %d, \
     user prunings: %d\n"
    report.Demand.verifications report.Demand.verify_queries
    report.Demand.iterations report.Demand.expanded_edges
    report.Demand.user_prunings;
  (match root_line with
  | Some line ->
    Printf.bprintf b "root cause (line %d) %s\n" line
      (if report.Demand.found then "LOCATED" else "not located")
  | None -> ());
  Buffer.add_string b "final fault candidate set:\n";
  List.iter
    (fun sid ->
      let stmt = Proginfo.stmt_of_sid info sid in
      Printf.bprintf b "  line %-4d %s\n"
        (Loc.line stmt.Ast.sloc)
        (Exom_lang.Pretty.stmt_head stmt))
    (Slice.sids report.Demand.ips);
  Buffer.contents b

(* The structured counterpart of [report_text]: every deterministic
   counter of a locate report, keyed for machine consumers (the corpus
   campaign runner builds its outcome rows from exactly these keys,
   whether it ran in-process or through the daemon). *)
let counts_of_report (report : Demand.report) =
  let g = report.Demand.robustness and s = report.Demand.store in
  [
    ("iterations", report.Demand.iterations);
    ("verifications", report.Demand.verifications);
    ("verify_queries", report.Demand.verify_queries);
    ("expanded_edges", report.Demand.expanded_edges);
    ("implicit_edges", List.length report.Demand.implicit_edges);
    ("user_prunings", report.Demand.user_prunings);
    ("total_prunings", report.Demand.total_prunings);
    ("benign", List.length report.Demand.benign);
    ("completed", g.Guard.completed);
    ("aborted", g.Guard.aborted);
    ("breaker_trips", g.Guard.breaker_trips);
    ("breaker_skips", g.Guard.breaker_skips);
    ("quarantined", g.Guard.quarantined);
    ("store_hits", s.Store.hits);
    ("store_disk_hits", s.Store.disk_hits);
    ("store_misses", s.Store.misses);
    ("store_writes", s.Store.writes);
    ("degraded", if report.Demand.degraded = None then 0 else 1);
  ]

let root_sids_of_line prog = function
  | None -> [ -1 ]  (* no ground truth: run to exhaustion and report *)
  | Some line ->
    let sids = ref [] in
    Ast.iter_program
      (fun s -> if Loc.line s.Ast.sloc = line then sids := s.Ast.sid :: !sids)
      prog;
    !sids

(* One localization, cold or resumed from its fingerprint journal.
   [attempt] drives the degraded-retry backoff. *)
let rec locate_once st (l : Proto.locate) ~attempt =
  match (compile "program" l.Proto.lc_program, compile "correct" l.Proto.lc_correct) with
  | Error e, _ | _, Error e -> Proto.Failed e
  | Ok prog, Ok correct -> (
    let input = l.Proto.lc_input in
    match Oracle.expected ~correct_prog:correct ~input with
    | exception e ->
      Proto.Failed ("correct program failed: " ^ Printexc.to_string e)
    | expected -> (
      let policy =
        match l.Proto.lc_deadline with
        | None -> Guard.default_policy
        | Some d -> { Guard.default_policy with Guard.deadline = Some d }
      in
      (* per-request observability lane: forked on the coordinator,
         absorbed after the request, so daemon metrics aggregate
         deterministically while each request keeps its own registry.
         Under [trace] the request gets a fresh tracing context instead
         (a fork of the non-tracing daemon context could never record
         spans); its metrics are still absorbed into the daemon's. *)
      let req_obs =
        if st.cfg.trace then Obs.create ~trace:true () else Obs.fork st.obs
      in
      let ledger = Ledger.create () in
      let store =
        Store.create ~obs:req_obs ~dir:(store_dir st) ~shards:st.cfg.shards
          ~lease:st.cfg.lease ()
      in
      match
        Session.create ~obs:req_obs ~policy ~store ~ledger ~prog ~input
          ~expected ~profile_inputs:[ input ] ()
      with
      | exception Session.No_failure ->
        Proto.Failed "the two programs agree on this input: nothing to locate"
      | exception e ->
        Proto.Failed ("session setup failed: " ^ Printexc.to_string e)
      | session ->
        (* The session fingerprint covers program/input/expected/budget;
           the root line additionally shapes the search trajectory (the
           search stops when it reaches the root set), so it is folded
           into the journal key — requests differing only in root line
           must not share a journal. *)
        let fp =
          let base = Session.fingerprint session in
          match l.Proto.lc_root_line with
          | None -> base
          | Some line -> Printf.sprintf "%s-r%d" base line
        in
        let lpath = ledger_path st fp in
        let plan =
          if Sys.file_exists lpath then
            match Recover.plan_of_file lpath with
            | Ok p when Recover.matches_session p session -> Some p
            | Ok _ | Error _ -> None
          else None
        in
        (match plan with
        | Some p -> Recover.prime session p
        | None -> ());
        Ledger.attach_journal ledger lpath;
        (match plan with
        | Some p ->
          Ledger.resume_marker ledger ~replayed:p.Recover.salvaged_events
            ~truncated:p.Recover.truncated
        | None -> ());
        let oracle =
          Oracle.create ~faulty_trace:session.Session.trace
            ~correct_prog:correct ~input
        in
        let root_sids = root_sids_of_line prog l.Proto.lc_root_line in
        (* the request's whole search runs under one serve.request
           span keyed by the fingerprint, so an exported trace names
           the request it belongs to on its own coordinator lane *)
        let report =
          Obs.with_span req_obs ~cat:"serve"
            ~args:[ ("fingerprint", fp) ]
            "serve.request"
            (fun () -> Demand.locate ~pool:st.pool session ~oracle ~root_sids)
        in
        Ledger.close_journal ledger;
        (* canonical-write failure degrades, never drops the answer:
           the closed journal is complete, so resume still converges *)
        (match Ledger.write_result lpath ledger with
        | Ok () -> ()
        | Error e ->
          Vfs.ack e ~by:"serve.io_failures";
          Obs.incr st.obs "serve.io_failures");
        if st.cfg.trace then begin
          match Vfs.ensure_dir (traces_dir st) with
          | Error e ->
            Vfs.ack e ~by:"serve.io_failures";
            Obs.incr st.obs "serve.io_failures"
          | Ok () -> (
            match
              write_file_atomic (trace_path st fp)
                (Exom_obs.Json.to_string (Export.chrome_json req_obs) ^ "\n")
            with
            | Ok () -> ()
            | Error e ->
              Vfs.ack e ~by:"serve.io_failures";
              Obs.incr st.obs "serve.io_failures")
        end;
        Obs.absorb ~into:st.obs req_obs;
        if report.Demand.degraded <> None && attempt < st.cfg.request_retries
        then begin
          (* transient worker kills degraded the run: back off and
             re-run cold — replaying a degraded journal would only
             reproduce the degradation *)
          Atomic.incr st.counters.retries;
          Obs.incr st.obs "serve.retries";
          (try Sys.remove lpath with Sys_error _ -> ());
          Unix.sleepf (0.05 *. float_of_int (1 lsl attempt));
          locate_once st l ~attempt:(attempt + 1)
        end
        else begin
          if plan <> None then begin
            Atomic.incr st.counters.replayed;
            Obs.incr st.obs "serve.replayed"
          end;
          Proto.Served
            {
              Proto.sv_found = report.Demand.found;
              sv_fingerprint = fp;
              sv_ledger = lpath;
              sv_replayed = plan <> None;
              sv_report = report_text session.Session.info report
                  l.Proto.lc_root_line;
              sv_counts = counts_of_report report;
            }
        end))

let serve_one st item =
  let stale =
    match item.p_locate.Proto.lc_deadline with
    | Some d -> Unix.gettimeofday () -. item.p_enqueued > d
    | None -> false
  in
  let resp =
    if stale then begin
      Atomic.incr st.counters.shed;
      Obs.incr st.obs "serve.shed";
      (* the client is told to retry, so the persisted request must go:
         leaving it would make --resume re-enqueue work the client
         already re-owns (and double-run it after its retry) *)
      (match item.p_file with
      | Some f -> ( try Sys.remove f with Sys_error _ -> ())
      | None -> ());
      Proto.Shed "queue deadline exceeded"
    end
    else begin
      let resp = locate_once st item.p_locate ~attempt:0 in
      (match resp with
      | Proto.Served s ->
        Atomic.incr st.counters.served;
        Obs.incr st.obs "serve.served";
        (* retire the provisional request file under the fingerprint:
           repeated requests collapse onto one persisted record *)
        (match item.p_file with
        | Some f when Sys.file_exists f -> (
          let final =
            Filename.concat (requests_dir st) (s.Proto.sv_fingerprint ^ ".json")
          in
          try Sys.rename f final with Sys_error _ -> ())
        | _ -> ())
      | Proto.Failed _ ->
        Atomic.incr st.counters.failed;
        Obs.incr st.obs "serve.failed";
        (* unservable forever: drop the persisted request so resume
           does not replay a parse error *)
        (match item.p_file with
        | Some f -> ( try Sys.remove f with Sys_error _ -> ())
        | None -> ())
      | _ -> ());
      resp
    end
  in
  match item.p_fd with
  | None -> ()
  | Some fd ->
    send_response fd resp;
    close_quietly fd

let rec service_loop st =
  let item =
    Mutex.lock st.mutex;
    let i = Queue.take_opt st.queue in
    Mutex.unlock st.mutex;
    i
  in
  match item with
  | Some item ->
    serve_one st item;
    service_loop st
  | None ->
    if Atomic.get st.drain then ()  (* drained: accepted work is done *)
    else begin
      Unix.sleepf 0.02;
      service_loop st
    end

(* {2 Startup resume} *)

(* Re-enqueue every persisted request whose ledger is not complete: the
   localizations in flight (or still queued) when the daemon was
   killed.  Their journals are picked up by fingerprint inside
   [locate_once], replaying completed batches and re-verifying only the
   in-flight tail — the resumed ledger is byte-identical to an
   uninterrupted run's. *)
let resume_scan st =
  let dir = requests_dir st in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".json" then begin
        let path = Filename.concat dir name in
        let content =
          try
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with Sys_error _ -> ""
        in
        match Proto.decode_request (String.trim content) with
        | Ok (Proto.Locate locate) ->
          let complete_ledger path =
            match Recover.plan_of_file path with
            | Ok p -> p.Recover.complete
            | Error _ -> false
          in
          (* a complete ledger under the request's fingerprint means the
             answer is durable; only fingerprint-named request files can
             be checked without building a session *)
          let done_already =
            complete_ledger
              (ledger_path st (Filename.chop_suffix name ".json"))
          in
          if not done_already then begin
            Mutex.lock st.mutex;
            Queue.add
              { p_locate = locate; p_fd = None; p_file = Some path;
                p_enqueued = Unix.gettimeofday () }
              st.queue;
            Mutex.unlock st.mutex;
            Atomic.incr st.counters.resumed;
            Obs.incr st.obs "serve.resumed"
          end
        | Ok _ | Error _ ->
          (* unreadable or foreign: quarantine-by-rename, keep going *)
          (try Sys.rename path (path ^ ".rejected") with Sys_error _ -> ())
      end)
    (try Sys.readdir dir with Sys_error _ -> [||])

(* {2 The daemon} *)

let run ?(on_ready = fun () -> ()) cfg =
  ensure_dir cfg.state_dir;
  let st =
    {
      cfg;
      drain = Atomic.make false;
      mutex = Mutex.create ();
      queue = Queue.create ();
      counters =
        {
          accepted = Atomic.make 0;
          served = Atomic.make 0;
          shed = Atomic.make 0;
          failed = Atomic.make 0;
          resumed = Atomic.make 0;
          replayed = Atomic.make 0;
          retries = Atomic.make 0;
          storage_unavailable = Atomic.make 0;
        };
      obs = Obs.create ();
      pool = Pool.create ~jobs:cfg.jobs ();
    }
  in
  ensure_dir (requests_dir st);
  ensure_dir (ledgers_dir st);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if cfg.resume then resume_scan st;
  (* the socket: refuse to clobber a live daemon, replace a dead one's *)
  let socket_free =
    if not (Sys.file_exists cfg.socket_path) then true
    else begin
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX cfg.socket_path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      close_quietly probe;
      if live then false
      else begin
        Sys.remove cfg.socket_path;
        true
      end
    end
  in
  if not socket_free then begin
    Printf.eprintf "serve: %s already has a listening daemon\n" cfg.socket_path;
    Pool.shutdown st.pool;
    1
  end
  else begin
    let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind lfd (Unix.ADDR_UNIX cfg.socket_path);
    Unix.listen lfd 64;
    (* the drain handlers are installed only once this instance owns the
       socket: a refused second instance must not clobber the live
       daemon's handlers (they share a process in the test harness) *)
    let drain_signal _ = Atomic.set st.drain true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain_signal);
    on_ready ();
    let listener = Domain.spawn (fun () -> listener_loop st lfd) in
    service_loop st;
    Domain.join listener;
    Pool.shutdown st.pool;
    (* final books: fold the cross-domain counters into the registry and
       export it next to the ledgers *)
    List.iter
      (fun (name, v) ->
        if name <> "queue_depth" then
          let have =
            Exom_obs.Metrics.counter_value (Obs.metrics st.obs)
              ("serve." ^ name)
          in
          if v > have then Obs.add st.obs ("serve." ^ name) (v - have))
      (counter_list st);
    (match
       Export.write_jsonl (Filename.concat cfg.state_dir "metrics.jsonl") st.obs
     with
    | Ok () -> ()
    | Error e ->
      Vfs.ack e ~by:"serve.io_failures";
      Printf.eprintf "serve: metrics export failed: %s\n" (Vfs.error_message e));
    (try Sys.remove cfg.socket_path with Sys_error _ -> ());
    0
  end
