(* Wire protocol of the localization service.

   Frame = 4-byte big-endian length + compact JSON payload.  Every
   payload names the schema and version, mirroring the discipline of
   the ledger and the store manifest: a foreign or future frame is
   rejected with a reason, never misread.  The length prefix is
   validated against [max_frame] before any allocation happens. *)

module Json = Exom_obs.Json

let schema = "exom.serve"
let version = 1
let max_frame = 16 * 1024 * 1024

(* {2 Payload types} *)

type locate = {
  lc_program : string;
  lc_correct : string;
  lc_input : int list;
  lc_root_line : int option;
  lc_deadline : float option;
}

type request = Locate of locate | Ping | Stats

type response =
  | Served of served
  | Shed of string
  | Failed of string
  | Pong
  | Counters of (string * int) list

and served = {
  sv_found : bool;
  sv_fingerprint : string;
  sv_ledger : string;
  sv_replayed : bool;
  sv_report : string;
  sv_counts : (string * int) list;
}

(* {2 JSON codec} *)

let envelope fields =
  Json.Obj
    (("schema", Json.Str schema)
    :: ("version", Json.Num (float_of_int version))
    :: fields)

let num n = Json.Num (float_of_int n)
let ints l = Json.Arr (List.map num l)

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let encode_request = function
  | Ping -> Json.to_string (envelope [ ("op", Json.Str "ping") ])
  | Stats -> Json.to_string (envelope [ ("op", Json.Str "stats") ])
  | Locate l ->
    Json.to_string
      (envelope
         ([ ("op", Json.Str "locate");
            ("program", Json.Str l.lc_program);
            ("correct", Json.Str l.lc_correct);
            ("input", ints l.lc_input) ]
         @ opt_field "root_line" num l.lc_root_line
         @ opt_field "deadline" (fun d -> Json.Num d) l.lc_deadline))

let encode_response = function
  | Pong -> Json.to_string (envelope [ ("status", Json.Str "pong") ])
  | Shed reason ->
    Json.to_string
      (envelope [ ("status", Json.Str "shed"); ("reason", Json.Str reason) ])
  | Failed reason ->
    Json.to_string
      (envelope [ ("status", Json.Str "error"); ("reason", Json.Str reason) ])
  | Counters kvs ->
    Json.to_string
      (envelope
         [ ("status", Json.Str "counters");
           ("counters", Json.Obj (List.map (fun (k, v) -> (k, num v)) kvs)) ])
  | Served s ->
    Json.to_string
      (envelope
         [ ("status", Json.Str "served");
           ("found", Json.Bool s.sv_found);
           ("fingerprint", Json.Str s.sv_fingerprint);
           ("ledger", Json.Str s.sv_ledger);
           ("replayed", Json.Bool s.sv_replayed);
           ("report", Json.Str s.sv_report);
           ("counts", Json.Obj (List.map (fun (k, v) -> (k, num v)) s.sv_counts)) ])

let check_envelope j =
  match (Json.member "schema" j, Json.member "version" j) with
  | Some (Json.Str s), Some (Json.Num v) ->
    if s <> schema then Error (Printf.sprintf "foreign schema %S" s)
    else if int_of_float v <> version then
      Error
        (Printf.sprintf "protocol version %d (this side speaks %d)"
           (int_of_float v) version)
    else Ok ()
  | _ -> Error "missing schema/version envelope"

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing %S" name)

let parse_payload kind s =
  match Json.parse s with
  | Error e -> Error (Printf.sprintf "unparsable %s: %s" kind e)
  | Ok j -> (
    match check_envelope j with Error e -> Error e | Ok () -> Ok j)

let decode_request s =
  match parse_payload "request" s with
  | Error e -> Error e
  | Ok j -> (
    match str_field "op" j with
    | Error e -> Error e
    | Ok "ping" -> Ok Ping
    | Ok "stats" -> Ok Stats
    | Ok "locate" -> (
      match (str_field "program" j, str_field "correct" j) with
      | Error e, _ | _, Error e -> Error e
      | Ok program, Ok correct ->
        let input =
          match Json.member "input" j with
          | Some (Json.Arr l) ->
            Some
              (List.filter_map
                 (function Json.Num n -> Some (int_of_float n) | _ -> None)
                 l)
          | _ -> None
        in
        (match input with
        | None -> Error "missing \"input\""
        | Some lc_input ->
          let lc_root_line =
            match Json.member "root_line" j with
            | Some (Json.Num n) -> Some (int_of_float n)
            | _ -> None
          in
          let lc_deadline =
            match Json.member "deadline" j with
            | Some (Json.Num d) -> Some d
            | _ -> None
          in
          Ok
            (Locate
               { lc_program = program; lc_correct = correct; lc_input;
                 lc_root_line; lc_deadline })))
    | Ok op -> Error (Printf.sprintf "unknown op %S" op))

let decode_response s =
  match parse_payload "response" s with
  | Error e -> Error e
  | Ok j -> (
    match str_field "status" j with
    | Error e -> Error e
    | Ok "pong" -> Ok Pong
    | Ok "shed" ->
      Ok (Shed (Result.value ~default:"unspecified" (str_field "reason" j)))
    | Ok "error" ->
      Ok (Failed (Result.value ~default:"unspecified" (str_field "reason" j)))
    | Ok "counters" -> (
      match Json.member "counters" j with
      | Some (Json.Obj kvs) ->
        Ok
          (Counters
             (List.filter_map
                (function
                  | k, Json.Num v -> Some (k, int_of_float v)
                  | _ -> None)
                kvs))
      | _ -> Error "counters reply without counters")
    | Ok "served" -> (
      match
        ( str_field "fingerprint" j,
          str_field "ledger" j,
          str_field "report" j )
      with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok sv_fingerprint, Ok sv_ledger, Ok sv_report ->
        let flag name =
          match Json.member name j with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        let sv_counts =
          match Json.member "counts" j with
          | Some (Json.Obj kvs) ->
            List.filter_map
              (function
                | k, Json.Num v -> Some (k, int_of_float v)
                | _ -> None)
              kvs
          | _ -> []
        in
        Ok
          (Served
             { sv_found = flag "found"; sv_fingerprint; sv_ledger;
               sv_replayed = flag "replayed"; sv_report; sv_counts }))
    | Ok st -> Error (Printf.sprintf "unknown status %S" st))

(* {2 Framing} *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Proto.write_frame: payload too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

(* Reads exactly [len] bytes; [Ok None] only on EOF at offset 0. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Ok (Some (Bytes.unsafe_to_string buf))
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then Ok None else Error "torn frame (unexpected EOF)"
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error "read timed out"
      | exception Unix.Unix_error (e, _, _) ->
        Error (Unix.error_message e)
  in
  go 0

let read_frame fd =
  match read_exact fd 4 with
  | Error e -> Error e
  | Ok None -> Ok None
  | Ok (Some prefix) -> (
    let len = Int32.to_int (String.get_int32_be prefix 0) in
    if len < 0 || len > max_frame then
      Error (Printf.sprintf "refused frame of %d bytes" len)
    else
      match read_exact fd len with
      | Error e -> Error e
      | Ok None -> Error "torn frame (length without payload)"
      | Ok (Some payload) -> Ok (Some payload))
