(** The localization service wire protocol: length-prefixed, versioned
    JSON frames over a Unix-domain stream socket.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of compact JSON.  Every payload carries
    [{"schema":"exom.serve","version":1,...}]; a frame from a different
    schema or version is rejected at decode, never guessed at.  Frames
    above {!max_frame} are refused before allocation, so a garbage
    length prefix cannot balloon the daemon. *)

val schema : string
val version : int

(** Refuse frames longer than this many bytes (16 MiB). *)
val max_frame : int

(** One localization request: program sources travel inline (the daemon
    has no filesystem contract with its clients). *)
type locate = {
  lc_program : string;  (** the faulty MCL source text *)
  lc_correct : string;  (** the corrected program (the oracle) *)
  lc_input : int list;  (** the failing input *)
  lc_root_line : int option;
      (** ground-truth fault line; [None] runs to exhaustion *)
  lc_deadline : float option;
      (** request deadline in seconds: sheds the request if it is still
          queued when the deadline passes, and bounds each verification
          (the Guard deadline) while it runs *)
}

type request =
  | Locate of locate
  | Ping  (** liveness probe *)
  | Stats  (** daemon counters *)

(** What the daemon answered.  [Served] echoes a deterministic textual
    report plus the server-side ledger path and the request fingerprint
    (see {!Exom_core.Session.fingerprint}); [Shed] is the 429-style
    explicit rejection (bounded queue, drain, or queue deadline). *)
type response =
  | Served of served
  | Shed of string
  | Failed of string
  | Pong
  | Counters of (string * int) list

and served = {
  sv_found : bool;
  sv_fingerprint : string;
  sv_ledger : string;  (** server-side path of the request's ledger *)
  sv_replayed : bool;
      (** served (wholly or partly) by journal replay rather than a
          cold run *)
  sv_report : string;  (** deterministic report text (no wall-clock) *)
  sv_counts : (string * int) list;
      (** structured deterministic report counters (iterations,
          verifications, store tiers, …) for machine consumers such as
          the corpus campaign runner; decoding tolerates their absence
          (older daemons), yielding [[]] *)
}

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** {2 Framing} *)

(** [write_frame fd payload] writes the length prefix and payload. *)
val write_frame : Unix.file_descr -> string -> unit

(** [read_frame fd] reads one frame; [Ok None] on clean EOF before the
    prefix, [Error _] on torn frames, oversized lengths, or timeouts
    surfaced by the socket. *)
val read_frame : Unix.file_descr -> (string option, string) result
