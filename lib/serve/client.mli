(** Client side of the localization service: one-shot requests and a
    concurrent stress mode over the {!Proto} wire protocol. *)

(** [request ~socket req] connects, sends one frame, and reads the
    reply.  [Error _] covers connection failures, protocol mismatches
    and torn frames — a {!Proto.Shed} or {!Proto.Failed} reply is an
    [Ok], the daemon's explicit answer. *)
val request : socket:string -> Proto.request -> (Proto.response, string) result

(** Outcome tallies of a {!stress} volley. *)
type stress_result = {
  st_served : int;
  st_shed : int;
  st_failed : int;  (** daemon-reported failures *)
  st_errors : int;  (** transport errors (no reply at all) *)
  st_replayed : int;  (** served answers that came from journal replay *)
}

(** [stress ~socket ~clients reqs] fires [clients] concurrent
    connections (one domain each), cycling through [reqs] so client [i]
    sends request [i mod length].  Returns the tally; the daemon's
    bounded queue decides how many are shed. *)
val stress :
  socket:string -> clients:int -> Proto.locate list -> stress_result
