module Trace = Exom_interp.Trace
module Value = Exom_interp.Value

(* Graphviz export of dynamic dependence graphs: instances as nodes,
   data dependences as solid edges, dynamic control dependences as
   dashed edges, verified implicit dependences as bold red edges.
   Restricting to a slice keeps real traces renderable. *)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_shape inst =
  match inst.Trace.kind with
  | Trace.Kpredicate _ -> "diamond"
  | Trace.Koutput -> "doubleoctagon"
  | Trace.Kcall -> "cds"
  | Trace.Kreturn -> "house"
  | Trace.Kassign | Trace.Kother -> "box"

let render ?slice ?(implicit = []) ?(highlight = []) ~describe trace =
  let keep idx =
    match slice with None -> true | Some s -> Slice.mem s idx
  in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph ddg {\n";
  pr "  rankdir=BT;\n  node [fontsize=10];\n";
  Trace.iter
    (fun inst ->
      let idx = inst.Trace.idx in
      if keep idx then begin
        let extras =
          if List.mem idx highlight then
            ", style=filled, fillcolor=\"#ffd0d0\""
          else ""
        in
        pr "  n%d [label=\"%s\", shape=%s%s];\n" idx
          (escape (describe idx))
          (node_shape inst) extras;
        List.iter
          (fun (_, def, _) ->
            if def >= 0 && keep def then pr "  n%d -> n%d;\n" idx def)
          inst.Trace.uses;
        if inst.Trace.parent >= 0 && keep inst.Trace.parent then
          pr "  n%d -> n%d [style=dashed];\n" idx inst.Trace.parent
      end)
    trace;
  List.iter
    (fun (p, t) ->
      if keep p && keep t then
        pr "  n%d -> n%d [style=bold, color=red, label=\"id\"];\n" t p)
    implicit;
  pr "}\n";
  Buffer.contents buf

(* Trace-free rendering for ledger replays: the nodes and edges are
   given explicitly, so a causal graph can be drawn from a ledger file
   alone.  Strong and weak implicit edges get distinct styling. *)
let render_causal ~nodes ~strong ~weak =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph causal {\n";
  pr "  rankdir=BT;\n  node [fontsize=10];\n";
  List.iter
    (fun (id, label, shape, fill) ->
      let extras =
        match fill with
        | None -> ""
        | Some c -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" c
      in
      pr "  n%d [label=\"%s\", shape=%s%s];\n" id (escape label) shape extras)
    nodes;
  List.iter
    (fun (p, t) ->
      pr "  n%d -> n%d [style=bold, color=red, label=\"strong id\"];\n" t p)
    strong;
  List.iter
    (fun (p, t) ->
      pr
        "  n%d -> n%d [style=\"bold,dashed\", color=orange, label=\"id\"];\n"
        t p)
    weak;
  pr "}\n";
  Buffer.contents buf
