(** Graphviz rendering of dynamic dependence graphs.

    Edges point from a use to its definition (backward, the slicing
    direction): data dependences solid, dynamic control dependences
    dashed, verified implicit dependences bold red.  [describe] supplies
    node labels (e.g. "line 12 (#5) = 42"); [slice] restricts the output
    to a slice's instances; [highlight] fills the given instances. *)

val render :
  ?slice:Slice.t ->
  ?implicit:(int * int) list ->
  ?highlight:int list ->
  describe:(int -> string) ->
  Exom_interp.Trace.t ->
  string

(** Trace-free causal graph (for ledger replays).  [nodes] is
    [(id, label, shape, fill)]; [strong]/[weak] are implicit-dependence
    [(predicate, target)] pairs, drawn bold solid red ("strong id") and
    bold dashed orange ("id") respectively — visually distinct from each
    other and from data/control edges. *)
val render_causal :
  nodes:(int * string * string * string option) list ->
  strong:(int * int) list ->
  weak:(int * int) list ->
  string
