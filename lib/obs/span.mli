(** Completed-span records and per-context recorders (see {!Obs} for the
    structured API that drives them).

    Span ids are [tid * stride + seq]: the lane id namespaces each
    recorder's counter so scheduler forks allocate without shared state
    and merge without collisions.  Parent links are explicit, so the
    exported tree shows cross-lane nesting (a worker's re-execution
    span's parent is the coordinator's batch span). *)

(** Id namespace width per lane. *)
val stride : int

type t = {
  id : int;
  parent : int;  (** -1 for roots *)
  tid : int;  (** lane: 0 = coordinator, 1.. = scheduler forks *)
  name : string;
  cat : string;
  ts_us : float;  (** start, microseconds since the context's origin *)
  dur_us : float;
  args : (string * string) list;
}

type recorder

val make : tid:int -> origin:float -> fork_parent:int -> recorder

val tid : recorder -> int
val origin : recorder -> float
val fork_parent : recorder -> int

(** Allocate the next span id of this lane. *)
val alloc : recorder -> int

val push : recorder -> t -> unit

(** Accumulate a fork's completed spans into [into]. *)
val absorb : into:recorder -> recorder -> unit

(** Completed spans sorted by id (lane-major, start order within a
    lane) — a deterministic structural order. *)
val spans : recorder -> t list
