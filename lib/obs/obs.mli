(** The observability context threaded through the localization
    pipeline: a {!Metrics} registry (always live — it carries the
    verification accounting that reports are built from) plus optional
    hierarchical {!Span} recording.

    Span recording is decided at creation ([trace:true]); when off,
    {!with_span} reduces to calling its body — no clock reads, no
    allocation — and the interpreter's hot path is never instrumented
    per step (runs report their totals once, at the end).

    Worker shards follow the scheduler's tally-merge discipline: {!fork}
    on the coordinator in submission order (this assigns span lanes
    deterministically), {!absorb} back in submission order.  Every
    non-wall-clock figure in the resulting metric tree is then identical
    at any job count. *)

type t

(** [create ()] is a metrics-only context; [create ~trace:true ()] also
    records spans. *)
val create : ?trace:bool -> unit -> t

val metrics : t -> Metrics.t

(** Whether spans are being recorded. *)
val tracing : t -> bool

(** {2 Metric conveniences (delegate to {!Metrics})} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val gauge : t -> string -> int -> unit
val observe : t -> string -> float -> unit

(** Timer semantics of {!Metrics.timed}: counts even when [f] raises. *)
val timed : t -> string -> (unit -> 'a) -> 'a

(** {2 Spans} *)

(** [with_span t name f] runs [f] inside a span; spans opened during [f]
    (on this context) become its children.  The span is recorded on
    completion, exception or not.  A no-op without [trace]. *)
val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** The id of the innermost open span ([-1] when none / not tracing) —
    the parent that {!fork} attaches worker lanes to. *)
val current_span : t -> int

(** Completed spans in deterministic structural order ([] without
    [trace]). *)
val spans : t -> Span.t list

(** {2 Worker shards} *)

(** A fresh shard for one scheduler task: empty metrics, a new span lane
    whose top-level spans parent to the coordinator's currently open
    span.  Must be called on the coordinator at task-construction time,
    in submission order. *)
val fork : t -> t

(** Fold a shard back (metrics merge, span lanes accumulate).  Call in
    submission order. *)
val absorb : into:t -> t -> unit
