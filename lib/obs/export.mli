(** The observability exporters, both stamped with {!schema_version}:
    Chrome trace-event JSON ([--trace-out], for chrome://tracing or
    Perfetto) and a JSONL event log ([--metrics-out], read back by
    [exom stats]). *)

val schema_name : string
val schema_version : int

(** The whole trace as a Chrome trace-event document: one complete
    ("ph":"X") event per span, lane 0 = coordinator, one lane per
    scheduler task; [args.id]/[args.parent] carry the structural
    nesting. *)
val chrome_json : Obs.t -> Json.t

(** The JSONL log: a header line (schema + version), one record per
    metric, one per span. *)
val jsonl_lines : Obs.t -> string list

val write_chrome : string -> Obs.t -> unit
val write_jsonl : string -> Obs.t -> unit

(** Rebuild the metrics registry from a JSONL log's contents; rejects
    foreign schemas and version skew.  Span and unknown records are
    skipped. *)
val metrics_of_jsonl : string -> (Metrics.t, string) result
