(** The observability exporters, both stamped with {!schema_version}:
    Chrome trace-event JSON ([--trace-out], for chrome://tracing or
    Perfetto) and a JSONL event log ([--metrics-out], read back by
    [exom stats]). *)

val schema_name : string
val schema_version : int

(** The whole trace as a Chrome trace-event document: one complete
    ("ph":"X") event per span, lane 0 = coordinator, one lane per
    scheduler task; [args.id]/[args.parent] carry the structural
    nesting. *)
val chrome_json : Obs.t -> Json.t

(** The JSONL log: a header line (schema + version), one record per
    metric, one per span. *)
val jsonl_lines : Obs.t -> string list

val write_chrome : string -> Obs.t -> unit
val write_jsonl : string -> Obs.t -> unit

(** Rebuild the metrics registry from a JSONL log's contents; rejects
    foreign schemas and version skew.  Span and unknown records are
    skipped.  A torn {e final} line (interrupted writer) is dropped
    rather than fatal, mirroring [Trace_io]'s salvage of truncated
    dumps; the [bool] is [true] when that happened.  A malformed line
    followed by further records is still an error. *)
val metrics_of_jsonl : string -> (Metrics.t * bool, string) result
