(** The observability exporters, both stamped with {!schema_version}:
    Chrome trace-event JSON ([--trace-out], for chrome://tracing or
    Perfetto) and a JSONL event log ([--metrics-out], read back by
    [exom stats]). *)

val schema_name : string
val schema_version : int

(** The whole trace as a Chrome trace-event document: one complete
    ("ph":"X") event per span, lane 0 = coordinator, one lane per
    scheduler task; [args.id]/[args.parent] carry the structural
    nesting. *)
val chrome_json : Obs.t -> Json.t

(** The JSONL log: a header line (schema + version), one record per
    metric, one per span. *)
val jsonl_lines : Obs.t -> string list

(** All writers go through {!Exom_util.Vfs} (checked, crash-consistent
    temp + rename): callers absorb an [Error] into their degradation
    contract — a full disk must not kill the run that produced the
    data. *)
val write_chrome : string -> Obs.t -> (unit, Exom_util.Vfs.error) result

val write_jsonl : string -> Obs.t -> (unit, Exom_util.Vfs.error) result

(** A salvaged torn tail, located so callers can cite it: the 1-based
    line number and the byte offset of the torn line's first byte. *)
type salvage = { torn_line : int; torn_byte : int }

(** Rebuild the metrics registry from a JSONL log's contents; rejects
    foreign schemas and version skew.  Span and unknown records are
    skipped.  A torn {e final} line (interrupted writer) is dropped
    rather than fatal, mirroring [Trace_io]'s salvage of truncated
    dumps; the salvage names the torn line.  A malformed line followed
    by further records is still an error. *)
val metrics_of_jsonl : string -> (Metrics.t * salvage option, string) result

(** The span records of a JSONL log, in file order; same header checks
    and torn-tail salvage as {!metrics_of_jsonl}. *)
val spans_of_jsonl : string -> (Span.t list * salvage option, string) result

(** The complete ("ph":"X") events of a Chrome trace document written
    by {!write_chrome}, as spans; rejects version skew. *)
val spans_of_chrome : string -> (Span.t list, string) result

(** Sniff Chrome vs JSONL and read spans either way ([exom trace
    spine], [exom audit --spine]).  Chrome documents never salvage
    (they are one atomically-written object). *)
val spans_of_string : string -> (Span.t list * salvage option, string) result

(** Write just a metrics registry as a JSONL log (header + one record
    per metric) — the corpus shard registry format, readable by
    {!metrics_of_jsonl}. *)
val write_metrics : string -> Metrics.t -> (unit, Exom_util.Vfs.error) result
