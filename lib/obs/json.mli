(** A minimal dependency-free JSON value: printer and parser for the
    observability exporters ({!Export}) and the [exom stats] reader.

    The printer emits compact single-line JSON.  The parser accepts
    standard JSON with whitespace; [\u] escapes outside ASCII degrade to
    ['?'] (the exporters never emit them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

(** [parse s] parses a complete JSON document (trailing garbage is an
    error). *)
val parse : string -> (t, string) result

(** Object field lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
