(* The metrics registry: named counters, gauges and timers addressed by
   dot-separated paths ("verify.run", "store.hits") that form the metric
   tree `exom stats` renders.

   This absorbs what used to be Exom_sched.Tally: a worker-local
   registry is created per scheduler task ({!create}), accumulates
   privately, and is merged on the coordinator with {!absorb} in
   submission order — counters and timer counts are sums (commutative,
   so totals are independent of the job count), gauges merge by max
   (high-water semantics, e.g. pool queue depth).  Everything except
   wall-clock fields (timer seconds/min/max) is therefore deterministic
   for a given localization at any -j; {!render} with [~timings:false]
   shows exactly the deterministic subset. *)

type kind = Counter | Gauge | Timer

type metric = {
  name : string;
  kind : kind;
  mutable count : int;  (* timer observations *)
  mutable value : int;  (* counter total / gauge high-water mark *)
  mutable seconds : float;  (* timer sum *)
  mutable min_s : float;  (* timer minimum (infinity when empty) *)
  mutable max_s : float;  (* timer maximum (neg_infinity when empty) *)
}

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let get t name kind =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
    let m =
      { name; kind; count = 0; value = 0; seconds = 0.0;
        min_s = infinity; max_s = neg_infinity }
    in
    Hashtbl.replace t.tbl name m;
    m

let add t name n =
  let m = get t name Counter in
  m.value <- m.value + n

let incr t name = add t name 1

let gauge t name v =
  let m = get t name Gauge in
  if v > m.value || m.count = 0 then m.value <- v;
  m.count <- m.count + 1

let observe t name s =
  let m = get t name Timer in
  m.count <- m.count + 1;
  m.seconds <- m.seconds +. s;
  if s < m.min_s then m.min_s <- s;
  if s > m.max_s then m.max_s <- s

(* Charges the observation even when [f] raises: an injected fault
   aborting a re-execution still counts toward the run total (the
   Tally.counted contract this registry inherits). *)
let timed t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe t name (Unix.gettimeofday () -. t0)) f

let find t name = Hashtbl.find_opt t.tbl name

(* Rebuild a metric wholesale (the `exom stats` reader recreating a
   registry from a JSONL file). *)
let restore t ~kind ~name ~count ~value ~seconds ~min_s ~max_s =
  let m = get t name kind in
  m.count <- count;
  m.value <- value;
  m.seconds <- seconds;
  m.min_s <- min_s;
  m.max_s <- max_s

let counter_value t name =
  match find t name with Some m -> m.value | None -> 0

let timer_count t name =
  match find t name with Some m -> m.count | None -> 0

let timer_seconds t name =
  match find t name with Some m -> m.seconds | None -> 0.0

let absorb ~into t =
  let merge m =
    let dst = get into m.name m.kind in
    match m.kind with
    | Counter -> dst.value <- dst.value + m.value
    | Gauge ->
      if m.value > dst.value || dst.count = 0 then dst.value <- m.value;
      dst.count <- dst.count + m.count
    | Timer ->
      dst.count <- dst.count + m.count;
      dst.seconds <- dst.seconds +. m.seconds;
      if m.min_s < dst.min_s then dst.min_s <- m.min_s;
      if m.max_s > dst.max_s then dst.max_s <- m.max_s
  in
  (* sorted so absorb order never depends on hash-table iteration *)
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl []
  |> List.sort (fun a b -> compare a.name b.name)
  |> List.iter merge

let to_list t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl []
  |> List.sort (fun a b -> compare a.name b.name)

(* {2 Rendering}

   Dot-paths become an indented tree:

     verify
       queries          144
       run              98 runs, 1.2345s total, 0.0126s avg

   [timings:false] suppresses every wall-clock figure (timers print
   their counts only), yielding output that is bit-identical across job
   counts and machines. *)

let describe ~timings m =
  match m.kind with
  | Counter -> string_of_int m.value
  | Gauge -> Printf.sprintf "%d (max)" m.value
  | Timer ->
    if not timings then Printf.sprintf "%d runs" m.count
    else if m.count = 0 then "0 runs"
    else
      Printf.sprintf "%d runs, %.4fs total, %.4fs avg" m.count m.seconds
        (m.seconds /. float_of_int m.count)

type node = {
  mutable subs : (string * node) list;  (* reversed during build *)
  mutable here : metric option;
}

let render ?(timings = true) t =
  let root = { subs = []; here = None } in
  let rec place node segs m =
    match segs with
    | [] -> node.here <- Some m
    | s :: rest ->
      let child =
        match List.assoc_opt s node.subs with
        | Some c -> c
        | None ->
          let c = { subs = []; here = None } in
          node.subs <- (s, c) :: node.subs;
          c
      in
      place child rest m
  in
  List.iter (fun m -> place root (String.split_on_char '.' m.name) m) (to_list t);
  let buf = Buffer.create 256 in
  let rec print indent node =
    List.iter
      (fun (seg, child) ->
        let pad = String.make indent ' ' in
        (match child.here with
        | Some m ->
          Buffer.add_string buf
            (Printf.sprintf "%s%-*s %s\n" pad (max 1 (24 - indent)) seg
               (describe ~timings m))
        | None -> Buffer.add_string buf (Printf.sprintf "%s%s\n" pad seg));
        print (indent + 2) child)
      (List.rev node.subs)
  in
  print 0 root;
  Buffer.contents buf

(* Side-by-side diff of two registries (`exom stats --diff`): one row
   per metric in the union of names, with absolute and relative deltas
   on the deterministic scalar (counter/gauge value, timer count).
   Timer wall-clock sums get their own row unless [timings:false]. *)
let render_diff ?(timings = true) a b =
  let module S = Set.Make (String) in
  let names =
    S.elements
      (S.union
         (S.of_list (List.map (fun m -> m.name) (to_list a)))
         (S.of_list (List.map (fun m -> m.name) (to_list b))))
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-30s %14s %14s   %s\n" "metric" "old" "new" "delta");
  List.iter
    (fun name ->
      let ma = find a name and mb = find b name in
      let kind =
        match (ma, mb) with
        | Some m, _ | None, Some m -> m.kind
        | None, None -> Counter
      in
      let scalar = function
        | None -> 0
        | Some m -> (
          match m.kind with Counter | Gauge -> m.value | Timer -> m.count)
      in
      let ov = scalar ma and nv = scalar mb in
      let d = nv - ov in
      let delta =
        if d = 0 then "="
        else if ov = 0 then Printf.sprintf "%+d" d
        else
          Printf.sprintf "%+d (%+.1f%%)" d
            (100.0 *. float_of_int d /. float_of_int ov)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-30s %14d %14d   %s\n" name ov nv delta);
      if timings && kind = Timer then begin
        let secs = function None -> 0.0 | Some m -> m.seconds in
        let os = secs ma and ns = secs mb in
        let ds = ns -. os in
        let delta_s =
          if os > 0.0 then
            Printf.sprintf "%+.4fs (%+.1f%%)" ds (100.0 *. ds /. os)
          else Printf.sprintf "%+.4fs" ds
        in
        Buffer.add_string buf
          (Printf.sprintf "%-30s %13.4fs %13.4fs   %s\n" (name ^ ".seconds")
             os ns delta_s)
      end)
    names;
  Buffer.contents buf

(* {2 Drift}

   The typed successor of {!render_diff}: one finding per metric in the
   union of names, computed on the deterministic scalar only
   (counter/gauge value, timer count — wall-clock sums are never
   drift).  [direction_of] makes the tolerance direction-aware: a
   metric whose direction is [Up] only breaches when it grows (a cost,
   e.g. "verify.run"), [Down] only when it shrinks (a health figure,
   e.g. "store.hits"), [Both] on any movement beyond tolerance.  The
   relative delta of a metric absent on one side is [infinity] — a
   metric appearing or vanishing always breaches a finite tolerance. *)

type direction = Up | Down | Both

type drift_finding = {
  d_name : string;
  d_kind : kind;
  d_older : int;
  d_newer : int;
  d_delta : int;
  d_rel : float;
  d_direction : direction;
  d_breach : bool;
}

let drift ?(tolerance = 0.0) ?(direction_of = fun _ -> Both) a b =
  let module S = Set.Make (String) in
  let names =
    S.elements
      (S.union
         (S.of_list (List.map (fun m -> m.name) (to_list a)))
         (S.of_list (List.map (fun m -> m.name) (to_list b))))
  in
  List.filter_map
    (fun name ->
      let ma = find a name and mb = find b name in
      let kind =
        match (ma, mb) with
        | Some m, _ | None, Some m -> m.kind
        | None, None -> Counter
      in
      let scalar = function
        | None -> 0
        | Some m -> (
          match m.kind with Counter | Gauge -> m.value | Timer -> m.count)
      in
      let ov = scalar ma and nv = scalar mb in
      let d = nv - ov in
      if d = 0 then None
      else
        let rel =
          if ov <> 0 then float_of_int d /. float_of_int ov
          else if d > 0 then infinity
          else neg_infinity
        in
        let direction = direction_of name in
        let counted =
          match direction with Up -> d > 0 | Down -> d < 0 | Both -> true
        in
        Some
          {
            d_name = name;
            d_kind = kind;
            d_older = ov;
            d_newer = nv;
            d_delta = d;
            d_rel = rel;
            d_direction = direction;
            d_breach = counted && Float.abs rel > tolerance;
          })
    names

let has_drift findings = List.exists (fun f -> f.d_breach) findings

let render_drift findings =
  if findings = [] then "no metric drift\n"
  else begin
    let buf = Buffer.create 256 in
    List.iter
      (fun f ->
        let rel =
          if Float.is_integer f.d_rel || Float.abs f.d_rel = infinity then
            if Float.abs f.d_rel = infinity then "new/gone"
            else Printf.sprintf "%+.0f%%" (100.0 *. f.d_rel)
          else Printf.sprintf "%+.1f%%" (100.0 *. f.d_rel)
        in
        Buffer.add_string buf
          (Printf.sprintf "%s %-30s %d -> %d (%+d, %s)\n"
             (if f.d_breach then "DRIFT" else "  ok ")
             f.d_name f.d_older f.d_newer f.d_delta rel))
      findings;
    Buffer.contents buf
  end
