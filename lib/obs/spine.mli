(** The deterministic span spine: a canonical projection of a span tree
    keeping only lane / name / category / args / child order — zero
    wall-clock fields — with a versioned codec and a typed diff.

    Two uninterrupted runs of the same localization produce equal
    [All]-lane spines at any job count (lanes and span ids are assigned
    on the coordinator in submission order); the [Coordinator]
    projection is additionally invariant under kill/resume chains,
    because a resumed run re-emits the lane-0 decision spine (including
    one [verify.batch] span per {e replayed} batch) while worker-lane
    spans of replayed batches never exist.  This is the object
    [exom audit --spine] and the CI trace gate compare. *)

val schema_name : string
val schema_version : int

(** Which lanes survive the projection: [All] for uninterrupted-run
    comparisons (e.g. [-j1] vs [-j4]), [Coordinator] (lane 0 only) for
    resume-vs-uninterrupted comparisons. *)
type lanes = All | Coordinator

val lanes_to_string : lanes -> string
val lanes_of_string : string -> lanes option

type node = {
  lane : int;
  name : string;
  cat : string;
  args : (string * string) list;  (** sorted by key *)
  children : node list;  (** ordinal (span id) order *)
}

type t = { lanes : lanes; roots : node list }

(** Project completed spans (any order) into the canonical tree. *)
val of_spans : ?lanes:lanes -> Span.t list -> t

(** Total span count in the projection. *)
val size : t -> int

(** {2 Versioned codec ([exom.spine] v1)} *)

val to_json : t -> Json.t
val to_string : t -> string

(** Rejects foreign schemas and version skew. *)
val of_string : string -> (t, string) result

(** Indented human-readable tree ([exom trace spine]). *)
val render : t -> string

(** {2 Diff}

    The edit script of [diff a b]: what must happen to [a]'s spine to
    obtain [b]'s.  Paths are slash-joined [name#occurrence] segments
    from the root.  A removal and an addition with structurally
    identical subtrees are reported as one [Moved]. *)

type edit =
  | Added of { path : string; lane : int; subtree : int }
      (** [subtree] counts the span and everything nested under it *)
  | Removed of { path : string; lane : int; subtree : int }
  | Moved of { from_path : string; to_path : string; lane : int }
  | Reordered of { path : string; older : int; newer : int }
      (** sibling ordinal change *)
  | Args_changed of { path : string; key : string; older : string; newer : string }

val diff : t -> t -> edit list
val equal : t -> t -> bool

val render_edit : edit -> string

(** One line per edit plus a summary count; a fixed sentence for the
    empty script. *)
val render_edits : edit list -> string
