(** The metrics registry: counters, gauges and timers addressed by
    dot-separated names ("verify.run", "store.hits") that form the
    metric tree rendered by {!render} and [exom stats].

    This is the successor of [Exom_sched.Tally]: worker-local registries
    accumulate privately under the scheduler and are merged with
    {!absorb} on the coordinator in submission order.  Counters and
    timer counts merge by sum, gauges by max, so every non-wall-clock
    figure is independent of the job count. *)

type kind = Counter | Gauge | Timer

type metric = {
  name : string;
  kind : kind;
  mutable count : int;  (** timer observations / gauge sets *)
  mutable value : int;  (** counter total / gauge high-water mark *)
  mutable seconds : float;  (** timer sum (wall clock) *)
  mutable min_s : float;  (** timer minimum; [infinity] when empty *)
  mutable max_s : float;  (** timer maximum; [neg_infinity] when empty *)
}

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit

(** High-water gauge: keeps the maximum value ever set. *)
val gauge : t -> string -> int -> unit

(** Record one timer observation of [s] wall-clock seconds. *)
val observe : t -> string -> float -> unit

(** [timed t name f] runs [f], charging one observation and its
    wall-clock duration to the timer [name] even when [f] raises (an
    injected fault aborting a re-execution still counts). *)
val timed : t -> string -> (unit -> 'a) -> 'a

val find : t -> string -> metric option

(** Rebuild a metric wholesale (deserialization; see {!Export}). *)
val restore :
  t ->
  kind:kind ->
  name:string ->
  count:int ->
  value:int ->
  seconds:float ->
  min_s:float ->
  max_s:float ->
  unit

(** 0 / 0.0 for absent or differently-kinded names. *)
val counter_value : t -> string -> int

val timer_count : t -> string -> int
val timer_seconds : t -> string -> float

(** Merge [t] into [into] (sum counters and timers, max gauges).  Call
    in submission order on the coordinator; totals are then independent
    of how work was spread over domains. *)
val absorb : into:t -> t -> unit

(** All metrics, sorted by name. *)
val to_list : t -> metric list

(** Indented metric tree.  [timings:false] suppresses every wall-clock
    figure, yielding output that is bit-identical across job counts (the
    observability determinism contract). *)
val render : ?timings:bool -> t -> string

(** Side-by-side table over the union of both registries' names, with
    absolute and relative deltas of each metric's deterministic scalar
    (counter/gauge value, timer count); timer wall-clock sums get their
    own row unless [timings:false].  Backs [exom stats --diff]. *)
val render_diff : ?timings:bool -> t -> t -> string

(** {2 Drift: the typed, gateable diff}

    One finding per metric whose deterministic scalar moved, with a
    direction-aware tolerance verdict.  Backs [exom stats --tolerance]
    and the metric leg of [exom audit]. *)

(** Which movement counts against the tolerance: [Up] — growth is
    drift (costs, e.g. ["verify.run"]); [Down] — shrinkage is drift
    (health figures, e.g. ["store.hits"]); [Both] — any movement. *)
type direction = Up | Down | Both

type drift_finding = {
  d_name : string;
  d_kind : kind;
  d_older : int;
  d_newer : int;
  d_delta : int;
  d_rel : float;
      (** relative to the older value; [infinity]/[neg_infinity] when
          the metric appeared or vanished *)
  d_direction : direction;
  d_breach : bool;  (** beyond [tolerance] in the counted direction *)
}

(** [drift ?tolerance ?direction_of older newer] — only metrics whose
    scalar moved are reported; [d_breach] is set when the movement is
    in the counted direction and its relative size exceeds [tolerance]
    (default [0.0]: any movement breaches).  [direction_of] defaults to
    [Both] for every name. *)
val drift :
  ?tolerance:float ->
  ?direction_of:(string -> direction) ->
  t -> t ->
  drift_finding list

val has_drift : drift_finding list -> bool

(** One line per finding, breaches marked [DRIFT]. *)
val render_drift : drift_finding list -> string
