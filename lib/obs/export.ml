(* The two exporters of the observability layer, both version-stamped:

   - {b Chrome trace-event JSON} (`--trace-out`): one complete ("ph":"X")
     event per span, loadable in chrome://tracing or Perfetto.  Lane 0
     is the coordinator (session build, demand iterations, verification
     batches); each scheduler task gets its own lane, so a parallel run
     renders as a pool-utilization flame chart.  Cross-lane nesting is
     preserved structurally in every event's [args.id]/[args.parent].

   - {b JSONL event log} (`--metrics-out`): a self-describing header
     line followed by one record per metric and per span.  This is the
     machine-readable form `exom stats` reads back; the schema version
     in the header lets future readers reject skewed files instead of
     misreading them. *)

let schema_name = "exom.obs"
let schema_version = 1

(* {2 Chrome trace events} *)

let span_args (s : Span.t) =
  Json.Obj
    (("id", Json.Num (float_of_int s.Span.id))
     :: ("parent", Json.Num (float_of_int s.Span.parent))
     :: List.map (fun (k, v) -> (k, Json.Str v)) s.Span.args)

let chrome_event (s : Span.t) =
  Json.Obj
    [
      ("name", Json.Str s.Span.name);
      ("cat", Json.Str s.Span.cat);
      ("ph", Json.Str "X");
      ("ts", Json.Num s.Span.ts_us);
      ("dur", Json.Num s.Span.dur_us);
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int s.Span.tid));
      ("args", span_args s);
    ]

let chrome_json obs =
  Json.Obj
    [
      ("schemaVersion", Json.Num (float_of_int schema_version));
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.Arr (List.map chrome_event (Obs.spans obs)));
    ]

(* {2 JSONL event log} *)

let header_line =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.Str "header");
         ("schema", Json.Str schema_name);
         ("version", Json.Num (float_of_int schema_version));
       ])

let kind_to_string = function
  | Metrics.Counter -> "counter"
  | Metrics.Gauge -> "gauge"
  | Metrics.Timer -> "timer"

let kind_of_string = function
  | "counter" -> Some Metrics.Counter
  | "gauge" -> Some Metrics.Gauge
  | "timer" -> Some Metrics.Timer
  | _ -> None

let metric_line (m : Metrics.metric) =
  let base =
    [
      ("type", Json.Str "metric");
      ("name", Json.Str m.Metrics.name);
      ("kind", Json.Str (kind_to_string m.Metrics.kind));
    ]
  in
  let fields =
    match m.Metrics.kind with
    | Metrics.Counter | Metrics.Gauge ->
      [ ("value", Json.Num (float_of_int m.Metrics.value)) ]
    | Metrics.Timer ->
      [
        ("count", Json.Num (float_of_int m.Metrics.count));
        ("seconds", Json.Num m.Metrics.seconds);
        ( "min",
          if m.Metrics.count = 0 then Json.Null else Json.Num m.Metrics.min_s );
        ( "max",
          if m.Metrics.count = 0 then Json.Null else Json.Num m.Metrics.max_s );
      ]
  in
  Json.to_string (Json.Obj (base @ fields))

let span_line (s : Span.t) =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.Str "span");
         ("id", Json.Num (float_of_int s.Span.id));
         ("parent", Json.Num (float_of_int s.Span.parent));
         ("tid", Json.Num (float_of_int s.Span.tid));
         ("name", Json.Str s.Span.name);
         ("cat", Json.Str s.Span.cat);
         ("ts_us", Json.Num s.Span.ts_us);
         ("dur_us", Json.Num s.Span.dur_us);
         ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.Span.args));
       ])

let jsonl_lines obs =
  header_line
  :: List.map metric_line (Metrics.to_list (Obs.metrics obs))
  @ List.map span_line (Obs.spans obs)

(* {2 File writers} *)

(* Checked and crash-consistent (temp + rename) through the Vfs
   façade: metric exports are leaf artifacts, so callers absorb an
   [Error] into their own degradation contract instead of letting a
   full disk kill the run that produced the data. *)
let write_file path content =
  Exom_util.Vfs.write_file_atomic ~tmp:(path ^ ".tmp") path content

let write_chrome path obs = write_file path (Json.to_string (chrome_json obs) ^ "\n")

let write_jsonl path obs =
  write_file path (String.concat "\n" (jsonl_lines obs) ^ "\n")

(* {2 Reading the JSONL log back (`exom stats`)} *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %s" what)

let check_header line =
  let* j = Json.parse line in
  let* schema = require "schema" Option.(bind (Json.member "schema" j) Json.to_str) in
  let* version =
    require "version" Option.(bind (Json.member "version" j) Json.to_float)
  in
  if schema <> schema_name then Error (Printf.sprintf "foreign schema %S" schema)
  else if int_of_float version <> schema_version then
    Error (Printf.sprintf "schema version %d (expected %d)" (int_of_float version)
             schema_version)
  else Ok ()

let restore_metric reg j =
  let num key = Option.bind (Json.member key j) Json.to_float in
  let* name = require "name" Option.(bind (Json.member "name" j) Json.to_str) in
  let* kind_s = require "kind" Option.(bind (Json.member "kind" j) Json.to_str) in
  let* kind = require "known kind" (kind_of_string kind_s) in
  (match kind with
  | Metrics.Counter | Metrics.Gauge ->
    let* value = require "value" (num "value") in
    Ok
      (Metrics.restore reg ~kind ~name ~count:0 ~value:(int_of_float value)
         ~seconds:0.0 ~min_s:infinity ~max_s:neg_infinity)
  | Metrics.Timer ->
    let* count = require "count" (num "count") in
    let* seconds = require "seconds" (num "seconds") in
    Ok
      (Metrics.restore reg ~kind ~name ~count:(int_of_float count) ~value:0
         ~seconds
         ~min_s:(Option.value ~default:infinity (num "min"))
         ~max_s:(Option.value ~default:neg_infinity (num "max"))))

(* A salvaged torn tail, located for citation: the 1-based line number
   and the byte offset of the line's first byte in the file.  `exom
   audit` and `exom explain` name the tear instead of a bare "the file
   was truncated". *)
type salvage = { torn_line : int; torn_byte : int }

(* Non-blank lines with their 1-based line number and byte offset —
   the offsets survive the blank-line filtering that the record walk
   wants. *)
let located_lines content =
  let rec go lineno offset acc = function
    | [] -> List.rev acc
    | line :: rest ->
      let acc =
        if String.trim line = "" then acc else (lineno, offset, line) :: acc
      in
      go (lineno + 1) (offset + String.length line + 1) acc rest
  in
  go 1 0 [] (String.split_on_char '\n' content)

(* Rebuild the metrics registry from a JSONL log's contents.  Span
   records are skipped (the registry is what `exom stats` renders);
   unknown record types are skipped too, so minor-version additions stay
   readable.

   A malformed {e final} record is salvaged, not fatal (mirroring
   Trace_io's handling of truncated dumps): a crashed or interrupted
   writer leaves a torn last line, and everything before it is still a
   well-formed log.  The salvage carries the torn line's position so
   callers can cite it.  A malformed line with records {e after} it is
   real corruption and still errors. *)
let read_jsonl ~on_record content =
  match located_lines content with
  | [] -> Error "empty file"
  | (_, _, header) :: records ->
    let* () = check_header header in
    let rec walk = function
      | [] -> Ok None
      | (lineno, offset, line) :: rest -> (
        let fail e =
          if rest = [] then Ok (Some { torn_line = lineno; torn_byte = offset })
          else Error (Printf.sprintf "line %d: %s" lineno e)
        in
        match Json.parse line with
        | Error e -> fail e
        | Ok j -> (
          match on_record j with
          | Ok () -> walk rest
          | Error e -> fail e))
    in
    walk records

let metrics_of_jsonl content =
  let reg = Metrics.create () in
  let on_record j =
    match Option.bind (Json.member "type" j) Json.to_str with
    | Some "metric" -> restore_metric reg j
    | _ -> Ok ()
  in
  let* salvage = read_jsonl ~on_record content in
  Ok (reg, salvage)

(* {2 Reading spans back (`exom trace spine`, `exom audit --spine`)} *)

let span_of_json j =
  let num key = Option.bind (Json.member key j) Json.to_float in
  let* id = require "id" (num "id") in
  let* parent = require "parent" (num "parent") in
  let* tid = require "tid" (num "tid") in
  let* name = require "name" Option.(bind (Json.member "name" j) Json.to_str) in
  let* cat = require "cat" Option.(bind (Json.member "cat" j) Json.to_str) in
  let args =
    match Json.member "args" j with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
        kvs
    | _ -> []
  in
  Ok
    {
      Span.id = int_of_float id;
      parent = int_of_float parent;
      tid = int_of_float tid;
      name;
      cat;
      ts_us = Option.value ~default:0.0 (num "ts_us");
      dur_us = Option.value ~default:0.0 (num "dur_us");
      args;
    }

let spans_of_jsonl content =
  let acc = ref [] in
  let on_record j =
    match Option.bind (Json.member "type" j) Json.to_str with
    | Some "span" ->
      let* s = span_of_json j in
      Ok (acc := s :: !acc)
    | _ -> Ok ()
  in
  let* salvage = read_jsonl ~on_record content in
  Ok (List.rev !acc, salvage)

(* A Chrome trace-event document written by {!write_chrome}: complete
   ("ph":"X") events whose [args.id]/[args.parent] carry the structural
   ids; other event phases (metadata etc.) are skipped. *)
let spans_of_chrome content =
  let* j = Json.parse (String.trim content) in
  let* version =
    require "schemaVersion"
      Option.(bind (Json.member "schemaVersion" j) Json.to_float)
  in
  if int_of_float version <> schema_version then
    Error
      (Printf.sprintf "schema version %d (expected %d)" (int_of_float version)
         schema_version)
  else
    let* events =
      require "traceEvents"
        Option.(bind (Json.member "traceEvents" j) Json.to_list)
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | ev :: rest -> (
        match Option.bind (Json.member "ph" ev) Json.to_str with
        | Some "X" ->
          let num key = Option.bind (Json.member key ev) Json.to_float in
          let* name =
            require "name" Option.(bind (Json.member "name" ev) Json.to_str)
          in
          let* cat =
            require "cat" Option.(bind (Json.member "cat" ev) Json.to_str)
          in
          let* tid = require "tid" (num "tid") in
          let* args = require "args" (Json.member "args" ev) in
          let anum key = Option.bind (Json.member key args) Json.to_float in
          let* id = require "args.id" (anum "id") in
          let* parent = require "args.parent" (anum "parent") in
          let user_args =
            match args with
            | Json.Obj kvs ->
              List.filter_map
                (fun (k, v) ->
                  if k = "id" || k = "parent" then None
                  else Option.map (fun s -> (k, s)) (Json.to_str v))
                kvs
            | _ -> []
          in
          go
            ({
               Span.id = int_of_float id;
               parent = int_of_float parent;
               tid = int_of_float tid;
               name;
               cat;
               ts_us = Option.value ~default:0.0 (num "ts");
               dur_us = Option.value ~default:0.0 (num "dur");
               args = user_args;
             }
            :: acc)
            rest
        | _ -> go acc rest)
    in
    go [] events

(* Sniff the container: a Chrome document is one JSON object (first
   non-blank byte '{' and a "traceEvents" member); everything else is
   treated as a JSONL log.  Chrome documents have no torn-tail salvage
   (they are written atomically as one object). *)
let spans_of_string content =
  let is_chrome =
    match Json.parse (String.trim content) with
    | Ok j -> Json.member "traceEvents" j <> None
    | Error _ -> false
  in
  if is_chrome then
    let* spans = spans_of_chrome content in
    Ok (spans, None)
  else spans_of_jsonl content

(* {2 Bare-registry JSONL (corpus shard metric files)} *)

let metric_jsonl_lines reg =
  header_line :: List.map metric_line (Metrics.to_list reg)

let write_metrics path reg =
  write_file path (String.concat "\n" (metric_jsonl_lines reg) ^ "\n")
