(* The deterministic span spine: a canonical projection of a span tree
   that keeps only the fields two runs of the same localization must
   agree on — lane, name, category, args and child order — and drops
   every wall-clock field.  Two runs of the same session produce equal
   spines at any job count (lane ids and span ids are assigned on the
   coordinator in submission order, never by completion time), and the
   coordinator projection is additionally invariant under kill/resume:
   a resumed run replays recorded batches without worker lanes, but the
   lane-0 decision spine (session build, demand iterations, batch
   boundaries) is re-emitted identically.

   The spine is what `exom audit --spine` and the CI trace gate
   compare; {!diff} turns two spines into a typed edit script instead
   of a bare boolean, so a drift report names the spans that appeared,
   vanished, moved or reordered. *)

let schema_name = "exom.spine"
let schema_version = 1

(* Which lanes survive the projection.

   [All] keeps every lane: the right projection for comparing two
   uninterrupted runs (e.g. -j1 vs -j4), where worker lanes are
   deterministic because forks happen on the coordinator in submission
   order.

   [Coordinator] keeps lane 0 only: the replay-invariant projection.
   A resumed run consumes recorded batches without re-executing them,
   so worker-lane spans of replayed batches simply never exist — but
   the coordinator re-emits the decision spine (including one
   [verify.batch] span per replayed batch) exactly as the uninterrupted
   run did. *)
type lanes = All | Coordinator

let lanes_to_string = function All -> "all" | Coordinator -> "coordinator"

let lanes_of_string = function
  | "all" -> Some All
  | "coordinator" -> Some Coordinator
  | _ -> None

type node = {
  lane : int;
  name : string;
  cat : string;
  args : (string * string) list;  (* sorted by key *)
  children : node list;  (* ordinal order (span id order) *)
}

type t = { lanes : lanes; roots : node list }

(* {2 Projection} *)

(* Build the canonical tree from completed spans.  Spans arrive sorted
   by id (lane-major, start order within a lane); children keep that
   order, which is the submission order on the coordinator and the
   execution order within a worker lane — deterministic either way.  A
   span whose parent was filtered out (a worker span under
   [Coordinator]) is dropped with its subtree; a span whose parent is
   [-1] or missing from the kept set is a root. *)
let of_spans ?(lanes = All) spans =
  let keep (s : Span.t) =
    match lanes with All -> true | Coordinator -> s.Span.tid = 0
  in
  let spans =
    List.filter keep spans |> List.sort (fun a b -> compare a.Span.id b.Span.id)
  in
  let kept = Hashtbl.create 64 in
  List.iter (fun (s : Span.t) -> Hashtbl.replace kept s.Span.id ()) spans;
  let children_of = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun (s : Span.t) ->
      if s.Span.parent >= 0 && Hashtbl.mem kept s.Span.parent then
        Hashtbl.replace children_of s.Span.parent
          (s
          :: (match Hashtbl.find_opt children_of s.Span.parent with
             | Some l -> l
             | None -> []))
      else
        (* parent is -1 or was projected away: the span anchors a new
           root.  (Under [Coordinator] a lane-0 parent is always kept —
           the coordinator stack nests — so only genuine roots land
           here.) *)
        roots := s :: !roots)
    spans;
  let rec build (s : Span.t) =
    let kids =
      match Hashtbl.find_opt children_of s.Span.id with
      | Some l -> List.rev l
      | None -> []
    in
    {
      lane = s.Span.tid;
      name = s.Span.name;
      cat = s.Span.cat;
      args = List.sort (fun (a, _) (b, _) -> compare a b) s.Span.args;
      children = List.map build kids;
    }
  in
  { lanes; roots = List.rev_map build !roots }

let rec count_nodes n = 1 + List.fold_left (fun a c -> a + count_nodes c) 0 n.children

let size t = List.fold_left (fun a n -> a + count_nodes n) 0 t.roots

(* {2 Versioned codec} *)

let rec node_json n =
  Json.Obj
    [
      ("lane", Json.Num (float_of_int n.lane));
      ("name", Json.Str n.name);
      ("cat", Json.Str n.cat);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) n.args));
      ("children", Json.Arr (List.map node_json n.children));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", Json.Num (float_of_int schema_version));
      ("lanes", Json.Str (lanes_to_string t.lanes));
      ("roots", Json.Arr (List.map node_json t.roots));
    ]

let to_string t = Json.to_string (to_json t) ^ "\n"

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %s" what)

let rec node_of_json j =
  let* lane =
    require "lane" Option.(bind (Json.member "lane" j) Json.to_float)
  in
  let* name = require "name" Option.(bind (Json.member "name" j) Json.to_str) in
  let* cat = require "cat" Option.(bind (Json.member "cat" j) Json.to_str) in
  let args =
    match Json.member "args" j with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
        kvs
    | _ -> []
  in
  let* kids =
    require "children" Option.(bind (Json.member "children" j) Json.to_list)
  in
  let* children = nodes_of_json [] kids in
  Ok
    {
      lane = int_of_float lane;
      name;
      cat;
      args = List.sort (fun (a, _) (b, _) -> compare a b) args;
      children;
    }

and nodes_of_json acc = function
  | [] -> Ok (List.rev acc)
  | j :: rest ->
    let* n = node_of_json j in
    nodes_of_json (n :: acc) rest

let of_string content =
  let* j = Json.parse (String.trim content) in
  let* schema =
    require "schema" Option.(bind (Json.member "schema" j) Json.to_str)
  in
  if schema <> schema_name then
    Error (Printf.sprintf "foreign schema %S" schema)
  else
    let* version =
      require "version" Option.(bind (Json.member "version" j) Json.to_float)
    in
    if int_of_float version <> schema_version then
      Error
        (Printf.sprintf "schema version %d (expected %d)"
           (int_of_float version) schema_version)
    else
      let* lanes_s =
        require "lanes" Option.(bind (Json.member "lanes" j) Json.to_str)
      in
      let* lanes = require "known lanes" (lanes_of_string lanes_s) in
      let* roots =
        require "roots" Option.(bind (Json.member "roots" j) Json.to_list)
      in
      let* roots = nodes_of_json [] roots in
      Ok { lanes; roots }

(* {2 Human rendering} *)

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "spine (%s lanes, %d spans)\n" (lanes_to_string t.lanes)
       (size t));
  let rec pr indent n =
    let args =
      if n.args = [] then ""
      else
        Printf.sprintf " {%s}"
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) n.args))
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s [lane %d, %s]%s\n"
         (String.make indent ' ')
         n.name n.lane n.cat args);
    List.iter (pr (indent + 2)) n.children
  in
  List.iter (pr 0) t.roots;
  Buffer.contents buf

(* {2 Diffing}

   Children of matched parents are keyed by (lane, name, occurrence):
   the k-th [verify.batch] under an iteration matches the k-th on the
   other side.  Within one matched level:

   - a key present only on the left  -> [Removed]
   - a key present only on the right -> [Added]
   - present on both at different ordinals -> [Reordered] (then the
     subtrees are still recursed into)
   - present on both with different args -> one [Args_changed] per
     differing key

   A final pass pairs up removals and additions whose whole subtrees
   are structurally identical and reclassifies each pair as a single
   [Moved] — a span that changed parents rather than two unrelated
   edits. *)

type edit =
  | Added of { path : string; lane : int; subtree : int }
  | Removed of { path : string; lane : int; subtree : int }
  | Moved of { from_path : string; to_path : string; lane : int }
  | Reordered of { path : string; older : int; newer : int }
  | Args_changed of { path : string; key : string; older : string; newer : string }

(* occurrence-qualified path segment: "verify.batch#3" is the fourth
   verify.batch among its siblings *)
let seg name occ = if occ = 0 then name else Printf.sprintf "%s#%d" name occ

(* occurrences are counted per name (not per lane) so a path segment
   "name#occ" identifies exactly one sibling — workers' same-named
   spans under one batch get distinct ordinals, and lane assignment is
   deterministic, so the numbering agrees across the runs compared *)
let child_keys nodes =
  let seen = Hashtbl.create 16 in
  List.mapi
    (fun i n ->
      let occ =
        match Hashtbl.find_opt seen n.name with Some o -> o | None -> 0
      in
      Hashtbl.replace seen n.name (occ + 1);
      ((n.lane, n.name, occ), i, n))
    nodes

let rec signature n =
  Printf.sprintf "%d|%s|%s|%s[%s]" n.lane n.name n.cat
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) n.args))
    (String.concat ";" (List.map signature n.children))

let diff a b =
  let edits = ref [] in
  let emit e = edits := e :: !edits in
  let rec walk path older newer =
    let ka = child_keys older and kb = child_keys newer in
    let find key l = List.find_opt (fun (k, _, _) -> k = key) l in
    List.iter
      (fun ((((lane, name, occ) as key), ia, na)) ->
        let p = path ^ "/" ^ seg name occ in
        match find key kb with
        | None -> emit (Removed { path = p; lane; subtree = count_nodes na })
        | Some (_, ib, nb) ->
          if ia <> ib then emit (Reordered { path = p; older = ia; newer = ib });
          let rec args_diff xs ys =
            match (xs, ys) with
            | [], [] -> ()
            | (k, v) :: xs', [] ->
              emit (Args_changed { path = p; key = k; older = v; newer = "-" });
              args_diff xs' []
            | [], (k, v) :: ys' ->
              emit (Args_changed { path = p; key = k; older = "-"; newer = v });
              args_diff [] ys'
            | (ka', va) :: xs', (kb', vb) :: ys' ->
              if ka' = kb' then begin
                if va <> vb then
                  emit (Args_changed { path = p; key = ka'; older = va; newer = vb });
                args_diff xs' ys'
              end
              else if ka' < kb' then begin
                emit (Args_changed { path = p; key = ka'; older = va; newer = "-" });
                args_diff xs' ys
              end
              else begin
                emit (Args_changed { path = p; key = kb'; older = "-"; newer = vb });
                args_diff xs ys'
              end
          in
          args_diff na.args nb.args;
          walk p na.children nb.children)
      ka;
    List.iter
      (fun (((lane, name, occ) as key), _, nb) ->
        match find key ka with
        | Some _ -> ()
        | None ->
          emit
            (Added
               { path = path ^ "/" ^ seg name occ; lane;
                 subtree = count_nodes nb }))
      kb
  in
  walk "" a.roots b.roots;
  let edits = List.rev !edits in
  (* reclassify (Removed, Added) pairs with identical subtrees as Moved *)
  let node_at spine path =
    let segs =
      String.split_on_char '/' path |> List.filter (fun s -> s <> "")
    in
    let parse s =
      match String.index_opt s '#' with
      | None -> (s, 0)
      | Some i ->
        ( String.sub s 0 i,
          int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
    in
    let rec go nodes = function
      | [] -> None
      | [ s ] ->
        let name, occ = parse s in
        List.find_map
          (fun ((_, n', o'), _, node) ->
            if n' = name && o' = occ then Some node else None)
          (child_keys nodes)
      | s :: rest ->
        let name, occ = parse s in
        Option.bind
          (List.find_map
             (fun ((_, n', o'), _, node) ->
               if n' = name && o' = occ then Some node else None)
             (child_keys nodes))
          (fun node -> go node.children rest)
    in
    go spine.roots segs
  in
  let removed_sigs =
    List.filter_map
      (function
        | Removed { path; _ } ->
          Option.map (fun n -> (path, signature n)) (node_at a path)
        | _ -> None)
      edits
  in
  let added_sigs =
    List.filter_map
      (function
        | Added { path; _ } ->
          Option.map (fun n -> (path, signature n)) (node_at b path)
        | _ -> None)
      edits
  in
  let moved = Hashtbl.create 8 in
  List.iter
    (fun (rp, rs) ->
      if not (Hashtbl.mem moved rp) then
        match
          List.find_opt
            (fun (ap, asig) ->
              asig = rs
              && not
                   (Hashtbl.fold
                      (fun _ ap' acc -> acc || ap' = ap)
                      moved false))
            added_sigs
        with
        | Some (ap, _) -> Hashtbl.replace moved rp ap
        | None -> ())
    removed_sigs;
  List.filter_map
    (function
      | Removed { path; lane; _ } as e -> (
        match Hashtbl.find_opt moved path with
        | Some to_path -> Some (Moved { from_path = path; to_path; lane })
        | None -> Some e)
      | Added { path; _ } as e ->
        if Hashtbl.fold (fun _ ap acc -> acc || ap = path) moved false then
          None
        else Some e
      | e -> Some e)
    edits

let equal a b = diff a b = []

let render_edit = function
  | Added { path; lane; subtree } ->
    Printf.sprintf "+ added     %s [lane %d]%s" path lane
      (if subtree > 1 then Printf.sprintf " (+%d nested spans)" (subtree - 1)
       else "")
  | Removed { path; lane; subtree } ->
    Printf.sprintf "- removed   %s [lane %d]%s" path lane
      (if subtree > 1 then Printf.sprintf " (%d nested spans with it)" (subtree - 1)
       else "")
  | Moved { from_path; to_path; lane } ->
    Printf.sprintf "> moved     %s -> %s [lane %d]" from_path to_path lane
  | Reordered { path; older; newer } ->
    Printf.sprintf "~ reordered %s (ordinal %d -> %d)" path older newer
  | Args_changed { path; key; older; newer } ->
    Printf.sprintf "! args      %s: %s %s -> %s" path key older newer

let render_edits = function
  | [] -> "spines are identical\n"
  | edits ->
    String.concat "\n" (List.map render_edit edits)
    ^ Printf.sprintf "\n%d edit%s\n" (List.length edits)
        (if List.length edits = 1 then "" else "s")
