(* A minimal JSON value type with a printer and a parser — just enough
   for the observability exporters and the `exom stats` reader, so the
   library stays dependency-free (the toolchain has no yojson).

   The printer emits compact single-line JSON; the parser accepts what
   the printer emits plus ordinary whitespace, which covers reading back
   our own trace/metric files and validating them in tests. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* {2 Printing} *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Integers print without a fractional part so counters round-trip as
   the integer literals a human (and chrome://tracing) expects. *)
let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.6f" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* {2 Parsing} *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c lit value =
  if
    c.pos + String.length lit <= String.length c.src
    && String.sub c.src c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else fail c (Printf.sprintf "expected %s" lit)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        (* decode to a raw byte for the BMP-ASCII range we emit; anything
           higher degrades to '?' (we never produce it ourselves) *)
        if c.pos + 4 >= String.length c.src then fail c "truncated \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some n when n < 0x80 -> Buffer.add_char buf (Char.chr n)
        | Some _ -> Buffer.add_char buf '?'
        | None -> fail c "bad \\u escape");
        c.pos <- c.pos + 4
      | _ -> fail c "bad escape");
      advance c;
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch -> is_num_char ch | None -> false do
    advance c
  done;
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec loop () =
      skip_ws c;
      let k = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      fields := (k, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        loop ()
      | Some '}' -> advance c
      | _ -> fail c "expected ',' or '}'"
    in
    loop ();
    Obj (List.rev !fields)
  end

and parse_arr c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value c in
      items := v :: !items;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        loop ()
      | Some ']' -> advance c
      | _ -> fail c "expected ',' or ']'"
    in
    loop ();
    Arr (List.rev !items)
  end

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage" else Ok v
  | exception Parse_error msg -> Error msg

(* {2 Accessors} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
