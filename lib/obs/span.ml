(* Completed-span records and per-context recorders.

   Every span gets a globally unique id of [tid * stride + seq]: the
   recorder's thread-lane id [tid] namespaces the sequence counter, so
   worker recorders forked by the scheduler can allocate ids with no
   shared state and still merge without collisions.  Parent links are
   explicit (not inferred from timestamps), which is what lets the
   exported span tree show iteration -> batch -> re-execution nesting
   even when the re-executions ran on other domains. *)

let stride = 1_000_000

type t = {
  id : int;
  parent : int;  (* -1 for roots *)
  tid : int;  (* lane: 0 = coordinator, 1.. = scheduler forks *)
  name : string;
  cat : string;
  ts_us : float;  (* start, microseconds since the context's origin *)
  dur_us : float;
  args : (string * string) list;
}

type recorder = {
  tid : int;
  origin : float;  (* Unix.gettimeofday of the root context's creation *)
  fork_parent : int;
      (* parent id for this recorder's top-level spans: the span open at
         the coordinator when the fork was made; -1 at the root *)
  mutable next : int;
  mutable completed : t list;  (* reversed *)
}

let make ~tid ~origin ~fork_parent = { tid; origin; fork_parent; next = 0; completed = [] }

let tid r = r.tid
let origin r = r.origin
let fork_parent r = r.fork_parent

let alloc r =
  let id = (r.tid * stride) + r.next in
  r.next <- r.next + 1;
  id

let push r span = r.completed <- span :: r.completed

(* Merge a worker recorder's spans; ids are already unique by
   construction, so this is pure accumulation. *)
let absorb ~into r = into.completed <- r.completed @ into.completed

(* Sorted by id (lane-major, then start order within the lane): a
   deterministic structural order for exporters and tests, independent
   of completion interleaving. *)
let spans r = List.sort (fun a b -> compare a.id b.id) r.completed
