(* The observability context threaded through the localization pipeline:
   a metrics registry (always live — it carries the verification
   accounting reports are built from) plus optional hierarchical span
   recording.

   Zero-cost discipline: span recording is gated on context creation
   ([trace:true]); when off, {!with_span} is a single match and a call —
   no clock reads, no allocation.  Metric updates are one hashtable
   lookup and a field write, on a par with the Tally counters they
   replace; nothing here runs per interpreter step (the interpreter
   reports its step total once per run).

   Determinism discipline (the same one as the scheduler's tally merge):
   worker contexts are created with {!fork} on the coordinator in
   submission order — which also assigns their span lane ids — and
   folded back with {!absorb} in submission order.  Counters merge by
   sum and gauges by max, so every non-wall-clock figure in the metric
   tree is identical at any job count. *)

type t = {
  metrics : Metrics.t;
  trace : Span.recorder option;
  mutable stack : int list;  (* ids of open spans, innermost first *)
  tid_alloc : int ref;  (* shared lane allocator; coordinator-only *)
}

let create ?(trace = false) () =
  let origin = Unix.gettimeofday () in
  {
    metrics = Metrics.create ();
    trace =
      (if trace then Some (Span.make ~tid:0 ~origin ~fork_parent:(-1))
       else None);
    stack = [];
    tid_alloc = ref 1;
  }

let metrics t = t.metrics
let tracing t = t.trace <> None

(* {2 Metric conveniences} *)

let incr t name = Metrics.incr t.metrics name
let add t name n = Metrics.add t.metrics name n
let gauge t name v = Metrics.gauge t.metrics name v
let observe t name s = Metrics.observe t.metrics name s
let timed t name f = Metrics.timed t.metrics name f

(* {2 Spans} *)

let current_span t =
  match t.stack with
  | id :: _ -> id
  | [] -> ( match t.trace with Some r -> Span.fork_parent r | None -> -1)

let with_span t ?(cat = "exom") ?(args = []) name f =
  match t.trace with
  | None -> f ()
  | Some r ->
    let id = Span.alloc r in
    let parent = current_span t in
    let t0 = Unix.gettimeofday () in
    t.stack <- id :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        t.stack <- List.tl t.stack;
        let t1 = Unix.gettimeofday () in
        Span.push r
          {
            Span.id;
            parent;
            tid = Span.tid r;
            name;
            cat;
            ts_us = (t0 -. Span.origin r) *. 1e6;
            dur_us = (t1 -. t0) *. 1e6;
            args;
          })
      f

let spans t = match t.trace with None -> [] | Some r -> Span.spans r

(* {2 Worker shards} *)

(* Called on the coordinator when a scheduler task is *constructed* (in
   submission order), not when it runs: lane ids and fork parents are
   then deterministic, and the shared allocator is never touched from a
   worker domain. *)
let fork t =
  {
    metrics = Metrics.create ();
    trace =
      (match t.trace with
      | None -> None
      | Some r ->
        let tid = !(t.tid_alloc) in
        t.tid_alloc := tid + 1;
        Some
          (Span.make ~tid ~origin:(Span.origin r)
             ~fork_parent:(current_span t)));
    stack = [];
    tid_alloc = t.tid_alloc;
  }

let absorb ~into t =
  Metrics.absorb ~into:into.metrics t.metrics;
  match (into.trace, t.trace) with
  | Some dst, Some src -> Span.absorb ~into:dst src
  | _ -> ()
