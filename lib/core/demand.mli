(** The demand-driven fault-locating procedure (Algorithm 2,
    LocateFault): prune the dynamic slice with confidence analysis and
    oracle feedback, expand it along verified (strong) implicit
    dependence edges, repeat until the root cause enters the pruned
    slice.  The {!report} carries every quantity of the paper's
    Tables 2-4. *)

type report = {
  found : bool;
  user_prunings : int;
      (** Table 3: # of user prunings — marks needed to reach the
          minimal {e initial} pruned slice, the paper's definition *)
  total_prunings : int;
      (** all oracle marks across the whole demand-driven run *)
  verifications : int;  (** Table 3: # of verifications (re-executions) *)
  verify_queries : int;
      (** verdicts requested, cache hits and deduped runs included
          (≥ [verifications]) *)
  iterations : int;  (** Table 3: # of iterations *)
  expanded_edges : int;  (** Table 3: # of expanded edges *)
  implicit_edges : (int * int) list;
  benign : int list;  (** instances pruned as benign by the oracle *)
  ips : Exom_ddg.Slice.t;  (** final pruned expanded slice (Table 3 IPS) *)
  ds : Exom_ddg.Slice.t;  (** plain dynamic slice (Table 2 DS) *)
  ps0 : Exom_ddg.Slice.t;  (** initial pruned slice (Table 2 PS) *)
  os_chain : int list option;
      (** failure-inducing dependence chain (Table 3 OS) *)
  verif_seconds : float;  (** Table 4 Verif. *)
  robustness : Guard.stats;
      (** robustness telemetry: completed/aborted/retried re-executions,
          breaker trips and skips, deadline expirations, contained
          exceptions.  [completed + aborted = verifications]. *)
  store : Exom_sched.Store.stats;
      (** verdict-store counters: memory/disk hits, misses, evictions,
          corrupted entries rejected, writes *)
  failures : (int * Guard.verify_failure) list;
      (** journal of every degraded verification, oldest first: (static
          predicate sid, failure) *)
  degraded : string option;
      (** [Some reason] when the expansion loop was cut short by a
          contained exception; the slices and counts cover the search up
          to that point *)
}

type config = {
  max_iterations : int;
  max_related_targets : int;
      (** bound on the "forall t with p in PD(t)" verification loop *)
  max_instances_per_pred : int;
      (** verifications per static predicate in one PD(u) (latest K) *)
  verify_mode : Verify.mode;
      (** edge approximation (the paper's default) or safe path mode *)
  ranking : Exom_rank.Rank.config option;
      (** evidence-driven verification ordering: each expansion's
          candidates verify in descending posterior-yield order with an
          early-exit policy cutting low-yield instance tails, and the
          guard's breaker/escalation knobs are re-tuned from the failure
          journal between batches.  Ordering, cuts and scores are
          byte-deterministic (recorded as ledger [Rank] events) and
          invariant across [-j], warm/cold stores and kill/resume.
          [None] restores the paper's static order and static guard
          knobs. *)
}

(** Ranked by default ([ranking = Some Exom_rank.Rank.default_config],
    no mined prior). *)
val default_config : config

(** [locate s ~oracle ~root_sids]: run the procedure; [root_sids] is the
    seeded fault's ground truth, used — as in the paper's evaluation —
    only to decide that the error has been located.  [pool] supplies the
    verification scheduler's worker pool ({!Exom_sched.Pool.default}
    when omitted); the report is identical at any job count. *)
val locate :
  ?config:config ->
  ?pool:Exom_sched.Pool.t ->
  Session.t ->
  oracle:Oracle.t ->
  root_sids:int list ->
  report
