module Align = Exom_align.Align
module Interp = Exom_interp.Interp
module Profile = Exom_interp.Profile
module Region = Exom_align.Region
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value

(* Value perturbation (§5 of the paper): the remedy it proposes for the
   soundness gap of Table 5(b) — when nested predicates test the same
   definition, switching one branch outcome at a time cannot expose the
   dependence, but re-executing with the *definition's value* replaced
   can.  The paper prices this as "much more expensive because A has an
   integer domain while a predicate has a binary domain"; candidates
   here come from the value profile, so the cost is |range| re-executions
   per definition instead of one.

   The verdict mirrors {!Verify}: the perturbed definition instance [d]
   plays the role of the switch point for alignment purposes (both
   executions agree up to [d]). *)

(* Every perturbed re-execution — even one an injected fault aborts by
   exception — is charged to the verify.run timer.  Perturbation runs on
   the coordinator (it is not batched), so it charges the session's
   merged registry directly. *)
let perturbed_run (s : Session.t) ~budget ~d ~candidate =
  let inst = Trace.get s.Session.trace d in
  let vswitch =
    { Interp.vswitch_sid = inst.Trace.sid; vswitch_occ = inst.Trace.occ;
      vswitch_value = candidate }
  in
  let obs = s.Session.obs in
  Exom_obs.Obs.timed obs "verify.run" (fun () ->
      Interp.run ~obs ~vswitch ?chaos:s.Session.chaos ~budget s.Session.prog
        ~input:s.Session.input)

let classify (s : Session.t) ~(run' : Interp.run) ~d ~u =
  match run'.Interp.trace with
  | None -> Verdict.Not_id
  | Some trace' ->
    let aborted = run'.Interp.outcome <> Ok () in
    if not run'.Interp.switch_fired then Verdict.Not_id
    else begin
      let region' = Region.build trace' in
      let region = s.Session.region in
      (* Dependence d -> u: u disappears (in a complete run), or its
         value changes; a counterpart missing from an aborted run's
         truncated trace is inconclusive. *)
      let affected =
        match Align.to_option (Align.match_from region region' ~p:d ~u) with
        | None -> not aborted
        | Some u' ->
          not
            (Value.equal (Trace.get trace' u').Trace.value
               (Trace.get s.Session.trace u).Trace.value)
      in
      if not affected then Verdict.Not_id
      else begin
        let strong =
          match s.Session.vexp with
          | None -> false  (* crash failure: no expected value *)
          | Some vexp -> (
            match
              Align.to_option
                (Align.match_from region region' ~p:d
                   ~u:s.Session.wrong_output)
            with
            | Some o' -> Value.equal (Trace.get trace' o').Trace.value vexp
            | None -> false)
        in
        if strong then Verdict.Strong_id else Verdict.Id
      end
    end

let verify_value (s : Session.t) ~d ~candidate ~u =
  let sid = (Trace.get s.Session.trace d).Trace.sid in
  match
    Guard.execute s.Session.guard ~sid ~base_budget:s.Session.budget
      ~run:(fun ~budget -> perturbed_run s ~budget ~d ~candidate)
  with
  | Guard.Skipped _ -> Verdict.Not_id
  | Guard.Completed run' | Guard.Degraded (run', _) -> (
    try classify s ~run' ~d ~u
    with exn ->
      Guard.note_captured s.Session.guard ~sid ~msg:(Printexc.to_string exn);
      Verdict.Not_id)

(* Try every profiled value of the definition's statement (the paper's
   integer-domain search): the strongest verdict wins. *)
let verify_over_profile (s : Session.t) ~d ~u =
  let inst = Trace.get s.Session.trace d in
  let candidates =
    Profile.range s.Session.profile inst.Trace.sid ~observed:inst.Trace.value
    |> List.map (fun n -> Value.Vint n)
    |> List.filter (fun v -> not (Value.equal v inst.Trace.value))
  in
  List.fold_left
    (fun best candidate ->
      match best with
      | Verdict.Strong_id -> best
      | _ -> (
        match verify_value s ~d ~candidate ~u with
        | Verdict.Strong_id -> Verdict.Strong_id
        | Verdict.Id -> Verdict.Id
        | Verdict.Not_id -> best))
    Verdict.Not_id candidates
