module Ast = Exom_lang.Ast
module Interp = Exom_interp.Interp
module Profile = Exom_interp.Profile
module Proginfo = Exom_cfg.Proginfo
module Region = Exom_align.Region
module Relevant = Exom_ddg.Relevant
module Store = Exom_sched.Store
module Obs = Exom_obs.Obs
module Ledger = Exom_ledger.Ledger
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value

(* One recorded verification batch, replayed positionally on resume: the
   resumed demand loop re-executes all coordinator work (slicing,
   pruning, target selection) deterministically, and each verify_batch
   call consumes the next group instead of re-running — recorded events
   are re-emitted verbatim, verdicts are returned and seeded into the
   store, and the trailing checkpoint restores guard/store/metrics
   state.  A mismatch (the journal diverged from this session) drops the
   cursor and the batch runs live. *)
type replay_group = {
  rg_pairs : (int * int) list;
      (* unique (p, u) pairs, first-occurrence order — the match spine *)
  rg_queries : int;  (* total query count of the recorded batch *)
  rg_verdicts : ((int * int) * (Verdict.result * string)) list;
      (* per unique pair: result + evidence source *)
  rg_events : Ledger.event list;
      (* the Verify*/Batch/Checkpoint events, verbatim *)
  rg_total_runs : int;  (* cumulative verify.run count after the batch *)
  rg_checkpoint : Ledger.checkpoint option;
}

type t = {
  prog : Ast.program;
  info : Proginfo.t;
  input : int list;
  run : Interp.run;
  trace : Trace.t;
  region : Region.t;
  profile : Profile.t;
  rel : Relevant.t;
  correct_outputs : int list;  (* Ov: instance indices *)
  wrong_output : int;  (* o×, or the crash point for crash failures *)
  vexp : Value.t option;
      (* the value o× should have produced; [None] for crash failures,
         where no expected value exists and strong verification is
         unavailable *)
  budget : int;
  guard : Guard.t;
  chaos : Exom_interp.Chaos.t option;
      (* injected into switched re-executions only; the failing run
         under diagnosis is never subjected to chaos *)
  obs : Obs.t;
      (* the observability context: merged metrics (the successor of the
         old Tally) plus optional span recording; coordinator-owned *)
  store : Store.t;  (* verdict cache; possibly persistent *)
  ledger : Ledger.t option;
      (* provenance record of the run; appended to only on the
         coordinator, in program order, so its contents are j-invariant *)
  key_prefix : string;
      (* content hash of everything a verdict depends on besides
         (mode, p, u): program, input, expected stream, budget, chaos *)
  mutable replay : replay_group list;
      (* pending recorded batches (oldest first) a resumed run consumes
         instead of re-executing; [] for a fresh run or once exhausted *)
}

exception No_failure

(* Classify the failing run's outputs against the expected stream: the
   correct outputs Ov are the longest matching prefix, the first
   mismatch is the wrong output o×, and the expected value there is
   vexp.  Raises [No_failure] when the streams agree.

   Only the prefix counts as Ov: outputs *after* the divergence can
   match coincidentally (shifted streams, zero counters), and treating
   them as correct lets their control ancestors be pinned and the
   failure-inducing chain be pruned away — measured on the benchmark
   suite, prefix-only Ov locates every fault while whole-stream Ov
   loses four. *)
let classify_outputs ~outputs ~expected =
  let rec walk outs exps acc =
    match (outs, exps) with
    | (idx, v) :: outs', e :: exps' ->
      if v = e then walk outs' exps' (idx :: acc)
      else (List.rev acc, idx, Value.Vint e)
    | _, _ -> raise No_failure
    (* run produced a prefix of expected (or vice versa) with no
       mismatching value to anchor on *)
  in
  walk outputs expected []

(* A run that crashes — or spins until the step budget, the signature of
   an omitted loop-exit update — while its outputs match the expected
   prefix fails at its last (partially recorded) instance; there is no
   expected value there. *)
let classify ~(run : Interp.run) ~trace ~expected =
  match classify_outputs ~outputs:run.Interp.outputs ~expected with
  | ov, ox, vexp -> (ov, ox, Some vexp)
  | exception No_failure -> (
    match run.Interp.outcome with
    | Error (Interp.Crashed _ | Interp.Budget_exhausted)
      when Trace.length trace > 0 ->
      (List.map fst run.Interp.outputs, Trace.length trace - 1, None)
    | _ -> raise No_failure)

(* Everything a verdict depends on besides (mode, p, u).  The chaos spec
   is included so a store shared between chaotic and clean sessions can
   never serve a fault-injected verdict to a clean run. *)
let derive_key_prefix ~prog ~input ~expected ~budget ~chaos =
  let ints l = String.concat "," (List.map string_of_int l) in
  Store.digest
    [
      Marshal.to_string (prog : Ast.program) [];
      ints input;
      ints expected;
      string_of_int budget;
      (match chaos with
      | None -> ""
      | Some c ->
        Printf.sprintf "%d:%s" c.Exom_interp.Chaos.seed
          (Exom_interp.Chaos.fault_to_string c.Exom_interp.Chaos.fault));
    ]

(* Resolve a trace instance into the self-contained reference the
   ledger stores (sid, source line, occurrence). *)
let ledger_inst ~info ~trace i =
  let inst = Trace.get trace i in
  {
    Ledger.idx = i;
    sid = inst.Trace.sid;
    line = Proginfo.line_of_sid info inst.Trace.sid;
    occ = inst.Trace.occ;
  }

let create ?obs ?(budget = Interp.default_budget) ?policy ?chaos ?store ?ledger
    ~prog ~input ~expected ~profile_inputs () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  Obs.with_span obs ~cat:"session" "session.create" @@ fun () ->
  let run =
    Obs.with_span obs ~cat:"session" "session.failing_run" (fun () ->
        Interp.run ~obs ~budget prog ~input)
  in
  let trace =
    match run.Interp.trace with
    | Some t -> t
    | None -> invalid_arg "Session.create: tracing disabled"
  in
  let correct_outputs, wrong_output, vexp = classify ~run ~trace ~expected in
  let info = Proginfo.build prog in
  let store =
    match store with Some s -> s | None -> Store.create ~obs ()
  in
  let region =
    Obs.with_span obs ~cat:"session" "session.regions" (fun () ->
        Region.build trace)
  in
  let profile =
    Obs.with_span obs ~cat:"session" "session.profile" (fun () ->
        Profile.collect prog profile_inputs)
  in
  (match ledger with
  | Some l ->
    Ledger.session l
      ~wrong:(ledger_inst ~info ~trace wrong_output)
      ~vexp:(Option.map Value.to_string vexp)
      ~correct_outputs:(List.length correct_outputs)
      ~budget ~trace_len:(Trace.length trace)
  | None -> ());
  {
    prog;
    info;
    input;
    run;
    trace;
    region;
    profile;
    rel = Relevant.create info trace;
    correct_outputs;
    wrong_output;
    vexp;
    budget;
    guard = Guard.create ?policy ();
    chaos;
    obs;
    store;
    ledger;
    key_prefix = derive_key_prefix ~prog ~input ~expected ~budget ~chaos;
    replay = [];
  }

(* The ledger reference for a trace instance of this session. *)
let linst s i = ledger_inst ~info:s.info ~trace:s.trace i

(* The accounting views read the metrics registry: the verify.run timer
   holds what Tally.runs/Tally.seconds used to, verify.queries the old
   query count. *)
let verifications s = Exom_obs.Metrics.timer_count (Obs.metrics s.obs) "verify.run"
let verif_seconds s = Exom_obs.Metrics.timer_seconds (Obs.metrics s.obs) "verify.run"
let verify_queries s = Exom_obs.Metrics.counter_value (Obs.metrics s.obs) "verify.queries"
let store_stats s = Store.stats s.store

(* The session's content identity.  Everything a verdict depends on
   besides (mode, p, u) is already hashed into the store key prefix, so
   the prefix doubles as a stable fingerprint of the localization
   request itself: two sessions share it exactly when their verdicts
   are interchangeable.  The serve daemon keys request journals and
   dedup on it. *)
let fingerprint s = s.key_prefix
