module Backoff = Exom_util.Backoff
module Interp = Exom_interp.Interp

type verify_failure =
  | Run_crashed of string
  | Run_budget_exhausted
  | Deadline_expired of float
  | Breaker_open of int
  | Captured of string

let failure_to_string = function
  | Run_crashed msg -> "switched run crashed: " ^ msg
  | Run_budget_exhausted -> "switched run exhausted every escalated budget"
  | Deadline_expired s -> Printf.sprintf "verification deadline expired (%.3fs)" s
  | Breaker_open sid -> Printf.sprintf "circuit breaker open for predicate s%d" sid
  | Captured msg -> "unexpected exception contained: " ^ msg

type policy = {
  backoff : Backoff.t;
  deadline : float option;
  breaker_threshold : int;
}

let default_policy =
  { backoff = Backoff.default; deadline = None; breaker_threshold = 8 }

let strict_policy =
  { backoff = Backoff.none; deadline = None; breaker_threshold = max_int }

type stats = {
  mutable completed : int;
  mutable aborted : int;
  mutable retried : int;
  mutable deadline_expired : int;
  mutable breaker_trips : int;
  mutable breaker_skips : int;
  mutable captured : int;
}

let zero_stats () =
  { completed = 0; aborted = 0; retried = 0; deadline_expired = 0;
    breaker_trips = 0; breaker_skips = 0; captured = 0 }

let snapshot s =
  { completed = s.completed; aborted = s.aborted; retried = s.retried;
    deadline_expired = s.deadline_expired; breaker_trips = s.breaker_trips;
    breaker_skips = s.breaker_skips; captured = s.captured }

(* A worker-local accounting view: stats and journal entries land here
   while the shared breaker table (sid-serialized by the batch planner)
   stays on the guard.  [absorb] folds shards back in submission order,
   which keeps the merged journal — and therefore reports — identical
   regardless of the job count. *)
type shard = {
  sh_stats : stats;
  mutable sh_journal : (int * verify_failure) list;  (* newest first *)
}

let new_shard () = { sh_stats = zero_stats (); sh_journal = [] }
let shard_stats sh = sh.sh_stats

type breaker = { mutable consecutive : int; mutable opened : bool }

type t = {
  policy : policy;
  breakers : (int, breaker) Hashtbl.t;
  root : shard;  (* the session's merged accounting *)
}

let create ?(policy = default_policy) () =
  { policy; breakers = Hashtbl.create 16; root = new_shard () }

let policy t = t.policy
let stats t = t.root.sh_stats
let failures t = List.rev t.root.sh_journal
let note sh sid failure = sh.sh_journal <- (sid, failure) :: sh.sh_journal

let absorb t sh =
  let a = t.root.sh_stats and b = sh.sh_stats in
  a.completed <- a.completed + b.completed;
  a.aborted <- a.aborted + b.aborted;
  a.retried <- a.retried + b.retried;
  a.deadline_expired <- a.deadline_expired + b.deadline_expired;
  a.breaker_trips <- a.breaker_trips + b.breaker_trips;
  a.breaker_skips <- a.breaker_skips + b.breaker_skips;
  a.captured <- a.captured + b.captured;
  (* both lists are newest-first; prepending keeps shard order *)
  t.root.sh_journal <- sh.sh_journal @ t.root.sh_journal

let breaker_for t sid =
  match Hashtbl.find_opt t.breakers sid with
  | Some b -> b
  | None ->
    let b = { consecutive = 0; opened = false } in
    Hashtbl.replace t.breakers sid b;
    b

(* Materialize breaker records before dispatching a batch: workers then
   only mutate their own sid's record, never the table structure. *)
let prepare t ~sids = List.iter (fun sid -> ignore (breaker_for t sid)) sids

let breaker_open t ~sid = (breaker_for t sid).opened

let note_captured_in sh ~sid ~msg =
  sh.sh_stats.captured <- sh.sh_stats.captured + 1;
  note sh sid (Captured msg)

let note_captured t ~sid ~msg = note_captured_in t.root ~sid ~msg

(* One more consecutive abort of [sid]; open its breaker at the
   threshold (a completed run resets the streak — see [execute_in]). *)
let record_abort t sh sid =
  let b = breaker_for t sid in
  b.consecutive <- b.consecutive + 1;
  if (not b.opened) && b.consecutive >= t.policy.breaker_threshold then begin
    b.opened <- true;
    sh.sh_stats.breaker_trips <- sh.sh_stats.breaker_trips + 1
  end

type outcome =
  | Completed of Interp.run
  | Degraded of Interp.run * verify_failure
  | Skipped of verify_failure

let execute_in t sh ~sid ~base_budget ~run =
  let stats = sh.sh_stats in
  if breaker_open t ~sid then begin
    stats.breaker_skips <- stats.breaker_skips + 1;
    let f = Breaker_open sid in
    note sh sid f;
    Skipped f
  end
  else begin
    let t0 = Unix.gettimeofday () in
    let fail f =
      record_abort t sh sid;
      note sh sid f;
      f
    in
    let rec attempt = function
      | [] -> assert false (* Backoff.budgets is never empty *)
      | budget :: rest -> (
        match run ~budget with
        | exception exn ->
          stats.aborted <- stats.aborted + 1;
          stats.captured <- stats.captured + 1;
          Skipped (fail (Captured (Printexc.to_string exn)))
        | r -> (
          match r.Interp.outcome with
          | Ok () ->
            stats.completed <- stats.completed + 1;
            (breaker_for t sid).consecutive <- 0;
            Completed r
          | Error (Interp.Crashed msg) ->
            (* Deterministic for a given budget: retrying cannot help. *)
            stats.aborted <- stats.aborted + 1;
            Degraded (r, fail (Run_crashed msg))
          | Error Interp.Budget_exhausted ->
            stats.aborted <- stats.aborted + 1;
            let elapsed = Unix.gettimeofday () -. t0 in
            let overdue =
              match t.policy.deadline with
              | Some d -> elapsed >= d
              | None -> false
            in
            if rest <> [] && not overdue then begin
              stats.retried <- stats.retried + 1;
              attempt rest
            end
            else if overdue then begin
              stats.deadline_expired <- stats.deadline_expired + 1;
              Degraded (r, fail (Deadline_expired elapsed))
            end
            else Degraded (r, fail Run_budget_exhausted)))
    in
    attempt (Backoff.budgets t.policy.backoff ~base:base_budget)
  end

let execute t ~sid ~base_budget ~run = execute_in t t.root ~sid ~base_budget ~run
