module Backoff = Exom_util.Backoff
module Interp = Exom_interp.Interp

type verify_failure =
  | Run_crashed of string
  | Run_budget_exhausted
  | Deadline_expired of float
  | Breaker_open of int
  | Captured of string
  | Worker_quarantined of int

let failure_to_string = function
  | Run_crashed msg -> "switched run crashed: " ^ msg
  | Run_budget_exhausted -> "switched run exhausted every escalated budget"
  | Deadline_expired s -> Printf.sprintf "verification deadline expired (%.3fs)" s
  | Breaker_open sid -> Printf.sprintf "circuit breaker open for predicate s%d" sid
  | Captured msg -> "unexpected exception contained: " ^ msg
  | Worker_quarantined k ->
    Printf.sprintf "verification quarantined after killing %d workers" k

(* A compact, parseable codec for the checkpoint events the ledger
   journals: [failure_to_string] is for humans and not injective enough
   to survive a round-trip. *)
let failure_code = function
  | Run_crashed msg -> "crashed:" ^ msg
  | Run_budget_exhausted -> "budget"
  | Deadline_expired s -> Printf.sprintf "deadline:%h" s
  | Breaker_open sid -> Printf.sprintf "breaker:%d" sid
  | Captured msg -> "captured:" ^ msg
  | Worker_quarantined k -> Printf.sprintf "quarantined:%d" k

let failure_of_code s =
  let tail p = String.sub s (String.length p) (String.length s - String.length p) in
  let has p =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  if has "crashed:" then Some (Run_crashed (tail "crashed:"))
  else if s = "budget" then Some Run_budget_exhausted
  else if has "deadline:" then
    Option.map (fun f -> Deadline_expired f) (float_of_string_opt (tail "deadline:"))
  else if has "breaker:" then
    Option.map (fun n -> Breaker_open n) (int_of_string_opt (tail "breaker:"))
  else if has "captured:" then Some (Captured (tail "captured:"))
  else if has "quarantined:" then
    Option.map (fun n -> Worker_quarantined n)
      (int_of_string_opt (tail "quarantined:"))
  else None

type policy = {
  backoff : Backoff.t;
  deadline : float option;
  breaker_threshold : int;
}

let default_policy =
  { backoff = Backoff.default; deadline = None; breaker_threshold = 8 }

let strict_policy =
  { backoff = Backoff.none; deadline = None; breaker_threshold = max_int }

type stats = {
  mutable completed : int;
  mutable aborted : int;
  mutable retried : int;
  mutable deadline_expired : int;
  mutable breaker_trips : int;
  mutable breaker_skips : int;
  mutable captured : int;
  mutable quarantined : int;
}

let zero_stats () =
  { completed = 0; aborted = 0; retried = 0; deadline_expired = 0;
    breaker_trips = 0; breaker_skips = 0; captured = 0; quarantined = 0 }

let snapshot s =
  { completed = s.completed; aborted = s.aborted; retried = s.retried;
    deadline_expired = s.deadline_expired; breaker_trips = s.breaker_trips;
    breaker_skips = s.breaker_skips; captured = s.captured;
    quarantined = s.quarantined }

(* A worker-local accounting view: stats and journal entries land here
   while the shared breaker table (sid-serialized by the batch planner)
   stays on the guard.  [absorb] folds shards back in submission order,
   which keeps the merged journal — and therefore reports — identical
   regardless of the job count. *)
type shard = {
  sh_stats : stats;
  mutable sh_journal : (int * verify_failure) list;  (* newest first *)
}

let new_shard () = { sh_stats = zero_stats (); sh_journal = [] }
let shard_stats sh = sh.sh_stats

type breaker = { mutable consecutive : int; mutable opened : bool }

(* A per-sid override of the policy's static knobs, derived from the
   failure journal (see [auto_tune]): a tighter breaker threshold and a
   shorter escalation ladder for predicates whose failures are known to
   be deterministic. *)
type tuning = { tn_breaker_threshold : int; tn_max_retries : int }

type t = {
  policy : policy;
  breakers : (int, breaker) Hashtbl.t;
  tunings : (int, tuning) Hashtbl.t;
  root : shard;  (* the session's merged accounting *)
}

let create ?(policy = default_policy) () =
  { policy; breakers = Hashtbl.create 16; tunings = Hashtbl.create 16;
    root = new_shard () }

let policy t = t.policy
let stats t = t.root.sh_stats
let failures t = List.rev t.root.sh_journal
let note sh sid failure = sh.sh_journal <- (sid, failure) :: sh.sh_journal

let absorb t sh =
  let a = t.root.sh_stats and b = sh.sh_stats in
  a.completed <- a.completed + b.completed;
  a.aborted <- a.aborted + b.aborted;
  a.retried <- a.retried + b.retried;
  a.deadline_expired <- a.deadline_expired + b.deadline_expired;
  a.breaker_trips <- a.breaker_trips + b.breaker_trips;
  a.breaker_skips <- a.breaker_skips + b.breaker_skips;
  a.captured <- a.captured + b.captured;
  a.quarantined <- a.quarantined + b.quarantined;
  (* both lists are newest-first; prepending keeps shard order *)
  t.root.sh_journal <- sh.sh_journal @ t.root.sh_journal

let tuning_of t ~sid = Hashtbl.find_opt t.tunings sid

(* Replace the policy's static knobs for the predicates the failure
   journal has already convicted.  The rule is deliberately narrow and
   deterministic: only failure kinds that are a pure function of
   (program, input, budget, chaos seed) count — [Run_crashed],
   [Run_budget_exhausted] (recorded only after the *whole* escalation
   ladder failed) and [Captured].  Wall-clock-dependent kinds
   ([Deadline_expired]) and scheduler artifacts ([Worker_quarantined],
   [Breaker_open]) are excluded, so the derived tunings — like the
   journal they are derived from — are identical at any job count and
   across kill/resume (the journal is checkpoint-restored).

   Two deterministic failures of one sid mean a third identical attempt
   cannot succeed either: its breaker threshold drops to 2 and its
   escalation ladder to a single attempt.  Call between batches, on the
   coordinator; recomputing from scratch keeps the table a pure
   function of the journal. *)
let auto_tune t =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (sid, f) ->
      match f with
      | Run_crashed _ | Run_budget_exhausted | Captured _ ->
        Hashtbl.replace counts sid
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts sid))
      | Deadline_expired _ | Breaker_open _ | Worker_quarantined _ -> ())
    (List.rev t.root.sh_journal);
  Hashtbl.reset t.tunings;
  Hashtbl.iter
    (fun sid n ->
      if n >= 2 then
        Hashtbl.replace t.tunings sid
          {
            tn_breaker_threshold = min t.policy.breaker_threshold 2;
            tn_max_retries = 0;
          })
    counts

let breaker_threshold t sid =
  match Hashtbl.find_opt t.tunings sid with
  | Some tn -> tn.tn_breaker_threshold
  | None -> t.policy.breaker_threshold

let breaker_for t sid =
  match Hashtbl.find_opt t.breakers sid with
  | Some b -> b
  | None ->
    let b = { consecutive = 0; opened = false } in
    Hashtbl.replace t.breakers sid b;
    b

(* Materialize breaker records before dispatching a batch: workers then
   only mutate their own sid's record, never the table structure. *)
let prepare t ~sids = List.iter (fun sid -> ignore (breaker_for t sid)) sids

let breaker_open t ~sid = (breaker_for t sid).opened

let note_captured_in sh ~sid ~msg =
  sh.sh_stats.captured <- sh.sh_stats.captured + 1;
  note sh sid (Captured msg)

let note_captured t ~sid ~msg = note_captured_in t.root ~sid ~msg

(* Recorded on the coordinator at merge time: the worker shard of a
   quarantined task died with its executors, so nothing from the dead
   attempts survives — the quarantine entry is the task's whole
   accounting trace. *)
let note_quarantined t ~sid ~kills =
  t.root.sh_stats.quarantined <- t.root.sh_stats.quarantined + 1;
  note t.root sid (Worker_quarantined kills)

(* {2 Checkpoint support: export / restore the resumable state} *)

type breaker_state = { bk_sid : int; bk_consecutive : int; bk_opened : bool }

let breaker_states t =
  Hashtbl.fold
    (fun sid b acc ->
      { bk_sid = sid; bk_consecutive = b.consecutive; bk_opened = b.opened }
      :: acc)
    t.breakers []
  |> List.sort (fun a b -> compare a.bk_sid b.bk_sid)

let restore t ~stats:s ~failures:fs ~breakers =
  let a = t.root.sh_stats in
  a.completed <- s.completed;
  a.aborted <- s.aborted;
  a.retried <- s.retried;
  a.deadline_expired <- s.deadline_expired;
  a.breaker_trips <- s.breaker_trips;
  a.breaker_skips <- s.breaker_skips;
  a.captured <- s.captured;
  a.quarantined <- s.quarantined;
  t.root.sh_journal <- List.rev fs;
  Hashtbl.reset t.breakers;
  List.iter
    (fun bk ->
      Hashtbl.replace t.breakers bk.bk_sid
        { consecutive = bk.bk_consecutive; opened = bk.bk_opened })
    breakers

(* One more consecutive abort of [sid]; open its breaker at the
   threshold (a completed run resets the streak — see [execute_in]). *)
let record_abort t sh sid =
  let b = breaker_for t sid in
  b.consecutive <- b.consecutive + 1;
  if (not b.opened) && b.consecutive >= breaker_threshold t sid then begin
    b.opened <- true;
    sh.sh_stats.breaker_trips <- sh.sh_stats.breaker_trips + 1
  end

type outcome =
  | Completed of Interp.run
  | Degraded of Interp.run * verify_failure
  | Skipped of verify_failure

let execute_in t sh ~sid ~base_budget ~run =
  let stats = sh.sh_stats in
  if breaker_open t ~sid then begin
    stats.breaker_skips <- stats.breaker_skips + 1;
    let f = Breaker_open sid in
    note sh sid f;
    Skipped f
  end
  else begin
    let t0 = Unix.gettimeofday () in
    let fail f =
      record_abort t sh sid;
      note sh sid f;
      f
    in
    let rec attempt = function
      | [] -> assert false (* Backoff.budgets is never empty *)
      | budget :: rest -> (
        match run ~budget with
        | exception exn when Exom_interp.Chaos.is_fatal exn ->
          (* worker death: not ours to contain — the pool's supervisor
             must see it (the dying shard's accounting is discarded
             wholesale at merge time, so not counting here is what keeps
             the books deterministic) *)
          raise exn
        | exception exn ->
          stats.aborted <- stats.aborted + 1;
          stats.captured <- stats.captured + 1;
          Skipped (fail (Captured (Printexc.to_string exn)))
        | r -> (
          match r.Interp.outcome with
          | Ok () ->
            stats.completed <- stats.completed + 1;
            (breaker_for t sid).consecutive <- 0;
            Completed r
          | Error (Interp.Crashed msg) ->
            (* Deterministic for a given budget: retrying cannot help. *)
            stats.aborted <- stats.aborted + 1;
            Degraded (r, fail (Run_crashed msg))
          | Error Interp.Budget_exhausted ->
            stats.aborted <- stats.aborted + 1;
            let elapsed = Unix.gettimeofday () -. t0 in
            let overdue =
              match t.policy.deadline with
              | Some d -> elapsed >= d
              | None -> false
            in
            if rest <> [] && not overdue then begin
              stats.retried <- stats.retried + 1;
              attempt rest
            end
            else if overdue then begin
              stats.deadline_expired <- stats.deadline_expired + 1;
              Degraded (r, fail (Deadline_expired elapsed))
            end
            else Degraded (r, fail Run_budget_exhausted)))
    in
    let ladder = Backoff.budgets t.policy.backoff ~base:base_budget in
    let ladder =
      (* a tuned sid's ladder is cut to [tn_max_retries] escalations:
         its budget exhaustions are known deterministic, so the extra
         attempts can only burn runs *)
      match tuning_of t ~sid with
      | None -> ladder
      | Some tn -> List.filteri (fun i _ -> i <= tn.tn_max_retries) ladder
    in
    attempt ladder
  end

let execute t ~sid ~base_budget ~run = execute_in t t.root ~sid ~base_budget ~run
