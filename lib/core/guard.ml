module Backoff = Exom_util.Backoff
module Interp = Exom_interp.Interp

type verify_failure =
  | Run_crashed of string
  | Run_budget_exhausted
  | Deadline_expired of float
  | Breaker_open of int
  | Captured of string

let failure_to_string = function
  | Run_crashed msg -> "switched run crashed: " ^ msg
  | Run_budget_exhausted -> "switched run exhausted every escalated budget"
  | Deadline_expired s -> Printf.sprintf "verification deadline expired (%.3fs)" s
  | Breaker_open sid -> Printf.sprintf "circuit breaker open for predicate s%d" sid
  | Captured msg -> "unexpected exception contained: " ^ msg

type policy = {
  backoff : Backoff.t;
  deadline : float option;
  breaker_threshold : int;
}

let default_policy =
  { backoff = Backoff.default; deadline = None; breaker_threshold = 8 }

let strict_policy =
  { backoff = Backoff.none; deadline = None; breaker_threshold = max_int }

type stats = {
  mutable completed : int;
  mutable aborted : int;
  mutable retried : int;
  mutable deadline_expired : int;
  mutable breaker_trips : int;
  mutable breaker_skips : int;
  mutable captured : int;
}

let snapshot s =
  { completed = s.completed; aborted = s.aborted; retried = s.retried;
    deadline_expired = s.deadline_expired; breaker_trips = s.breaker_trips;
    breaker_skips = s.breaker_skips; captured = s.captured }

type breaker = { mutable consecutive : int; mutable opened : bool }

type t = {
  policy : policy;
  stats : stats;
  breakers : (int, breaker) Hashtbl.t;
  journal : (int * verify_failure) list ref;  (* newest first *)
}

let create ?(policy = default_policy) () =
  {
    policy;
    stats =
      { completed = 0; aborted = 0; retried = 0; deadline_expired = 0;
        breaker_trips = 0; breaker_skips = 0; captured = 0 };
    breakers = Hashtbl.create 16;
    journal = ref [];
  }

let policy t = t.policy
let stats t = t.stats
let failures t = List.rev !(t.journal)
let note t sid failure = t.journal := (sid, failure) :: !(t.journal)

let breaker_for t sid =
  match Hashtbl.find_opt t.breakers sid with
  | Some b -> b
  | None ->
    let b = { consecutive = 0; opened = false } in
    Hashtbl.replace t.breakers sid b;
    b

let breaker_open t ~sid = (breaker_for t sid).opened

let note_captured t ~sid ~msg =
  t.stats.captured <- t.stats.captured + 1;
  note t sid (Captured msg)

(* One more consecutive abort of [sid]; open its breaker at the
   threshold (a completed run resets the streak — see [execute]). *)
let record_abort t sid =
  let b = breaker_for t sid in
  b.consecutive <- b.consecutive + 1;
  if (not b.opened) && b.consecutive >= t.policy.breaker_threshold then begin
    b.opened <- true;
    t.stats.breaker_trips <- t.stats.breaker_trips + 1
  end

type outcome =
  | Completed of Interp.run
  | Degraded of Interp.run * verify_failure
  | Skipped of verify_failure

let execute t ~sid ~base_budget ~run =
  if breaker_open t ~sid then begin
    t.stats.breaker_skips <- t.stats.breaker_skips + 1;
    let f = Breaker_open sid in
    note t sid f;
    Skipped f
  end
  else begin
    let t0 = Unix.gettimeofday () in
    let fail f =
      record_abort t sid;
      note t sid f;
      f
    in
    let rec attempt = function
      | [] -> assert false (* Backoff.budgets is never empty *)
      | budget :: rest -> (
        match run ~budget with
        | exception exn ->
          t.stats.aborted <- t.stats.aborted + 1;
          t.stats.captured <- t.stats.captured + 1;
          Skipped (fail (Captured (Printexc.to_string exn)))
        | r -> (
          match r.Interp.outcome with
          | Ok () ->
            t.stats.completed <- t.stats.completed + 1;
            (breaker_for t sid).consecutive <- 0;
            Completed r
          | Error (Interp.Crashed msg) ->
            (* Deterministic for a given budget: retrying cannot help. *)
            t.stats.aborted <- t.stats.aborted + 1;
            Degraded (r, fail (Run_crashed msg))
          | Error Interp.Budget_exhausted ->
            t.stats.aborted <- t.stats.aborted + 1;
            let elapsed = Unix.gettimeofday () -. t0 in
            let overdue =
              match t.policy.deadline with
              | Some d -> elapsed >= d
              | None -> false
            in
            if rest <> [] && not overdue then begin
              t.stats.retried <- t.stats.retried + 1;
              attempt rest
            end
            else if overdue then begin
              t.stats.deadline_expired <- t.stats.deadline_expired + 1;
              Degraded (r, fail (Deadline_expired elapsed))
            end
            else Degraded (r, fail Run_budget_exhausted)))
    in
    attempt (Backoff.budgets t.policy.backoff ~base:base_budget)
  end
