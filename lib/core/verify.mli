(** Implicit-dependence verification by predicate switching (VerifyDep
    of Algorithm 2; Definitions 2 and 4).

    Each uncached verdict re-executes the program once with the
    candidate predicate instance's branch outcome flipped, aligns the
    two executions, and classifies the dependence.  Verification counts
    and wall time accumulate on the session (Tables 3 and 4).

    {!verify_batch} is the scheduler entry point: it answers a whole
    wave of (p, u) candidates at once — store hits resolved up front,
    one switched re-execution shared by every pair with the same p,
    remaining work spread over a {!Exom_sched.Pool} with all runs of
    one static predicate serialized on one worker (the circuit breaker
    is a per-sid sequential state machine).  Per-worker accounting is
    merged in submission order, so counts, journals and verdicts are
    identical regardless of the job count. *)

(** How Definition 2's "explicit dependence path between p' and u'" is
    decided: the paper's edge approximation (default; unsafe in the
    nested-predicate corner of §3.2 but cheap), or the exact backward
    slice membership test (safe, one slice per verification). *)
type mode = Edge_approximation | Path_exact

(** [verify s ~p ~u]: is there an implicit dependence from predicate
    instance [p] to use instance [u]?  Verdicts are cached in the
    session's store; do not mix modes on one session. *)
val verify : ?mode:mode -> Session.t -> p:int -> u:int -> Verdict.t

(** Like {!verify}, also reporting whether the switch observably changed
    the target's value (see {!Verdict.result}). *)
val verify_full : ?mode:mode -> Session.t -> p:int -> u:int -> Verdict.result

(** [verify_batch s pairs] returns one {!Verdict.result} per pair, in
    the caller's order.  [pool] defaults to {!Exom_sched.Pool.default}
    (sized by [EXOM_JOBS]); with one job everything runs inline on the
    caller.  Results are independent of the pool's job count. *)
val verify_batch :
  ?mode:mode ->
  ?pool:Exom_sched.Pool.t ->
  Session.t ->
  (int * int) list ->
  Verdict.result list
