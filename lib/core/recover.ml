module Ledger = Exom_ledger.Ledger

(* Salvage of a killed localization: turn the journal it left behind —
   possibly with a torn last line — into a replay plan the resumed run
   consumes positionally (see {!Session.replay_group}).

   The plan keeps only *complete* batches: a group is closed by its
   Checkpoint event, which the coordinator appends immediately after
   the Batch event, so a kill can orphan at most the one batch that was
   in flight (its Verify events are dropped and re-verified live).
   Everything outside Verify/Batch/Checkpoint — Session, Locate, Slice,
   Prune, Expand, Edge — is deliberately not replayed: the resumed
   demand loop recomputes and re-emits it deterministically, and the
   recomputation doubles as a cross-check that the journal belongs to
   this program and input. *)

type plan = {
  groups : Session.replay_group list;  (* complete batches, oldest first *)
  session_ev : Ledger.event option;  (* the journal's Session event *)
  salvaged_events : int;  (* events the tolerant reader accepted *)
  replayed_batches : int;
  replayed_verifications : int;  (* Verify events inside complete groups *)
  dropped_events : int;  (* trailing events of the in-flight batch *)
  iterations : int;  (* completed slice snapshots (incl. iteration 0) *)
  truncated : bool;  (* the journal's last line was torn *)
  prior_resumes : int;  (* resume markers already in the journal *)
  complete : bool;  (* a Final event is present: nothing was lost *)
}

let result_of_strings verdict value_affected =
  match verdict with
  | "STRONG_ID" -> Some { Verdict.verdict = Verdict.Strong_id; value_affected }
  | "ID" -> Some { Verdict.verdict = Verdict.Id; value_affected }
  | "NOT_ID" -> Some { Verdict.verdict = Verdict.Not_id; value_affected }
  | _ -> None

(* Fold the salvaged events into closed replay groups.  Planning stops
   at the first undecodable verdict string (a foreign or hand-edited
   journal): replay is positional, so a gap would desynchronize every
   group after it — better to re-verify live from that point. *)
let build_groups events =
  let groups = ref [] in
  let cur_verifies = ref [] in  (* (pair, result, source, event), newest first *)
  let cur_batch = ref None in
  let session_ev = ref None in
  let iterations = ref 0 in
  let complete = ref false in
  let broken = ref false in
  let close_group (q, runs, batch_ev) ck =
    let vs = List.rev !cur_verifies in
    let ck_events = match ck with None -> [] | Some c -> [ Ledger.Checkpoint c ] in
    groups :=
      {
        Session.rg_pairs = List.map (fun (pu, _, _, _) -> pu) vs;
        rg_queries = q;
        rg_verdicts = List.map (fun (pu, r, src, _) -> (pu, (r, src))) vs;
        rg_events =
          List.map (fun (_, _, _, e) -> e) vs @ (batch_ev :: ck_events);
        rg_total_runs = runs;
        rg_checkpoint = ck;
      }
      :: !groups;
    cur_verifies := [];
    cur_batch := None
  in
  List.iter
    (fun ev ->
      if not !broken then
        match ev with
        | Ledger.Session _ -> session_ev := Some ev
        | Ledger.Slice _ -> incr iterations
        | Ledger.Final _ -> complete := true
        | Ledger.Verify v -> (
          match result_of_strings v.Ledger.verdict v.Ledger.value_affected with
          | Some r ->
            cur_verifies :=
              ((v.Ledger.vp.Ledger.idx, v.Ledger.vu.Ledger.idx),
               r, v.Ledger.source, ev)
              :: !cur_verifies
          | None -> broken := true)
        | Ledger.Batch { queries; total_runs; _ } ->
          cur_batch := Some (queries, total_runs, ev)
        | Ledger.Checkpoint ck -> (
          match !cur_batch with
          | Some b -> close_group b (Some ck)
          | None ->
            (* a checkpoint with no batch in flight: not a shape the
               writer produces — stop trusting the journal here *)
            broken := true)
        | Ledger.Locate _ | Ledger.Prune _ | Ledger.Expand _ | Ledger.Rank _
        | Ledger.Edge _ ->
          (* re-emitted live by the resumed demand loop: Rank decisions
             are recomputed from the replayed verdict evidence, which is
             identical to the original run's, so they re-emit byte-equal *)
          ())
    events;
  let dropped =
    List.length !cur_verifies + (match !cur_batch with Some _ -> 1 | None -> 0)
  in
  (List.rev !groups, !session_ev, dropped, !iterations, !complete)

let plan_of_recovery (r : Ledger.recovery) =
  let groups, session_ev, dropped, iterations, complete =
    build_groups r.Ledger.r_events
  in
  {
    groups;
    session_ev;
    salvaged_events = List.length r.Ledger.r_events;
    replayed_batches = List.length groups;
    replayed_verifications =
      List.fold_left
        (fun n g -> n + List.length g.Session.rg_pairs)
        0 groups;
    dropped_events = dropped;
    iterations;
    truncated = r.Ledger.r_truncated;
    prior_resumes = r.Ledger.r_markers;
    complete;
  }

let plan_of_file path = Result.map plan_of_recovery (Ledger.recover_file path)

(* Does the journal describe the same failing run this session just
   reproduced?  Compared on the Session event's deterministic fields; a
   journal with no Session event matches nothing (its provenance is
   unknowable). *)
let matches_session plan (s : Session.t) =
  match plan.session_ev with
  | Some
      (Ledger.Session
         { wrong; vexp = _; correct_outputs; budget; trace_len }) ->
    wrong.Ledger.idx = s.Session.wrong_output
    && correct_outputs = List.length s.Session.correct_outputs
    && budget = s.Session.budget
    && trace_len = Exom_interp.Trace.length s.Session.trace
  | _ -> false

(* Arm the session's replay cursor.  Call before [Demand.locate]; the
   first verify batch then starts consuming the plan. *)
let prime (s : Session.t) plan = s.Session.replay <- plan.groups

let describe plan =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "salvaged events:        %d%s" plan.salvaged_events
    (if plan.truncated then "  (torn tail dropped)" else "");
  add "completed batches:      %d  (%d verifications replayable)"
    plan.replayed_batches plan.replayed_verifications;
  add "in-flight batch events: %d  (will be re-verified live)"
    plan.dropped_events;
  add "iteration snapshots:    %d" plan.iterations;
  if plan.prior_resumes > 0 then add "prior resumes:          %d" plan.prior_resumes;
  add "run status:             %s"
    (if plan.complete then "complete (Final event present)"
     else "interrupted (no Final event)");
  Buffer.contents b
