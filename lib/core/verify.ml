module Align = Exom_align.Align
module Interp = Exom_interp.Interp
module Region = Exom_align.Region
module Slice = Exom_ddg.Slice
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value

(* How Definition 2's case (ii) — "an explicit dependence path between
   p' and u'" — is tested:
   - [Edge_approximation] (the paper's deliberate, slightly unsafe
     choice, §3.2): u''s reaching definition must lie inside the
     switched predicate's region.  One region test per verification.
   - [Path_exact] (the safe variant the paper outlines and prices):
     p' must appear in the backward explicit-dependence slice of u'.
     Catches chains like the paper's 2 -> 3 -> 6 -> 7 -> 15, at the cost
     of a slice computation per verification and of admitting many more
     candidates per expansion. *)
type mode = Edge_approximation | Path_exact

(* VerifyDep (Algorithm 2, Definitions 2 and 4): test whether the use
   instance [u] implicitly depends on predicate instance [p] by
   re-executing with [p]'s branch outcome switched and aligning the two
   executions.

   - The switched run aborting (step budget = the paper's timer, or a
     crash) fails the verification: NOT_ID.
   - If the failure point o× aligns and now carries the expected value:
     STRONG_ID (Definition 4) — the strongest evidence, checked first.
   - If [u] has no counterpart, its execution hinged on [p]: ID
     (Definition 2 case (i)).
   - If [u]'s counterpart reads a definition lying inside the switched
     predicate's region, the switch rerouted the value: ID (case (ii),
     with the paper's deliberate edge-not-path approximation, §3.2).
   - Otherwise NOT_ID. *)

(* Every re-execution — including ones an injected fault aborts by
   exception — counts toward the session's verification tally, keeping
   [Guard.stats.completed + aborted = Session.verifications]. *)
let counted (s : Session.t) f =
  let t0 = Sys.time () in
  Fun.protect
    ~finally:(fun () ->
      s.Session.verifications <- s.Session.verifications + 1;
      s.Session.verif_seconds <- s.Session.verif_seconds +. Sys.time () -. t0)
    f

let switched_run (s : Session.t) ~budget ~p =
  let inst = Trace.get s.Session.trace p in
  let switch =
    { Interp.switch_sid = inst.Trace.sid; switch_occ = inst.Trace.occ }
  in
  counted s (fun () ->
      Interp.run ~switch ?chaos:s.Session.chaos ~budget s.Session.prog
        ~input:s.Session.input)

(* Does some use of [u'] read a definition that lies inside the region
   of the switched predicate [p'] (i.e. executed only because of the
   switch)?  This is the "d' in Region(p')" test, generalized to all the
   operands of [u']. *)
let rerouted_definition region' ~p' ~u' trace' =
  let inst' = Trace.get trace' u' in
  List.exists
    (fun (_, def', _) ->
      def' >= 0 && Region.in_region region' ~u:def' ~r:p')
    inst'.Trace.uses

(* A verified implicit dependence comes in two strengths of evidence
   (see {!Verdict.result}): a reroute-only dependence (the counterpart
   reads a definition from the switched region but happens to see the
   same value — e.g. a loop predicate whose operand changed from 5 to 2
   while the outcome stayed true) is still an implicit dependence for
   slicing, but says nothing about the predicate's outcome being
   correct, so it must not pin it during confidence propagation. *)

let not_id = { Verdict.verdict = Verdict.Not_id; value_affected = false }

let classify (s : Session.t) ~mode ~(run' : Interp.run) ~p ~u =
  match run'.Interp.trace with
  | None -> { Verdict.verdict = Verdict.Not_id; value_affected = false }
  | Some trace' ->
    (* An aborted switched run (budget = the paper's timer, or a crash
       caused by the now-inconsistent program state) still produced a
       valid trace prefix: alignment over it is sound for anything it
       contains.  Only a *missing* counterpart becomes inconclusive —
       the truncation, not the switch, may explain the absence — and is
       then conservatively NOT_ID (the paper's timer rule). *)
    let aborted = run'.Interp.outcome <> Ok () in
    if not run'.Interp.switch_fired then
      { Verdict.verdict = Verdict.Not_id; value_affected = false }
    else begin
      let region' = Region.build trace' in
      let region = s.Session.region in
      (* Definition 2 first: does u implicitly depend on p at all?
         (The paper's pseudocode short-circuits on the o× test alone,
         but Definition 4 requires the implicit dependence to hold too;
         without the conjunction, a culprit predicate would acquire
         strong edges to *benign* targets and confidence propagation
         would sanitize it.) *)
      let id_holds, value_affected =
        match Align.to_option (Align.match_from region region' ~p ~u) with
        | None ->
          (* case (i): u has no counterpart *)
          if aborted then (false, false) else (true, true)
        | Some u' ->
          let holds =
            match mode with
            | Edge_approximation ->
              rerouted_definition region' ~p':p ~u' trace'
            | Path_exact ->
              Slice.mem (Slice.compute trace' ~criteria:[ u' ]) p
          in
          let changed =
            not
              (Value.equal (Trace.get trace' u').Trace.value
                 (Trace.get s.Session.trace u).Trace.value)
          in
          (holds, changed)
      in
      if not id_holds then
        { Verdict.verdict = Verdict.Not_id; value_affected = false }
      else begin
        (* Definition 4: additionally, the failure point aligns and
           shows the expected value. *)
        let strong =
          match s.Session.vexp with
          | None -> false  (* crash failure: no expected value *)
          | Some vexp -> (
            match
              Align.to_option
                (Align.match_from region region' ~p ~u:s.Session.wrong_output)
            with
            | Some o' -> Value.equal (Trace.get trace' o').Trace.value vexp
            | None -> false)
        in
        {
          Verdict.verdict = (if strong then Verdict.Strong_id else Verdict.Id);
          value_affected;
        }
      end
    end

(* The guarded re-execution: breaker check, budget escalation, deadline
   and exception containment all live in {!Guard.execute}.  A degraded
   (aborted) run still carries a usable trace prefix, so the
   classification proceeds on it exactly as before. *)
let verify_uncached (s : Session.t) ~mode ~p ~u =
  let sid = (Trace.get s.Session.trace p).Trace.sid in
  match
    Guard.execute s.Session.guard ~sid ~base_budget:s.Session.budget
      ~run:(fun ~budget -> switched_run s ~budget ~p)
  with
  | Guard.Skipped _ -> not_id
  | Guard.Completed run' | Guard.Degraded (run', _) -> (
    try classify s ~mode ~run' ~p ~u
    with exn ->
      (* e.g. alignment over a chaos-corrupted trace: contain, degrade *)
      Guard.note_captured s.Session.guard ~sid ~msg:(Printexc.to_string exn);
      not_id)

let verify_full ?(mode = Edge_approximation) (s : Session.t) ~p ~u =
  (* The cache is per-session; sessions are not shared across modes. *)
  match Hashtbl.find_opt s.Session.verdict_cache (p, u) with
  | Some v -> v
  | None ->
    let v = verify_uncached s ~mode ~p ~u in
    Hashtbl.replace s.Session.verdict_cache (p, u) v;
    v

let verify ?mode (s : Session.t) ~p ~u =
  (verify_full ?mode s ~p ~u).Verdict.verdict
