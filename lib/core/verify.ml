module Align = Exom_align.Align
module Batch = Exom_sched.Batch
module Interp = Exom_interp.Interp
module Pool = Exom_sched.Pool
module Region = Exom_align.Region
module Slice = Exom_ddg.Slice
module Store = Exom_sched.Store
module Obs = Exom_obs.Obs
module Metrics = Exom_obs.Metrics
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value
module Ledger = Exom_ledger.Ledger

(* How Definition 2's case (ii) — "an explicit dependence path between
   p' and u'" — is tested:
   - [Edge_approximation] (the paper's deliberate, slightly unsafe
     choice, §3.2): u''s reaching definition must lie inside the
     switched predicate's region.  One region test per verification.
   - [Path_exact] (the safe variant the paper outlines and prices):
     p' must appear in the backward explicit-dependence slice of u'.
     Catches chains like the paper's 2 -> 3 -> 6 -> 7 -> 15, at the cost
     of a slice computation per verification and of admitting many more
     candidates per expansion. *)
type mode = Edge_approximation | Path_exact

(* VerifyDep (Algorithm 2, Definitions 2 and 4): test whether the use
   instance [u] implicitly depends on predicate instance [p] by
   re-executing with [p]'s branch outcome switched and aligning the two
   executions.

   - The switched run aborting (step budget = the paper's timer, or a
     crash) fails the verification: NOT_ID.
   - If the failure point o× aligns and now carries the expected value:
     STRONG_ID (Definition 4) — the strongest evidence, checked first.
   - If [u] has no counterpart, its execution hinged on [p]: ID
     (Definition 2 case (i)).
   - If [u]'s counterpart reads a definition lying inside the switched
     predicate's region, the switch rerouted the value: ID (case (ii),
     with the paper's deliberate edge-not-path approximation, §3.2).
   - Otherwise NOT_ID. *)

(* Every re-execution — including ones an injected fault aborts by
   exception — is charged to the verify.run timer of the given obs
   shard (worker-local under the scheduler; merged into the session by
   the coordinator), keeping
   [Guard.stats.completed + aborted = Session.verifications]. *)
let switched_run (s : Session.t) wobs ~budget ~p =
  let inst = Trace.get s.Session.trace p in
  let switch =
    { Interp.switch_sid = inst.Trace.sid; switch_occ = inst.Trace.occ }
  in
  Obs.timed wobs "verify.run" (fun () ->
      Interp.run ~obs:wobs ~switch ?chaos:s.Session.chaos ~budget
        s.Session.prog ~input:s.Session.input)

(* Does some use of [u'] read a definition that lies inside the region
   of the switched predicate [p'] (i.e. executed only because of the
   switch)?  This is the "d' in Region(p')" test, generalized to all the
   operands of [u']. *)
let rerouted_definition region' ~p' ~u' trace' =
  let inst' = Trace.get trace' u' in
  List.exists
    (fun (_, def', _) ->
      def' >= 0 && Region.in_region region' ~u:def' ~r:p')
    inst'.Trace.uses

(* A verified implicit dependence comes in two strengths of evidence
   (see {!Verdict.result}): a reroute-only dependence (the counterpart
   reads a definition from the switched region but happens to see the
   same value — e.g. a loop predicate whose operand changed from 5 to 2
   while the outcome stayed true) is still an implicit dependence for
   slicing, but says nothing about the predicate's outcome being
   correct, so it must not pin it during confidence propagation. *)

let not_id = { Verdict.verdict = Verdict.Not_id; value_affected = false }

(* [region'] is shared lazily across every use verified against the
   same switched run (the batch planner groups them), so the region
   tree of one re-execution is built at most once.

   Besides the verdict, classification returns the alignment evidence
   the provenance ledger records: the target's counterpart (or its
   absence — the proof of Definition 2 case (i)), whether a definition
   was rerouted through the switched region (case (ii)), and the
   failure point's counterpart with the Definition 4 outcome. *)
let classify ?obs (s : Session.t) ~mode ~(run' : Interp.run) ~region' ~p ~u =
  match run'.Interp.trace with
  | None -> (not_id, None)
  | Some trace' ->
    (* An aborted switched run (budget = the paper's timer, or a crash
       caused by the now-inconsistent program state) still produced a
       valid trace prefix: alignment over it is sound for anything it
       contains.  Only a *missing* counterpart becomes inconclusive —
       the truncation, not the switch, may explain the absence — and is
       then conservatively NOT_ID (the paper's timer rule). *)
    let aborted = run'.Interp.outcome <> Ok () in
    if not run'.Interp.switch_fired then (not_id, None)
    else begin
      let region' = Lazy.force region' in
      let region = s.Session.region in
      let counterpart =
        Align.to_option (Align.match_from ?obs region region' ~p ~u)
      in
      (* Definition 2 first: does u implicitly depend on p at all?
         (The paper's pseudocode short-circuits on the o× test alone,
         but Definition 4 requires the implicit dependence to hold too;
         without the conjunction, a culprit predicate would acquire
         strong edges to *benign* targets and confidence propagation
         would sanitize it.) *)
      let id_holds, value_affected, rerouted =
        match counterpart with
        | None ->
          (* case (i): u has no counterpart *)
          if aborted then (false, false, false) else (true, true, false)
        | Some u' ->
          let holds =
            match mode with
            | Edge_approximation ->
              rerouted_definition region' ~p':p ~u' trace'
            | Path_exact ->
              Slice.mem (Slice.compute trace' ~criteria:[ u' ]) p
          in
          let changed =
            not
              (Value.equal (Trace.get trace' u').Trace.value
                 (Trace.get s.Session.trace u).Trace.value)
          in
          (holds, changed, holds)
      in
      if not id_holds then
        ( not_id,
          Some
            { Ledger.counterpart; ox_counterpart = None; ox_restored = false;
              rerouted } )
      else begin
        (* Definition 4: additionally, the failure point aligns and
           shows the expected value. *)
        let ox_counterpart, strong =
          match s.Session.vexp with
          | None -> (None, false)  (* crash failure: no expected value *)
          | Some vexp -> (
            match
              Align.to_option
                (Align.match_from ?obs region region' ~p
                   ~u:s.Session.wrong_output)
            with
            | Some o' ->
              (Some o', Value.equal (Trace.get trace' o').Trace.value vexp)
            | None -> (None, false))
        in
        ( {
            Verdict.verdict =
              (if strong then Verdict.Strong_id else Verdict.Id);
            value_affected;
          },
          Some
            { Ledger.counterpart; ox_counterpart; ox_restored = strong;
              rerouted } )
      end
    end

(* {2 Verdict store codec and keys}

   A verdict is a pure function of (program, input, expected stream,
   budget, chaos spec, mode, p, u).  The session's [key_prefix] hashes
   the first five; the per-pair key adds the rest, so a persistent
   store can be shared across sessions and processes without ever
   serving a stale or foreign verdict. *)

let mode_tag = function Edge_approximation -> "E" | Path_exact -> "P"

let pair_key (s : Session.t) ~mode ~p ~u =
  Store.digest
    [ s.Session.key_prefix; mode_tag mode; string_of_int p; string_of_int u ]

let encode_result { Verdict.verdict; value_affected } =
  let v =
    match verdict with
    | Verdict.Strong_id -> 'S'
    | Verdict.Id -> 'I'
    | Verdict.Not_id -> 'N'
  in
  Printf.sprintf "%c%c" v (if value_affected then '1' else '0')

let decode_result payload =
  if String.length payload <> 2 then None
  else
    let verdict =
      match payload.[0] with
      | 'S' -> Some Verdict.Strong_id
      | 'I' -> Some Verdict.Id
      | 'N' -> Some Verdict.Not_id
      | _ -> None
    in
    match (verdict, payload.[1]) with
    | Some verdict, ('0' | '1') ->
      Some { Verdict.verdict; value_affected = payload.[1] = '1' }
    | _ -> None

(* {2 Ledger evidence}

   Workers produce one evidence slot per miss (disjoint writes into a
   shared array, exactly like the answers array); the coordinator turns
   slots into ledger events after the deterministic merge, so the
   ledger's contents never depend on worker interleaving. *)

type evidence = {
  ev_source : string;
      (* "run" | "cache:mem" | "cache:disk" | "skip" | "dead"
         | "quarantined" *)
  ev_run : Ledger.run_info option;
  ev_align : Ledger.align_info option;
  ev_failure : string option;
}

let cache_evidence tier =
  {
    ev_source = (match tier with `Mem -> "cache:mem" | `Disk -> "cache:disk");
    ev_run = None;
    ev_align = None;
    ev_failure = None;
  }

let dead_evidence =
  { ev_source = "dead"; ev_run = None; ev_align = None; ev_failure = None }

let quarantined_evidence kills =
  {
    ev_source = "quarantined";
    ev_run = None;
    ev_align = None;
    ev_failure =
      Some (Guard.failure_to_string (Guard.Worker_quarantined kills));
  }

let run_evidence (run' : Interp.run) =
  let outcome =
    match run'.Interp.outcome with
    | Ok () -> "ok"
    | Error Interp.Budget_exhausted -> "budget-exhausted"
    | Error (Interp.Crashed msg) -> "crashed: " ^ msg
  in
  {
    Ledger.outcome;
    steps = run'.Interp.steps;
    switch_fired = run'.Interp.switch_fired;
  }

(* {2 Checkpoints and resume replay}

   After every batch the coordinator appends a checkpoint: the guard's
   cumulative counters, failure journal and breaker table plus the
   store's counters — everything a resumed run cannot recompute from
   the events alone.  All of it is merged in submission order upstream,
   so checkpoints are j-invariant like every other ledger event. *)

let make_checkpoint (s : Session.t) =
  let g = Guard.stats s.Session.guard in
  let st = Store.stats s.Session.store in
  {
    Ledger.ck_guard =
      {
        Ledger.g_completed = g.Guard.completed;
        g_aborted = g.Guard.aborted;
        g_retried = g.Guard.retried;
        g_deadline_expired = g.Guard.deadline_expired;
        g_breaker_trips = g.Guard.breaker_trips;
        g_breaker_skips = g.Guard.breaker_skips;
        g_captured = g.Guard.captured;
        g_quarantined = g.Guard.quarantined;
      };
    ck_failures =
      List.map
        (fun (sid, f) -> (sid, Guard.failure_code f))
        (Guard.failures s.Session.guard);
    ck_breakers =
      List.map
        (fun b ->
          {
            Ledger.b_sid = b.Guard.bk_sid;
            b_consecutive = b.Guard.bk_consecutive;
            b_opened = b.Guard.bk_opened;
          })
        (Guard.breaker_states s.Session.guard);
    ck_store =
      {
        Ledger.st_hits = st.Store.hits;
        st_disk_hits = st.Store.disk_hits;
        st_misses = st.Store.misses;
        st_evictions = st.Store.evictions;
        st_corrupted = st.Store.corrupted;
        st_writes = st.Store.writes;
      };
  }

(* Overwrite guard, store and run-count state from a replayed
   checkpoint: the resumed session continues exactly where the
   journaled one stopped.  Scheduler-local metrics (the "pool." tree)
   are NOT restored — they describe work this process performed, which
   is precisely what the resume avoided. *)
let apply_checkpoint (s : Session.t) (ck : Ledger.checkpoint) =
  let g = ck.Ledger.ck_guard in
  Guard.restore s.Session.guard
    ~stats:
      {
        Guard.completed = g.Ledger.g_completed;
        aborted = g.Ledger.g_aborted;
        retried = g.Ledger.g_retried;
        deadline_expired = g.Ledger.g_deadline_expired;
        breaker_trips = g.Ledger.g_breaker_trips;
        breaker_skips = g.Ledger.g_breaker_skips;
        captured = g.Ledger.g_captured;
        quarantined = g.Ledger.g_quarantined;
      }
    ~failures:
      (List.map
         (fun (sid, code) ->
           (* codes come from [Guard.failure_code] and always parse; a
              hand-edited ledger degrades to a captured note, not a
              crash *)
           ( sid,
             Option.value
               (Guard.failure_of_code code)
               ~default:(Guard.Captured ("unreadable failure code: " ^ code))
           ))
         ck.Ledger.ck_failures)
    ~breakers:
      (List.map
         (fun b ->
           {
             Guard.bk_sid = b.Ledger.b_sid;
             bk_consecutive = b.Ledger.b_consecutive;
             bk_opened = b.Ledger.b_opened;
           })
         ck.Ledger.ck_breakers);
  let st = ck.Ledger.ck_store in
  Store.restore_stats s.Session.store
    {
      Store.hits = st.Ledger.st_hits;
      disk_hits = st.Ledger.st_disk_hits;
      misses = st.Ledger.st_misses;
      evictions = st.Ledger.st_evictions;
      corrupted = st.Ledger.st_corrupted;
      writes = st.Ledger.st_writes;
    }

let unique_pairs pairs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun pu ->
      if Hashtbl.mem seen pu then false
      else begin
        Hashtbl.replace seen pu ();
        true
      end)
    pairs

(* A recorded batch matches a live call iff the pre-dedup query count
   and the unique pairs (in first-occurrence order) agree — the same
   deterministic spine the live planner resolves on. *)
let replay_matches (g : Session.replay_group) pairs =
  g.Session.rg_queries = List.length pairs
  && g.Session.rg_pairs = unique_pairs pairs

(* Consume one recorded batch instead of re-running it: count the
   queries, seed the store with the recorded verdicts (no counter
   moves; a "dead" pair was never persisted live and is not seeded),
   re-emit the recorded events verbatim, then restore the cumulative
   guard/store/run-count state from the trailing checkpoint.

   The coordinator's [verify.batch] span is emitted with exactly the
   args a live batch would get (identical args are what make the two
   spans compare equal): the lane-0 decision spine of a resumed run
   then matches the uninterrupted run's span for span, while worker
   lanes stay empty — nothing re-executed.  That is the invariant
   behind {!Exom_obs.Spine}'s [Coordinator] projection being
   replay-invariant. *)
let replay_batch (s : Session.t) ~mode (g : Session.replay_group) rest pairs =
  let obs = s.Session.obs in
  s.Session.replay <- rest;
  Obs.add obs "verify.queries" (List.length pairs);
  Obs.with_span obs ~cat:"verify"
    ~args:[ ("pairs", string_of_int (List.length pairs)) ]
    "verify.batch"
  @@ fun () ->
  List.iter
    (fun ((p, u), (r, source)) ->
      if source <> "dead" then
        Store.seed s.Session.store ~key:(pair_key s ~mode ~p ~u)
          (encode_result r))
    g.Session.rg_verdicts;
  (match s.Session.ledger with
  | None -> ()
  | Some l -> List.iter (Ledger.append l) g.Session.rg_events);
  (match g.Session.rg_checkpoint with
  | None -> ()
  | Some ck -> apply_checkpoint s ck);
  (match Metrics.find (Obs.metrics obs) "verify.run" with
  | Some m -> m.Metrics.count <- g.Session.rg_total_runs
  | None ->
    Metrics.restore (Obs.metrics obs) ~kind:Metrics.Timer ~name:"verify.run"
      ~count:g.Session.rg_total_runs ~value:0 ~seconds:0.0 ~min_s:infinity
      ~max_s:neg_infinity);
  List.map (fun pu -> fst (List.assoc pu g.Session.rg_verdicts)) pairs

(* {2 The batch verification planner}

   One call verifies a whole wave of (p, u) candidates:

   1. {b resolve}: store hits are answered on the coordinator; the
      remaining unique pairs are the misses, kept in first-occurrence
      order (the deterministic spine of everything below).
   2. {b dedup}: misses sharing a predicate instance p share {e one}
      switched re-execution — the paper's verifier re-ran the program
      per pair; one run per p is the batch planner's main saving.
   3. {b dispatch}: p-groups are grouped again by static predicate sid
      and each sid becomes one pool task, because the circuit breaker
      is a per-sid sequential state machine — serializing a sid's runs
      on one worker (in submission order) makes breaker decisions
      independent of the job count.  Workers accumulate into private
      {!Guard.shard}s and {!Obs.t} shards (forked on the coordinator at
      construction time, so span lanes are assigned deterministically)
      and write verdicts into disjoint slots of a shared array.
   4. {b merge}: guard and obs shards are absorbed in submission order,
      fresh verdicts are persisted in miss order, results are returned
      in the caller's pair order — bit-identical reports at any -j. *)
let verify_batch ?(mode = Edge_approximation) ?pool (s : Session.t) pairs =
  match pairs with
  | [] -> []
  | _ -> (
    match s.Session.replay with
    | g :: rest when replay_matches g pairs ->
      replay_batch s ~mode g rest pairs
    | replay ->
    (* a non-empty cursor that doesn't match means the journal diverged
       from this session: drop it and verify live from here on *)
    if replay <> [] then s.Session.replay <- [];
    let pool = match pool with Some p -> p | None -> Pool.default () in
    let obs = s.Session.obs in
    Obs.add obs "verify.queries" (List.length pairs);
    Obs.with_span obs ~cat:"verify"
      ~args:[ ("pairs", string_of_int (List.length pairs)) ]
      "verify.batch"
    @@ fun () ->
    (* resolve: store hits on the coordinator, unique misses in order *)
    let resolved = Hashtbl.create 64 in
    let evidence_tbl = Hashtbl.create 64 in
    let miss_key = Hashtbl.create 64 in
    let miss_order = ref [] in
    List.iter
      (fun (p, u) ->
        if
          (not (Hashtbl.mem resolved (p, u)))
          && not (Hashtbl.mem miss_key (p, u))
        then begin
          let key = pair_key s ~mode ~p ~u in
          match
            Option.bind (Store.find_tier s.Session.store key)
              (fun (payload, tier) ->
                Option.map (fun r -> (r, tier)) (decode_result payload))
          with
          | Some (r, tier) ->
            Hashtbl.replace resolved (p, u) r;
            Hashtbl.replace evidence_tbl (p, u) (cache_evidence tier)
          | None ->
            Hashtbl.replace miss_key (p, u) key;
            miss_order := (p, u) :: !miss_order
        end)
      pairs;
    let misses = List.rev !miss_order in
    let dispatched_runs = ref 0 in
    (match misses with
    | [] -> ()
    | _ ->
      let answers = Array.make (List.length misses) None in
      let evs = Array.make (List.length misses) None in
      let indexed = List.mapi (fun i pu -> (i, pu)) misses in
      (* one switched run per predicate instance p ... *)
      let by_p = Batch.group_by ~key:(fun (_, (p, _)) -> p) indexed in
      (* ... and all runs of one static predicate on one worker *)
      let sid_of p = (Trace.get s.Session.trace p).Trace.sid in
      let by_sid = Batch.group_by ~key:(fun (p, _) -> sid_of p) by_p in
      Guard.prepare s.Session.guard ~sids:(List.map fst by_sid);
      (* [Obs.fork] runs here, on the coordinator, while verify.batch is
         the open span: lanes are numbered in submission order and every
         worker's top-level spans parent to this batch. *)
      let task (_sid, pgroups) =
        let wobs = Obs.fork obs in
        fun () ->
          let shard = Guard.new_shard () in
          List.iter
            (fun (p, items) ->
              let sid = sid_of p in
              Obs.with_span wobs ~cat:"verify"
                ~args:[ ("p", string_of_int p) ]
                "verify.reexec"
              @@ fun () ->
              match
                Guard.execute_in s.Session.guard shard ~sid
                  ~base_budget:s.Session.budget
                  ~run:(fun ~budget -> switched_run s wobs ~budget ~p)
              with
              | Guard.Skipped f ->
                let ev =
                  {
                    ev_source = "skip";
                    ev_run = None;
                    ev_align = None;
                    ev_failure = Some (Guard.failure_to_string f);
                  }
                in
                List.iter
                  (fun (i, _) ->
                    answers.(i) <- Some not_id;
                    evs.(i) <- Some ev)
                  items
              | (Guard.Completed run' | Guard.Degraded (run', _)) as oc ->
                let degraded =
                  match oc with
                  | Guard.Degraded (_, f) -> Some (Guard.failure_to_string f)
                  | _ -> None
                in
                let rinfo = run_evidence run' in
                let region' =
                  lazy
                    (match run'.Interp.trace with
                    | Some trace' -> Region.build trace'
                    | None -> assert false (* forced only under Some *))
                in
                Obs.with_span wobs ~cat:"verify" "verify.align" @@ fun () ->
                List.iter
                  (fun (i, (_, u)) ->
                    let r, al, fail =
                      try
                        let r, al =
                          classify ~obs:wobs s ~mode ~run' ~region' ~p ~u
                        in
                        (r, al, degraded)
                      with exn ->
                        (* e.g. alignment over a chaos-corrupted trace:
                           contain, degrade *)
                        let msg = Printexc.to_string exn in
                        Guard.note_captured_in shard ~sid ~msg;
                        ( not_id,
                          None,
                          Some (Guard.failure_to_string (Guard.Captured msg)) )
                    in
                    answers.(i) <- Some r;
                    evs.(i) <-
                      Some
                        {
                          ev_source = "run";
                          ev_run = Some rinfo;
                          ev_align = al;
                          ev_failure = fail;
                        })
                  items)
            pgroups;
          (shard, wobs)
      in
      let outcomes =
        Batch.run_tasks ~obs ~fatal:Exom_interp.Chaos.is_fatal pool
          (List.map task by_sid)
      in
      (* merge in submission order: reports are j-independent *)
      List.iter2
        (fun (sid, pgroups) outcome ->
          match outcome with
          | Ok (shard, wobs) ->
            Guard.absorb s.Session.guard shard;
            Obs.absorb ~into:obs wobs
          | Error exn ->
            (* The task died: its shard and obs fork are discarded, so
               nothing it half-computed is trusted — wipe any slots a
               dead attempt wrote before being killed, or the batch's
               verdicts and accounting would come from runs that were
               never charged anywhere.  Fault injection is
               deterministic, so the wipe (like the kill) is identical
               at every job count. *)
            let ev =
              match exn with
              | Batch.Quarantined kills ->
                Guard.note_quarantined s.Session.guard ~sid ~kills;
                quarantined_evidence kills
              | exn ->
                Guard.note_captured s.Session.guard ~sid
                  ~msg:(Printexc.to_string exn);
                dead_evidence
            in
            List.iter
              (fun (_, items) ->
                List.iter
                  (fun (i, _) ->
                    answers.(i) <- None;
                    evs.(i) <- Some ev)
                  items)
              pgroups)
        by_sid outcomes;
      List.iteri
        (fun i (p, u) ->
          (match answers.(i) with
          | Some r ->
            Hashtbl.replace resolved (p, u) r;
            Store.add s.Session.store ~key:(Hashtbl.find miss_key (p, u))
              (encode_result r)
          | None ->
            (* unanswered (task died): NOT_ID, but never persisted *)
            Hashtbl.replace resolved (p, u) not_id);
          Hashtbl.replace evidence_tbl (p, u)
            (match evs.(i) with Some e -> e | None -> dead_evidence))
        misses;
      (* switched runs actually performed: distinct predicate instances
         among the misses that were not skipped *)
      let ran = Hashtbl.create 16 in
      List.iteri
        (fun i (p, _) ->
          match evs.(i) with
          | Some { ev_source = "run"; _ } -> Hashtbl.replace ran p ()
          | _ -> ())
        misses;
      dispatched_runs := Hashtbl.length ran);
    (* Ledger emission: coordinator-only, in first-occurrence pair order
       (the same deterministic spine as resolution), after the merge. *)
    (match s.Session.ledger with
    | None -> ()
    | Some l ->
      let seen = Hashtbl.create 64 in
      let uniq = ref 0 in
      List.iter
        (fun (p, u) ->
          if not (Hashtbl.mem seen (p, u)) then begin
            Hashtbl.replace seen (p, u) ();
            incr uniq;
            let r = Hashtbl.find resolved (p, u) in
            let e =
              match Hashtbl.find_opt evidence_tbl (p, u) with
              | Some e -> e
              | None -> dead_evidence
            in
            Ledger.verify l ~p:(Session.linst s p) ~u:(Session.linst s u)
              ~verdict:(Verdict.to_string r.Verdict.verdict)
              ~value_affected:r.Verdict.value_affected ~source:e.ev_source
              ?run:e.ev_run ?align:e.ev_align ?failure:e.ev_failure ()
          end)
        pairs;
      Ledger.batch l ~queries:(List.length pairs) ~unique:!uniq
        ~cache_hits:(!uniq - List.length misses) ~runs:!dispatched_runs
        ~total_runs:(Metrics.timer_count (Obs.metrics obs) "verify.run");
      (* the resumable state, right behind the batch it closes *)
      Ledger.checkpoint l (make_checkpoint s));
    List.map (fun (p, u) -> Hashtbl.find resolved (p, u)) pairs)

(* The single-pair entry points route through the batch planner with an
   inline pool, so cached/sequential/parallel paths share one engine
   (and therefore one accounting scheme). *)
let seq_pool = lazy (Pool.create ~jobs:1 ())

let verify_full ?mode (s : Session.t) ~p ~u =
  match verify_batch ?mode ~pool:(Lazy.force seq_pool) s [ (p, u) ] with
  | [ r ] -> r
  | _ -> assert false

let verify ?mode (s : Session.t) ~p ~u =
  (verify_full ?mode s ~p ~u).Verdict.verdict
