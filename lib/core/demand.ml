module Ast = Exom_lang.Ast
module Confidence = Exom_conf.Confidence
module Ledger = Exom_ledger.Ledger
module Obs = Exom_obs.Obs
module Prune = Exom_conf.Prune
module Rank = Exom_rank.Rank
module Relevant = Exom_ddg.Relevant
module Slice = Exom_ddg.Slice
module Store = Exom_sched.Store
module Trace = Exom_interp.Trace

(* The demand-driven procedure (Algorithm 2, LocateFault): alternate
   confidence-based pruning with implicit-dependence expansion until the
   root cause enters the pruned slice.

   The harness plays the role of the paper's experimenters: the oracle
   answers the interactive-pruning questions (benign program state?) and
   the known root cause decides when the error has been located —
   exactly how Table 3's user prunings / verifications / iterations /
   expanded edges were measured.

   Verification is dispatched in waves through {!Verify.verify_batch}:
   each PD fan-out and each related-target fan-out becomes one batch,
   which the scheduler dedups (one switched run per predicate instance)
   and spreads over the pool.  Everything *between* batches — slicing,
   confidence, pruning, target selection — stays on the coordinator,
   so the search itself is exactly the sequential algorithm. *)

type report = {
  found : bool;
  user_prunings : int;
      (* marks needed to reach the minimal *initial* pruned slice — the
         paper's Table 3 definition ("before the system can acquire the
         minimal pruned slice"); later rounds' marks are in
         total_prunings *)
  total_prunings : int;
  verifications : int;
  verify_queries : int;
  iterations : int;
  expanded_edges : int;
  implicit_edges : (int * int) list;  (* (switched predicate, target) *)
  benign : int list;  (* instances the oracle vouched for *)
  ips : Slice.t;  (* final pruned expanded slice *)
  ds : Slice.t;  (* initial dynamic slice, for Table 2 *)
  ps0 : Slice.t;  (* initial pruned slice (before expansion), for Table 2 *)
  os_chain : int list option;  (* failure-inducing dependence chain *)
  verif_seconds : float;
  robustness : Guard.stats;  (* snapshot of the session's guard counters *)
  store : Store.stats;  (* snapshot of the verdict store's counters *)
  failures : (int * Guard.verify_failure) list;
      (* journal of degraded verifications, oldest first *)
  degraded : string option;
      (* [Some reason] when the expansion loop itself was cut short by a
         contained exception: the report covers what was computed *)
}

type config = {
  max_iterations : int;
  max_related_targets : int;  (* bound on the "foreach t: p in PD(t)" loop *)
  max_instances_per_pred : int;
      (* verifications per static predicate in one PD(u): hot predicates
         can have hundreds of qualifying instances; the latest K carry
         the freshest state (and K must cover the fault-relevant one —
         a single "latest" misses faults on earlier iterations) *)
  verify_mode : Verify.mode;  (* edge approximation (paper) or safe paths *)
  ranking : Rank.config option;
      (* evidence-driven candidate ordering + early exit; [None] is the
         paper's static order (and static guard knobs) *)
}

let default_config =
  { max_iterations = 40; max_related_targets = 64;
    max_instances_per_pred = 4; verify_mode = Verify.Edge_approximation;
    ranking = Some Rank.default_config }

(* Thin PD candidates to the latest [per_sid] instances of each static
   predicate. *)
let dedup_by_sid ~per_sid trace candidates =
  let by_sid = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let sid = (Trace.get trace p).Trace.sid in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_sid sid) in
      Hashtbl.replace by_sid sid (p :: cur))
    candidates;
  Hashtbl.fold
    (fun _ ps acc ->
      let latest_first = List.sort (fun a b -> compare b a) ps in
      List.filteri (fun i _ -> i < per_sid) latest_first @ acc)
    by_sid []
  |> List.sort compare

let locate ?(config = default_config) ?pool (s : Session.t) ~oracle
    ~root_sids =
  let trace = s.Session.trace in
  let obs = s.Session.obs in
  Obs.with_span obs ~cat:"demand" "demand.locate" @@ fun () ->
  (* All ledger appends below run on the coordinator, between batches,
     over coordinator-computed data — the search is identical at any -j,
     so the ledger is too. *)
  let ledger = s.Session.ledger in
  (match ledger with
  | Some l ->
    Ledger.locate l ~root_sids
      ~mode:
        (match config.verify_mode with
        | Verify.Edge_approximation -> "edge"
        | Verify.Path_exact -> "path")
      ~max_iterations:config.max_iterations
  | None -> ());
  let snapshot_slice ~iter ps =
    match ledger with
    | None -> ()
    | Some l ->
      Ledger.slice l ~iter
        (List.map
           (fun e ->
             let li = Session.linst s e.Prune.idx in
             {
               Ledger.s_idx = e.Prune.idx;
               s_sid = li.Ledger.sid;
               s_line = li.Ledger.line;
               s_conf = e.Prune.confidence;
               s_dist = e.Prune.distance;
             })
           (Prune.entries ps))
  in
  (* The scorer: seeded with the program's static features (so a mined
     model can select its prior bucket), then fed every verdict a batch
     returns.  Returned verdicts are identical whether they came from a
     live run, the store, or a resume replay, so scores — and with them
     ordering and early-exit decisions — are invariant across -j,
     warm/cold stores, and kill/resume. *)
  let rank =
    Option.map
      (fun rc ->
        let preds = ref 0 in
        Ast.iter_program
          (fun st -> if Ast.is_predicate st then incr preds)
          s.Session.prog;
        Rank.create ~stmts:(Ast.stmt_count s.Session.prog) ~predicates:!preds
          rc)
      config.ranking
  in
  let verify_batch pairs =
    let rs = Verify.verify_batch ~mode:config.verify_mode ?pool s pairs in
    (match rank with
    | None -> ()
    | Some r ->
      List.iter2
        (fun (p, _) (v : Verdict.result) ->
          let sid = (Trace.get trace p).Trace.sid in
          let verdict =
            match v.Verdict.verdict with
            | Verdict.Strong_id -> `Strong_id
            | Verdict.Id -> `Id
            | Verdict.Not_id -> `Not_id
          in
          Rank.observe r ~sid ~verdict)
        pairs rs;
      (* the ledger-tuned guard knobs ride the same evidence loop: the
         failure journal is merged in submission order (and restored
         from checkpoints on resume), so the derived tunings are as
         deterministic as the scores *)
      Guard.auto_tune s.Session.guard);
    rs
  in
  (* Make the journal durable at iteration boundaries: everything up to
     and including the last snapshot survives a kill (the journal is
     flushed per event; [sync] adds the fsync).  No-op without an
     attached journal. *)
  let durable () = match ledger with Some l -> Ledger.sync l | None -> () in
  (* (switched predicate, target, value_affected): all edges extend the
     dependence graph; only value-affecting ones may pin predicates
     during confidence propagation (see Verify). *)
  let implicit = ref [] in
  let extra idx =
    List.filter_map
      (fun (p, t, _) -> if t = idx then Some p else None)
      !implicit
  in
  let pinning_edges () =
    List.filter_map
      (fun (p, t, affected) -> if affected then Some (p, t) else None)
      !implicit
  in
  let all_edges () = List.map (fun (p, t, _) -> (p, t)) !implicit in
  let benign = ref [] in
  let user_prunings = ref 0 in
  let expanded = Hashtbl.create 16 in
  (* instances already used for expansion *)
  let criterion = s.Session.wrong_output in
  let slice () = Slice.compute ~extra trace ~criteria:[ criterion ] in
  let conf () =
    Confidence.compute s.Session.info s.Session.profile trace
      ~correct:s.Session.correct_outputs ~benign:!benign
      ~implicit:(pinning_edges ())
  in
  let pruned () =
    Prune.compute ~extra trace ~slice:(slice ()) ~conf:(conf ()) ~criterion
  in
  (* Interactive pruning: present ranked instances; the oracle marks
     benign state; stop when everything presented is corrupted.  One
     confidence recomputation per sweep (each mark still counts as one
     user interaction, as in Table 3). *)
  let rec prune_interactively ~iter ps =
    let benign_entries =
      List.filter (fun e -> Oracle.benign oracle e.Prune.idx) (Prune.entries ps)
    in
    match benign_entries with
    | [] -> ps
    | marked ->
      user_prunings := !user_prunings + List.length marked;
      let idxs = List.map (fun e -> e.Prune.idx) marked in
      (match ledger with
      | Some l -> Ledger.prune l ~iter ~marked:idxs
      | None -> ());
      benign := idxs @ !benign;
      prune_interactively ~iter (pruned ())
  in
  let root_reached ps =
    List.exists (fun sid -> Prune.mem_sid trace ps sid) root_sids
  in
  (* One expansion attempt: select use [u], verify its potential
     dependences (one batch), add the verified (strong) implicit edges —
     strong edges override plain ones (Algorithm 2 lines 10-11).
     Returns whether any edge was added. *)
  let edges_added = ref 0 in
  let iterations = ref 0 in
  let expand u =
    Hashtbl.replace expanded u ();
    (* PD(u), minus anything already explicitly reaching u (Definition 2
       requires no explicit dependence path) *)
    let u_slice = Slice.compute ~extra trace ~criteria:[ u ] in
    let pd =
      Relevant.pd s.Session.rel u
      |> List.filter (fun p -> not (Slice.mem u_slice p))
      |> dedup_by_sid ~per_sid:config.max_instances_per_pred trace
    in
    (match ledger with
    | Some l ->
      (* this expansion belongs to the iteration being built, one past
         the completed count *)
      Ledger.expand l ~iter:(!iterations + 1) ~u:(Session.linst s u)
        ~candidates:pd
    | None -> ());
    (* Evidence-driven ordering: candidates verify in descending score
       order (ties keep the static order), and a predicate's surplus
       instances are cut once its posterior yield has sunk below the
       early-exit threshold.  Both the order and every cut are recorded
       as a Rank event so [explain] can narrate them. *)
    let pd =
      match rank with
      | None -> pd
      | Some r ->
        let decisions =
          Rank.plan r
            (List.map (fun p -> (p, (Trace.get trace p).Trace.sid)) pd)
        in
        (match (ledger, decisions) with
        | Some l, _ :: _ ->
          Ledger.rank l ~iter:(!iterations + 1) ~u:(Session.linst s u)
            ~prior:(Rank.prior r)
            ~decisions:
              (List.map
                 (fun d ->
                   {
                     Ledger.rd_idx = d.Rank.d_idx;
                     rd_sid = d.Rank.d_sid;
                     rd_score = d.Rank.d_score;
                     rd_kept = d.Rank.d_kept;
                   })
                 decisions)
        | _ -> ());
        List.filter_map
          (fun d -> if d.Rank.d_kept then Some d.Rank.d_idx else None)
          decisions
    in
    let verdicts =
      List.combine pd (verify_batch (List.map (fun p -> (p, u)) pd))
    in
    let strong =
      List.filter
        (fun (_, r) -> r.Verdict.verdict = Verdict.Strong_id)
        verdicts
    in
    let weak =
      List.filter (fun (_, r) -> r.Verdict.verdict = Verdict.Id) verdicts
    in
    let wanted = if strong <> [] then Verdict.Strong_id else Verdict.Id in
    let chosen = if strong <> [] then strong else weak in
    let strength = if strong <> [] then "strong" else "weak" in
    let record_edge ~p ~t ~value_affected ~related =
      match ledger with
      | Some l ->
        Ledger.edge l ~p:(Session.linst s p) ~u:(Session.linst s t) ~strength
          ~value_affected ~related
      | None -> ()
    in
    List.iter
      (fun (p, (r : Verdict.result)) ->
        implicit := (p, u, r.Verdict.value_affected) :: !implicit;
        record_edge ~p ~t:u ~value_affected:r.Verdict.value_affected
          ~related:false;
        incr edges_added;
        (* Verify the other uses potentially depending on p, enabling
           more pruning (Figure 5): targets come from both the failure's
           and the correct outputs' slices — the latter are the ones
           whose high confidence can sanitize p.  Target selection
           (slices, PD membership, the bound) happens before the batch
           and depends only on edges added so far, so batching the
           verifications is exactly the sequential loop. *)
        let correct_slice =
          Slice.compute ~extra trace ~criteria:s.Session.correct_outputs
        in
        let targets =
          Slice.Iset.union
            (Slice.members (slice ()))
            (Slice.members correct_slice)
          |> Slice.Iset.elements
          |> List.filter (fun t -> t <> u && t > p)
        in
        let related = ref 0 in
        let selected = ref [] in
        List.iter
          (fun t ->
            if !related < config.max_related_targets then begin
              let pd_t = Relevant.pd s.Session.rel t in
              if List.mem p pd_t then begin
                incr related;
                selected := t :: !selected
              end
            end)
          targets;
        let ts = List.rev !selected in
        let rts = verify_batch (List.map (fun t -> (p, t)) ts) in
        List.iter2
          (fun t (rt : Verdict.result) ->
            if rt.Verdict.verdict = wanted then begin
              implicit := (p, t, rt.Verdict.value_affected) :: !implicit;
              record_edge ~p ~t ~value_affected:rt.Verdict.value_affected
                ~related:true;
              incr edges_added
            end)
          ts rts)
      chosen;
    chosen <> []
  in
  let ds = slice () in
  let ps = ref (prune_interactively ~iter:0 (pruned ())) in
  let initial_prunings = !user_prunings in
  let ps0 = Prune.as_slice trace !ps in
  snapshot_slice ~iter:0 !ps;
  durable ();
  let found = ref (root_reached !ps) in
  let exhausted = ref false in
  let degraded = ref None in
  (* Individual verifications are already contained by {!Guard}; this
     outer net catches anything the expansion/pruning machinery itself
     throws, so [locate] degrades instead of raising: the report then
     describes the search up to the failure point. *)
  (try
     while
       (not !found) && (not !exhausted) && !iterations < config.max_iterations
     do
       Obs.with_span obs ~cat:"demand"
         ~args:[ ("n", string_of_int !iterations) ]
         "demand.iteration"
       @@ fun () ->
       (* Walk the ranked unexpanded uses until one expansion verifies
          something; a full sweep with no new edges ends the search. *)
       let candidates =
         List.filter
           (fun e -> not (Hashtbl.mem expanded e.Prune.idx))
           (Prune.entries !ps)
       in
       let progress = List.exists (fun e -> expand e.Prune.idx) candidates in
       if progress then begin
         incr iterations;
         ps := prune_interactively ~iter:!iterations (pruned ());
         snapshot_slice ~iter:!iterations !ps;
         durable ();
         found := root_reached !ps
       end
       else exhausted := true
     done
   with exn -> degraded := Some (Printexc.to_string exn));
  (* Journal writes or syncs that failed were absorbed by the ledger
     (never silently): surface them here so the Final event and the
     report both say DEGRADED — the answer may be right, but its
     crash-replay provenance is incomplete. *)
  (match ledger with
  | Some l when !degraded = None && Ledger.io_failures l > 0 ->
    degraded :=
      Some
        (Printf.sprintf "io: %d journal write/sync failure(s)"
           (Ledger.io_failures l))
  | _ -> ());
  let ips = Prune.as_slice trace !ps in
  let os_chain =
    Slice.shortest_chain ~extra trace ~criterion ~from_sids:root_sids
  in
  (* Sync the session-cumulative guard and search counters into the
     metrics registry.  [sync] sets the counter to the current total (it
     adds the delta against whatever a previous locate on this session
     already recorded), so the tree is correct even across repeated
     calls. *)
  let sync name v =
    Obs.add obs name (v - Exom_obs.Metrics.counter_value (Obs.metrics obs) name)
  in
  let g = Guard.stats s.Session.guard in
  sync "guard.completed" g.Guard.completed;
  sync "guard.aborted" g.Guard.aborted;
  sync "guard.retried" g.Guard.retried;
  sync "guard.deadline_expired" g.Guard.deadline_expired;
  sync "guard.breaker_trips" g.Guard.breaker_trips;
  sync "guard.breaker_skips" g.Guard.breaker_skips;
  sync "guard.captured" g.Guard.captured;
  (* only when non-zero: a clean run's registry must stay byte-identical
     to the pre-Vfs baseline *)
  (match ledger with
  | Some l when Ledger.io_failures l > 0 ->
    sync "ledger.io_failures" (Ledger.io_failures l)
  | _ -> ());
  sync "demand.iterations" !iterations;
  sync "demand.expanded_edges" !edges_added;
  sync "demand.user_prunings" !user_prunings;
  sync "demand.benign" (List.length !benign);
  (match ledger with
  | Some l ->
    Ledger.final l ~found:!found ~iterations:!iterations ~edges:!edges_added
      ~user_prunings:initial_prunings ~total_prunings:!user_prunings
      ~verifications:(Session.verifications s)
      ~queries:(Session.verify_queries s) ~os_chain ~degraded:!degraded
  | None -> ());
  durable ();
  {
    found = !found;
    user_prunings = initial_prunings;
    total_prunings = !user_prunings;
    verifications = Session.verifications s;
    verify_queries = Session.verify_queries s;
    iterations = !iterations;
    expanded_edges = !edges_added;
    implicit_edges = all_edges ();
    benign = !benign;
    ips;
    ds;
    ps0;
    os_chain;
    verif_seconds = Session.verif_seconds s;
    robustness = Guard.snapshot (Guard.stats s.Session.guard);
    store = Store.snapshot (Session.store_stats s);
    failures = Guard.failures s.Session.guard;
    degraded = !degraded;
  }
