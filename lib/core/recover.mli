(** Salvage of a killed localization run.

    A journaled run ({!Exom_ledger.Ledger.attach_journal}) leaves a
    JSONL file whose last line may be torn.  This module turns it into
    a {e replay plan}: the closed verification batches (each terminated
    by its Checkpoint event) become {!Session.replay_group}s that a
    resumed {!Demand.locate} consumes positionally instead of
    re-executing, while everything the coordinator can recompute —
    slicing, pruning, expansion — runs again deterministically.  The
    resumed run therefore produces a byte-identical ledger and report,
    at any job count, having paid only for the work the killed run
    never finished. *)

type plan = {
  groups : Session.replay_group list;
      (** complete batches, oldest first *)
  session_ev : Exom_ledger.Ledger.event option;
      (** the journal's Session event, for {!matches_session} *)
  salvaged_events : int;  (** events the tolerant reader accepted *)
  replayed_batches : int;
  replayed_verifications : int;
      (** unique verifications inside complete batches *)
  dropped_events : int;
      (** trailing events of the batch in flight at the kill; the
          resumed run re-verifies these live *)
  iterations : int;  (** slice snapshots salvaged (incl. iteration 0) *)
  truncated : bool;  (** the journal's last line was torn and dropped *)
  prior_resumes : int;  (** resume markers already present *)
  complete : bool;
      (** a Final event is present — the run finished; a resume replays
          it entirely from the journal, dispatching zero re-executions *)
}

(** Build a plan from a tolerant read ({!Exom_ledger.Ledger.recovery}). *)
val plan_of_recovery : Exom_ledger.Ledger.recovery -> plan

(** [plan_of_file path] = tolerant read + {!plan_of_recovery}.  [Error]
    only for unreadable files or corruption before the last line. *)
val plan_of_file : string -> (plan, string) result

(** Does the journal's Session event agree with this session's failing
    run (wrong-output instance, correct-output count, budget, trace
    length)?  A plan that doesn't match must not be primed — the
    journal belongs to a different program, input or configuration. *)
val matches_session : plan -> Session.t -> bool

(** Arm the session's replay cursor with the plan's groups.  Call
    before {!Demand.locate}. *)
val prime : Session.t -> plan -> unit

(** Human-readable salvage summary (the [exom recover] output body). *)
val describe : plan -> string
