(** A debugging session: one failing traced run plus everything the
    demand-driven algorithm needs around it (static info, value profile,
    region tree, potential-dependence machinery, output classification,
    verification bookkeeping for Tables 3-4). *)

type t = {
  prog : Exom_lang.Ast.program;
  info : Exom_cfg.Proginfo.t;
  input : int list;
  run : Exom_interp.Interp.run;
  trace : Exom_interp.Trace.t;
  region : Exom_align.Region.t;
  profile : Exom_interp.Profile.t;
  rel : Exom_ddg.Relevant.t;
  correct_outputs : int list;  (** Ov *)
  wrong_output : int;  (** o×, or the crash point for crash failures *)
  vexp : Exom_interp.Value.t option;
      (** expected value at o×; [None] for crash failures (no strong
          verification possible) *)
  budget : int;
  guard : Guard.t;
      (** the session's resilience state: retry/deadline policy, circuit
          breakers, robustness accounting, failure journal *)
  chaos : Exom_interp.Chaos.t option;
      (** fault injection applied to switched re-executions only; the
          failing run under diagnosis is never subjected to chaos *)
  mutable verifications : int;
  mutable verif_seconds : float;
  verdict_cache : (int * int, Verdict.result) Hashtbl.t;
}

(** Raised when the run's outputs don't disagree with the expected
    stream at any comparable position. *)
exception No_failure

(** Split an output stream against the expected values: longest matching
    prefix (Ov), first mismatching instance (o×), expected value
    there.  Raises {!No_failure} when the streams agree. *)
val classify_outputs :
  outputs:(int * int) list ->
  expected:int list ->
  int list * int * Exom_interp.Value.t

(** [create ~prog ~input ~expected ~profile_inputs ()] executes the
    failing run and prepares the session.  [expected] is the correct
    output stream (from the spec or a corrected version);
    [profile_inputs] drive the value-profile collection runs.  [policy]
    configures the resilience layer ({!Guard.default_policy} when
    omitted); [chaos] injects faults into switched re-executions. *)
val create :
  ?budget:int ->
  ?policy:Guard.policy ->
  ?chaos:Exom_interp.Chaos.t ->
  prog:Exom_lang.Ast.program ->
  input:int list ->
  expected:int list ->
  profile_inputs:int list list ->
  unit ->
  t
