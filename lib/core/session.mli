(** A debugging session: one failing traced run plus everything the
    demand-driven algorithm needs around it (static info, value profile,
    region tree, potential-dependence machinery, output classification,
    verification bookkeeping for Tables 3-4).

    The session itself is a read-only view once created: verification
    accounting lives in the session's {!Exom_obs.Obs.t} metrics registry
    merged by the scheduler on the coordinator, and cached verdicts live
    in a {!Exom_sched.Store.t}, so worker domains can share the session
    freely while only the coordinator mutates the registry and store. *)

(** One recorded verification batch, consumed positionally by a resumed
    run: {!Verify.verify_batch} matches the next group against its live
    pairs; on a match the recorded ledger events are re-emitted
    verbatim, the verdicts are returned (and seeded into the store
    without touching its counters), and the trailing checkpoint
    restores the guard, store and run-count state.  Any mismatch drops
    the remaining cursor and verification continues live — a diverged
    journal degrades to a cold start, never to a wrong answer. *)
type replay_group = {
  rg_pairs : (int * int) list;
      (** unique (p, u) pairs in first-occurrence order — the spine the
          live batch must reproduce for the group to be consumed *)
  rg_queries : int;  (** total (pre-dedup) query count of the batch *)
  rg_verdicts : ((int * int) * (Verdict.result * string)) list;
      (** per unique pair: decoded result plus evidence source (a
          ["dead"] source is not seeded into the store, mirroring the
          live never-persist rule for died tasks) *)
  rg_events : Exom_ledger.Ledger.event list;
      (** the batch's Verify/Batch/Checkpoint events, verbatim *)
  rg_total_runs : int;
      (** cumulative verify.run count recorded after the batch *)
  rg_checkpoint : Exom_ledger.Ledger.checkpoint option;
}

type t = {
  prog : Exom_lang.Ast.program;
  info : Exom_cfg.Proginfo.t;
  input : int list;
  run : Exom_interp.Interp.run;
  trace : Exom_interp.Trace.t;
  region : Exom_align.Region.t;
  profile : Exom_interp.Profile.t;
  rel : Exom_ddg.Relevant.t;
  correct_outputs : int list;  (** Ov *)
  wrong_output : int;  (** o×, or the crash point for crash failures *)
  vexp : Exom_interp.Value.t option;
      (** expected value at o×; [None] for crash failures (no strong
          verification possible) *)
  budget : int;
  guard : Guard.t;
      (** the session's resilience state: retry/deadline policy, circuit
          breakers, robustness accounting, failure journal *)
  chaos : Exom_interp.Chaos.t option;
      (** fault injection applied to switched re-executions only; the
          failing run under diagnosis is never subjected to chaos *)
  obs : Exom_obs.Obs.t;
      (** observability context: merged verification metrics (successor
          of the old tally) plus optional span recording;
          coordinator-only *)
  store : Exom_sched.Store.t;
      (** verdict cache (in-memory, optionally persistent);
          coordinator-only *)
  ledger : Exom_ledger.Ledger.t option;
      (** provenance record of the localization; appended to only on the
          coordinator in program order (same lane discipline as spans),
          so its contents are identical at every [-j] *)
  key_prefix : string;
      (** content hash of everything a verdict depends on besides
          (mode, p, u) — program, input, expected stream, budget,
          chaos — prepended to every store key *)
  mutable replay : replay_group list;
      (** pending recorded batches (oldest first) a resumed run consumes
          instead of re-executing; [[]] for a fresh run or once
          exhausted — primed by {!Recover.prime} *)
}

(** Raised when the run's outputs don't disagree with the expected
    stream at any comparable position. *)
exception No_failure

(** Split an output stream against the expected values: longest matching
    prefix (Ov), first mismatching instance (o×), expected value
    there.  Raises {!No_failure} when the streams agree. *)
val classify_outputs :
  outputs:(int * int) list ->
  expected:int list ->
  int list * int * Exom_interp.Value.t

(** [create ~prog ~input ~expected ~profile_inputs ()] executes the
    failing run and prepares the session.  [expected] is the correct
    output stream (from the spec or a corrected version);
    [profile_inputs] drive the value-profile collection runs.  [policy]
    configures the resilience layer ({!Guard.default_policy} when
    omitted); [chaos] injects faults into switched re-executions.
    [store] supplies a verdict cache to reuse across sessions (e.g. a
    persistent one); a fresh memory-only store is created when
    omitted.  [obs] supplies the observability context (enable span
    recording by passing [Exom_obs.Obs.create ~trace:true ()]); a
    metrics-only context is created when omitted.  [ledger] enables
    provenance recording: the session appends its own record on
    creation, and Demand/Verify append the search and evidence events. *)
val create :
  ?obs:Exom_obs.Obs.t ->
  ?budget:int ->
  ?policy:Guard.policy ->
  ?chaos:Exom_interp.Chaos.t ->
  ?store:Exom_sched.Store.t ->
  ?ledger:Exom_ledger.Ledger.t ->
  prog:Exom_lang.Ast.program ->
  input:int list ->
  expected:int list ->
  profile_inputs:int list list ->
  unit ->
  t

(** The ledger reference ({!Exom_ledger.Ledger.inst}) for a trace
    instance: sid, source line and occurrence resolved. *)
val linst : t -> int -> Exom_ledger.Ledger.inst

(** {2 Accounting views} *)

(** Re-executions actually performed (= [Guard] completed + aborted). *)
val verifications : t -> int

(** Wall-clock seconds spent inside re-executions. *)
val verif_seconds : t -> float

(** Verdicts asked for, including cache hits (≥ {!verifications}). *)
val verify_queries : t -> int

(** Live counters of the session's verdict store. *)
val store_stats : t -> Exom_sched.Store.stats

(** The session's content identity: the store key prefix (a hex digest
    of program, input, expected stream, budget and chaos).  Two
    sessions share a fingerprint exactly when their cached verdicts are
    interchangeable, so it also identifies a localization {e request} —
    the serve daemon names request journals after it and uses it to
    deduplicate repeated requests. *)
val fingerprint : t -> string
