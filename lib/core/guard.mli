(** The resilience layer around switched re-executions.

    The paper's verifier treats every aborted switched run as a terminal
    verdict and lets any unexpected exception kill the whole session.
    This module centralizes the counter-measures:

    - {b adaptive budget escalation}: a [Budget_exhausted] run is
      retried with a grown step budget (see {!Exom_util.Backoff}) before
      the abort is accepted — a tight timer must not masquerade as "the
      switch hangs the program";
    - {b per-verification deadline}: escalation stops once the wall
      clock spent on one verification exceeds the configured deadline;
    - {b circuit breaker}: after [breaker_threshold] {e consecutive}
      aborted switched runs of one static predicate in a session, that
      predicate is no longer re-verified — its verifications are skipped
      outright (ruled NOT_ID) instead of burning budget on a predicate
      whose switches never complete;
    - {b containment}: exceptions escaping the interpreter (e.g.
      injected by {!Exom_interp.Chaos}) are captured and converted into
      failures, never propagated.

    Every skipped, aborted, retried, or captured verification is
    accounted for in {!stats} and logged in the failure journal, so a
    degraded localization is distinguishable from a clean one. *)

(** Why one verification produced no (or only a degraded) verdict. *)
type verify_failure =
  | Run_crashed of string  (** final attempt crashed in the interpreter *)
  | Run_budget_exhausted  (** still out of budget after every escalation *)
  | Deadline_expired of float
      (** escalation abandoned after this many seconds *)
  | Breaker_open of int  (** skipped: the breaker for this sid is open *)
  | Captured of string  (** unexpected exception, converted not raised *)
  | Worker_quarantined of int
      (** the verification killed this many consecutive worker domains
          and was isolated by the scheduler's supervisor *)

val failure_to_string : verify_failure -> string

(** A compact injective codec for ledger checkpoints;
    [failure_of_code (failure_code f) = Some f]. *)
val failure_code : verify_failure -> string

val failure_of_code : string -> verify_failure option

type policy = {
  backoff : Exom_util.Backoff.t;  (** budget escalation ladder *)
  deadline : float option;
      (** wall-clock seconds one verification may spend before
          escalation is abandoned; [None] = unlimited *)
  breaker_threshold : int;
      (** consecutive aborts of one static predicate that open its
          breaker; [max_int] disables the breaker *)
}

(** {!Exom_util.Backoff.default}, no deadline, breaker at 8. *)
val default_policy : policy

(** A policy with no retries, no deadline and no breaker — the
    pre-resilience behaviour, useful for differential tests. *)
val strict_policy : policy

(** Mutable per-session accounting.  Invariant maintained by
    {!execute}: [completed + aborted] equals the number of re-executions
    actually performed (= [Session.verifications]); [breaker_skips]
    perform no re-execution and are counted separately. *)
type stats = {
  mutable completed : int;  (** re-executions that ran to termination *)
  mutable aborted : int;  (** re-executions that crashed / ran out *)
  mutable retried : int;  (** escalation re-attempts (subset of runs) *)
  mutable deadline_expired : int;  (** verifications cut by the deadline *)
  mutable breaker_trips : int;  (** breakers that opened *)
  mutable breaker_skips : int;  (** verifications skipped while open *)
  mutable captured : int;  (** exceptions contained (runs or analysis) *)
  mutable quarantined : int;
      (** verifications isolated after killing workers; their dead
          attempts appear in no other counter (the dying shard's books
          are discarded wholesale, identically at every job count) *)
}

(** An independent copy (reports snapshot it; the live record keeps
    counting). *)
val snapshot : stats -> stats

type t

(** A worker-local accounting view for the parallel scheduler: stats
    and journal entries accumulate privately per pool task while the
    circuit-breaker table stays shared on the guard (the batch planner
    serializes all runs of one sid into one task, so breaker records
    are never mutated concurrently).  Shards are merged back with
    {!absorb} in submission order, which keeps the session's journal —
    and therefore reports — identical regardless of the job count. *)
type shard

val new_shard : unit -> shard
val shard_stats : shard -> stats

(** [absorb t shard] folds a worker's stats and journal into the
    guard's merged accounting.  Call in submission order. *)
val absorb : t -> shard -> unit

(** Materialize breaker records for [sids] before dispatching a batch,
    so worker domains only mutate their own sid's record and never the
    table structure. *)
val prepare : t -> sids:int list -> unit

val create : ?policy:policy -> unit -> t
val policy : t -> policy
val stats : t -> stats

(** The failure journal, oldest first: (static predicate sid, failure). *)
val failures : t -> (int * verify_failure) list

(** Is the circuit breaker for [sid] open? *)
val breaker_open : t -> sid:int -> bool

(** {2 Ledger-tuned knobs}

    The policy's breaker threshold and escalation ladder are static
    session-wide defaults; [auto_tune] replaces them per predicate with
    values derived from the failure journal.  Only failure kinds that
    are deterministic in (program, input, budget, chaos) feed the rule
    — [Run_crashed], [Run_budget_exhausted], [Captured] — never
    wall-clock-dependent ones, so the derived table is identical at any
    [-j] and across kill/resume (the journal is checkpoint-restored and
    the table is recomputed from it).  Called by [Demand] between
    batches when evidence-driven ranking is enabled. *)

(** A per-sid override: breaker threshold and escalation retries. *)
type tuning = { tn_breaker_threshold : int; tn_max_retries : int }

(** Recompute every override from the current failure journal: a sid
    with ≥ 2 deterministic failures gets threshold 2 and a
    single-attempt ladder.  Coordinator-only, between batches. *)
val auto_tune : t -> unit

(** The override in effect for [sid], if any. *)
val tuning_of : t -> sid:int -> tuning option

(** Record an unexpected exception that was contained {e outside} a
    re-execution (e.g. during alignment of a corrupted trace). *)
val note_captured : t -> sid:int -> msg:string -> unit

(** Like {!note_captured}, into a worker shard. *)
val note_captured_in : shard -> sid:int -> msg:string -> unit

(** Record (on the coordinator, at merge time) that a verification was
    quarantined by the scheduler after killing [kills] workers: bumps
    [quarantined] and journals {!Worker_quarantined}. *)
val note_quarantined : t -> sid:int -> kills:int -> unit

(** {2 Crash-safe resume support}

    The guard's whole mutable state — merged stats, failure journal,
    circuit breakers — is exported into ledger checkpoints and restored
    verbatim when a run resumes, so a resumed session continues exactly
    where the journaled one stopped. *)

type breaker_state = { bk_sid : int; bk_consecutive : int; bk_opened : bool }

(** Every materialized breaker, sorted by sid (deterministic). *)
val breaker_states : t -> breaker_state list

(** Overwrite the guard's merged stats, journal ([failures], oldest
    first) and breaker table. *)
val restore :
  t ->
  stats:stats ->
  failures:(int * verify_failure) list ->
  breakers:breaker_state list ->
  unit

(** The outcome of one guarded verification. *)
type outcome =
  | Completed of Exom_interp.Interp.run  (** ran to termination *)
  | Degraded of Exom_interp.Interp.run * verify_failure
      (** aborted, but the trace prefix is still usable for alignment *)
  | Skipped of verify_failure  (** no run happened / nothing usable *)

(** [execute t ~sid ~base_budget ~run] performs one verification
    end-to-end under the policy: breaker check, budget ladder, deadline,
    exception containment, stats and breaker bookkeeping.  [run] is one
    re-execution attempt at a given budget; it is called between one and
    [Backoff.attempts] times.  Fatal exceptions
    ([Exom_interp.Chaos.is_fatal]) are re-raised, not contained: they
    model worker-domain death and belong to the pool supervisor. *)
val execute :
  t ->
  sid:int ->
  base_budget:int ->
  run:(budget:int -> Exom_interp.Interp.run) ->
  outcome

(** Like {!execute}, but accounting into a worker shard.  The breaker
    table on [t] is still consulted and updated — callers must ensure
    all runs of one [sid] stay on one worker (the batch planner's
    sid-grouping guarantees this). *)
val execute_in :
  t ->
  shard ->
  sid:int ->
  base_budget:int ->
  run:(budget:int -> Exom_interp.Interp.run) ->
  outcome
