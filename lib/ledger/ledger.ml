module Json = Exom_obs.Json
module Vfs = Exom_util.Vfs

(* The provenance ledger.  Events are plain data — everything the
   narrative renderer needs (source lines, occurrence counts, verdicts,
   alignment points) is resolved at append time, so a ledger file is
   self-contained.  The serialized form is a versioned JSONL stream in
   the style of Exom_obs.Export: a self-describing header line, then
   one event object per line, discriminated by an "ev" field.

   Nothing non-deterministic may enter an event: cost is recorded as
   interpreter steps and registry run counts, never wall-clock seconds,
   which is what makes the -j1 ≡ -j4 byte-identity contract hold. *)

let schema_name = "exom.ledger"

(* v2: Checkpoint events (resumable guard/store state after every
   batch) and journal marker lines.
   v3: Rank events (evidence-driven ordering and early-exit decisions
   per expansion).  v2 files read back unchanged — they simply contain
   no rank events. *)
let schema_version = 3

(* Every version whose event vocabulary is a subset of ours reads back
   losslessly. *)
let readable_versions = [ 2; 3 ]

type inst = { idx : int; sid : int; line : int; occ : int }

type run_info = { outcome : string; steps : int; switch_fired : bool }

type align_info = {
  counterpart : int option;
  ox_counterpart : int option;
  ox_restored : bool;
  rerouted : bool;
}

type verify_ev = {
  vp : inst;
  vu : inst;
  verdict : string;
  value_affected : bool;
  source : string;
  run : run_info option;
  align : align_info option;
  failure : string option;
}

type slice_entry = {
  s_idx : int;
  s_sid : int;
  s_line : int;
  s_conf : float;
  s_dist : int;
}

(* The resumable state written after every batch: cumulative guard
   counters, the full failure journal (sid, failure code), every
   materialized circuit breaker, cumulative store counters.  All of it
   is deterministic (merged in submission order upstream), so
   checkpoints don't break the -j byte-identity contract; cumulative
   rather than delta form means the *last* replayed checkpoint alone
   restores a resumed session. *)
type guard_counts = {
  g_completed : int;
  g_aborted : int;
  g_retried : int;
  g_deadline_expired : int;
  g_breaker_trips : int;
  g_breaker_skips : int;
  g_captured : int;
  g_quarantined : int;
}

type breaker_info = { b_sid : int; b_consecutive : int; b_opened : bool }

type store_counts = {
  st_hits : int;
  st_disk_hits : int;
  st_misses : int;
  st_evictions : int;
  st_corrupted : int;
  st_writes : int;
}

type checkpoint = {
  ck_guard : guard_counts;
  ck_failures : (int * string) list;  (* (sid, Guard failure code) *)
  ck_breakers : breaker_info list;  (* sorted by sid *)
  ck_store : store_counts;
}

(* One ranked candidate of an expansion: where the scorer put it and
   whether the early-exit policy kept it for verification.  Scores are
   rounded to 4 decimals upstream ({!Exom_rank}), so recording them
   does not import float-printing instability. *)
type rank_decision = {
  rd_idx : int;
  rd_sid : int;
  rd_score : float;
  rd_kept : bool;
}

type event =
  | Session of {
      wrong : inst;
      vexp : string option;
      correct_outputs : int;
      budget : int;
      trace_len : int;
    }
  | Locate of { root_sids : int list; mode : string; max_iterations : int }
  | Slice of {
      iter : int;
      entries : slice_entry list;
      added : int list;
      removed : int list;
    }
  | Prune of { iter : int; marked : int list }
  | Expand of { iter : int; u : inst; candidates : int list }
  | Rank of { iter : int; u : inst; prior : float; decisions : rank_decision list }
  | Verify of verify_ev
  | Edge of {
      ep : inst;
      eu : inst;
      strength : string;
      value_affected : bool;
      related : bool;
    }
  | Batch of {
      queries : int;
      unique : int;
      cache_hits : int;
      runs : int;
      total_runs : int;
    }
  | Checkpoint of checkpoint
  | Final of {
      found : bool;
      iterations : int;
      edges : int;
      user_prunings : int;
      total_prunings : int;
      verifications : int;
      queries : int;
      os_chain : int list option;
      degraded : string option;
    }

(* The journal sink: when attached, every appended event is also
   written through an out_channel (one JSONL line, flushed per event so
   a kill loses at most the unflushed tail of one line), and {!sync}
   fsyncs at iteration boundaries.  [on_push] is wired by
   {!attach_journal} (the encoder lives further down this file). *)
type sink = { s_oc : out_channel; s_fd : Unix.file_descr; s_path : string }

type t = {
  mutable rev_events : event list;
  mutable prev_slice : int list;  (* instance ids of the last snapshot *)
  mutable sink : sink option;
  mutable on_push : event -> unit;
  mutable io_failures : int;
      (* journal writes/syncs that failed and were absorbed: the run
         must be marked DEGRADED by the caller, never silently lose
         provenance *)
}

let create () =
  { rev_events = []; prev_slice = []; sink = None; on_push = ignore;
    io_failures = 0 }

let io_failures t = t.io_failures

let events t = List.rev t.rev_events

let push t e =
  t.rev_events <- e :: t.rev_events;
  t.on_push e

(* {2 Appending} *)

let session t ~wrong ~vexp ~correct_outputs ~budget ~trace_len =
  push t (Session { wrong; vexp; correct_outputs; budget; trace_len })

let locate t ~root_sids ~mode ~max_iterations =
  push t (Locate { root_sids; mode; max_iterations })

let slice t ~iter entries =
  let ids = List.map (fun e -> e.s_idx) entries in
  let module S = Set.Make (Int) in
  let now = S.of_list ids and before = S.of_list t.prev_slice in
  let added = S.elements (S.diff now before) in
  let removed = S.elements (S.diff before now) in
  t.prev_slice <- ids;
  push t (Slice { iter; entries; added; removed })

let prune t ~iter ~marked = push t (Prune { iter; marked })
let expand t ~iter ~u ~candidates = push t (Expand { iter; u; candidates })

let rank t ~iter ~u ~prior ~decisions =
  push t (Rank { iter; u; prior; decisions })

let verify t ~p ~u ~verdict ~value_affected ~source ?run ?align ?failure () =
  push t
    (Verify
       { vp = p; vu = u; verdict; value_affected; source; run; align; failure })

let edge t ~p ~u ~strength ~value_affected ~related =
  push t (Edge { ep = p; eu = u; strength; value_affected; related })

let batch t ~queries ~unique ~cache_hits ~runs ~total_runs =
  push t (Batch { queries; unique; cache_hits; runs; total_runs })

let checkpoint t ck = push t (Checkpoint ck)

(* Verbatim re-emission of a recovered event (resume replay): same path
   as the typed appenders, so an attached journal records it too.  Note
   it bypasses the slice-delta state on purpose — replayed batches only
   carry Verify/Batch/Checkpoint events; Slice events are re-emitted
   live by the resumed demand loop through [slice]. *)
let append t e = push t e

let final t ~found ~iterations ~edges ~user_prunings ~total_prunings
    ~verifications ~queries ~os_chain ~degraded =
  push t
    (Final
       {
         found;
         iterations;
         edges;
         user_prunings;
         total_prunings;
         verifications;
         queries;
         os_chain;
         degraded;
       })

(* {2 Encoding} *)

let num n = Json.Num (float_of_int n)
let ints l = Json.Arr (List.map num l)
let opt_str = function None -> Json.Null | Some s -> Json.Str s
let opt_num = function None -> Json.Null | Some n -> num n

let inst_json i =
  Json.Obj
    [ ("idx", num i.idx); ("sid", num i.sid); ("line", num i.line);
      ("occ", num i.occ) ]

let run_json r =
  Json.Obj
    [
      ("outcome", Json.Str r.outcome);
      ("steps", num r.steps);
      ("switch_fired", Json.Bool r.switch_fired);
    ]

let align_json a =
  Json.Obj
    [
      ("counterpart", opt_num a.counterpart);
      ("ox_counterpart", opt_num a.ox_counterpart);
      ("ox_restored", Json.Bool a.ox_restored);
      ("rerouted", Json.Bool a.rerouted);
    ]

let entry_json e =
  Json.Obj
    [
      ("idx", num e.s_idx); ("sid", num e.s_sid); ("line", num e.s_line);
      ("conf", Json.Num e.s_conf); ("dist", num e.s_dist);
    ]

let event_json = function
  | Session { wrong; vexp; correct_outputs; budget; trace_len } ->
    Json.Obj
      [
        ("ev", Json.Str "session");
        ("wrong", inst_json wrong);
        ("vexp", opt_str vexp);
        ("correct_outputs", num correct_outputs);
        ("budget", num budget);
        ("trace_len", num trace_len);
      ]
  | Locate { root_sids; mode; max_iterations } ->
    Json.Obj
      [
        ("ev", Json.Str "locate");
        ("root_sids", ints root_sids);
        ("mode", Json.Str mode);
        ("max_iterations", num max_iterations);
      ]
  | Slice { iter; entries; added; removed } ->
    Json.Obj
      [
        ("ev", Json.Str "slice");
        ("iter", num iter);
        ("entries", Json.Arr (List.map entry_json entries));
        ("added", ints added);
        ("removed", ints removed);
      ]
  | Prune { iter; marked } ->
    Json.Obj
      [ ("ev", Json.Str "prune"); ("iter", num iter); ("marked", ints marked) ]
  | Expand { iter; u; candidates } ->
    Json.Obj
      [
        ("ev", Json.Str "expand");
        ("iter", num iter);
        ("u", inst_json u);
        ("candidates", ints candidates);
      ]
  | Rank { iter; u; prior; decisions } ->
    Json.Obj
      [
        ("ev", Json.Str "rank");
        ("iter", num iter);
        ("u", inst_json u);
        ("prior", Json.Num prior);
        (* fixed-position arrays keep rank lines compact *)
        ( "decisions",
          Json.Arr
            (List.map
               (fun d ->
                 Json.Arr
                   [ num d.rd_idx; num d.rd_sid; Json.Num d.rd_score;
                     Json.Bool d.rd_kept ])
               decisions) );
      ]
  | Verify v ->
    Json.Obj
      [
        ("ev", Json.Str "verify");
        ("p", inst_json v.vp);
        ("u", inst_json v.vu);
        ("verdict", Json.Str v.verdict);
        ("value_affected", Json.Bool v.value_affected);
        ("source", Json.Str v.source);
        ("run", (match v.run with None -> Json.Null | Some r -> run_json r));
        ( "align",
          match v.align with None -> Json.Null | Some a -> align_json a );
        ("failure", opt_str v.failure);
      ]
  | Edge { ep; eu; strength; value_affected; related } ->
    Json.Obj
      [
        ("ev", Json.Str "edge");
        ("p", inst_json ep);
        ("u", inst_json eu);
        ("strength", Json.Str strength);
        ("value_affected", Json.Bool value_affected);
        ("related", Json.Bool related);
      ]
  | Batch { queries; unique; cache_hits; runs; total_runs } ->
    Json.Obj
      [
        ("ev", Json.Str "batch");
        ("queries", num queries);
        ("unique", num unique);
        ("cache_hits", num cache_hits);
        ("runs", num runs);
        ("total_runs", num total_runs);
      ]
  | Checkpoint ck ->
    let g = ck.ck_guard and s = ck.ck_store in
    Json.Obj
      [
        ("ev", Json.Str "checkpoint");
        (* fixed-position arrays keep checkpoint lines compact *)
        ( "guard",
          ints
            [ g.g_completed; g.g_aborted; g.g_retried; g.g_deadline_expired;
              g.g_breaker_trips; g.g_breaker_skips; g.g_captured;
              g.g_quarantined ] );
        ( "failures",
          Json.Arr
            (List.map
               (fun (sid, code) -> Json.Arr [ num sid; Json.Str code ])
               ck.ck_failures) );
        ( "breakers",
          Json.Arr
            (List.map
               (fun b ->
                 Json.Arr
                   [ num b.b_sid; num b.b_consecutive;
                     Json.Bool b.b_opened ])
               ck.ck_breakers) );
        ( "store",
          ints
            [ s.st_hits; s.st_disk_hits; s.st_misses; s.st_evictions;
              s.st_corrupted; s.st_writes ] );
      ]
  | Final f ->
    Json.Obj
      [
        ("ev", Json.Str "final");
        ("found", Json.Bool f.found);
        ("iterations", num f.iterations);
        ("edges", num f.edges);
        ("user_prunings", num f.user_prunings);
        ("total_prunings", num f.total_prunings);
        ("verifications", num f.verifications);
        ("queries", num f.queries);
        ( "os_chain",
          match f.os_chain with None -> Json.Null | Some l -> ints l );
        ("degraded", opt_str f.degraded);
      ]

let header_line =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.Str "header");
         ("schema", Json.Str schema_name);
         ("version", Json.Num (float_of_int schema_version));
       ])

let string_of_events evs =
  String.concat "\n" (header_line :: List.map (fun e -> Json.to_string (event_json e)) evs)
  ^ "\n"

let to_string t = string_of_events (events t)

(* Crash-consistent canonical write: temp file + rename, like the
   store's entry writer — a kill mid-write leaves either the old file
   or the new one, never a torn hybrid.  Checked: callers that can
   degrade use [write_result]; [write] keeps the raising contract. *)
let write_result path t =
  Vfs.write_file_atomic ~tmp:(path ^ ".tmp") path (to_string t)

let write path t =
  match write_result path t with
  | Ok () -> ()
  | Error e -> raise (Vfs.Io_error e)

(* {2 The write-ahead journal} *)

(* Journal appends are checked: a failed line (ENOSPC under a storm)
   counts in [io_failures] and is absorbed — the in-memory ledger still
   carries the event, so the canonical [write] can recover it; what is
   lost is crash-replay coverage, which the caller must surface as a
   DEGRADED run. *)
let journal_line t sink line =
  try
    output_string sink.s_oc line;
    output_char sink.s_oc '\n';
    flush sink.s_oc
  with Sys_error msg ->
    t.io_failures <- t.io_failures + 1;
    Vfs.ack
      { Vfs.ve_op = Vfs.Write; ve_path = sink.s_path; ve_fault = None;
        ve_msg = msg }
      ~by:"ledger.io_failures"

let attach_journal t path =
  (match t.sink with
  | Some _ -> invalid_arg "Ledger.attach_journal: journal already attached"
  | None -> ());
  match open_out_bin path with
  | exception Sys_error msg ->
    (* no sink: the run loses crash-replay coverage, not provenance —
       the caller surfaces the degradation *)
    t.io_failures <- t.io_failures + 1;
    Vfs.ack
      { Vfs.ve_op = Vfs.Write; ve_path = path; ve_fault = None; ve_msg = msg }
      ~by:"ledger.io_failures"
  | oc ->
    let sink =
      { s_oc = oc; s_fd = Unix.descr_of_out_channel oc; s_path = path }
    in
    t.sink <- Some sink;
    t.on_push <- (fun e -> journal_line t sink (Json.to_string (event_json e)));
    journal_line t sink header_line;
    List.iter t.on_push (events t)

let journal_path t = Option.map (fun s -> s.s_path) t.sink

(* A non-event meta line, skipped (but counted) by {!recover_string}:
   the explicit record that this journal is a resumed continuation, and
   whether the predecessor's tail was torn. *)
let resume_marker t ~replayed ~truncated =
  match t.sink with
  | None -> ()
  | Some sink ->
    journal_line t sink
      (Json.to_string
         (Json.Obj
            [
              ("type", Json.Str "resume");
              ("replayed", Json.Num (float_of_int replayed));
              ("truncated", Json.Bool truncated);
            ]))

(* Make the journal durable.  Never raises: a failed fsync — real or
   injected — counts in [io_failures] and the caller marks the run
   DEGRADED; aborting a localization over durability would lose more
   provenance than it protects. *)
let sync t =
  match t.sink with
  | None -> ()
  | Some sink -> (
    match Vfs.sync_channel sink.s_path sink.s_oc with
    | Ok () -> ()
    | Error e ->
      t.io_failures <- t.io_failures + 1;
      Vfs.ack e ~by:"ledger.io_failures")

let close_journal t =
  match t.sink with
  | None -> ()
  | Some sink ->
    (try
       flush sink.s_oc;
       close_out sink.s_oc
     with Sys_error msg ->
       t.io_failures <- t.io_failures + 1;
       Vfs.ack
         { Vfs.ve_op = Vfs.Close; ve_path = sink.s_path; ve_fault = None;
           ve_msg = msg }
         ~by:"ledger.io_failures");
    t.sink <- None;
    t.on_push <- ignore

(* {2 Decoding} *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %s" what)

let get_str j key = Option.bind (Json.member key j) Json.to_str
let get_num j key = Option.bind (Json.member key j) Json.to_float

let get_int j key = Option.map int_of_float (get_num j key)

let get_bool j key =
  match Json.member key j with Some (Json.Bool b) -> Some b | _ -> None

(* [null] and a missing field both read as [None]; the field's presence
   is enforced where it matters (required scalars go through
   [require]). *)
let get_opt_int j key =
  match Json.member key j with
  | Some (Json.Num f) -> Some (int_of_float f)
  | _ -> None

let get_opt_str j key =
  match Json.member key j with Some (Json.Str s) -> Some s | _ -> None

let get_ints j key =
  match Json.member key j with
  | Some (Json.Arr l) ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Json.Num f :: rest -> go (int_of_float f :: acc) rest
      | _ -> None
    in
    go [] l
  | _ -> None

let parse_inst j key =
  let* o = require key (Json.member key j) in
  let* idx = require (key ^ ".idx") (get_int o "idx") in
  let* sid = require (key ^ ".sid") (get_int o "sid") in
  let* line = require (key ^ ".line") (get_int o "line") in
  let* occ = require (key ^ ".occ") (get_int o "occ") in
  Ok { idx; sid; line; occ }

let parse_run j =
  match Json.member "run" j with
  | None | Some Json.Null -> Ok None
  | Some o ->
    let* outcome = require "run.outcome" (get_str o "outcome") in
    let* steps = require "run.steps" (get_int o "steps") in
    let* switch_fired = require "run.switch_fired" (get_bool o "switch_fired") in
    Ok (Some { outcome; steps; switch_fired })

let parse_align j =
  match Json.member "align" j with
  | None | Some Json.Null -> Ok None
  | Some o ->
    let* ox_restored = require "align.ox_restored" (get_bool o "ox_restored") in
    let* rerouted = require "align.rerouted" (get_bool o "rerouted") in
    Ok
      (Some
         {
           counterpart = get_opt_int o "counterpart";
           ox_counterpart = get_opt_int o "ox_counterpart";
           ox_restored;
           rerouted;
         })

let parse_entries j =
  let* arr = require "entries" (Option.bind (Json.member "entries" j) Json.to_list) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | o :: rest ->
      let* s_idx = require "entry.idx" (get_int o "idx") in
      let* s_sid = require "entry.sid" (get_int o "sid") in
      let* s_line = require "entry.line" (get_int o "line") in
      let* s_conf = require "entry.conf" (get_num o "conf") in
      let* s_dist = require "entry.dist" (get_int o "dist") in
      go ({ s_idx; s_sid; s_line; s_conf; s_dist } :: acc) rest
  in
  go [] arr

let parse_event j =
  let* ev = require "ev" (get_str j "ev") in
  match ev with
  | "session" ->
    let* wrong = parse_inst j "wrong" in
    let* correct_outputs = require "correct_outputs" (get_int j "correct_outputs") in
    let* budget = require "budget" (get_int j "budget") in
    let* trace_len = require "trace_len" (get_int j "trace_len") in
    Ok
      (Session
         { wrong; vexp = get_opt_str j "vexp"; correct_outputs; budget;
           trace_len })
  | "locate" ->
    let* root_sids = require "root_sids" (get_ints j "root_sids") in
    let* mode = require "mode" (get_str j "mode") in
    let* max_iterations = require "max_iterations" (get_int j "max_iterations") in
    Ok (Locate { root_sids; mode; max_iterations })
  | "slice" ->
    let* iter = require "iter" (get_int j "iter") in
    let* entries = parse_entries j in
    let* added = require "added" (get_ints j "added") in
    let* removed = require "removed" (get_ints j "removed") in
    Ok (Slice { iter; entries; added; removed })
  | "prune" ->
    let* iter = require "iter" (get_int j "iter") in
    let* marked = require "marked" (get_ints j "marked") in
    Ok (Prune { iter; marked })
  | "expand" ->
    let* iter = require "iter" (get_int j "iter") in
    let* u = parse_inst j "u" in
    let* candidates = require "candidates" (get_ints j "candidates") in
    Ok (Expand { iter; u; candidates })
  | "rank" ->
    let* iter = require "iter" (get_int j "iter") in
    let* u = parse_inst j "u" in
    let* prior = require "prior" (get_num j "prior") in
    let* decisions =
      match Json.member "decisions" j with
      | Some (Json.Arr l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Arr
              [ Json.Num idx; Json.Num sid; Json.Num score; Json.Bool kept ]
            :: rest ->
            go
              ({ rd_idx = int_of_float idx; rd_sid = int_of_float sid;
                 rd_score = score; rd_kept = kept }
              :: acc)
              rest
          | _ -> Error "rank.decisions: expected [idx, sid, score, kept] rows"
        in
        go [] l
      | _ -> Error "missing or ill-typed rank.decisions"
    in
    Ok (Rank { iter; u; prior; decisions })
  | "verify" ->
    let* vp = parse_inst j "p" in
    let* vu = parse_inst j "u" in
    let* verdict = require "verdict" (get_str j "verdict") in
    let* value_affected = require "value_affected" (get_bool j "value_affected") in
    let* source = require "source" (get_str j "source") in
    let* run = parse_run j in
    let* align = parse_align j in
    Ok
      (Verify
         { vp; vu; verdict; value_affected; source; run; align;
           failure = get_opt_str j "failure" })
  | "edge" ->
    let* ep = parse_inst j "p" in
    let* eu = parse_inst j "u" in
    let* strength = require "strength" (get_str j "strength") in
    let* value_affected = require "value_affected" (get_bool j "value_affected") in
    let* related = require "related" (get_bool j "related") in
    Ok (Edge { ep; eu; strength; value_affected; related })
  | "batch" ->
    let* queries = require "queries" (get_int j "queries") in
    let* unique = require "unique" (get_int j "unique") in
    let* cache_hits = require "cache_hits" (get_int j "cache_hits") in
    let* runs = require "runs" (get_int j "runs") in
    let* total_runs = require "total_runs" (get_int j "total_runs") in
    Ok (Batch { queries; unique; cache_hits; runs; total_runs })
  | "checkpoint" ->
    let* g =
      match get_ints j "guard" with
      | Some [ c; a; r; d; bt; bs; cap; q ] ->
        Ok
          { g_completed = c; g_aborted = a; g_retried = r;
            g_deadline_expired = d; g_breaker_trips = bt;
            g_breaker_skips = bs; g_captured = cap; g_quarantined = q }
      | _ -> Error "checkpoint.guard: expected 8 counters"
    in
    let* failures =
      match Json.member "failures" j with
      | Some (Json.Arr l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Arr [ Json.Num sid; Json.Str code ] :: rest ->
            go ((int_of_float sid, code) :: acc) rest
          | _ -> Error "checkpoint.failures: expected [sid, code] pairs"
        in
        go [] l
      | _ -> Error "missing or ill-typed checkpoint.failures"
    in
    let* breakers =
      match Json.member "breakers" j with
      | Some (Json.Arr l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Arr [ Json.Num sid; Json.Num consec; Json.Bool opened ]
            :: rest ->
            go
              ({ b_sid = int_of_float sid;
                 b_consecutive = int_of_float consec; b_opened = opened }
              :: acc)
              rest
          | _ -> Error "checkpoint.breakers: expected [sid, n, opened] triples"
        in
        go [] l
      | _ -> Error "missing or ill-typed checkpoint.breakers"
    in
    let* s =
      match get_ints j "store" with
      | Some [ h; dh; m; e; c; w ] ->
        Ok
          { st_hits = h; st_disk_hits = dh; st_misses = m; st_evictions = e;
            st_corrupted = c; st_writes = w }
      | _ -> Error "checkpoint.store: expected 6 counters"
    in
    Ok
      (Checkpoint
         { ck_guard = g; ck_failures = failures; ck_breakers = breakers;
           ck_store = s })
  | "final" ->
    let* found = require "found" (get_bool j "found") in
    let* iterations = require "iterations" (get_int j "iterations") in
    let* edges = require "edges" (get_int j "edges") in
    let* user_prunings = require "user_prunings" (get_int j "user_prunings") in
    let* total_prunings = require "total_prunings" (get_int j "total_prunings") in
    let* verifications = require "verifications" (get_int j "verifications") in
    let* queries = require "queries" (get_int j "queries") in
    let os_chain =
      match Json.member "os_chain" j with
      | Some (Json.Arr _) -> get_ints j "os_chain"
      | _ -> None
    in
    Ok
      (Final
         { found; iterations; edges; user_prunings; total_prunings;
           verifications; queries; os_chain;
           degraded = get_opt_str j "degraded" })
  | other -> Error (Printf.sprintf "unknown event %S" other)

let first_line content =
  match String.index_opt content '\n' with
  | Some i -> String.sub content 0 i
  | None -> content

let is_ledger content =
  match Json.parse (String.trim (first_line content)) with
  | Ok j -> get_str j "schema" = Some schema_name
  | Error _ -> false

let check_header line =
  let* j = Json.parse line in
  let* schema = require "schema" (get_str j "schema") in
  let* version = require "version" (get_num j "version") in
  if schema <> schema_name then Error (Printf.sprintf "foreign schema %S" schema)
  else if not (List.mem (int_of_float version) readable_versions) then
    Error
      (Printf.sprintf "schema version %d (this reader understands %s)"
         (int_of_float version)
         (String.concat ", " (List.map string_of_int readable_versions)))
  else Ok ()

let of_string content =
  let lines =
    String.split_on_char '\n' content
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty ledger"
  | header :: records ->
    let* () = check_header header in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        match Json.parse line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
          match parse_event j with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)))
    in
    go 2 [] records

let read_file path =
  Result.map_error (fun e -> e.Vfs.ve_msg) (Vfs.read_file path)

let load path =
  let* content = read_file path in
  of_string content

(* {2 Salvage of a killed run's journal}

   Unlike {!of_string} (strict: canonical files must be perfect), the
   recovery reader accepts what a SIGKILL leaves behind: meta lines
   ("type" objects — the header plus resume markers) are skipped and
   counted, and a malformed *final* line is dropped as the torn tail.
   Corruption anywhere earlier still rejects — a journal whose middle
   is damaged cannot be trusted as a replay source. *)

type resume_info = {
  ri_replayed : int;  (* events replayed into the generation *)
  ri_truncated : bool;  (* that resume salvaged a torn predecessor *)
}

type recovery = {
  r_events : event list;
  r_truncated : bool;  (* the last line was torn and dropped *)
  r_markers : int;  (* resume markers seen (prior resumes) *)
  r_resumes : resume_info list;
      (* the markers' payloads, file order: where each resumed
         generation's replayed prefix ends *)
}

let recover_string content =
  let lines =
    String.split_on_char '\n' content
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty journal"
  | header :: records ->
    let* () = check_header header in
    let markers = ref 0 in
    let resumes = ref [] in
    let finish acc truncated =
      Ok { r_events = List.rev acc; r_truncated = truncated;
           r_markers = !markers; r_resumes = List.rev !resumes }
    in
    let rec go lineno acc = function
      | [] -> finish acc false
      | line :: rest -> (
        let last = rest = [] in
        let torn e =
          if last then finish acc true
          else Error (Printf.sprintf "line %d: %s" lineno e)
        in
        match Json.parse line with
        | Error e -> torn e
        | Ok j -> (
          match get_str j "type" with
          | Some kind ->
            (* meta line; a resume marker's payload is kept so lineage
               walks can split replayed prefix from live tail *)
            incr markers;
            if kind = "resume" then
              resumes :=
                {
                  ri_replayed =
                    (match Option.bind (Json.member "replayed" j) Json.to_float with
                    | Some n -> int_of_float n
                    | None -> 0);
                  ri_truncated =
                    (match Json.member "truncated" j with
                    | Some (Json.Bool b) -> b
                    | _ -> false);
                }
                :: !resumes;
            go (lineno + 1) acc rest
          | None -> (
            match parse_event j with
            | Ok e -> go (lineno + 1) (e :: acc) rest
            | Error e -> torn e)))
    in
    go 2 [] records

let recover_file path =
  let* content = read_file path in
  recover_string content
