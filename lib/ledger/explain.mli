(** Renders a ledger into a human-readable causal narrative: the failing
    session, the per-iteration slice growth table (with deltas), the
    chain of verified implicit dependences with each edge's evidence
    (switched instance, alignment point or proof of no alignment,
    switched-run outcome, verdict source), where the seeded root cause
    entered the slice, and the final accounting. *)

val render : Ledger.event list -> string

(** Causal graph over the ledger's verified edges (strong solid red,
    weak dashed orange), the wrong output highlighted; rendered via
    {!Exom_ddg.Dot.render_causal} without needing the trace. *)
val dot : Ledger.event list -> string
