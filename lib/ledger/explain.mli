(** Renders a ledger into a human-readable causal narrative: the failing
    session, the per-iteration slice growth table (with deltas), the
    chain of verified implicit dependences with each edge's evidence
    (switched instance, alignment point or proof of no alignment,
    switched-run outcome, verdict source), where the seeded root cause
    entered the slice, and the final accounting. *)

(** What a salvaged journal knows about its history: how many prior
    resumes it chains back through ([Ledger.recovery.r_markers]) and
    whether the predecessor's tail was torn.  Canonical ledgers carry no
    markers (the final {!Ledger.write} erases them), so lineage only
    accompanies a journal read via {!Ledger.recover_string}. *)
type lineage = { resumes : int; torn_tail : bool }

(** [render ?lineage ?replay evs]: [replay] (the salvaged journal's
    resume-marker payloads, [Ledger.recovery.r_resumes], oldest first)
    adds a "Resume replay" section that splits the event stream at the
    last marker and names which [verify.batch] spans were consumed from
    the journal versus re-executed live — the narrative counterpart of
    the audit verdict's lineage walk. *)
val render :
  ?lineage:lineage -> ?replay:Ledger.resume_info list ->
  Ledger.event list -> string

(** Causal graph over the ledger's verified edges (strong solid red,
    weak dashed orange), the wrong output highlighted; rendered via
    {!Exom_ddg.Dot.render_causal} without needing the trace. *)
val dot : Ledger.event list -> string
