(** The provenance ledger: a versioned, append-only record of one
    demand-driven localization run — per-iteration pruned-slice
    snapshots (with deltas), every potential-dependence candidate, and
    the full evidence of every verification (switched predicate
    instance, alignment point or proof of no alignment, switched-run
    outcome, verdict, Guard failure taxonomy, store tier, deterministic
    cost) — so [exom explain] can reconstruct {e why} each implicit
    edge was admitted and how the root cause entered the slice.

    {b Determinism discipline} (DESIGN.md §10): evidence is produced on
    worker domains into per-verification slots (the scheduler's answer
    array discipline), but the ledger itself is appended to {e only on
    the coordinator}, in program order, after each batch's deterministic
    merge; no wall-clock figure ever enters an event (cost is counted
    in interpreter steps and registry run counts).  A localization
    therefore writes byte-identical ledgers at any [-j]. *)

val schema_name : string
val schema_version : int

(** Header versions {!of_string}/{!recover_string} accept.  Older
    listed versions are strict subsets of the current vocabulary (a v2
    file simply contains no [Rank] events), so they read back
    losslessly. *)
val readable_versions : int list

(** A trace-instance reference, resolved enough (sid, source line,
    occurrence) for the ledger to be rendered without the program. *)
type inst = { idx : int; sid : int; line : int; occ : int }

(** The switched re-execution behind a verification: how it ended
    (["ok"], ["budget-exhausted"], ["crashed: ..."]), its cost in
    interpreter steps (deterministic, unlike wall clock), and whether
    the switched predicate instance was actually reached. *)
type run_info = { outcome : string; steps : int; switch_fired : bool }

(** Alignment evidence (Algorithm 1): the target's counterpart in the
    switched run ([None] is the proof of no alignment — Definition 2
    case (i)); the failure point's counterpart and whether it carried
    the expected value (Definition 4); whether a definition was
    rerouted through the switched region (case (ii)). *)
type align_info = {
  counterpart : int option;
  ox_counterpart : int option;
  ox_restored : bool;
  rerouted : bool;
}

type verify_ev = {
  vp : inst;  (** the switched predicate instance *)
  vu : inst;  (** the use being tested *)
  verdict : string;  (** STRONG_ID | ID | NOT_ID *)
  value_affected : bool;
  source : string;
      (** ["run"] | ["cache:mem"] | ["cache:disk"] | ["skip"] (breaker)
          | ["dead"] (task died) *)
  run : run_info option;  (** absent for cache hits and skips *)
  align : align_info option;
  failure : string option;  (** Guard failure taxonomy, when degraded *)
}

type slice_entry = {
  s_idx : int;
  s_sid : int;
  s_line : int;
  s_conf : float;
  s_dist : int;
}

(** {2 Checkpoints (schema v2)}

    The resumable state written after every batch: cumulative guard
    counters, the full failure journal (as {!Exom_core.Guard.failure_code}
    strings), every materialized circuit breaker, cumulative store
    counters.  Everything here is deterministic (merged in submission
    order upstream), so checkpoints preserve the -j byte-identity
    contract; the cumulative form means the {e last} replayed checkpoint
    alone restores a resumed session. *)

type guard_counts = {
  g_completed : int;
  g_aborted : int;
  g_retried : int;
  g_deadline_expired : int;
  g_breaker_trips : int;
  g_breaker_skips : int;
  g_captured : int;
  g_quarantined : int;
}

type breaker_info = { b_sid : int; b_consecutive : int; b_opened : bool }

type store_counts = {
  st_hits : int;
  st_disk_hits : int;
  st_misses : int;
  st_evictions : int;
  st_corrupted : int;
  st_writes : int;
}

type checkpoint = {
  ck_guard : guard_counts;
  ck_failures : (int * string) list;  (** (sid, failure code), oldest first *)
  ck_breakers : breaker_info list;  (** sorted by sid *)
  ck_store : store_counts;
}

(** {2 Rank decisions (schema v3)}

    One ranked candidate of an expansion: where the evidence-driven
    scorer ({!Exom_rank}) placed it and whether the early-exit policy
    kept it for verification.  Scores arrive rounded to 4 decimals, so
    recording them preserves the byte-identity contract. *)
type rank_decision = {
  rd_idx : int;
  rd_sid : int;
  rd_score : float;
  rd_kept : bool;
}

type event =
  | Session of {
      wrong : inst;
      vexp : string option;
      correct_outputs : int;
      budget : int;
      trace_len : int;
    }
  | Locate of { root_sids : int list; mode : string; max_iterations : int }
  | Slice of {
      iter : int;
      entries : slice_entry list;
      added : int list;
      removed : int list;
    }
  | Prune of { iter : int; marked : int list }
  | Expand of { iter : int; u : inst; candidates : int list }
  | Rank of { iter : int; u : inst; prior : float; decisions : rank_decision list }
      (** how the expansion's candidates were ordered and which were
          cut; verification batches follow the kept ones in list order *)
  | Verify of verify_ev
  | Edge of {
      ep : inst;
      eu : inst;
      strength : string;  (** "strong" | "weak" *)
      value_affected : bool;
      related : bool;  (** admitted by the related-target fan-out *)
    }
  | Batch of {
      queries : int;
      unique : int;
      cache_hits : int;
      runs : int;  (** switched runs dispatched by this batch *)
      total_runs : int;  (** cumulative verify.run count (registry) *)
    }
  | Checkpoint of checkpoint
      (** emitted right after each [Batch]: the state a resume needs *)
  | Final of {
      found : bool;
      iterations : int;
      edges : int;
      user_prunings : int;
      total_prunings : int;
      verifications : int;
      queries : int;
      os_chain : int list option;
      degraded : string option;
    }

type t

val create : unit -> t

(** Events in append order. *)
val events : t -> event list

(** {2 Appending (coordinator only)} *)

val session :
  t ->
  wrong:inst ->
  vexp:string option ->
  correct_outputs:int ->
  budget:int ->
  trace_len:int ->
  unit

val locate : t -> root_sids:int list -> mode:string -> max_iterations:int -> unit

(** Records the snapshot and computes the delta against the previous
    snapshot internally. *)
val slice : t -> iter:int -> slice_entry list -> unit

val prune : t -> iter:int -> marked:int list -> unit
val expand : t -> iter:int -> u:inst -> candidates:int list -> unit

val rank :
  t -> iter:int -> u:inst -> prior:float -> decisions:rank_decision list ->
  unit

val verify :
  t ->
  p:inst ->
  u:inst ->
  verdict:string ->
  value_affected:bool ->
  source:string ->
  ?run:run_info ->
  ?align:align_info ->
  ?failure:string ->
  unit ->
  unit

val edge :
  t ->
  p:inst ->
  u:inst ->
  strength:string ->
  value_affected:bool ->
  related:bool ->
  unit

val batch :
  t -> queries:int -> unique:int -> cache_hits:int -> runs:int ->
  total_runs:int -> unit

val checkpoint : t -> checkpoint -> unit

(** Re-emit a recovered event verbatim (resume replay).  Bypasses the
    slice-delta bookkeeping — use only for Verify/Batch/Checkpoint
    events; the resumed demand loop re-emits everything else live. *)
val append : t -> event -> unit

val final :
  t ->
  found:bool ->
  iterations:int ->
  edges:int ->
  user_prunings:int ->
  total_prunings:int ->
  verifications:int ->
  queries:int ->
  os_chain:int list option ->
  degraded:string option ->
  unit

(** {2 Serialization: versioned JSONL} *)

(** One event as its canonical JSON object — the payload of its JSONL
    line.  Exposed for comparators ([exom audit]'s ledger leg) that
    diff event streams without re-parsing rendered files. *)
val event_json : event -> Exom_obs.Json.t

val string_of_events : event list -> string
val to_string : t -> string

(** Crash-consistent canonical write: the serialization goes to a temp
    file first and is renamed into place, so a kill mid-write leaves
    either the old file or the new one, never a torn hybrid.  Detach an
    attached journal on the same path ({!close_journal}) first.
    Raises {!Exom_util.Vfs.Io_error} on failure; callers with a
    degradation contract use {!write_result} instead. *)
val write : string -> t -> unit

(** Checked variant of {!write}: the serve daemon and the campaign
    runner absorb the error into their degradation contracts instead of
    unwinding. *)
val write_result : string -> t -> (unit, Exom_util.Vfs.error) result

(** {2 The write-ahead journal}

    [attach_journal t path] opens [path] (truncating) and from then on
    every appended event is also written to it as one JSONL line,
    flushed per event — a kill loses at most the torn tail of one line.
    Any events already in [t] are written immediately (the replayed
    prefix of a resume).  {!sync} additionally [fsync]s — the demand
    loop calls it at iteration boundaries, making each completed
    iteration durable.  The journal is what {!recover_string} salvages
    after a crash; a run that completes normally overwrites it with the
    canonical {!write} (byte-identical at every [-j], markers and all
    torn debris gone). *)

val attach_journal : t -> string -> unit

(** The attached journal's path, if any. *)
val journal_path : t -> string option

(** Write the explicit resume meta line
    [{"type":"resume","replayed":N,"truncated":bool}] to the journal:
    the durable record that this run is a resumed continuation and
    whether its predecessor's tail was torn.  Meta lines are skipped by
    {!recover_string} and never enter {!events}.  No-op without a
    journal. *)
val resume_marker : t -> replayed:int -> truncated:bool -> unit

(** Flush and [fsync] the journal (no-op without one).  Never raises:
    a failed flush or fsync — real or injected through
    {!Exom_util.Vfs} — is absorbed into {!io_failures}, and the demand
    loop surfaces it as a DEGRADED run.  The in-memory ledger still
    carries every event, so provenance is never silently lost; what
    degrades is crash-replay coverage. *)
val sync : t -> unit

(** Flush and close the journal; further appends are in-memory only. *)
val close_journal : t -> unit

(** Journal writes, syncs and attaches that failed and were absorbed
    since {!create}.  Non-zero means the run must be reported
    DEGRADED. *)
val io_failures : t -> int

(** Quick sniff: does [content]'s first line carry this schema (any
    version)?  Lets the CLI distinguish a ledger from an MCL source. *)
val is_ledger : string -> bool

(** Strict reader: rejects a missing/foreign/version-skewed header and
    any malformed or unknown event line (a corrupted ledger must never
    render as a partial narrative). *)
val of_string : string -> (event list, string) result

val load : string -> (event list, string) result

(** {2 Salvage of a killed run's journal} *)

(** One resume marker's payload: how many events the resumed
    generation replayed from its predecessor, and whether that
    predecessor's tail was torn. *)
type resume_info = { ri_replayed : int; ri_truncated : bool }

type recovery = {
  r_events : event list;
  r_truncated : bool;  (** the last line was torn and dropped *)
  r_markers : int;  (** resume meta lines seen (prior resumes) *)
  r_resumes : resume_info list;
      (** the markers' payloads in file order — the split points
          between replayed prefix and live tail of each generation *)
}

(** Tolerant reader for resume: skips meta lines and drops a malformed
    {e final} line as the torn tail ([r_truncated]).  Corruption
    anywhere earlier still rejects — a journal with a damaged middle
    cannot be trusted as a replay source. *)
val recover_string : string -> (recovery, string) result

val recover_file : string -> (recovery, string) result
