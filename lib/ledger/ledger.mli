(** The provenance ledger: a versioned, append-only record of one
    demand-driven localization run — per-iteration pruned-slice
    snapshots (with deltas), every potential-dependence candidate, and
    the full evidence of every verification (switched predicate
    instance, alignment point or proof of no alignment, switched-run
    outcome, verdict, Guard failure taxonomy, store tier, deterministic
    cost) — so [exom explain] can reconstruct {e why} each implicit
    edge was admitted and how the root cause entered the slice.

    {b Determinism discipline} (DESIGN.md §10): evidence is produced on
    worker domains into per-verification slots (the scheduler's answer
    array discipline), but the ledger itself is appended to {e only on
    the coordinator}, in program order, after each batch's deterministic
    merge; no wall-clock figure ever enters an event (cost is counted
    in interpreter steps and registry run counts).  A localization
    therefore writes byte-identical ledgers at any [-j]. *)

val schema_name : string
val schema_version : int

(** A trace-instance reference, resolved enough (sid, source line,
    occurrence) for the ledger to be rendered without the program. *)
type inst = { idx : int; sid : int; line : int; occ : int }

(** The switched re-execution behind a verification: how it ended
    (["ok"], ["budget-exhausted"], ["crashed: ..."]), its cost in
    interpreter steps (deterministic, unlike wall clock), and whether
    the switched predicate instance was actually reached. *)
type run_info = { outcome : string; steps : int; switch_fired : bool }

(** Alignment evidence (Algorithm 1): the target's counterpart in the
    switched run ([None] is the proof of no alignment — Definition 2
    case (i)); the failure point's counterpart and whether it carried
    the expected value (Definition 4); whether a definition was
    rerouted through the switched region (case (ii)). *)
type align_info = {
  counterpart : int option;
  ox_counterpart : int option;
  ox_restored : bool;
  rerouted : bool;
}

type verify_ev = {
  vp : inst;  (** the switched predicate instance *)
  vu : inst;  (** the use being tested *)
  verdict : string;  (** STRONG_ID | ID | NOT_ID *)
  value_affected : bool;
  source : string;
      (** ["run"] | ["cache:mem"] | ["cache:disk"] | ["skip"] (breaker)
          | ["dead"] (task died) *)
  run : run_info option;  (** absent for cache hits and skips *)
  align : align_info option;
  failure : string option;  (** Guard failure taxonomy, when degraded *)
}

type slice_entry = {
  s_idx : int;
  s_sid : int;
  s_line : int;
  s_conf : float;
  s_dist : int;
}

type event =
  | Session of {
      wrong : inst;
      vexp : string option;
      correct_outputs : int;
      budget : int;
      trace_len : int;
    }
  | Locate of { root_sids : int list; mode : string; max_iterations : int }
  | Slice of {
      iter : int;
      entries : slice_entry list;
      added : int list;
      removed : int list;
    }
  | Prune of { iter : int; marked : int list }
  | Expand of { iter : int; u : inst; candidates : int list }
  | Verify of verify_ev
  | Edge of {
      ep : inst;
      eu : inst;
      strength : string;  (** "strong" | "weak" *)
      value_affected : bool;
      related : bool;  (** admitted by the related-target fan-out *)
    }
  | Batch of {
      queries : int;
      unique : int;
      cache_hits : int;
      runs : int;  (** switched runs dispatched by this batch *)
      total_runs : int;  (** cumulative verify.run count (registry) *)
    }
  | Final of {
      found : bool;
      iterations : int;
      edges : int;
      user_prunings : int;
      total_prunings : int;
      verifications : int;
      queries : int;
      os_chain : int list option;
      degraded : string option;
    }

type t

val create : unit -> t

(** Events in append order. *)
val events : t -> event list

(** {2 Appending (coordinator only)} *)

val session :
  t ->
  wrong:inst ->
  vexp:string option ->
  correct_outputs:int ->
  budget:int ->
  trace_len:int ->
  unit

val locate : t -> root_sids:int list -> mode:string -> max_iterations:int -> unit

(** Records the snapshot and computes the delta against the previous
    snapshot internally. *)
val slice : t -> iter:int -> slice_entry list -> unit

val prune : t -> iter:int -> marked:int list -> unit
val expand : t -> iter:int -> u:inst -> candidates:int list -> unit

val verify :
  t ->
  p:inst ->
  u:inst ->
  verdict:string ->
  value_affected:bool ->
  source:string ->
  ?run:run_info ->
  ?align:align_info ->
  ?failure:string ->
  unit ->
  unit

val edge :
  t ->
  p:inst ->
  u:inst ->
  strength:string ->
  value_affected:bool ->
  related:bool ->
  unit

val batch :
  t -> queries:int -> unique:int -> cache_hits:int -> runs:int ->
  total_runs:int -> unit

val final :
  t ->
  found:bool ->
  iterations:int ->
  edges:int ->
  user_prunings:int ->
  total_prunings:int ->
  verifications:int ->
  queries:int ->
  os_chain:int list option ->
  degraded:string option ->
  unit

(** {2 Serialization: versioned JSONL} *)

val string_of_events : event list -> string
val to_string : t -> string
val write : string -> t -> unit

(** Quick sniff: does [content]'s first line carry this schema (any
    version)?  Lets the CLI distinguish a ledger from an MCL source. *)
val is_ledger : string -> bool

(** Strict reader: rejects a missing/foreign/version-skewed header and
    any malformed or unknown event line (a corrupted ledger must never
    render as a partial narrative). *)
val of_string : string -> (event list, string) result

val load : string -> (event list, string) result
