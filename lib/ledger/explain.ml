module Dot = Exom_ddg.Dot

(* Turns the event stream back into the story of the search: what
   failed, how the pruned slice evolved, which implicit dependences were
   verified (and on what evidence), and where the root cause entered. *)

let inst_str (i : Ledger.inst) =
  Printf.sprintf "line %d (inst #%d, occ %d)" i.line i.idx i.occ

let find_map f evs = List.find_map f evs

type session_view = {
  wrong : Ledger.inst;
  vexp : string option;
  correct_outputs : int;
  budget : int;
  trace_len : int;
}

type final_view = {
  found : bool;
  iterations : int;
  f_edges : int;
  user_prunings : int;
  total_prunings : int;
  verifications : int;
  queries : int;
  os_chain : int list option;
  degraded : string option;
}

let session_of evs =
  find_map
    (function
      | Ledger.Session { wrong; vexp; correct_outputs; budget; trace_len } ->
        Some { wrong; vexp; correct_outputs; budget; trace_len }
      | _ -> None)
    evs

let locate_of evs =
  find_map
    (function
      | Ledger.Locate { root_sids; mode; max_iterations } ->
        Some (root_sids, mode, max_iterations)
      | _ -> None)
    evs

let final_of evs =
  find_map
    (function
      | Ledger.Final
          { found; iterations; edges; user_prunings; total_prunings;
            verifications; queries; os_chain; degraded } ->
        Some
          { found; iterations; f_edges = edges; user_prunings; total_prunings;
            verifications; queries; os_chain; degraded }
      | _ -> None)
    evs

let slices_of evs =
  List.filter_map
    (function
      | Ledger.Slice { iter; entries; added; removed } ->
        Some (iter, entries, added, removed)
      | _ -> None)
    evs

(* Each admitted edge, paired with the verification evidence recorded
   for the same (p, u) instance pair, and the iteration (the iter of the
   next Slice snapshot) it contributed to. *)
let edges_with_evidence evs =
  let rec go pending acc = function
    | [] -> List.rev acc @ List.rev_map (fun (e, v) -> (e, v, None)) pending
    | Ledger.Slice { iter; _ } :: rest ->
      let closed =
        List.rev_map (fun (e, v) -> (e, v, Some iter)) pending
      in
      go [] (closed @ acc) rest
    | (Ledger.Edge { ep; eu; _ } as e) :: rest ->
      let ev =
        find_map
          (function
            | Ledger.Verify v
              when v.Ledger.vp.idx = ep.idx && v.Ledger.vu.idx = eu.idx ->
              Some v
            | _ -> None)
          evs
      in
      go ((e, ev) :: pending) acc rest
    | _ :: rest -> go pending acc rest
  in
  (* [acc] collects newest-first between snapshots; restore order. *)
  go [] [] evs |> List.rev

let align_str (a : Ledger.align_info) =
  let b = Buffer.create 64 in
  (match a.counterpart with
  | Some c ->
    Buffer.add_string b (Printf.sprintf "target aligns with inst #%d" c)
  | None ->
    Buffer.add_string b
      "no counterpart in switched run (Definition 2 case (i))");
  if a.rerouted then
    Buffer.add_string b "; definition rerouted through switched region";
  (match a.ox_counterpart with
  | Some c ->
    Buffer.add_string b
      (Printf.sprintf "; failure point aligns with inst #%d (%s)" c
         (if a.ox_restored then "expected value restored"
          else "value unchanged"))
  | None -> ());
  Buffer.contents b

let run_str (r : Ledger.run_info) =
  Printf.sprintf "switched run %s after %d steps, switch %s" r.outcome r.steps
    (if r.switch_fired then "fired" else "never fired")

let render evs =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "=== Localization narrative ===\n";
  (match session_of evs with
  | Some s ->
    pr "wrong output at %s" (inst_str s.wrong);
    (match s.vexp with
    | Some v -> pr ", expected value %s" v
    | None -> ());
    pr "\n%d correct profile run%s; interpreter budget %d; trace length %d\n"
      s.correct_outputs
      (if s.correct_outputs = 1 then "" else "s")
      s.budget s.trace_len
  | None -> pr "(no session record)\n");
  (match locate_of evs with
  | Some (root_sids, mode, max_iterations) ->
    pr "search: %s mode, max %d iterations, seeded root sid%s [%s]\n" mode
      max_iterations
      (if List.length root_sids = 1 then "" else "s")
      (String.concat "; " (List.map string_of_int root_sids))
  | None -> ());
  let slices = slices_of evs in
  if slices <> [] then begin
    pr "\n--- Slice evolution ---\n";
    pr "%-5s %-6s %-7s %-9s %s\n" "iter" "size" "added" "removed" "min conf";
    List.iter
      (fun (iter, entries, added, removed) ->
        let min_conf =
          List.fold_left
            (fun acc (e : Ledger.slice_entry) -> min acc e.s_conf)
            infinity entries
        in
        pr "%-5d %-6d %-7s %-9s %s\n" iter (List.length entries)
          (Printf.sprintf "+%d" (List.length added))
          (Printf.sprintf "-%d" (List.length removed))
          (if entries = [] then "-" else Printf.sprintf "%.3f" min_conf))
      slices
  end;
  let edges = edges_with_evidence evs in
  if edges <> [] then begin
    pr "\n--- Verified implicit dependences ---\n";
    List.iteri
      (fun k ((e : Ledger.event), ev, iter) ->
        match e with
        | Ledger.Edge { ep; eu; strength; value_affected; related } ->
          pr "[%d] %s implicit dependence: predicate %s ==> use %s%s%s\n"
            (k + 1) strength (inst_str ep) (inst_str eu)
            (if related then " (related-target fan-out)" else "")
            (match iter with
            | Some i -> Printf.sprintf "  [iteration %d]" i
            | None -> "");
          (match ev with
          | None -> pr "      (no verification record)\n"
          | Some (v : Ledger.verify_ev) ->
            pr "      verdict %s%s, source %s\n" v.verdict
              (if v.value_affected then " (value affected)" else "")
              v.source;
            (match v.run with
            | Some r -> pr "      %s\n" (run_str r)
            | None -> ());
            (match v.align with
            | Some a -> pr "      alignment: %s\n" (align_str a)
            | None -> ());
            (match v.failure with
            | Some f -> pr "      degraded: %s\n" f
            | None -> ()));
          if value_affected then
            pr "      switching the predicate changed the wrong output \
               (Definition 4)\n"
        | _ -> ())
      edges
  end;
  (* Where (and how) the seeded root cause entered the slice. *)
  (match locate_of evs with
  | Some (root_sids, _, _) when root_sids <> [] ->
    pr "\n--- Root cause ---\n";
    let hit =
      List.find_map
        (fun (iter, entries, added, _) ->
          match
            List.find_opt
              (fun (e : Ledger.slice_entry) -> List.mem e.s_sid root_sids)
              entries
          with
          | Some e -> Some (iter, e, List.mem e.s_idx added)
          | None -> None)
        slices
    in
    (match hit with
    | None ->
      pr "the seeded root cause (sid%s %s) never entered the slice\n"
        (if List.length root_sids = 1 then "" else "s")
        (String.concat ", " (List.map string_of_int root_sids))
    | Some (0, e, _) ->
      pr
        "seeded root cause at line %d (sid %d, inst #%d) was already in \
         the initial pruned slice (confidence %.3f)\n"
        e.s_line e.s_sid e.s_idx e.s_conf
    | Some (iter, e, _) ->
      pr
        "seeded root cause at line %d (sid %d, inst #%d) entered the \
         slice at iteration %d (confidence %.3f)\n"
        e.s_line e.s_sid e.s_idx iter e.s_conf;
      let via =
        List.filter_map
          (fun (ed, _, it) ->
            match (ed, it) with
            | Ledger.Edge { ep; eu; strength; _ }, Some i when i = iter ->
              Some (Printf.sprintf "%s edge %s ==> %s" strength (inst_str ep)
                      (inst_str eu))
            | _ -> None)
          edges
      in
      if via <> [] then
        pr "  via: %s\n" (String.concat "\n       " via))
  | _ -> ());
  (* Aggregate verification accounting, from the batch records. *)
  let q, hits, runs, total =
    List.fold_left
      (fun (q, h, r, t) ev ->
        match ev with
        | Ledger.Batch b ->
          (q + b.queries, h + b.cache_hits, r + b.runs, b.total_runs)
        | _ -> (q, h, r, t))
      (0, 0, 0, 0) evs
  in
  if q > 0 then begin
    pr "\n--- Verification cost ---\n";
    pr "%d queries, %d cache hits, %d switched runs dispatched \
       (%d cumulative verify runs)\n"
      q hits runs total
  end;
  (match final_of evs with
  | Some f ->
    pr "\n--- Outcome ---\n";
    pr "root cause %s after %d iteration%s: %d implicit edge%s, \
       %d verifications (%d queries), %d/%d prunings answered\n"
      (if f.found then "FOUND" else "not found")
      f.iterations
      (if f.iterations = 1 then "" else "s")
      f.f_edges
      (if f.f_edges = 1 then "" else "s")
      f.verifications f.queries f.user_prunings f.total_prunings;
    (match f.os_chain with
    | Some chain ->
      pr "shortest dependence chain to the wrong output: %s\n"
        (String.concat " -> " (List.map string_of_int chain))
    | None -> ());
    (match f.degraded with
    | Some d -> pr "degraded: %s\n" d
    | None -> ())
  | None -> pr "\n(no final record — ledger is incomplete)\n");
  Buffer.contents b

let dot evs =
  let nodes = Hashtbl.create 16 in
  let add (i : Ledger.inst) shape fill =
    if not (Hashtbl.mem nodes i.idx) then
      Hashtbl.add nodes i.idx
        (i.idx, Printf.sprintf "line %d\n#%d.%d" i.line i.idx i.occ, shape, fill)
  in
  (match session_of evs with
  | Some s -> add s.wrong "doubleoctagon" (Some "#ffd0d0")
  | None -> ());
  let strong = ref [] and weak = ref [] in
  List.iter
    (function
      | Ledger.Edge { ep; eu; strength; _ } ->
        add ep "diamond" None;
        add eu "box" None;
        let pair = (ep.idx, eu.idx) in
        if strength = "strong" then strong := pair :: !strong
        else weak := pair :: !weak
      | _ -> ())
    evs;
  let node_list =
    Hashtbl.fold (fun _ n acc -> n :: acc) nodes []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
  in
  Dot.render_causal ~nodes:node_list ~strong:(List.rev !strong)
    ~weak:(List.rev !weak)
