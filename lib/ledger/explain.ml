module Dot = Exom_ddg.Dot

(* Turns the event stream back into the story of the search: what
   failed, how the pruned slice evolved, which implicit dependences were
   verified (and on what evidence), and where the root cause entered. *)

let inst_str (i : Ledger.inst) =
  Printf.sprintf "line %d (inst #%d, occ %d)" i.line i.idx i.occ

let find_map f evs = List.find_map f evs

type session_view = {
  wrong : Ledger.inst;
  vexp : string option;
  correct_outputs : int;
  budget : int;
  trace_len : int;
}

type final_view = {
  found : bool;
  iterations : int;
  f_edges : int;
  user_prunings : int;
  total_prunings : int;
  verifications : int;
  queries : int;
  os_chain : int list option;
  degraded : string option;
}

let session_of evs =
  find_map
    (function
      | Ledger.Session { wrong; vexp; correct_outputs; budget; trace_len } ->
        Some { wrong; vexp; correct_outputs; budget; trace_len }
      | _ -> None)
    evs

let locate_of evs =
  find_map
    (function
      | Ledger.Locate { root_sids; mode; max_iterations } ->
        Some (root_sids, mode, max_iterations)
      | _ -> None)
    evs

let final_of evs =
  find_map
    (function
      | Ledger.Final
          { found; iterations; edges; user_prunings; total_prunings;
            verifications; queries; os_chain; degraded } ->
        Some
          { found; iterations; f_edges = edges; user_prunings; total_prunings;
            verifications; queries; os_chain; degraded }
      | _ -> None)
    evs

let slices_of evs =
  List.filter_map
    (function
      | Ledger.Slice { iter; entries; added; removed } ->
        Some (iter, entries, added, removed)
      | _ -> None)
    evs

let ranks_of evs =
  List.filter_map
    (function
      | Ledger.Rank { iter; u; prior; decisions } ->
        Some (iter, u, prior, decisions)
      | _ -> None)
    evs

(* Each admitted edge, paired with the verification evidence recorded
   for the same (p, u) instance pair, and the iteration (the iter of the
   next Slice snapshot) it contributed to. *)
let edges_with_evidence evs =
  let rec go pending acc = function
    | [] -> List.rev acc @ List.rev_map (fun (e, v) -> (e, v, None)) pending
    | Ledger.Slice { iter; _ } :: rest ->
      let closed =
        List.rev_map (fun (e, v) -> (e, v, Some iter)) pending
      in
      go [] (closed @ acc) rest
    | (Ledger.Edge { ep; eu; _ } as e) :: rest ->
      let ev =
        find_map
          (function
            | Ledger.Verify v
              when v.Ledger.vp.idx = ep.idx && v.Ledger.vu.idx = eu.idx ->
              Some v
            | _ -> None)
          evs
      in
      go ((e, ev) :: pending) acc rest
    | _ :: rest -> go pending acc rest
  in
  (* [acc] collects newest-first between snapshots; restore order. *)
  go [] [] evs |> List.rev

let align_str (a : Ledger.align_info) =
  let b = Buffer.create 64 in
  (match a.counterpart with
  | Some c ->
    Buffer.add_string b (Printf.sprintf "target aligns with inst #%d" c)
  | None ->
    Buffer.add_string b
      "no counterpart in switched run (Definition 2 case (i))");
  if a.rerouted then
    Buffer.add_string b "; definition rerouted through switched region";
  (match a.ox_counterpart with
  | Some c ->
    Buffer.add_string b
      (Printf.sprintf "; failure point aligns with inst #%d (%s)" c
         (if a.ox_restored then "expected value restored"
          else "value unchanged"))
  | None -> ());
  Buffer.contents b

let run_str (r : Ledger.run_info) =
  Printf.sprintf "switched run %s after %d steps, switch %s" r.outcome r.steps
    (if r.switch_fired then "fired" else "never fired")

type lineage = { resumes : int; torn_tail : bool }

(* Split [evs] at the last resume marker's replayed count: everything
   before it was consumed from the journal without re-execution,
   everything after ran live.  Rendered as batch ordinals because each
   Batch event is one [verify.batch] span on the trace's coordinator
   lane — the narrative and the spine name the same objects. *)
let replay_story (gens : Ledger.resume_info list) evs b =
  match gens with
  | [] -> ()
  | _ ->
    let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    let last = List.nth gens (List.length gens - 1) in
    let replayed_n = last.Ledger.ri_replayed in
    let batches l =
      List.length
        (List.filter (function Ledger.Batch _ -> true | _ -> false) l)
    in
    let verifs l =
      List.length
        (List.filter (function Ledger.Verify _ -> true | _ -> false) l)
    in
    let rec split k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | e :: rest -> split (k - 1) (e :: acc) rest
    in
    let replayed, live = split replayed_n [] evs in
    pr "\n--- Resume replay ---\n";
    List.iteri
      (fun i (g : Ledger.resume_info) ->
        pr "resume %d replayed %d event%s from its predecessor%s\n" (i + 1)
          g.Ledger.ri_replayed
          (if g.Ledger.ri_replayed = 1 then "" else "s")
          (if g.Ledger.ri_truncated then " (its torn tail was dropped)"
           else ""))
      gens;
    let rb = batches replayed and lb = batches live in
    if rb > 0 then
      pr
        "replayed without re-execution: verify.batch span%s 1-%d (%d \
         verification%s consumed from the journal)\n"
        (if rb = 1 then "" else "s")
        rb (verifs replayed)
        (if verifs replayed = 1 then "" else "s")
    else pr "replayed without re-execution: none (resume at the very start)\n";
    if lb > 0 then
      pr "re-executed live: verify.batch span%s %d-%d (%d verification%s)\n"
        (if lb = 1 then "" else "s")
        (rb + 1) (rb + lb) (verifs live)
        (if verifs live = 1 then "" else "s")
    else pr "re-executed live: none (the journal already covered the run)\n"

(* The last checkpoint is cumulative, so it alone carries the run's
   complete failure journal, breaker history and store accounting. *)
let last_checkpoint evs =
  List.fold_left
    (fun acc ev ->
      match ev with Ledger.Checkpoint c -> Some c | _ -> acc)
    None evs

let render ?lineage ?(replay = []) evs =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "=== Localization narrative ===\n";
  (match lineage with
  | Some { resumes; torn_tail } when resumes > 0 || torn_tail ->
    pr "resume lineage: %d prior resume%s%s\n" resumes
      (if resumes = 1 then "" else "s")
      (if torn_tail then "; predecessor's tail was torn and dropped"
       else "")
  | _ -> ());
  replay_story replay evs b;
  (match session_of evs with
  | Some s ->
    pr "wrong output at %s" (inst_str s.wrong);
    (match s.vexp with
    | Some v -> pr ", expected value %s" v
    | None -> ());
    pr "\n%d correct profile run%s; interpreter budget %d; trace length %d\n"
      s.correct_outputs
      (if s.correct_outputs = 1 then "" else "s")
      s.budget s.trace_len
  | None -> pr "(no session record)\n");
  (match locate_of evs with
  | Some (root_sids, mode, max_iterations) ->
    pr "search: %s mode, max %d iterations, seeded root sid%s [%s]\n" mode
      max_iterations
      (if List.length root_sids = 1 then "" else "s")
      (String.concat "; " (List.map string_of_int root_sids))
  | None -> ());
  let slices = slices_of evs in
  if slices <> [] then begin
    pr "\n--- Slice evolution ---\n";
    pr "%-5s %-6s %-7s %-9s %s\n" "iter" "size" "added" "removed" "min conf";
    List.iter
      (fun (iter, entries, added, removed) ->
        let min_conf =
          List.fold_left
            (fun acc (e : Ledger.slice_entry) -> min acc e.s_conf)
            infinity entries
        in
        pr "%-5d %-6d %-7s %-9s %s\n" iter (List.length entries)
          (Printf.sprintf "+%d" (List.length added))
          (Printf.sprintf "-%d" (List.length removed))
          (if entries = [] then "-" else Printf.sprintf "%.3f" min_conf))
      slices
  end;
  (* How the candidates of each expansion were ordered for verification
     (v3 ledgers; v2 ledgers simply have no rank events). *)
  let ranks = ranks_of evs in
  if ranks <> [] then begin
    pr "\n--- Ranked verification order ---\n";
    List.iter
      (fun (iter, u, prior, ds) ->
        let cut =
          List.length (List.filter (fun d -> not d.Ledger.rd_kept) ds)
        in
        pr "iteration %d, expansion at %s: prior %.4f, %d candidate%s, %d cut\n"
          iter (inst_str u) prior (List.length ds)
          (if List.length ds = 1 then "" else "s")
          cut;
        pr "  order:%s\n"
          (String.concat ""
             (List.map
                (fun (d : Ledger.rank_decision) ->
                  Printf.sprintf " s%d#%d(%.4f%s)" d.Ledger.rd_sid
                    d.Ledger.rd_idx d.Ledger.rd_score
                    (if d.Ledger.rd_kept then "" else " CUT"))
                ds)))
      ranks
  end;
  let edges = edges_with_evidence evs in
  if edges <> [] then begin
    pr "\n--- Verified implicit dependences ---\n";
    List.iteri
      (fun k ((e : Ledger.event), ev, iter) ->
        match e with
        | Ledger.Edge { ep; eu; strength; value_affected; related } ->
          pr "[%d] %s implicit dependence: predicate %s ==> use %s%s%s\n"
            (k + 1) strength (inst_str ep) (inst_str eu)
            (if related then " (related-target fan-out)" else "")
            (match iter with
            | Some i -> Printf.sprintf "  [iteration %d]" i
            | None -> "");
          (match ev with
          | None -> pr "      (no verification record)\n"
          | Some (v : Ledger.verify_ev) ->
            pr "      verdict %s%s, source %s\n" v.verdict
              (if v.value_affected then " (value affected)" else "")
              v.source;
            (match v.run with
            | Some r -> pr "      %s\n" (run_str r)
            | None -> ());
            (match v.align with
            | Some a -> pr "      alignment: %s\n" (align_str a)
            | None -> ());
            (match v.failure with
            | Some f -> pr "      degraded: %s\n" f
            | None -> ()));
          if value_affected then
            pr "      switching the predicate changed the wrong output \
               (Definition 4)\n"
        | _ -> ())
      edges
  end;
  (* Where (and how) the seeded root cause entered the slice. *)
  (match locate_of evs with
  | Some (root_sids, _, _) when root_sids <> [] ->
    pr "\n--- Root cause ---\n";
    let hit =
      List.find_map
        (fun (iter, entries, added, _) ->
          match
            List.find_opt
              (fun (e : Ledger.slice_entry) -> List.mem e.s_sid root_sids)
              entries
          with
          | Some e -> Some (iter, e, List.mem e.s_idx added)
          | None -> None)
        slices
    in
    (match hit with
    | None ->
      pr "the seeded root cause (sid%s %s) never entered the slice\n"
        (if List.length root_sids = 1 then "" else "s")
        (String.concat ", " (List.map string_of_int root_sids))
    | Some (0, e, _) ->
      pr
        "seeded root cause at line %d (sid %d, inst #%d) was already in \
         the initial pruned slice (confidence %.3f)\n"
        e.s_line e.s_sid e.s_idx e.s_conf
    | Some (iter, e, _) ->
      pr
        "seeded root cause at line %d (sid %d, inst #%d) entered the \
         slice at iteration %d (confidence %.3f)\n"
        e.s_line e.s_sid e.s_idx iter e.s_conf;
      let via =
        List.filter_map
          (fun (ed, _, it) ->
            match (ed, it) with
            | Ledger.Edge { ep; eu; strength; _ }, Some i when i = iter ->
              Some (Printf.sprintf "%s edge %s ==> %s" strength (inst_str ep)
                      (inst_str eu))
            | _ -> None)
          edges
      in
      if via <> [] then
        pr "  via: %s\n" (String.concat "\n       " via))
  | _ -> ());
  (* Aggregate verification accounting, from the batch records. *)
  let q, hits, runs, total =
    List.fold_left
      (fun (q, h, r, t) ev ->
        match ev with
        | Ledger.Batch b ->
          (q + b.queries, h + b.cache_hits, r + b.runs, b.total_runs)
        | _ -> (q, h, r, t))
      (0, 0, 0, 0) evs
  in
  if q > 0 then begin
    pr "\n--- Verification cost ---\n";
    pr "%d queries, %d cache hits, %d switched runs dispatched \
       (%d cumulative verify runs)\n"
      q hits runs total
  end;
  (* Trouble report, from the last (cumulative) checkpoint: rendered
     only when the run actually degraded somewhere, so a clean run's
     narrative is unchanged. *)
  let tripped =
    match last_checkpoint evs with
    | None -> []
    | Some ck ->
      (* every queried predicate materializes a breaker; only the ones
         that saw failures are part of the trouble story *)
      List.filter
        (fun (br : Ledger.breaker_info) ->
          br.Ledger.b_consecutive > 0 || br.Ledger.b_opened)
        ck.Ledger.ck_breakers
  in
  (match last_checkpoint evs with
  | Some ck
    when ck.Ledger.ck_failures <> [] || tripped <> []
         || ck.Ledger.ck_guard.Ledger.g_aborted > 0
         || ck.Ledger.ck_guard.Ledger.g_retried > 0
         || ck.Ledger.ck_guard.Ledger.g_captured > 0
         || ck.Ledger.ck_guard.Ledger.g_quarantined > 0
         || ck.Ledger.ck_store.Ledger.st_corrupted > 0 ->
    let g = ck.Ledger.ck_guard in
    pr "\n--- Robustness ---\n";
    pr
      "guard: %d completed, %d aborted, %d retried, %d deadline \
       expiration%s, %d breaker trip%s (%d skip%s), %d contained \
       exception%s, %d quarantined\n"
      g.Ledger.g_completed g.Ledger.g_aborted g.Ledger.g_retried
      g.Ledger.g_deadline_expired
      (if g.Ledger.g_deadline_expired = 1 then "" else "s")
      g.Ledger.g_breaker_trips
      (if g.Ledger.g_breaker_trips = 1 then "" else "s")
      g.Ledger.g_breaker_skips
      (if g.Ledger.g_breaker_skips = 1 then "" else "s")
      g.Ledger.g_captured
      (if g.Ledger.g_captured = 1 then "" else "s")
      g.Ledger.g_quarantined;
    if ck.Ledger.ck_failures <> [] then begin
      pr "failure journal (%d entr%s, oldest first):\n"
        (List.length ck.Ledger.ck_failures)
        (if List.length ck.Ledger.ck_failures = 1 then "y" else "ies");
      List.iter
        (fun (sid, code) -> pr "  s%-4d %s\n" sid code)
        ck.Ledger.ck_failures
    end;
    if tripped <> [] then begin
      pr "circuit breakers (with failures):\n";
      List.iter
        (fun (br : Ledger.breaker_info) ->
          pr "  s%-4d %d consecutive failure%s, %s\n" br.Ledger.b_sid
            br.Ledger.b_consecutive
            (if br.Ledger.b_consecutive = 1 then "" else "s")
            (if br.Ledger.b_opened then
               "OPEN (its verifications were skipped)"
             else "closed"))
        tripped
    end;
    let st = ck.Ledger.ck_store in
    if st.Ledger.st_corrupted > 0 then
      pr
        "store: %d corrupted entr%s detected and quarantined (each was \
         re-verified live; the verdicts above are unaffected)\n"
        st.Ledger.st_corrupted
        (if st.Ledger.st_corrupted = 1 then "y" else "ies")
  | _ -> ());
  (match final_of evs with
  | Some f ->
    pr "\n--- Outcome ---\n";
    pr "root cause %s after %d iteration%s: %d implicit edge%s, \
       %d verifications (%d queries), %d/%d prunings answered\n"
      (if f.found then "FOUND" else "not found")
      f.iterations
      (if f.iterations = 1 then "" else "s")
      f.f_edges
      (if f.f_edges = 1 then "" else "s")
      f.verifications f.queries f.user_prunings f.total_prunings;
    (match f.os_chain with
    | Some chain ->
      pr "shortest dependence chain to the wrong output: %s\n"
        (String.concat " -> " (List.map string_of_int chain))
    | None -> ());
    (match f.degraded with
    | Some d ->
      pr "DEGRADED: %s\n" d;
      pr
        "  the candidate set is best-effort: some verifications never \
         completed,\n  so missing implicit edges may hide the root \
         cause\n"
    | None -> ());
    if not f.found then begin
      (* Why "not located" happened, as far as the evidence shows. *)
      let skips =
        match last_checkpoint evs with
        | Some ck -> ck.Ledger.ck_guard.Ledger.g_breaker_skips
        | None -> 0
      in
      match locate_of evs with
      | Some (root_sids, _, max_iterations)
        when root_sids <> [] && root_sids <> [ -1 ] ->
        pr
          "not located: the seeded root cause (sid%s %s) was still \
           outside the slice when the search stopped"
          (if List.length root_sids = 1 then "" else "s")
          (String.concat ", " (List.map string_of_int root_sids));
        if f.iterations >= max_iterations then
          pr " (the iteration cap of %d was reached)" max_iterations;
        pr "\n";
        if skips > 0 then
          pr
            "  %d verification%s skipped by open breakers — an edge \
             behind one of them could be the missing link\n"
            skips
            (if skips = 1 then " was" else "s were")
      | _ ->
        pr
          "not located: no ground-truth root line was given, so the \
           search ran to exhaustion and reports the final candidate set\n"
    end
  | None ->
    pr "\n(no final record — ledger is incomplete";
    (match lineage with
    | Some _ ->
      pr
        ": this is a killed run's journal; resume it to completion or \
         inspect it with exom recover"
    | None -> ());
    pr ")\n");
  Buffer.contents b

let dot evs =
  let nodes = Hashtbl.create 16 in
  let add (i : Ledger.inst) shape fill =
    if not (Hashtbl.mem nodes i.idx) then
      Hashtbl.add nodes i.idx
        (i.idx, Printf.sprintf "line %d\n#%d.%d" i.line i.idx i.occ, shape, fill)
  in
  (match session_of evs with
  | Some s -> add s.wrong "doubleoctagon" (Some "#ffd0d0")
  | None -> ());
  let strong = ref [] and weak = ref [] in
  List.iter
    (function
      | Ledger.Edge { ep; eu; strength; _ } ->
        add ep "diamond" None;
        add eu "box" None;
        let pair = (ep.idx, eu.idx) in
        if strength = "strong" then strong := pair :: !strong
        else weak := pair :: !weak
      | _ -> ())
    evs;
  let node_list =
    Hashtbl.fold (fun _ n acc -> n :: acc) nodes []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
  in
  Dot.render_causal ~nodes:node_list ~strong:(List.rev !strong)
    ~weak:(List.rev !weak)
