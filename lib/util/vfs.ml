(* The checked I/O façade: one chokepoint for every persistence path.
   Real filesystem errors come back as typed [Error]s instead of
   unwinding the caller, and an optional seed-deterministic chaos plan
   injects storage faults at the same boundaries — so the degradation
   contracts of every consumer can be stormed and audited. *)

type op = Write | Fsync | Rename | Close | Mkdir | Read

type fault = Enospc | Eio | Short_write | Torn_rename

type error = {
  ve_op : op;
  ve_path : string;
  ve_fault : fault option;
  ve_msg : string;
}

exception Io_error of error

let op_to_string = function
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Close -> "close"
  | Mkdir -> "mkdir"
  | Read -> "read"

let fault_to_string = function
  | Enospc -> "ENOSPC"
  | Eio -> "EIO"
  | Short_write -> "short write"
  | Torn_rename -> "torn rename"

let error_message e =
  Printf.sprintf "vfs %s(%s): %s" (op_to_string e.ve_op) e.ve_path e.ve_msg

(* {2 Chaos plans} *)

(* The same self-contained integer mixer as [Exom_interp.Chaos] (no
   [Random], whose global state would make seeds replay differently
   across processes): two rounds of the xorshift-multiply finalizer,
   masked to stay positive. *)
let mix x =
  let m = 0x45d9f3b in
  let x = x land max_int in
  let x = (x lxor (x lsr 16)) * m land max_int in
  let x = (x lxor (x lsr 16)) * m land max_int in
  x lxor (x lsr 16)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

module Io_chaos = struct
  type kind =
    | Seeded of { rate : int }
    | Targeted of { t_op : op; t_substr : string; t_after : int; t_fault : fault }

  type plan = {
    p_seed : int;
    p_kind : kind;
    p_budget : int;  (* max injected faults, process-wide *)
    p_per_path : int;  (* max injected faults per destination path *)
  }

  let of_seed ?(rate = 7) ?(budget = max_int) ?(per_path = 1) seed =
    if rate < 1 then invalid_arg "Io_chaos.of_seed: rate must be >= 1";
    if budget < 0 then invalid_arg "Io_chaos.of_seed: budget must be >= 0";
    if per_path < 1 then invalid_arg "Io_chaos.of_seed: per_path must be >= 1";
    { p_seed = seed; p_kind = Seeded { rate }; p_budget = budget;
      p_per_path = per_path }

  let targeted ~op ~path_substr ~after fault =
    if after < 1 then invalid_arg "Io_chaos.targeted: after must be >= 1";
    { p_seed = 0;
      p_kind = Targeted { t_op = op; t_substr = path_substr; t_after = after;
                          t_fault = fault };
      p_budget = 1;
      p_per_path = max_int }

  let describe p =
    match p.p_kind with
    | Seeded { rate } ->
      Printf.sprintf "io-chaos(seed=%d, rate=1/%d, per-path=%d%s)" p.p_seed
        rate p.p_per_path
        (if p.p_budget = max_int then ""
         else Printf.sprintf ", budget=%d" p.p_budget)
    | Targeted t ->
      Printf.sprintf "io-chaos(%s on %s #%d matching %S)"
        (fault_to_string t.t_fault) (op_to_string t.t_op) t.t_after t.t_substr
end

(* {2 Decision state}

   Mutex-protected: writes are coordinator-side by discipline, but the
   serve listener domain persists request files concurrently with the
   service loop. *)

let lock = Mutex.create ()
let plan : Io_chaos.plan option ref = ref None
let seq = ref 0  (* chaos-eligible operations consulted since [arm] *)
let target_matches = ref 0
let plan_injected = ref 0  (* injections charged to the armed plan's budget *)
let path_hits : (string, int) Hashtbl.t = Hashtbl.create 16
let injected_n = ref 0
let real_n = ref 0
let acked_n = ref 0
let tally : (string, int) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm p =
  locked (fun () ->
      plan := Some p;
      seq := 0;
      target_matches := 0;
      plan_injected := 0;
      Hashtbl.reset path_hits)

let disarm () = locked (fun () -> plan := None)
let armed () = locked (fun () -> !plan <> None)

type counters = { c_injected : int; c_real : int; c_acked : int }

let counters () =
  locked (fun () ->
      { c_injected = !injected_n; c_real = !real_n; c_acked = !acked_n })

let reset_counters () =
  locked (fun () ->
      injected_n := 0;
      real_n := 0;
      acked_n := 0;
      Hashtbl.reset tally)

let ack e ~by =
  locked (fun () ->
      if e.ve_fault <> None then incr acked_n;
      Hashtbl.replace tally by
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally by)))

let ack_tally () =
  locked (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
      |> List.sort compare)

let op_code = function
  | Write -> 1
  | Fsync -> 2
  | Rename -> 3
  | Close -> 4
  | Mkdir -> 5
  | Read -> 6

(* Which fault kinds make sense at which boundary. *)
let kind_for o h =
  match o with
  | Write -> (match h mod 3 with 0 -> Enospc | 1 -> Eio | _ -> Short_write)
  | Fsync | Close | Mkdir -> if h mod 2 = 0 then Enospc else Eio
  | Rename -> if h mod 2 = 0 then Eio else Torn_rename
  | Read -> Eio

(* One chaos decision: [Some fault] when the armed plan fires for this
   (op, destination path), subject to the global budget and the
   per-path budget.  Reads never fault (outside the taxonomy). *)
let decide o path =
  if o = Read then None
  else
    locked (fun () ->
        match !plan with
        | None -> None
        | Some p ->
          if !plan_injected >= p.Io_chaos.p_budget then None
          else begin
            incr seq;
            let fire =
              match p.Io_chaos.p_kind with
              | Io_chaos.Targeted { t_op; t_substr; t_after; t_fault } ->
                if t_op = o && contains path t_substr then begin
                  incr target_matches;
                  if !target_matches = t_after then Some t_fault else None
                end
                else None
              | Io_chaos.Seeded { rate } ->
                let h =
                  mix
                    (p.Io_chaos.p_seed
                    lxor (!seq * 0x2545f491)
                    lxor (op_code o * 0x9e3779b))
                in
                if h mod rate = 0 then
                  Some (kind_for o (mix (h lxor p.Io_chaos.p_seed)))
                else None
            in
            match fire with
            | Some f
              when Option.value ~default:0 (Hashtbl.find_opt path_hits path)
                   < p.Io_chaos.p_per_path ->
              Hashtbl.replace path_hits path
                (1 + Option.value ~default:0 (Hashtbl.find_opt path_hits path));
              incr injected_n;
              incr plan_injected;
              Some f
            | Some _ | None -> None
          end)

let injected o path f =
  {
    ve_op = o;
    ve_path = path;
    ve_fault = Some f;
    ve_msg = Printf.sprintf "injected %s (io-chaos)" (fault_to_string f);
  }

let real o path msg =
  locked (fun () -> incr real_n);
  { ve_op = o; ve_path = path; ve_fault = None; ve_msg = msg }

(* Run [f], mapping real filesystem exceptions to [Error]. *)
let catching o path f =
  match f () with
  | v -> Ok v
  | exception Sys_error m -> Error (real o path m)
  | exception Unix.Unix_error (e, fn, _) ->
    Error (real o path (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
  | exception End_of_file -> Error (real o path "unexpected end of file")

let probe o path = Option.map (fun f -> injected o path f) (decide o path)

let get_ok = function Ok () -> () | Error e -> raise (Io_error e)

(* {2 Checked operations} *)

let ensure_dir d =
  if Sys.file_exists d then Ok ()
  else
    match probe Mkdir d with
    | Some e -> Error e
    | None -> (
      match catching Mkdir d (fun () -> Sys.mkdir d 0o755) with
      | Ok () -> Ok ()
      | Error _ when Sys.file_exists d -> Ok ()  (* racing creator won *)
      | Error e -> Error e)

let read_file path =
  catching Read path (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let rename src dst =
  match probe Rename dst with
  | Some ({ ve_fault = Some Torn_rename; _ } as e) ->
    (* the rename itself happens; only its durability is in doubt *)
    (try Sys.rename src dst with Sys_error _ -> ());
    Error e
  | Some e -> Error e
  | None -> catching Rename dst (fun () -> Sys.rename src dst)

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

let write_file_atomic ?(fsync = false) ?tmp path content =
  let tmp =
    match tmp with
    | Some t -> t
    | None -> Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
  in
  match decide Write path with
  | Some Short_write ->
    (* only a prefix reached the temp; the torn temp remains, like a
       real ENOSPC mid-write under a crashed cleanup *)
    (try
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
         (fun () ->
           output_string oc (String.sub content 0 (String.length content / 2)))
     with Sys_error _ -> ());
    Error (injected Write path Short_write)
  | Some f -> Error (injected Write path f)  (* ENOSPC/EIO: nothing written *)
  | None -> (
    match
      catching Write path (fun () ->
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc content;
              if fsync then begin
                flush oc;
                Unix.fsync (Unix.descr_of_out_channel oc)
              end))
    with
    | Error e ->
      remove_quietly tmp;
      Error e
    | Ok () -> (
      match probe Close path with
      | Some e -> Error e  (* the torn temp remains *)
      | None -> (
        match if fsync then probe Fsync path else None with
        | Some e ->
          remove_quietly tmp;
          Error e
        | None -> (
          match rename tmp path with
          | Ok () -> Ok ()
          | Error ({ ve_fault = Some Torn_rename; _ } as e) -> Error e
          | Error ({ ve_fault = Some _; _ } as e) -> Error e  (* temp remains *)
          | Error e ->
            remove_quietly tmp;
            Error e))))

let append ?(fsync = true) path data =
  match decide Write path with
  | Some Short_write ->
    (try
       let fd =
         Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
       in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           ignore (Unix.write_substring fd data 0 (String.length data / 2)))
     with Unix.Unix_error _ -> ());
    Error (injected Write path Short_write)
  | Some f -> Error (injected Write path f)
  | None -> (
    match
      catching Write path (fun () ->
          let fd =
            Unix.openfile path
              [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
              0o644
          in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              let n = Unix.write_substring fd data 0 (String.length data) in
              if n <> String.length data then failwith "short write";
              if fsync then Unix.fsync fd))
    with
    | Error e -> Error e
    | exception Failure m -> Error (real Write path m)
    | Ok () -> (
      match if fsync then probe Fsync path else None with
      | Some e -> Error e  (* appended, durability unknown *)
      | None -> Ok ()))

let sync_channel path oc =
  match catching Fsync path (fun () -> flush oc) with
  | Error e -> Error e
  | Ok () -> (
    match probe Fsync path with
    | Some e -> Error e
    | None ->
      catching Fsync path (fun () ->
          Unix.fsync (Unix.descr_of_out_channel oc)))
