type t = { factor : int; max_retries : int; cap_factor : int }

let make ~factor ~max_retries ~cap_factor =
  if factor < 2 then invalid_arg "Backoff.make: factor must be >= 2";
  if max_retries < 0 then invalid_arg "Backoff.make: max_retries must be >= 0";
  if cap_factor < 1 then invalid_arg "Backoff.make: cap_factor must be >= 1";
  { factor; max_retries; cap_factor }

let default = { factor = 2; max_retries = 2; cap_factor = 8 }

let none = { factor = 2; max_retries = 0; cap_factor = 1 }

(* [a * b] clamped to [max_int] instead of wrapping. *)
let mul_sat a b = if a > max_int / b then max_int else a * b

let budgets t ~base =
  if base <= 0 then invalid_arg "Backoff.budgets: base must be positive";
  let cap = mul_sat base t.cap_factor in
  let rec grow acc b k =
    if k >= t.max_retries then List.rev acc
    else
      let b' = min cap (mul_sat b t.factor) in
      if b' <= b then List.rev acc else grow (b' :: acc) b' (k + 1)
  in
  grow [ base ] base 0

let attempts t = t.max_retries + 1
