(** Budget-escalation policy for re-executions that abort on their step
    budget (the paper's verification timer).

    A switched re-execution that exhausts its budget is ambiguous: the
    switch may genuinely have sent the program into an infinite loop, or
    the timer may simply have been too tight for the rerouted execution.
    The policy answers "how many times, and how far, is the budget grown
    before the abort is accepted as final": each retry multiplies the
    budget by [factor], never exceeding [cap_factor] times the base
    budget and never more than [max_retries] escalations. *)

type t = {
  factor : int;  (** budget multiplier per escalation; [>= 2] *)
  max_retries : int;  (** escalations after the first attempt; [>= 0] *)
  cap_factor : int;
      (** ceiling, as a multiple of the base budget; [>= 1] *)
}

(** Doubling, two retries, capped at 8x: attempts run at [b], [2b], [4b]. *)
val default : t

(** No escalation: a single attempt at the base budget. *)
val none : t

(** [make ~factor ~max_retries ~cap_factor] validates the fields.
    Raises [Invalid_argument] on a factor < 2, negative retries, or a
    cap below 1. *)
val make : factor:int -> max_retries:int -> cap_factor:int -> t

(** The budget ladder for one verification: the base budget followed by
    up to [max_retries] escalations.  Always non-empty, strictly
    increasing, bounded by [base * cap_factor] (escalations that would
    no longer grow the budget are dropped, so hitting the cap early
    shortens the ladder).  Overflow-safe for any positive [base]. *)
val budgets : t -> base:int -> int list

(** [attempts t] = maximum ladder length = [max_retries + 1]. *)
val attempts : t -> int
