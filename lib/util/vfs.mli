(** The checked I/O façade: every persistence path in the system —
    store entries and manifests, ledger canonical writes and journal
    syncs, serve request files, campaign manifests and outcome rows,
    metric exports, trace dumps — goes through these operations instead
    of calling [open_out]/[Unix.fsync]/[Sys.rename] directly.

    Two things come from the single chokepoint:

    - {b Checked results.}  Real filesystem failures ([Sys_error],
      [Unix.Unix_error]: ENOSPC, EIO, EDQUOT, …) are caught and
      returned as a typed {!error} instead of unwinding the caller —
      each consumer implements an explicit degradation contract (the
      store drops to its memory tier, the ledger marks the run
      DEGRADED, the daemon sheds with [storage_unavailable], the
      campaign quarantines the shard) rather than aborting a
      localization over a cache write.
    - {b Injectable faults.}  An optional seed-deterministic
      {!Io_chaos} plan (the storage-layer sibling of
      [Exom_interp.Chaos]) injects ENOSPC / EIO / short (torn) writes /
      crash-after-rename-before-fsync at the write / fsync / rename /
      close / mkdir boundaries, under a per-path fault budget — so
      `exom chaos` can storm every persistence path and assert the
      degradation contracts actually hold.

    {b Accounting discipline.}  Every injected fault must be
    acknowledged by exactly one consumer counter ({!ack}); the chaos
    gate compares {!counters}[.injected] against [.acked] and fails on
    any silently dropped (or double-counted) fault.

    With no plan armed (the default, and always in production) every
    operation is a thin wrapper over the real syscalls: no decision
    state is consulted and behaviour is byte-identical to the direct
    calls it replaced. *)

(** The operation that failed. *)
type op = Write | Fsync | Rename | Close | Mkdir | Read

(** The injected fault taxonomy. *)
type fault =
  | Enospc  (** no space: nothing written *)
  | Eio  (** I/O error: nothing written (a torn temp file may remain) *)
  | Short_write  (** only a prefix reached the disk; the torn temp remains *)
  | Torn_rename
      (** the rename itself happened but durability is unknown — the
          crash-after-rename-before-fsync window *)

type error = {
  ve_op : op;
  ve_path : string;  (** the {e destination} path of the operation *)
  ve_fault : fault option;  (** [Some _] = injected; [None] = real OS error *)
  ve_msg : string;  (** deterministic human-readable description *)
}

(** Raised only by the [_exn] conveniences; the primary API returns
    [result]. *)
exception Io_error of error

val op_to_string : op -> string
val fault_to_string : fault -> string

(** [ve_msg], prefixed with the op and path. *)
val error_message : error -> string

(** {2 Chaos plans} *)

module Io_chaos : sig
  type plan

  (** [of_seed ?rate ?budget ?per_path seed] — a storm plan: roughly
      one in [rate] chaos-eligible operations faults (default 7), the
      fault kind drawn deterministically from the seed and the
      operation counter, capped at [budget] total injected faults
      (default: unbounded) and [per_path] faults per destination path
      (default 1, so a retry against the same path makes progress).
      Deterministic in [seed] and the operation sequence: no [Random],
      no wall clock. *)
  val of_seed : ?rate:int -> ?budget:int -> ?per_path:int -> int -> plan

  (** [targeted ~op ~path_substr ~after fault] — a surgical plan for
      tests: the [after]-th operation of kind [op] whose destination
      path contains [path_substr] fails with [fault]; everything else
      passes through.  [after] counts from 1. *)
  val targeted : op:op -> path_substr:string -> after:int -> fault -> plan

  val describe : plan -> string
end

(** Arm [plan] process-wide (replacing any armed plan) and clear the
    plan's decision state.  Thread-safe. *)
val arm : Io_chaos.plan -> unit

(** Remove the armed plan: every operation is a plain checked syscall
    again. *)
val disarm : unit -> unit

val armed : unit -> bool

(** {2 Accounting} *)

type counters = {
  c_injected : int;  (** faults injected by the armed plan *)
  c_real : int;  (** real OS errors surfaced as {!error} *)
  c_acked : int;  (** injected faults acknowledged via {!ack} *)
}

val counters : unit -> counters

(** Reset {!counters} and the {!ack_tally} (not the armed plan). *)
val reset_counters : unit -> unit

(** [ack err ~by] — the consumer that absorbed [err] names the counter
    that recorded it (e.g. ["store.io_failures"]).  Call exactly once
    per received error; the chaos gate asserts
    [counters().c_acked = counters().c_injected]. *)
val ack : error -> by:string -> unit

(** Acknowledgements so far, grouped by [~by] label, sorted. *)
val ack_tally : unit -> (string * int) list

(** {2 Checked operations}

    All return [Error _] for both injected faults and real OS errors,
    and never raise. *)

(** Create [dir] (one level) if missing; racing creators are fine. *)
val ensure_dir : string -> (unit, error) result

(** Crash-consistent write: temp file + rename, optionally fsyncing the
    temp before the rename.  [tmp] overrides the temp path (default
    [path ^ ".tmp." ^ pid]).  On [Error] the destination still holds
    its previous content (only [Torn_rename] has already renamed). *)
val write_file_atomic :
  ?fsync:bool -> ?tmp:string -> string -> string -> (unit, error) result

(** Append [data] to [path] in one [write], fsyncing after (the outcome
    row discipline).  A short write — real or injected — leaves a torn
    tail for the tolerant readers and returns [Error]. *)
val append : ?fsync:bool -> string -> string -> (unit, error) result

(** Flush [oc] and fsync its descriptor ([path] names it for the error
    report only). *)
val sync_channel : string -> out_channel -> (unit, error) result

val rename : string -> string -> (unit, error) result
val read_file : string -> (string, error) result

(** [probe op path] — consult the armed chaos plan only, without
    performing any I/O: [Some err] when a fault fires.  For call sites
    with bespoke syscall sequences (the store's O_EXCL lock files)
    that still need to sit under the storm. *)
val probe : op -> string -> error option

(** [Result.get_ok] with {!Io_error} instead of [Invalid_argument]. *)
val get_ok : (unit, error) result -> unit
