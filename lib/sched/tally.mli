(** Per-worker accounting for verification work.

    Mutable counters deliberately live in worker-local records rather
    than on the shared session: each scheduler task gets a fresh tally,
    and {!absorb} merges them on the coordinator in submission order, so
    the totals are independent of how work was spread over domains. *)

type t = {
  mutable queries : int;  (** verdicts asked for (cache hits included) *)
  mutable runs : int;  (** re-executions actually attempted *)
  mutable seconds : float;  (** wall-clock spent inside re-executions *)
}

val create : unit -> t

(** [absorb ~into t] adds [t]'s counters into [into]. *)
val absorb : into:t -> t -> unit

(** [counted t f] runs [f], charging one run and its wall-clock duration
    to [t] even when [f] raises (an injected fault aborting a
    re-execution still counts toward the tally). *)
val counted : t -> (unit -> 'a) -> 'a
