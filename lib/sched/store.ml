(* The persistent verdict store: a content-addressed cache keyed by a
   hex digest, with an in-memory LRU front and an optional on-disk tier.

   Disk layout (one file per entry, sharded by the key's first two hex
   chars to keep directories small):

     DIR/ab/<rest-of-key>

   Entry format, versioned like Trace_io so future layouts can be
   rejected instead of misread:

     #exom-store v1
     <key>
     <payload-length>
     <payload bytes>

   The key is echoed inside the entry and checked on read: a file
   renamed, truncated or swapped on disk is detected and rejected (the
   [corrupted] counter), never returned as a hit.  Writes go through a
   temp file + rename so a crash mid-write leaves no torn entry behind.

   Thread-safety: the store is coordinator-only by design — the batch
   planner resolves hits before dispatch and records results after the
   merge, so worker domains never touch it and no lock is needed. *)

let version = 1

let header = Printf.sprintf "#exom-store v%d" version

type stats = {
  mutable hits : int;  (* answered from the in-memory front *)
  mutable disk_hits : int;  (* answered from disk (then promoted) *)
  mutable misses : int;
  mutable evictions : int;  (* LRU entries dropped from memory *)
  mutable corrupted : int;  (* disk entries rejected on read *)
  mutable writes : int;  (* entries persisted to disk *)
}

let snapshot s =
  { hits = s.hits; disk_hits = s.disk_hits; misses = s.misses;
    evictions = s.evictions; corrupted = s.corrupted; writes = s.writes }

let hit_rate s =
  let total = s.hits + s.disk_hits + s.misses in
  if total = 0 then 0.0
  else float_of_int (s.hits + s.disk_hits) /. float_of_int total

(* Intrusive doubly-linked LRU list over the memory tier: [head] is the
   most recently used entry, [tail] the eviction candidate. *)
type entry = {
  e_key : string;
  mutable e_value : string;
  mutable e_prev : entry option;  (* toward head *)
  mutable e_next : entry option;  (* toward tail *)
}

type t = {
  dir : string option;
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  stats : stats;
  obs : Exom_obs.Obs.t option;
}

(* Every stats increment is mirrored into the metrics registry under
   "store.<field>", so `exom stats` shows the cache behaviour without a
   second accounting path. *)
let count t name =
  match t.obs with
  | None -> ()
  | Some obs -> Exom_obs.Obs.incr obs ("store." ^ name)

let default_capacity = 65_536

let create ?obs ?dir ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Store.create: capacity must be >= 1";
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | Some d when not (Sys.is_directory d) ->
    invalid_arg (Printf.sprintf "Store.create: %s is not a directory" d)
  | _ -> ());
  {
    dir;
    capacity;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
    stats =
      { hits = 0; disk_hits = 0; misses = 0; evictions = 0; corrupted = 0;
        writes = 0 };
    obs;
  }

let stats t = t.stats
let mem_size t = Hashtbl.length t.tbl

(* Content addressing: each part is length-prefixed before hashing so
   part boundaries cannot collide ("ab"+"c" vs "a"+"bc"). *)
let digest parts =
  let buf = Buffer.create 64 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* LRU plumbing *)

let unlink t e =
  (match e.e_prev with
  | Some p -> p.e_next <- e.e_next
  | None -> t.head <- e.e_next);
  (match e.e_next with
  | Some n -> n.e_prev <- e.e_prev
  | None -> t.tail <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_front t e =
  e.e_next <- t.head;
  (match t.head with
  | Some h -> h.e_prev <- Some e
  | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  if t.head != Some e then begin
    unlink t e;
    push_front t e
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.tbl e.e_key;
    t.stats.evictions <- t.stats.evictions + 1;
    count t "evictions"

let insert_mem t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.e_value <- value;
    touch t e
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    let e = { e_key = key; e_value = value; e_prev = None; e_next = None } in
    Hashtbl.replace t.tbl key e;
    push_front t e

(* Disk tier *)

let entry_path dir key =
  (* keys are hex digests; anything shorter still shards safely *)
  if String.length key < 3 then Filename.concat dir key
  else Filename.concat (Filename.concat dir (String.sub key 0 2))
      (String.sub key 2 (String.length key - 2))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Returns [Some payload] only for a well-formed entry whose embedded
   key matches; anything else is corruption. *)
let decode_entry ~key content =
  let fail () = None in
  match String.index_opt content '\n' with
  | None -> fail ()
  | Some i1 ->
    if String.sub content 0 i1 <> header then fail ()
    else begin
      match String.index_from_opt content (i1 + 1) '\n' with
      | None -> fail ()
      | Some i2 ->
        if String.sub content (i1 + 1) (i2 - i1 - 1) <> key then fail ()
        else begin
          match String.index_from_opt content (i2 + 1) '\n' with
          | None -> fail ()
          | Some i3 -> (
            match
              int_of_string_opt (String.sub content (i2 + 1) (i3 - i2 - 1))
            with
            | None -> fail ()
            | Some len ->
              if len < 0 || String.length content < i3 + 1 + len then fail ()
              else Some (String.sub content (i3 + 1) len))
        end
    end

let disk_find t key =
  match t.dir with
  | None -> None
  | Some dir ->
    let path = entry_path dir key in
    if not (Sys.file_exists path) then None
    else begin
      match decode_entry ~key (read_file path) with
      | Some payload -> Some payload
      | None | (exception Sys_error _) ->
        t.stats.corrupted <- t.stats.corrupted + 1;
        count t "corrupted";
        None
    end

let disk_write t key value =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = entry_path dir key in
    let shard = Filename.dirname path in
    if not (Sys.file_exists shard) then Sys.mkdir shard 0o755;
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc "%s\n%s\n%d\n%s" header key (String.length value)
          value);
    Sys.rename tmp path

let disk_add t key value =
  match t.dir with
  | None -> ()
  | Some _ ->
    disk_write t key value;
    t.stats.writes <- t.stats.writes + 1;
    count t "writes"

(* Public lookups *)

(* Like [find], but reports which tier answered — the ledger records
   whether a verdict came from the memory front or the disk tier. *)
let find_tier t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.stats.hits <- t.stats.hits + 1;
    count t "hits";
    touch t e;
    Some (e.e_value, `Mem)
  | None -> (
    match disk_find t key with
    | Some payload ->
      t.stats.disk_hits <- t.stats.disk_hits + 1;
      count t "disk_hits";
      insert_mem t key payload;
      Some (payload, `Disk)
    | None ->
      t.stats.misses <- t.stats.misses + 1;
      count t "misses";
      None)

let find t key = Option.map fst (find_tier t key)

let add t ~key value =
  insert_mem t key value;
  disk_add t key value

(* Resume support: re-populate the store from a replayed ledger without
   touching any counter — the uninterrupted run's counts are restored
   wholesale from the last checkpoint instead, so seeding must be
   invisible to the books. *)
let seed t ~key value =
  insert_mem t key value;
  disk_write t key value

let restore_stats t (s : stats) =
  let d = t.stats in
  let bump name v0 v1 =
    (* mirror the jump into the metrics registry, like live increments *)
    if v1 <> v0 then
      match t.obs with
      | None -> ()
      | Some obs -> Exom_obs.Obs.add obs ("store." ^ name) (v1 - v0)
  in
  bump "hits" d.hits s.hits;
  bump "disk_hits" d.disk_hits s.disk_hits;
  bump "misses" d.misses s.misses;
  bump "evictions" d.evictions s.evictions;
  bump "corrupted" d.corrupted s.corrupted;
  bump "writes" d.writes s.writes;
  d.hits <- s.hits;
  d.disk_hits <- s.disk_hits;
  d.misses <- s.misses;
  d.evictions <- s.evictions;
  d.corrupted <- s.corrupted;
  d.writes <- s.writes
