(* The persistent verdict store: a content-addressed cache keyed by a
   hex digest, with an in-memory LRU front and an optional on-disk tier
   that any number of processes may share.

   Disk layout (version 2, recorded in a manifest so foreign layouts
   are recognized instead of misread):

     DIR/MANIFEST              {"schema":"exom.store","version":2,"shards":N}
     DIR/shard-007/<key>       one file per entry, hash-partitioned
     DIR/shard-007.lock        advisory writer lock for that shard
     DIR/quarantine/           rejected entries and foreign layouts

   Entry format, versioned like Trace_io so future layouts can be
   rejected instead of misread:

     #exom-store v1
     <key>
     <payload-length>
     <payload bytes>

   The key is echoed inside the entry and checked on read: a file
   renamed, truncated or swapped on disk is detected, rejected (the
   [corrupted] counter) and moved into quarantine, never returned as a
   hit.  Writes go through a per-process temp file + rename so a crash
   mid-write leaves no torn entry behind.

   Multi-writer protocol: a writer takes the shard's lock file
   (O_CREAT|O_EXCL) for the duration of one entry write and unlinks it
   after.  Contended acquisitions steal the lock when the recorded
   holder pid is dead, or when the lock file is older than the lease —
   a crashed writer can never wedge the cache.  Readers never lock.
   Correctness does not hinge on the lock: entries are content
   addressed, so two writers racing on one key produce identical
   bytes, and distinct keys live in distinct files.  The lock exists to
   serialize same-shard write bursts and keep rename traffic orderly.

   Within one process the store is still coordinator-only by design —
   the batch planner resolves hits before dispatch and records results
   after the merge, so worker domains never touch it. *)

module Json = Exom_obs.Json
module Vfs = Exom_util.Vfs

let version = 1
let layout_version = 2
let default_shards = 16
let default_lease = 5.0

let header = Printf.sprintf "#exom-store v%d" version

type stats = {
  mutable hits : int;  (* answered from the in-memory front *)
  mutable disk_hits : int;  (* answered from disk (then promoted) *)
  mutable misses : int;
  mutable evictions : int;  (* LRU entries dropped from memory *)
  mutable corrupted : int;  (* disk entries rejected on read *)
  mutable writes : int;  (* entries persisted to disk *)
}

(* Operational (per-process) counters for the shared disk tier.  Not
   part of ledger checkpoints: they describe contention with other
   writers, not verdict derivation, so resume must not restore them. *)
type lock_stats = {
  mutable lock_waits : int;
  mutable lock_steals : int;
  mutable quarantined : int;
  mutable io_failures : int;
  mutable tmp_swept : int;
}

let snapshot s =
  { hits = s.hits; disk_hits = s.disk_hits; misses = s.misses;
    evictions = s.evictions; corrupted = s.corrupted; writes = s.writes }

let hit_rate s =
  let total = s.hits + s.disk_hits + s.misses in
  if total = 0 then 0.0
  else float_of_int (s.hits + s.disk_hits) /. float_of_int total

(* Intrusive doubly-linked LRU list over the memory tier: [head] is the
   most recently used entry, [tail] the eviction candidate. *)
type entry = {
  e_key : string;
  mutable e_value : string;
  mutable e_prev : entry option;  (* toward head *)
  mutable e_next : entry option;  (* toward tail *)
}

(* The disk tier; [shards] always comes from the manifest, so every
   process sharing the directory partitions identically. *)
type disk = { root : string; shards : int; lease : float }

type t = {
  disk : disk option;
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  stats : stats;
  locks : lock_stats;
  obs : Exom_obs.Obs.t option;
}

(* Every stats increment is mirrored into the metrics registry under
   "store.<field>", so `exom stats` shows the cache behaviour without a
   second accounting path. *)
let count_obs obs name =
  match obs with
  | None -> ()
  | Some obs -> Exom_obs.Obs.incr obs ("store." ^ name)

let count t name = count_obs t.obs name

let default_capacity = 65_536

let stats t = t.stats
let lock_stats t = t.locks
let mem_size t = Hashtbl.length t.tbl
let shard_count t = match t.disk with None -> 0 | Some d -> d.shards

(* Content addressing: each part is length-prefixed before hashing so
   part boundaries cannot collide ("ab"+"c" vs "a"+"bc"). *)
let digest parts =
  let buf = Buffer.create 64 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* LRU plumbing *)

let unlink t e =
  (match e.e_prev with
  | Some p -> p.e_next <- e.e_next
  | None -> t.head <- e.e_next);
  (match e.e_next with
  | Some n -> n.e_prev <- e.e_prev
  | None -> t.tail <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_front t e =
  e.e_next <- t.head;
  (match t.head with
  | Some h -> h.e_prev <- Some e
  | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  if t.head != Some e then begin
    unlink t e;
    push_front t e
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.tbl e.e_key;
    t.stats.evictions <- t.stats.evictions + 1;
    count t "evictions"

let insert_mem t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.e_value <- value;
    touch t e
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    let e = { e_key = key; e_value = value; e_prev = None; e_next = None } in
    Hashtbl.replace t.tbl key e;
    push_front t e

(* Disk tier: layout helpers *)

let manifest_name = "MANIFEST"
let quarantine_name = "quarantine"
let manifest_path root = Filename.concat root manifest_name
let shard_name i = Printf.sprintf "shard-%03d" i
let shard_dir root i = Filename.concat root (shard_name i)
let lock_path root i = Filename.concat root (shard_name i ^ ".lock")

let ensure_dir d =
  if not (Sys.file_exists d) then
    try Sys.mkdir d 0o755
    with Sys_error _ -> ()  (* racing creator won; that's fine *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Hash partition: the key's first two hex chars (keys are hex digests;
   anything else falls back to a structural hash). *)
let shard_index ~shards key =
  let h =
    if String.length key >= 2 then
      match (hex_val key.[0], hex_val key.[1]) with
      | Some a, Some b -> (a * 16) + b
      | _ -> Hashtbl.hash key land 0xff
    else Hashtbl.hash key land 0xff
  in
  h mod shards

let entry_path d key = Filename.concat (shard_dir d.root (shard_index ~shards:d.shards key)) key

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Degradation contract: a persist that fails — really or under an
   injected storm — downgrades the affected entry (or, for the
   manifest, the whole tier) to memory-only and counts [io_failures];
   it never aborts a localization over a cache write. *)
let note_io_failure ~obs ~locks e ~by =
  Vfs.ack e ~by;
  locks.io_failures <- locks.io_failures + 1;
  count_obs obs "io_failures"

(* Quarantine: move a suspect file (or whole foreign item) aside so it
   cannot fail — or be misread — again.  Renames are best-effort: a
   concurrent process may have moved it first. *)
let quarantine_seq = ref 0

let quarantine_item ~note root src_name =
  let q = Filename.concat root quarantine_name in
  ensure_dir q;
  incr quarantine_seq;
  let dst =
    Filename.concat q
      (Printf.sprintf "%s.%d.%d" (Filename.basename src_name) (Unix.getpid ())
         !quarantine_seq)
  in
  match Sys.rename src_name dst with
  | () -> note ()
  | exception Sys_error _ -> ()

(* Advisory shard locks.

   A lock is a file created with O_CREAT|O_EXCL holding the owner pid.
   Steal rules, in order: holder pid provably dead -> steal now; lock
   older than the lease -> steal regardless (covers unreadable pids,
   pid reuse and wedged-but-alive holders).  Stealing renames the lock
   to a unique name before unlinking, so two stealers cannot both
   claim to have removed the same lock. *)

let lock_sleep = 0.002

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true

let holder_pid path =
  match read_file path with
  | content -> int_of_string_opt (String.trim content)
  | exception _ -> None

let lock_age path =
  match Unix.stat path with
  | st -> Some (Unix.gettimeofday () -. st.Unix.st_mtime)
  | exception Unix.Unix_error _ -> None

let steal_lock path =
  incr quarantine_seq;
  let stale = Printf.sprintf "%s.stale.%d.%d" path (Unix.getpid ()) !quarantine_seq in
  match Sys.rename path stale with
  | () ->
    (try Sys.remove stale with Sys_error _ -> ());
    true
  | exception Sys_error _ -> false  (* someone else got there first *)

let acquire_lock ~lease ~on_wait ~on_steal path =
  let waited = ref false in
  let rec loop () =
    match Unix.openfile path [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 with
    | fd ->
      let pid = string_of_int (Unix.getpid ()) in
      (try ignore (Unix.write_substring fd pid 0 (String.length pid))
       with Unix.Unix_error _ -> ());
      Unix.close fd;
      if !waited then on_wait ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      let steal =
        (match holder_pid path with
        | Some pid -> not (pid_alive pid)
        | None -> false)
        ||
        match lock_age path with Some age -> age > lease | None -> false
      in
      if steal then begin
        if steal_lock path then on_steal ()
      end
      else begin
        waited := true;
        Unix.sleepf lock_sleep
      end;
      loop ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      (* parent directory raced away (e.g. quarantined); recreate *)
      ensure_dir (Filename.dirname path);
      loop ()
  in
  loop ()

let release_lock path = try Sys.remove path with Sys_error _ -> ()

let with_lock t d i f =
  let lock = lock_path d.root i in
  (* the lock file creation sits under the chaos plan too: an injected
     fault on it degrades to a lockless write — the lock is advisory
     (entries are content addressed), so correctness survives; only
     same-shard write bursts lose their serialization *)
  match Vfs.probe Vfs.Write lock with
  | Some e ->
    note_io_failure ~obs:t.obs ~locks:t.locks e ~by:"store.io_failures";
    f ()
  | None ->
    acquire_lock ~lease:d.lease
      ~on_wait:(fun () ->
        t.locks.lock_waits <- t.locks.lock_waits + 1;
        count t "lock_waits")
      ~on_steal:(fun () ->
        t.locks.lock_steals <- t.locks.lock_steals + 1;
        count t "lock_steals")
      lock;
    Fun.protect ~finally:(fun () -> release_lock lock) f

(* Orphan sweep: a stealer that crashes between [steal_lock]'s rename
   and remove leaves `X.lock.stale.<pid>.<seq>` behind, and a writer
   killed mid-entry leaves `<key>.tmp.<pid>`.  Both are garbage the
   moment their embedded pid is dead: sweep them on open (under the
   init lock) so crashed writers cannot accumulate litter, and count
   the sweep in [lock_stats]. *)

let suffix_after name marker =
  let ml = String.length marker and nl = String.length name in
  let rec find i best =
    if i + ml > nl then best
    else find (i + 1) (if String.sub name i ml = marker then Some (i + ml) else best)
  in
  Option.map (fun i -> String.sub name i (nl - i)) (find 0 None)

(* [Some true] when [name] carries [marker] and its embedded pid is
   provably dead (or unreadable — a writer that never got to write a
   pid is not alive to mind). *)
let orphaned_by name marker =
  match suffix_after name marker with
  | None -> None
  | Some rest ->
    let pid_str =
      match String.index_opt rest '.' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    Some
      (match int_of_string_opt pid_str with
      | Some pid -> not (pid_alive pid)
      | None -> true)

let sweep_stale_tmps ~note root =
  let sweep_file dir name =
    let orphan =
      match orphaned_by name ".stale." with
      | Some d -> d
      | None -> Option.value ~default:false (orphaned_by name ".tmp.")
    in
    if orphan then
      match Sys.remove (Filename.concat dir name) with
      | () -> note ()
      | exception Sys_error _ -> ()  (* a racing sweeper won *)
  in
  match Sys.readdir root with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        let path = Filename.concat root name in
        match Sys.is_directory path with
        | true -> (
          (* quarantined evidence is kept as-is *)
          if name <> quarantine_name then
            match Sys.readdir path with
            | exception Sys_error _ -> ()
            | inner -> Array.iter (fun n -> sweep_file path n) inner)
        | false -> sweep_file root name
        | exception Sys_error _ -> ())
      names

(* Manifest: one JSON line naming the layout.  A directory whose
   manifest is missing (but non-empty), unparsable, or from a different
   schema/version is a foreign layout: its contents are quarantined and
   the directory re-initialized — the cache must never abort, and must
   never guess at an alien partitioning. *)

let render_manifest shards =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.Str "exom.store");
         ("version", Json.Num (float_of_int layout_version));
         ("shards", Json.Num (float_of_int shards)) ])
  ^ "\n"

let parse_manifest content =
  match Json.parse (String.trim content) with
  | Error e -> Error ("unparsable manifest: " ^ e)
  | Ok j -> (
    match
      ( Json.member "schema" j,
        Json.member "version" j,
        Json.member "shards" j )
    with
    | Some (Json.Str "exom.store"), Some (Json.Num v), Some (Json.Num n)
      when int_of_float v = layout_version ->
      let shards = int_of_float n in
      if shards >= 1 && shards <= 256 then Ok shards
      else Error (Printf.sprintf "manifest shard count %d out of range" shards)
    | Some (Json.Str "exom.store"), Some (Json.Num v), _ ->
      Error (Printf.sprintf "manifest layout version %d (want %d)"
               (int_of_float v) layout_version)
    | _ -> Error "foreign manifest")

(* Adopt or initialize a store directory.  Serialized across processes
   by an init lock so two concurrent creators agree on one manifest.
   Returns [None] — memory-tier only — when the directory (or its
   manifest) cannot be persisted: the cache degrades, never aborts. *)
let open_disk ~obs ~locks ~shards ~lease root =
  match Vfs.ensure_dir root with
  | Error e ->
    note_io_failure ~obs ~locks e ~by:"store.io_failures";
    None
  | Ok () ->
    if not (Sys.is_directory root) then
      invalid_arg (Printf.sprintf "Store.create: %s is not a directory" root);
    let note () =
      locks.quarantined <- locks.quarantined + 1;
      count_obs obs "quarantined"
    in
    let init_lock = Filename.concat root ".init.lock" in
    acquire_lock ~lease
      ~on_wait:(fun () ->
        locks.lock_waits <- locks.lock_waits + 1;
        count_obs obs "lock_waits")
      ~on_steal:(fun () ->
        locks.lock_steals <- locks.lock_steals + 1;
        count_obs obs "lock_steals")
      init_lock;
    Fun.protect
      ~finally:(fun () -> release_lock init_lock)
      (fun () ->
        sweep_stale_tmps
          ~note:(fun () ->
            locks.tmp_swept <- locks.tmp_swept + 1;
            count_obs obs "tmp_swept")
          root;
        let mpath = manifest_path root in
        let adopted =
          if Sys.file_exists mpath then
            match parse_manifest (read_file mpath) with
            | Ok shards -> Some shards
            | Error _ ->
              (* foreign or corrupt manifest: quarantine it and every
                 shard laid out under it *)
              quarantine_item ~note root mpath;
              None
          else None
        in
        match adopted with
        | Some shards -> Some { root; shards; lease }
        | None ->
          (* no usable manifest: any existing content is a foreign or
             legacy layout — move it aside wholesale, then initialize *)
          Array.iter
            (fun name ->
              if
                name <> quarantine_name
                && name <> Filename.basename init_lock
                && not (Filename.check_suffix name ".lock")
              then quarantine_item ~note root (Filename.concat root name))
            (Sys.readdir root);
          match Vfs.write_file_atomic mpath (render_manifest shards) with
          | Ok () -> Some { root; shards; lease }
          | Error e ->
            (* no manifest means no agreed partitioning: this process
               runs memory-only rather than guess *)
            note_io_failure ~obs ~locks e ~by:"store.io_failures";
            None)

let create ?obs ?dir ?(capacity = default_capacity) ?(shards = default_shards)
    ?(lease = default_lease) () =
  if capacity < 1 then invalid_arg "Store.create: capacity must be >= 1";
  if shards < 1 || shards > 256 then
    invalid_arg "Store.create: shards must be in [1, 256]";
  if lease <= 0.0 then invalid_arg "Store.create: lease must be positive";
  let locks =
    { lock_waits = 0; lock_steals = 0; quarantined = 0; io_failures = 0;
      tmp_swept = 0 }
  in
  let disk = Option.bind dir (open_disk ~obs ~locks ~shards ~lease) in
  {
    disk;
    capacity;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
    stats =
      { hits = 0; disk_hits = 0; misses = 0; evictions = 0; corrupted = 0;
        writes = 0 };
    locks;
    obs;
  }

(* Returns [Some payload] only for a well-formed entry whose embedded
   key matches; anything else is corruption. *)
let decode_entry ~key content =
  let fail () = None in
  match String.index_opt content '\n' with
  | None -> fail ()
  | Some i1 ->
    if String.sub content 0 i1 <> header then fail ()
    else begin
      match String.index_from_opt content (i1 + 1) '\n' with
      | None -> fail ()
      | Some i2 ->
        if String.sub content (i1 + 1) (i2 - i1 - 1) <> key then fail ()
        else begin
          match String.index_from_opt content (i2 + 1) '\n' with
          | None -> fail ()
          | Some i3 -> (
            match
              int_of_string_opt (String.sub content (i2 + 1) (i3 - i2 - 1))
            with
            | None -> fail ()
            | Some len ->
              if len < 0 || String.length content < i3 + 1 + len then fail ()
              else Some (String.sub content (i3 + 1) len))
        end
    end

let disk_find t key =
  match t.disk with
  | None -> None
  | Some d ->
    let path = entry_path d key in
    if not (Sys.file_exists path) then None
    else begin
      match decode_entry ~key (read_file path) with
      | Some payload -> Some payload
      | None | (exception Sys_error _) ->
        t.stats.corrupted <- t.stats.corrupted + 1;
        count t "corrupted";
        (* move it aside so it cannot fail (or collide) again *)
        quarantine_item
          ~note:(fun () ->
            t.locks.quarantined <- t.locks.quarantined + 1;
            count t "quarantined")
          d.root path;
        None
    end

(* Returns whether the entry actually reached the disk tier.  A failed
   persist — real or injected — downgrades this entry to memory-only
   (the caller just inserted it there) and counts [io_failures]; a
   localization never aborts over a cache write. *)
let disk_write t key value =
  match t.disk with
  | None -> false
  | Some d ->
    let i = shard_index ~shards:d.shards key in
    (match Vfs.ensure_dir (shard_dir d.root i) with
    | Ok () -> ()
    | Error e -> note_io_failure ~obs:t.obs ~locks:t.locks e ~by:"store.io_failures");
    with_lock t d i (fun () ->
        let path = entry_path d key in
        let content =
          Printf.sprintf "%s\n%s\n%d\n%s" header key (String.length value) value
        in
        match Vfs.write_file_atomic path content with
        | Ok () -> true
        | Error e ->
          note_io_failure ~obs:t.obs ~locks:t.locks e ~by:"store.io_failures";
          false)

let disk_add t key value =
  match t.disk with
  | None -> ()
  | Some _ ->
    if disk_write t key value then begin
      t.stats.writes <- t.stats.writes + 1;
      count t "writes"
    end

(* Public lookups *)

(* Like [find], but reports which tier answered — the ledger records
   whether a verdict came from the memory front or the disk tier. *)
let find_tier t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.stats.hits <- t.stats.hits + 1;
    count t "hits";
    touch t e;
    Some (e.e_value, `Mem)
  | None -> (
    match disk_find t key with
    | Some payload ->
      t.stats.disk_hits <- t.stats.disk_hits + 1;
      count t "disk_hits";
      insert_mem t key payload;
      Some (payload, `Disk)
    | None ->
      t.stats.misses <- t.stats.misses + 1;
      count t "misses";
      None)

let find t key = Option.map fst (find_tier t key)

let add t ~key value =
  insert_mem t key value;
  disk_add t key value

(* Resume support: re-populate the store from a replayed ledger without
   touching any counter — the uninterrupted run's counts are restored
   wholesale from the last checkpoint instead, so seeding must be
   invisible to the books. *)
let seed t ~key value =
  insert_mem t key value;
  ignore (disk_write t key value)

let restore_stats t (s : stats) =
  let d = t.stats in
  let bump name v0 v1 =
    (* mirror the jump into the metrics registry, like live increments *)
    if v1 <> v0 then
      match t.obs with
      | None -> ()
      | Some obs -> Exom_obs.Obs.add obs ("store." ^ name) (v1 - v0)
  in
  bump "hits" d.hits s.hits;
  bump "disk_hits" d.disk_hits s.disk_hits;
  bump "misses" d.misses s.misses;
  bump "evictions" d.evictions s.evictions;
  bump "corrupted" d.corrupted s.corrupted;
  bump "writes" d.writes s.writes;
  d.hits <- s.hits;
  d.disk_hits <- s.disk_hits;
  d.misses <- s.misses;
  d.evictions <- s.evictions;
  d.corrupted <- s.corrupted;
  d.writes <- s.writes
