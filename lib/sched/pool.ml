(* A fixed-size OCaml 5 domain pool with one shared work queue.

   Sizing: [jobs] is the total degree of parallelism.  The coordinator
   participates in draining the queue during {!run}, so [jobs - 1]
   domains are spawned; [jobs = 1] degenerates to inline sequential
   execution with no domains, no locks taken and no scheduling overhead
   — the property the determinism tests lean on (`-j 1` is *exactly*
   the sequential engine, not a one-worker simulation of it).

   Tasks must not raise: the layer above (see {!Batch}) wraps every
   task so exceptions are captured into its result slot.  A raise that
   slips through anyway is swallowed here rather than killing the
   worker domain — losing one task's result is recoverable upstream,
   losing a domain of a fixed-size pool is not. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_cond : Condition.t;  (* queue became non-empty, or shutdown *)
  done_cond : Condition.t;  (* pending reached zero *)
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* tasks queued or running *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let default_jobs () =
  match Sys.getenv_opt "EXOM_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some 0 -> Domain.recommended_domain_count ()
    | _ -> 1)

let finish_task t =
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.done_cond

let rec worker_loop t =
  (* called with the mutex held *)
  if t.stopped then Mutex.unlock t.mutex
  else
    match Queue.take_opt t.queue with
    | Some task ->
      Mutex.unlock t.mutex;
      (try task () with _ -> ());
      Mutex.lock t.mutex;
      finish_task t;
      worker_loop t
    | None ->
      Condition.wait t.work_cond t.mutex;
      worker_loop t

let create ?(jobs = 1) () =
  let jobs =
    if jobs = 0 then Domain.recommended_domain_count ()
    else if jobs < 0 then invalid_arg "Pool.create: jobs must be >= 0"
    else jobs
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stopped = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (max 0 (jobs - 1)) (fun _ ->
        Domain.spawn (fun () ->
            Mutex.lock t.mutex;
            worker_loop t));
  t

(* The coordinator's share of the drain: run queued tasks until the
   queue is empty, then wait for in-flight tasks on other domains. *)
let rec drive t =
  (* called with the mutex held *)
  match Queue.take_opt t.queue with
  | Some task ->
    Mutex.unlock t.mutex;
    (try task () with _ -> ());
    Mutex.lock t.mutex;
    finish_task t;
    drive t
  | None ->
    if t.pending > 0 then begin
      Condition.wait t.done_cond t.mutex;
      drive t
    end
    else Mutex.unlock t.mutex

(* The obs record is identical across all three execution paths below
   (inline, sequential, pooled), so the metric tree stays independent of
   the job count. *)
let record_submission obs tasks =
  match obs with
  | None -> ()
  | Some obs ->
    let n = List.length tasks in
    Exom_obs.Obs.add obs "pool.tasks" n;
    Exom_obs.Obs.gauge obs "pool.queue_depth" n

let run ?obs t tasks =
  if t.stopped then invalid_arg "Pool.run: pool is shut down";
  record_submission obs tasks;
  match tasks with
  | [] -> ()
  | [ task ] -> (try task () with _ -> ())
  | _ when t.jobs <= 1 -> List.iter (fun task -> try task () with _ -> ()) tasks
  | _ ->
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    List.iter (fun task -> Queue.add task t.queue) tasks;
    t.pending <- t.pending + List.length tasks;
    Condition.broadcast t.work_cond;
    drive t

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.work_cond
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* One shared pool for callers that don't manage their own, sized by
   EXOM_JOBS (so e.g. CI can run the whole test suite under -j 2
   without touching any call site).  Created on first use: with the
   default of 1 job no domain is ever spawned. *)
let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create ~jobs:(default_jobs ()) () in
    default_pool := Some p;
    p
