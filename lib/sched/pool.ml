(* A fixed-size OCaml 5 domain pool with one shared work queue and a
   supervisor.

   Sizing: [jobs] is the total degree of parallelism.  The coordinator
   participates in draining the queue during {!run}, so [jobs - 1]
   domains are spawned; [jobs = 1] degenerates to inline sequential
   execution with no domains, no locks taken and no scheduling overhead
   — the property the determinism tests lean on (`-j 1` is *exactly*
   the sequential engine, not a one-worker simulation of it).

   Supervision: tasks are expected not to raise — the layer above (see
   {!Batch}) wraps every task so ordinary exceptions are captured into
   its result slot.  An exception that escapes a task anyway is treated
   as the death of the worker executing it: the worker records the
   orphaned task and exits its domain, and the coordinator (supervising
   from {!drive}) requeues the orphan and respawns a replacement domain
   while the respawn budget lasts.  A task that keeps killing workers is
   dropped after [max_task_raises] attempts; {!Batch} quarantines such a
   task one raise earlier, so for batch-planned work the drop is a
   backstop, never the outcome.  When the respawn budget runs out the
   pool degrades gracefully: surviving workers (and always the
   coordinator) keep draining the queue, down to plain [-j1] execution.

   The kill/retry discipline is identical on the inline paths (jobs=1,
   singleton batches), so a task's fate — and every deterministic
   counter derived from it — is independent of the job count. *)

(* A task wrapped at submission, so the supervisor can count how often
   it has killed its executor. *)
type job = { body : unit -> unit; mutable raises : int }

(* After this many raises a task is dropped (its effect on the batch is
   decided earlier, by Batch's quarantine). *)
let max_task_raises = 3

type supervision = {
  mutable kills : int;  (* tasks that took their executor down *)
  mutable respawns : int;  (* replacement domains spawned *)
  mutable dropped : int;  (* tasks abandoned after max_task_raises *)
  mutable degraded : bool;  (* respawn budget ran out at least once *)
}

let snapshot_supervision s =
  { kills = s.kills; respawns = s.respawns; dropped = s.dropped;
    degraded = s.degraded }

type t = {
  jobs : int;
  respawn_budget : int;
  mutex : Mutex.t;
  work_cond : Condition.t;  (* queue became non-empty, or shutdown *)
  done_cond : Condition.t;  (* pending reached zero, or a worker died *)
  queue : job Queue.t;
  mutable orphans : job list;  (* tasks whose executor died; LIFO *)
  mutable pending : int;  (* tasks queued or running *)
  mutable alive : int;  (* worker domains still in their loop *)
  mutable respawns_left : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  sup : supervision;
}

let jobs t = t.jobs
let supervision t = snapshot_supervision t.sup

let default_jobs () =
  match Sys.getenv_opt "EXOM_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some 0 -> Domain.recommended_domain_count ()
    | _ -> 1)

let finish_task t =
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.done_cond

let rec worker_loop t =
  (* called with the mutex held *)
  if t.stopped then Mutex.unlock t.mutex
  else
    match Queue.take_opt t.queue with
    | Some job -> (
      Mutex.unlock t.mutex;
      match job.body () with
      | () ->
        Mutex.lock t.mutex;
        finish_task t;
        worker_loop t
      | exception _ ->
        (* this worker is dead: hand the orphan to the supervisor and
           exit the domain (the raise count is bumped by the supervisor,
           under the mutex, so inline and pooled paths count alike) *)
        Mutex.lock t.mutex;
        t.orphans <- job :: t.orphans;
        t.alive <- t.alive - 1;
        Condition.broadcast t.done_cond;
        Mutex.unlock t.mutex)
    | None ->
      Condition.wait t.work_cond t.mutex;
      worker_loop t

let spawn_worker t =
  (* called with the mutex held; the new domain blocks on it until the
     caller releases *)
  t.alive <- t.alive + 1;
  t.domains <-
    Domain.spawn (fun () ->
        Mutex.lock t.mutex;
        worker_loop t)
    :: t.domains

let create ?(jobs = 1) ?respawn_budget () =
  let jobs =
    if jobs = 0 then Domain.recommended_domain_count ()
    else if jobs < 0 then invalid_arg "Pool.create: jobs must be >= 0"
    else jobs
  in
  let respawn_budget =
    match respawn_budget with
    | Some b when b < 0 -> invalid_arg "Pool.create: respawn_budget < 0"
    | Some b -> b
    | None -> 4 * jobs
  in
  let t =
    {
      jobs;
      respawn_budget;
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      queue = Queue.create ();
      orphans = [];
      pending = 0;
      alive = 0;
      respawns_left = respawn_budget;
      stopped = false;
      domains = [];
      sup = { kills = 0; respawns = 0; dropped = 0; degraded = false };
    }
  in
  Mutex.lock t.mutex;
  for _ = 1 to max 0 (jobs - 1) do
    spawn_worker t
  done;
  Mutex.unlock t.mutex;
  t

(* One task's raise, observed either by the supervisor (worker death)
   or by the inline containment below.  Returns [`Retry] while the task
   deserves another executor. *)
let record_raise t job =
  t.sup.kills <- t.sup.kills + 1;
  job.raises <- job.raises + 1;
  if job.raises >= max_task_raises then begin
    t.sup.dropped <- t.sup.dropped + 1;
    `Drop
  end
  else `Retry

(* The supervisor: adopt orphaned tasks left by dead workers.  Requeues
   survivable orphans (so surviving workers — or the coordinator, right
   here in [drive] — pick them up) and respawns replacement domains
   while the budget lasts.  Called with the mutex held. *)
let supervise t =
  let rec adopt = function
    | [] -> ()
    | job :: rest ->
      (match record_raise t job with
      | `Retry -> Queue.add job t.queue
      | `Drop -> finish_task t);
      adopt rest
  in
  let orphans = t.orphans in
  t.orphans <- [];
  if orphans <> [] then begin
    adopt orphans;
    (* replace dead domains up to the budget; past it, degrade *)
    let want = max 0 (t.jobs - 1) in
    while t.alive < want && t.respawns_left > 0 && not t.stopped do
      t.respawns_left <- t.respawns_left - 1;
      t.sup.respawns <- t.sup.respawns + 1;
      spawn_worker t
    done;
    if t.alive < want then t.sup.degraded <- true;
    if not (Queue.is_empty t.queue) then Condition.broadcast t.work_cond
  end

(* The coordinator's share of the drain: supervise orphans, run queued
   tasks, then wait for in-flight tasks on other domains.  The
   coordinator contains a task's raise directly (it cannot die), feeding
   the same [record_raise] discipline as the supervisor. *)
let rec drive t =
  (* called with the mutex held *)
  supervise t;
  match Queue.take_opt t.queue with
  | Some job -> (
    Mutex.unlock t.mutex;
    match job.body () with
    | () ->
      Mutex.lock t.mutex;
      finish_task t;
      drive t
    | exception _ ->
      Mutex.lock t.mutex;
      (match record_raise t job with
      | `Retry -> Queue.add job t.queue
      | `Drop -> finish_task t);
      drive t)
  | None ->
    if t.pending > 0 then begin
      Condition.wait t.done_cond t.mutex;
      drive t
    end
    else Mutex.unlock t.mutex

(* Inline execution of one task with the same raise discipline: retry
   in place until it completes or is dropped. *)
let rec run_inline t job =
  match job.body () with
  | () -> ()
  | exception _ -> (
    Mutex.lock t.mutex;
    let verdict = record_raise t job in
    Mutex.unlock t.mutex;
    match verdict with `Retry -> run_inline t job | `Drop -> ())

(* The obs record is identical across all three execution paths below
   (inline, sequential, pooled), so the metric tree stays independent of
   the job count.  Kills are counted per raise on every path, so the
   delta recorded after the drain is deterministic too. *)
let record_submission obs tasks =
  match obs with
  | None -> ()
  | Some obs ->
    let n = List.length tasks in
    Exom_obs.Obs.add obs "pool.tasks" n;
    Exom_obs.Obs.gauge obs "pool.queue_depth" n

let record_kills obs ~before t =
  match obs with
  | None -> ()
  | Some obs ->
    let d = t.sup.kills - before in
    if d > 0 then Exom_obs.Obs.add obs "pool.kills" d

let run ?obs t tasks =
  if t.stopped then invalid_arg "Pool.run: pool is shut down";
  record_submission obs tasks;
  let kills_before = t.sup.kills in
  let jobs_of tasks = List.map (fun body -> { body; raises = 0 }) tasks in
  (match tasks with
  | [] -> ()
  | [ task ] -> run_inline t { body = task; raises = 0 }
  | _ when t.jobs <= 1 -> List.iter (run_inline t) (jobs_of tasks)
  | _ ->
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    List.iter (fun job -> Queue.add job t.queue) (jobs_of tasks);
    t.pending <- t.pending + List.length tasks;
    Condition.broadcast t.work_cond;
    drive t);
  record_kills obs ~before:kills_before t

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.work_cond
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* One shared pool for callers that don't manage their own, sized by
   EXOM_JOBS (so e.g. CI can run the whole test suite under -j 2
   without touching any call site).  Created on first use: with the
   default of 1 job no domain is ever spawned. *)
let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create ~jobs:(default_jobs ()) () in
    default_pool := Some p;
    p
