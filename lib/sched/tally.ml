(* The per-worker accounting record for verification work.  Workers
   never touch shared session counters: each pool task accumulates into
   its own tally, and the coordinator merges them in submission order,
   which is what keeps reports identical regardless of the job count. *)

type t = {
  mutable queries : int;  (* verdicts asked for (cache hits included) *)
  mutable runs : int;  (* re-executions actually attempted *)
  mutable seconds : float;  (* wall-clock spent inside re-executions *)
}

let create () = { queries = 0; runs = 0; seconds = 0.0 }

let absorb ~into t =
  into.queries <- into.queries + t.queries;
  into.runs <- into.runs + t.runs;
  into.seconds <- into.seconds +. t.seconds

(* Wall clock, not [Sys.time]: process CPU time double-counts across
   domains and under-counts blocking, both wrong for reported timings. *)
let counted t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      t.runs <- t.runs + 1;
      t.seconds <- t.seconds +. Unix.gettimeofday () -. t0)
    f
