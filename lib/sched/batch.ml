(* The batch verification planner's generic half: order-preserving
   parallel execution and stable grouping.

   Determinism contract: [run_tasks] returns results in submission
   order no matter how the pool interleaves execution, and [group_by]
   keeps both group order (first occurrence) and within-group order
   stable.  A planner that (1) groups work that must be serialized —
   e.g. all switched runs of one static predicate, whose circuit
   breaker is a sequential state machine — into one task, and
   (2) merges per-task accounting in submission order, produces output
   bit-identical to the sequential engine at any job count.

   Fatal exceptions ([fatal exn = true]) are the supervised-pool
   protocol: the wrapper does NOT capture them into the result slot but
   lets them kill the executing worker, so the pool's supervisor
   requeues the task and respawns the domain.  The per-slot kill
   counter lives here (in a coordinator-visible array, bumped before
   the re-raise), and once a slot has killed [quarantine_after]
   consecutive executors the wrapper gives up without raising and
   records [Error (Quarantined kills)] — the task completes, the pool
   survives, and the caller decides what a quarantined verification
   means.  Chaos faults are deterministic, so the kill count — and
   therefore the quarantine verdict — is identical at every job count
   (the pool retries inline at -j1 with the same discipline). *)

exception Cancelled

(* The task killed [quarantine_after] consecutive executors and was
   isolated; the payload is the kill count. *)
exception Quarantined of int

let default_quarantine_after = 3

let run_tasks ?obs ?(cancel = fun () -> false) ?(fatal = fun _ -> false)
    ?(quarantine_after = default_quarantine_after) pool tasks =
  if quarantine_after < 1 then
    invalid_arg "Batch.run_tasks: quarantine_after must be >= 1";
  if quarantine_after > Pool.max_task_raises then
    invalid_arg "Batch.run_tasks: quarantine_after exceeds the pool's bound";
  let tasks = Array.of_list tasks in
  let results = Array.make (Array.length tasks) (Error Cancelled) in
  let kills = Array.make (Array.length tasks) 0 in
  let wrapped =
    Array.to_list
      (Array.mapi
         (fun i task () ->
           if not (cancel ()) then
             match task () with
             | v -> results.(i) <- Ok v
             | exception exn when fatal exn ->
               (* bumped before the re-raise: the pool requeues this
                  closure via a mutex, so the count is visible to the
                  next executor *)
               kills.(i) <- kills.(i) + 1;
               if kills.(i) >= quarantine_after then
                 results.(i) <- Error (Quarantined kills.(i))
               else raise exn
             | exception exn -> results.(i) <- Error exn)
         tasks)
  in
  Pool.run ?obs pool wrapped;
  (match obs with
  | None -> ()
  | Some obs ->
    let quarantined =
      Array.fold_left
        (fun n r -> match r with Error (Quarantined _) -> n + 1 | _ -> n)
        0 results
    in
    if quarantined > 0 then
      Exom_obs.Obs.add obs "pool.quarantined" quarantined);
  Array.to_list results

let group_by ~key items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt tbl k with
      | Some group -> group := item :: !group
      | None ->
        let group = ref [ item ] in
        Hashtbl.add tbl k group;
        order := (k, group) :: !order)
    items;
  List.rev_map (fun (k, group) -> (k, List.rev !group)) !order
