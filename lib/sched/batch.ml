(* The batch verification planner's generic half: order-preserving
   parallel execution and stable grouping.

   Determinism contract: [run_tasks] returns results in submission
   order no matter how the pool interleaves execution, and [group_by]
   keeps both group order (first occurrence) and within-group order
   stable.  A planner that (1) groups work that must be serialized —
   e.g. all switched runs of one static predicate, whose circuit
   breaker is a sequential state machine — into one task, and
   (2) merges per-task accounting in submission order, produces output
   bit-identical to the sequential engine at any job count. *)

exception Cancelled

let run_tasks ?obs ?(cancel = fun () -> false) pool tasks =
  let tasks = Array.of_list tasks in
  let results = Array.make (Array.length tasks) (Error Cancelled) in
  let wrapped =
    Array.to_list
      (Array.mapi
         (fun i task () ->
           if not (cancel ()) then
             results.(i) <- (try Ok (task ()) with exn -> Error exn))
         tasks)
  in
  Pool.run ?obs pool wrapped;
  Array.to_list results

let group_by ~key items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt tbl k with
      | Some group -> group := item :: !group
      | None ->
        let group = ref [ item ] in
        Hashtbl.add tbl k group;
        order := (k, group) :: !order)
    items;
  List.rev_map (fun (k, group) -> (k, List.rev !group)) !order
