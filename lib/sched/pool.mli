(** A fixed-size OCaml 5 domain pool with a shared work queue.

    [jobs] is the total degree of parallelism: the coordinator thread
    participates in draining the queue during {!run}, so a pool of
    [jobs = n] spawns [n - 1] domains.  A pool of 1 runs everything
    inline on the caller — the sequential engine itself, not a
    simulation of it — which is the anchor for the scheduler's
    determinism guarantee.

    Tasks are expected not to raise (see {!Batch}, which captures
    exceptions into result slots); an exception that escapes a task is
    swallowed so it cannot kill a pool domain. *)

type t

(** [create ~jobs ()] — [jobs = 0] means [Domain.recommended_domain_count ()];
    defaults to 1 (inline execution, no domains). *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** Run every task to completion (blocking).  Tasks may execute on any
    domain and in any order; completion of all of them is the only
    guarantee.  Not reentrant: do not call [run] from inside a task.
    With [obs], records the submitted batch size ([pool.tasks] counter,
    [pool.queue_depth] high-water gauge) — identically on every
    execution path, so the metric tree is independent of [jobs]. *)
val run : ?obs:Exom_obs.Obs.t -> t -> (unit -> unit) list -> unit

(** Stop the workers and join their domains.  Idempotent.  [run] after
    shutdown raises [Invalid_argument]. *)
val shutdown : t -> unit

(** The job count requested by the [EXOM_JOBS] environment variable
    (1 when unset or unparsable; [0] maps to the recommended domain
    count). *)
val default_jobs : unit -> int

(** A lazily created process-wide pool sized by {!default_jobs}.  With
    the default of one job it never spawns a domain. *)
val default : unit -> t
