(** A fixed-size OCaml 5 domain pool with a shared work queue and a
    supervisor.

    [jobs] is the total degree of parallelism: the coordinator thread
    participates in draining the queue during {!run}, so a pool of
    [jobs = n] spawns [n - 1] domains.  A pool of 1 runs everything
    inline on the caller — the sequential engine itself, not a
    simulation of it — which is the anchor for the scheduler's
    determinism guarantee.

    Tasks are expected not to raise (see {!Batch}, which captures
    ordinary exceptions into result slots).  An exception that escapes
    a task anyway — by design only the {e fatal} kind that models
    worker-domain death, e.g. [Exom_interp.Chaos.Killed_worker] — kills
    the executing domain.  The supervisor (the coordinator, inside
    {!run}) then adopts the orphaned task, requeues it on the surviving
    workers, and respawns replacement domains while the [respawn_budget]
    lasts; past the budget the pool degrades gracefully toward [-j1]
    (the coordinator always keeps draining).  A task that has raised
    [max_task_raises] times is dropped — {!Batch} quarantines such a
    task one raise earlier, so for batch-planned work the drop is a
    backstop, never the outcome.  The raise/retry discipline is
    identical on the inline paths, so a task's fate is independent of
    the job count. *)

type t

(** Raises a task may burn before the pool abandons it. *)
val max_task_raises : int

(** [create ~jobs ()] — [jobs = 0] means [Domain.recommended_domain_count ()];
    defaults to 1 (inline execution, no domains).  [respawn_budget]
    bounds how many replacement domains the pool may spawn over its
    lifetime (default [4 * jobs]). *)
val create : ?jobs:int -> ?respawn_budget:int -> unit -> t

val jobs : t -> int

(** Supervisor counters (a snapshot).  [kills] counts task raises on
    every execution path identically — it is deterministic across job
    counts; [respawns], [dropped] and [degraded] describe this pool's
    actual domain churn ([respawns] is 0 on inline paths, where there is
    no domain to lose). *)
type supervision = {
  mutable kills : int;  (** tasks that took their executor down *)
  mutable respawns : int;  (** replacement domains spawned *)
  mutable dropped : int;  (** tasks abandoned after {!max_task_raises} *)
  mutable degraded : bool;  (** respawn budget ran out at least once *)
}

val supervision : t -> supervision

(** Run every task to completion (blocking).  Tasks may execute on any
    domain and in any order; completion of all of them is the only
    guarantee.  Not reentrant: do not call [run] from inside a task.
    With [obs], records the submitted batch size ([pool.tasks] counter,
    [pool.queue_depth] high-water gauge) and the deterministic kill
    count of the drain ([pool.kills]) — identically on every execution
    path, so the metric tree is independent of [jobs]. *)
val run : ?obs:Exom_obs.Obs.t -> t -> (unit -> unit) list -> unit

(** Stop the workers and join their domains.  Idempotent.  [run] after
    shutdown raises [Invalid_argument]. *)
val shutdown : t -> unit

(** The job count requested by the [EXOM_JOBS] environment variable
    (1 when unset or unparsable; [0] maps to the recommended domain
    count). *)
val default_jobs : unit -> int

(** A lazily created process-wide pool sized by {!default_jobs}.  With
    the default of one job it never spawns a domain. *)
val default : unit -> t
