(** A content-addressed cache with an in-memory LRU front and an
    optional persistent on-disk tier shared safely between processes.

    Keys are caller-derived digests (see {!digest}); values are opaque
    strings (the caller owns the codec).  The disk tier stores one
    versioned, self-identifying file per entry inside a hash-partitioned
    shard directory — a renamed, truncated or version-skewed entry is
    rejected on read (counted in [corrupted]) and moved into the
    [quarantine/] subdirectory rather than returned as a hit or left in
    place to fail again.

    {b Multi-writer discipline.}  Any number of processes may read and
    write one store directory concurrently:

    - the directory carries a versioned [MANIFEST] naming the layout
      version and shard count; a foreign or corrupt manifest (or a
      pre-shard legacy layout) is quarantined wholesale and the
      directory re-initialized, never aborted on;
    - each shard has an advisory writer lock file; writers take it for
      the duration of one entry write (temp file + rename), readers
      never lock (renames are atomic and entries self-identify);
    - a crashed writer cannot wedge the cache: a lock whose holder pid
      is dead is stolen immediately, and any lock older than the
      configurable lease is stolen regardless (counted in
      {!lock_stats});
    - integrity never depends on the lock — entries are content
      addressed, so two writers racing on one key write identical
      bytes, and temp names are per-process.

    Within a process the store remains {b coordinator-only}: the batch
    planner resolves hits before dispatching work to the pool and
    records results after the deterministic merge, so worker domains
    never touch it.  All deterministic counters ({!stats}) are
    unchanged by sharding; contention counters live in the separate
    {!lock_stats} record, which is operational (per-process, not
    checkpointed) by design. *)

type t

type stats = {
  mutable hits : int;  (** answered from the in-memory front *)
  mutable disk_hits : int;  (** answered from disk (then promoted) *)
  mutable misses : int;
  mutable evictions : int;  (** LRU entries dropped from memory *)
  mutable corrupted : int;  (** disk entries rejected on read *)
  mutable writes : int;  (** entries persisted to disk *)
}

(** Operational counters for the multi-writer disk tier.  These are
    facts about {e this process's} interaction with the shared
    directory (scheduling, not verdict derivation), so they are not
    part of ledger checkpoints and resume does not restore them. *)
type lock_stats = {
  mutable lock_waits : int;
      (** acquisitions that found the shard lock held and waited *)
  mutable lock_steals : int;
      (** locks stolen from a dead holder or after the lease expired *)
  mutable quarantined : int;
      (** corrupt entries and foreign layout items moved aside *)
  mutable io_failures : int;
      (** persists (entries, manifest, lock files) that failed — really
          or under an injected {!Exom_util.Vfs} storm — and degraded to
          the memory tier instead of aborting *)
  mutable tmp_swept : int;
      (** orphaned temp/stale-lock files from crashed writers and
          stealers, removed on open *)
}

(** An independent copy (reports snapshot it; the live record keeps
    counting). *)
val snapshot : stats -> stats

(** Fraction of queries answered from either tier; 0 when none asked. *)
val hit_rate : stats -> float

(** [create ?obs ?dir ?capacity ?shards ?lease ()]: memory-only when
    [dir] is omitted; with [dir], entries also persist under it
    (created and initialized with a [MANIFEST] if missing).  [capacity]
    bounds the in-memory front (default 65536 entries).  [shards] is
    the disk partition count used when initializing a fresh directory
    (default {!default_shards}; an existing manifest's count always
    wins, so concurrent writers agree).  [lease] is the writer-lock
    lease in seconds (default {!default_lease}).  With [obs], every
    stats increment is mirrored live into the metrics registry under
    ["store.<field>"]. *)
val create :
  ?obs:Exom_obs.Obs.t ->
  ?dir:string ->
  ?capacity:int ->
  ?shards:int ->
  ?lease:float ->
  unit ->
  t

(** Derive a content-addressed key: parts are length-prefixed before
    hashing, so boundaries cannot collide. *)
val digest : string list -> string

val find : t -> string -> string option

(** [find] plus which tier answered — lets the provenance ledger record
    cache evidence ([`Mem] front vs [`Disk] promotion). *)
val find_tier : t -> string -> (string * [ `Mem | `Disk ]) option

val add : t -> key:string -> string -> unit

(** {2 Crash-safe resume support} *)

(** Like {!add}, but invisible to the books: no counter moves and no
    metric is mirrored.  Used when a resumed run re-populates the store
    from a replayed ledger — the uninterrupted run's counts are
    restored wholesale with {!restore_stats} instead. *)
val seed : t -> key:string -> string -> unit

(** Overwrite the live counters (and mirror the jumps into the metrics
    registry, like live increments would have). *)
val restore_stats : t -> stats -> unit

(** Entries currently held in the in-memory front. *)
val mem_size : t -> int

val stats : t -> stats

(** Live operational counters for the disk tier (all zero when the
    store is memory-only). *)
val lock_stats : t -> lock_stats

(** Disk shard count in effect (from the manifest); 0 when the store is
    memory-only. *)
val shard_count : t -> int

(** Entry-format version of the disk tier. *)
val version : int

(** Directory-layout version recorded in the [MANIFEST]. *)
val layout_version : int

val default_shards : int
val default_lease : float
