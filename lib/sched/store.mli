(** A content-addressed cache with an in-memory LRU front and an
    optional persistent on-disk tier.

    Keys are caller-derived digests (see {!digest}); values are opaque
    strings (the caller owns the codec).  The disk tier stores one
    versioned, self-identifying file per entry — a renamed, truncated
    or version-skewed entry is rejected on read (counted in
    [corrupted]) rather than returned as a hit.

    The store is {b coordinator-only}: the batch planner resolves hits
    before dispatching work to the pool and records results after the
    deterministic merge, so worker domains never touch it and it needs
    no internal locking. *)

type t

type stats = {
  mutable hits : int;  (** answered from the in-memory front *)
  mutable disk_hits : int;  (** answered from disk (then promoted) *)
  mutable misses : int;
  mutable evictions : int;  (** LRU entries dropped from memory *)
  mutable corrupted : int;  (** disk entries rejected on read *)
  mutable writes : int;  (** entries persisted to disk *)
}

(** An independent copy (reports snapshot it; the live record keeps
    counting). *)
val snapshot : stats -> stats

(** Fraction of queries answered from either tier; 0 when none asked. *)
val hit_rate : stats -> float

(** [create ?obs ?dir ?capacity ()]: memory-only when [dir] is omitted;
    with [dir], entries also persist under it (created if missing).
    [capacity] bounds the in-memory front (default 65536 entries).
    With [obs], every stats increment is mirrored live into the metrics
    registry under ["store.<field>"]. *)
val create : ?obs:Exom_obs.Obs.t -> ?dir:string -> ?capacity:int -> unit -> t

(** Derive a content-addressed key: parts are length-prefixed before
    hashing, so boundaries cannot collide. *)
val digest : string list -> string

val find : t -> string -> string option

(** [find] plus which tier answered — lets the provenance ledger record
    cache evidence ([`Mem] front vs [`Disk] promotion). *)
val find_tier : t -> string -> (string * [ `Mem | `Disk ]) option

val add : t -> key:string -> string -> unit

(** {2 Crash-safe resume support} *)

(** Like {!add}, but invisible to the books: no counter moves and no
    metric is mirrored.  Used when a resumed run re-populates the store
    from a replayed ledger — the uninterrupted run's counts are
    restored wholesale with {!restore_stats} instead. *)
val seed : t -> key:string -> string -> unit

(** Overwrite the live counters (and mirror the jumps into the metrics
    registry, like live increments would have). *)
val restore_stats : t -> stats -> unit

(** Entries currently held in the in-memory front. *)
val mem_size : t -> int

val stats : t -> stats

(** Entry-format version of the disk tier. *)
val version : int
