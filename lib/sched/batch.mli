(** Generic batch planning over a {!Pool}: order-preserving parallel
    execution and stable grouping.

    These two primitives carry the scheduler's determinism argument:
    results and groups always come back in submission order, so a
    caller that serializes order-sensitive work (e.g. all switched runs
    of one static predicate, whose circuit breaker is a sequential
    state machine) into a single task and merges per-task accounting in
    list order gets output independent of the job count. *)

(** The result of a task that was never run because [cancel] returned
    true before it started. *)
exception Cancelled

(** [run_tasks pool tasks] executes every task on the pool and returns
    their outcomes {e in submission order}.  A task that raises yields
    [Error exn] in its slot; the remaining tasks still run.  [cancel]
    is polled before each task starts — once it returns true, tasks
    not yet started yield [Error Cancelled].  [obs] is passed through
    to {!Pool.run}. *)
val run_tasks :
  ?obs:Exom_obs.Obs.t ->
  ?cancel:(unit -> bool) ->
  Pool.t ->
  (unit -> 'a) list ->
  ('a, exn) result list

(** Stable grouping: groups ordered by first occurrence of their key,
    items within a group in input order. *)
val group_by : key:('a -> 'k) -> 'a list -> ('k * 'a list) list
