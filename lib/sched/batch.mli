(** Generic batch planning over a {!Pool}: order-preserving parallel
    execution and stable grouping.

    These two primitives carry the scheduler's determinism argument:
    results and groups always come back in submission order, so a
    caller that serializes order-sensitive work (e.g. all switched runs
    of one static predicate, whose circuit breaker is a sequential
    state machine) into a single task and merges per-task accounting in
    list order gets output independent of the job count. *)

(** The result of a task that was never run because [cancel] returned
    true before it started. *)
exception Cancelled

(** The result of a task that killed [quarantine_after] consecutive
    executors (see {!run_tasks}); the payload is the kill count. *)
exception Quarantined of int

(** Default [quarantine_after]: 3 (one below {!Pool.max_task_raises},
    so a quarantine always lands before the pool's drop backstop). *)
val default_quarantine_after : int

(** [run_tasks pool tasks] executes every task on the pool and returns
    their outcomes {e in submission order}.  A task that raises yields
    [Error exn] in its slot; the remaining tasks still run.  [cancel]
    is polled before each task starts — once it returns true, tasks
    not yet started yield [Error Cancelled].

    [fatal] classifies exceptions that model worker-domain death (e.g.
    [Exom_interp.Chaos.Killed_worker]): they are re-raised so the pool's
    supervisor sees the worker die, requeues the task and respawns the
    domain — until the task has killed [quarantine_after] consecutive
    executors, at which point it completes as
    [Error (Quarantined kills)] instead of raising.  The kill counter is
    per result slot and deterministic across job counts (the pool
    retries inline at -j1 under the same discipline).  With [obs], the
    number of quarantined slots is recorded as the [pool.quarantined]
    counter (deterministic; [Pool.run] itself records the [pool.kills]
    raise count).

    [obs] is passed through to {!Pool.run}. *)
val run_tasks :
  ?obs:Exom_obs.Obs.t ->
  ?cancel:(unit -> bool) ->
  ?fatal:(exn -> bool) ->
  ?quarantine_after:int ->
  Pool.t ->
  (unit -> 'a) list ->
  ('a, exn) result list

(** Stable grouping: groups ordered by first occurrence of their key,
    items within a group in input order. *)
val group_by : key:('a -> 'k) -> 'a list -> ('k * 'a list) list
