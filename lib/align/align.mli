(** Execution alignment (Algorithm 1 of the paper): find the instance of
    a second execution that corresponds to a given instance of the
    first, by pairing region trees — or establish that none exists
    (which is itself a verification verdict: Definition 2 case (i)).

    Alignment is region-based rather than per-instance because predicate
    switching can change iteration counts, trigger recursion, or cut
    regions short; Figures 2 and 3 of the paper are the motivating
    cases, reproduced in [examples/alignment_demo.ml]. *)

type verdict = Found of int | Not_found

(** [match_from reg reg' ~p ~u]: the two executions are identical up to
    instance [p] (the switched predicate, at the same index in both).
    Returns [u]'s counterpart in [reg'].  Instances before [p] match
    themselves.  With [obs], counts the query ([align.queries]) and its
    success ([align.matched]). *)
val match_from :
  ?obs:Exom_obs.Obs.t -> Region.t -> Region.t -> p:int -> u:int -> verdict

(** Whole-execution alignment from the roots, for executions that may
    diverge anywhere (e.g. faulty run vs. corrected-program run in the
    benign-state oracle). *)
val match_root : ?obs:Exom_obs.Obs.t -> Region.t -> Region.t -> u:int -> verdict

val to_option : verdict -> int option
