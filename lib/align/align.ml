(* Execution alignment (Algorithm 1 of the paper).

   [match_inside] pairs the subregions of two matching regions
   positionally, descending into the pair that contains the target use.
   A match fails (returns [None]) when:
   - the switched run exhausts its siblings first (single-entry-
     multiple-exit regions: break / return / crash cut the region
     short — lines 16 and 20 of Algorithm 1, Figure 3);
   - the paired subregions are headed by different statements
     (divergent control flow at this level — a conservative guard the
     paper leaves implicit);
   - the paired subregion heads are predicates with different branch
     outcomes (line 23: the use's control context differs, so no
     corresponding instance exists). *)

type verdict = Found of int | Not_found

let rec match_inside r1 reg_r r2 reg_r' ~u =
  let rec scan subs subs' =
    match (subs, subs') with
    | [], _ -> Not_found  (* u must be here; defensive *)
    | _, [] -> Not_found  (* sibling exhaustion in the switched run *)
    | s :: rest, s' :: rest' ->
      if not (Region.in_region reg_r ~u ~r:s) then
        if Region.sid reg_r s <> Region.sid reg_r' s' then Not_found
        else scan rest rest'
      else if Region.sid reg_r s <> Region.sid reg_r' s' then Not_found
      else if u = s then Found s'
      else if Region.branch reg_r s <> Region.branch reg_r' s' then Not_found
      else match_inside s reg_r s' reg_r' ~u
  in
  scan (Region.children reg_r r1) (Region.children reg_r' r2)

(* Find the instance of [reg'] corresponding to instance [u] of [reg],
   where both executions are identical up to instance [p] (the switch
   point, present in both traces at the same index).

   Fast path: anything strictly before [p] corresponds to itself.
   Otherwise we climb from [p]'s surrounding region until it contains
   [u] — because the executions agree up to [p], the corresponding
   region in the switched run is headed by the instance at the same
   index — and match inside (the paper's [Match]). *)
(* Each alignment query bumps align.queries, each successful one
   align.matched — the ratio is the paper's "how often switching leaves
   the instance recognizable" figure. *)
let counted obs verdict =
  (match obs with
  | None -> ()
  | Some obs ->
    Exom_obs.Obs.incr obs "align.queries";
    (match verdict with
    | Found _ -> Exom_obs.Obs.incr obs "align.matched"
    | Not_found -> ()));
  verdict

let match_from ?obs reg reg' ~p ~u =
  counted obs
  @@
  if u < p then if u < Region.length reg' then Found u else Not_found
  else begin
    let rec climb r r' =
      if not (Region.in_region reg ~u ~r) then
        if r = Region.root then Not_found  (* cannot happen: root holds all *)
        else begin
          let pr = Region.parent reg r in
          let pr' = Region.parent reg' r' in
          climb pr pr'
        end
      else if r = Region.root then match_inside r reg r' reg' ~u
      else if u = r then Found r'
      else match match_inside r reg r' reg' ~u with
        | Found v -> Found v
        | Not_found -> Not_found
    in
    if p < 0 || p >= Region.length reg || p >= Region.length reg' then
      Not_found
    else
      let start = (Region.get reg p).Exom_interp.Trace.parent in
      let start' = (Region.get reg' p).Exom_interp.Trace.parent in
      climb start start'
  end

(* Match [u] across whole executions, pairing from the two roots: used
   when the executions may diverge anywhere (e.g. aligning a faulty run
   with the corrected program's run for the benign-state oracle). *)
let match_root ?obs reg reg' ~u =
  counted obs (match_inside Region.root reg Region.root reg' ~u)

let to_option = function Found i -> Some i | Not_found -> None
