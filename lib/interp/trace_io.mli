(** Plain-text (de)serialization of execution traces: one instance per
    line, greppable and diffable, exact round trip.  Used by the CLI's
    [--dump-trace] and by offline analyses.

    Serialized traces start with a versioned header line
    ([#exom-trace v1]); [#]-prefixed lines are otherwise comments.
    Headerless input is accepted for compatibility with pre-versioning
    dumps.

    Two reading disciplines:
    - {e strict} ({!of_string_result}, {!load_result}): the first
      malformed line fails the whole parse, with its 1-based line number
      in the error — nothing half-parsed is returned;
    - {e salvage} ({!salvage_of_string}, {!salvage_load}): the valid
      prefix before the first malformed line is recovered — the right
      tool for truncated dumps of aborted runs, where the tail of the
      file died with the process. *)

val version : int

(** A parse failure, located: [line] is 1-based. *)
type error = { line : int; msg : string }

val error_to_string : error -> string

val to_string : Trace.t -> string

(** Strict parse. *)
val of_string_result : string -> (Trace.t, error) result

(** Strict parse; raises [Failure] (with the line number in the
    message) on malformed input. *)
val of_string : string -> Trace.t

(** Salvage parse: the instances before the first malformed line, plus
    the error that ended the parse ([None] on fully valid input). *)
val salvage_of_string : string -> Trace.t * error option

(** Atomic (temp + rename) dump through {!Exom_util.Vfs}; raises
    [Exom_util.Vfs.Io_error] when the write fails. *)
val save : string -> Trace.t -> unit

(** Strict load; raises [Failure] on malformed input, [Sys_error] on an
    unreadable path. *)
val load : string -> Trace.t

(** Strict load as a [result]; still raises [Sys_error] on an
    unreadable path. *)
val load_result : string -> (Trace.t, error) result

(** Salvage load; raises only [Sys_error]. *)
val salvage_load : string -> Trace.t * error option
