(** The instrumented MCL interpreter: the substitute for the paper's
    valgrind-based online tracing component.

    A run executes global initializers then [main], producing:
    - an execution {!Trace.t} (unless [tracing:false], the "Plain" mode
      timed in Table 4),
    - the output stream with the producing instance of each value,
    - an outcome: normal termination, step-budget exhaustion (the
      substitute for the paper's verification timer), or a crash
      (runtime error / input exhaustion).

    {b Predicate switching}: pass [switch] to flip the branch outcome of
    the [switch_occ]-th dynamic instance of predicate [switch_sid] — the
    paper's core mechanism for exposing implicit dependences. *)

type switch_spec = { switch_sid : int; switch_occ : int }

(** Value perturbation (§5 of the paper): override the value produced by
    the [vswitch_occ]-th execution of assignment [vswitch_sid]. *)
type value_switch_spec = {
  vswitch_sid : int;
  vswitch_occ : int;
  vswitch_value : Value.t;
}

type abort = Budget_exhausted | Crashed of string

type run = {
  trace : Trace.t option;
  outputs : (int * int) list;
      (** (producing instance index, printed value), in output order;
          the index is [-1] when tracing is off *)
  outcome : (unit, abort) result;
  steps : int;  (** executed statement instances *)
  switch_fired : bool;
      (** whether the switched predicate instance was actually reached *)
}

val default_budget : int

(** [run prog ~input] executes a typechecked program.  Raises nothing —
    all failures are reported through [outcome] — with one deliberate
    exception: a [chaos] spec whose fault is {!Chaos.Raise_at} raises
    {!Chaos.Injected}, modelling failure modes outside the interpreter's
    own abort machinery (the resilience layer above must contain it).
    Behaviour on programs that did not pass {!Exom_lang.Typecheck} is
    unspecified (may raise [Invalid_argument]). *)
val run :
  ?obs:Exom_obs.Obs.t ->
  ?switch:switch_spec ->
  ?vswitch:value_switch_spec ->
  ?chaos:Chaos.t ->
  ?budget:int ->
  ?tracing:bool ->
  Exom_lang.Ast.program ->
  input:int list ->
  run

(** Just the printed values. *)
val output_values : run -> int list
