module Ast = Exom_lang.Ast
module Builtin = Exom_lang.Builtin
module Vec = Exom_util.Vec

type switch_spec = { switch_sid : int; switch_occ : int }

(* Value perturbation (§5 of the paper): override the value produced by
   the [vswitch_occ]-th execution of assignment [vswitch_sid] — the
   alternative to branch switching for nested predicates that test the
   same definition, at the price of an integer- rather than binary-
   domain search. *)
type value_switch_spec = {
  vswitch_sid : int;
  vswitch_occ : int;
  vswitch_value : Value.t;
}

type abort = Budget_exhausted | Crashed of string

type run = {
  trace : Trace.t option;
  outputs : (int * int) list;
  outcome : (unit, abort) result;
  steps : int;
  switch_fired : bool;
}

exception Brk
exception Cont
exception Ret_exn of Value.t
exception Abort_exn of abort

let default_budget = 2_000_000

type frame = { fid : int; vars : (string, Value.t) Hashtbl.t }

type scope = Gscope | Fscope of frame

type state = {
  funcs : (string, Ast.func) Hashtbl.t;
  globals : (string, Value.t) Hashtbl.t;
  arrays : (int, int array) Hashtbl.t;
  mutable next_array : int;
  mutable next_frame : int;
  mutable input : int list;
  outputs : (int * int) Vec.t;  (* instance idx (-1 when untraced), value *)
  trace : Trace.t option;
  def_tbl : (Cell.t, int) Hashtbl.t;  (* cell -> last defining instance *)
  arr_origin : (int, int) Hashtbl.t;  (* array id -> allocating instance *)
  occ_tbl : (int, int) Hashtbl.t;  (* sid -> executions so far *)
  switch : switch_spec option;
  vswitch : value_switch_spec option;
  chaos : Chaos.t option;
  mutable chaos_corrupted : bool;  (* Corrupt_value fires once per run *)
  mutable switch_fired : bool;
  mutable steps : int;
  budget : int;
}

(* Per-statement-instance recording context. *)
type ictx = {
  idx : int;  (* -1 when tracing is off *)
  occ : int;
  mutable uses : (Cell.t * int * Value.t) list;  (* reversed *)
  mutable defs : (Cell.t * Value.t) list;  (* reversed *)
}

let crash fmt = Fmt.kstr (fun msg -> raise (Abort_exn (Crashed msg))) fmt

let reserve st ~sid ~parent =
  st.steps <- st.steps + 1;
  if st.steps > st.budget then raise (Abort_exn Budget_exhausted);
  (match Chaos.action st.chaos ~step:st.steps with
  | `Continue -> ()
  | `Crash msg -> raise (Abort_exn (Crashed msg)));
  let occ = 1 + Option.value ~default:0 (Hashtbl.find_opt st.occ_tbl sid) in
  Hashtbl.replace st.occ_tbl sid occ;
  let idx =
    match st.trace with
    | None -> -1
    | Some tr -> Trace.reserve tr ~sid ~occ ~parent
  in
  { idx; occ; uses = []; defs = [] }

let fill st ctx ~kind ~value =
  match st.trace with
  | None -> ()
  | Some tr ->
    Trace.fill tr ctx.idx ~kind ~uses:(List.rev ctx.uses)
      ~defs:(List.rev ctx.defs) ~value

let record_use st ctx cell value =
  if st.trace <> None then begin
    let def = Option.value ~default:(-1) (Hashtbl.find_opt st.def_tbl cell) in
    ctx.uses <- (cell, def, value) :: ctx.uses
  end

(* A use of an array-element (or the pseudo length cell [Elem (id, -1)])
   falls back to the allocating instance when the element was never
   stored to: the value flowed from [new_array]. *)
let record_elem_use st ctx arr_id index value =
  if st.trace <> None then begin
    let cell = Cell.Elem (arr_id, index) in
    let def =
      match Hashtbl.find_opt st.def_tbl cell with
      | Some d -> d
      | None ->
        Option.value ~default:(-1) (Hashtbl.find_opt st.arr_origin arr_id)
    in
    ctx.uses <- (cell, def, value) :: ctx.uses
  end

let resolve_scope scope x =
  match scope with
  | Fscope f when Hashtbl.mem f.vars x -> `Local f
  | _ -> `Global

let read_var st scope x =
  match resolve_scope scope x with
  | `Local f -> (Cell.Local (f.fid, x), Hashtbl.find f.vars x)
  | `Global -> (
    match Hashtbl.find_opt st.globals x with
    | Some v -> (Cell.Global x, v)
    | None -> crash "variable '%s' read before initialization" x)

let write_cell st ctx cell value =
  if st.trace <> None then begin
    ctx.defs <- (cell, value) :: ctx.defs;
    Hashtbl.replace st.def_tbl cell ctx.idx
  end

let write_var st ctx scope x value =
  let cell =
    match resolve_scope scope x with
    | `Local f ->
      Hashtbl.replace f.vars x value;
      Cell.Local (f.fid, x)
    | `Global ->
      Hashtbl.replace st.globals x value;
      Cell.Global x
  in
  write_cell st ctx cell value

let get_array st id =
  if id < 0 then crash "null array dereference";
  match Hashtbl.find_opt st.arrays id with
  | Some a -> a
  | None -> crash "unknown array #%d" id

let check_bounds a i =
  if i < 0 || i >= Array.length a then
    crash "array index %d out of bounds [0, %d)" i (Array.length a)

let apply_binop loc op v1 v2 =
  ignore loc;
  let int_op f = Value.Vint (f (Value.as_int v1) (Value.as_int v2)) in
  let cmp_op f = Value.Vbool (f (Value.as_int v1) (Value.as_int v2)) in
  match op with
  | Ast.Add -> int_op ( + )
  | Ast.Sub -> int_op ( - )
  | Ast.Mul -> int_op ( * )
  | Ast.Div ->
    if Value.as_int v2 = 0 then crash "division by zero";
    int_op ( / )
  | Ast.Mod ->
    if Value.as_int v2 = 0 then crash "modulo by zero";
    int_op (fun a b -> a mod b)
  | Ast.Lt -> cmp_op ( < )
  | Ast.Le -> cmp_op ( <= )
  | Ast.Gt -> cmp_op ( > )
  | Ast.Ge -> cmp_op ( >= )
  | Ast.Eq -> Value.Vbool (Value.equal v1 v2)
  | Ast.Ne -> Value.Vbool (not (Value.equal v1 v2))
  | Ast.And | Ast.Or -> assert false (* short-circuited in eval *)

let rec eval st scope ctx expr =
  match expr.Ast.edesc with
  | Ast.Eint n -> Value.Vint n
  | Ast.Ebool b -> Value.Vbool b
  | Ast.Evar x ->
    let cell, v = read_var st scope x in
    record_use st ctx cell v;
    v
  | Ast.Eindex (a, idx_expr) ->
    let cell, av = read_var st scope a in
    record_use st ctx cell av;
    let arr = get_array st (Value.as_array av) in
    let i = Value.as_int (eval st scope ctx idx_expr) in
    check_bounds arr i;
    let v = Value.Vint arr.(i) in
    record_elem_use st ctx (Value.as_array av) i v;
    v
  | Ast.Eunop (Ast.Neg, e) -> Value.Vint (-Value.as_int (eval st scope ctx e))
  | Ast.Eunop (Ast.Not, e) ->
    Value.Vbool (not (Value.as_bool (eval st scope ctx e)))
  | Ast.Ebinop (Ast.And, e1, e2) ->
    if Value.as_bool (eval st scope ctx e1) then eval st scope ctx e2
    else Value.Vbool false
  | Ast.Ebinop (Ast.Or, e1, e2) ->
    if Value.as_bool (eval st scope ctx e1) then Value.Vbool true
    else eval st scope ctx e2
  | Ast.Ebinop (op, e1, e2) ->
    let v1 = eval st scope ctx e1 in
    let v2 = eval st scope ctx e2 in
    apply_binop expr.Ast.eloc op v1 v2
  | Ast.Ecall (fname, args) -> eval_call st scope ctx fname args

and eval_call st scope ctx fname args =
  match Builtin.of_name fname with
  | Some Builtin.Input -> (
    match st.input with
    | [] -> crash "input exhausted"
    | n :: rest ->
      st.input <- rest;
      Value.Vint n)
  | Some Builtin.New_array ->
    let n = Value.as_int (eval st scope ctx (List.hd args)) in
    if n < 0 then crash "new_array with negative size %d" n;
    let id = st.next_array in
    st.next_array <- id + 1;
    Hashtbl.replace st.arrays id (Array.make n 0);
    Hashtbl.replace st.arr_origin id ctx.idx;
    Value.Varr id
  | Some Builtin.Len ->
    let av = eval st scope ctx (List.hd args) in
    let arr = get_array st (Value.as_array av) in
    let v = Value.Vint (Array.length arr) in
    (* The length flowed from the allocation: use the pseudo-cell. *)
    record_elem_use st ctx (Value.as_array av) (-1) v;
    v
  | Some Builtin.Print ->
    (* Returns the printed value; [print] has type void so the result is
       only observable by the [Sexpr] case of [exec_stmt], which records
       it as the output instance's principal value. *)
    let v = eval st scope ctx (List.hd args) in
    Vec.push st.outputs (ctx.idx, Value.as_int v);
    v
  | None -> (
    let fn =
      match Hashtbl.find_opt st.funcs fname with
      | Some fn -> fn
      | None -> crash "unknown function '%s'" fname
    in
    let argv = List.map (eval st scope ctx) args in
    let fid = st.next_frame in
    st.next_frame <- fid + 1;
    let frame = { fid; vars = Hashtbl.create 8 } in
    List.iter2
      (fun (_, x) v ->
        Hashtbl.replace frame.vars x v;
        write_cell st ctx (Cell.Local (fid, x)) v)
      fn.Ast.fparams argv;
    match exec_block st (Fscope frame) ~parent:ctx.idx fn.Ast.fbody with
    | () -> Value.Vunit  (* fell off the end of a void function *)
    | exception Ret_exn v ->
      (* The return statement defined [Ret fid]; read it back so the
         caller's use points at the return instance. *)
      let cell = Cell.Ret fid in
      record_use st ctx cell v;
      v)

and exec_block st scope ~parent block =
  List.iter (exec_stmt st scope ~parent) block

and exec_stmt st scope ~parent stmt =
  let sid = stmt.Ast.sid in
  match stmt.Ast.skind with
  | Ast.Swhile (cond, body) ->
    (* Each evaluation of the loop predicate is its own instance; the
       first nests under the enclosing region and each subsequent one
       under its predecessor, so one loop *entry* forms one region
       (Definition 3 / Figure 2 of the paper). *)
    let rec iterate pred_parent =
      let pctx = reserve st ~sid ~parent:pred_parent in
      let b = Value.as_bool (eval st scope pctx cond) in
      let b = maybe_switch st pctx sid b in
      fill st pctx ~kind:(Trace.Kpredicate b) ~value:(Value.Vbool b);
      if b then begin
        (try exec_block st scope ~parent:pctx.idx body with Cont -> ());
        iterate pctx.idx
      end
    in
    (try iterate parent with Brk -> ())
  | _ -> exec_simple_stmt st scope ~parent stmt

and exec_simple_stmt st scope ~parent stmt =
  let sid = stmt.Ast.sid in
  let ctx = reserve st ~sid ~parent in
  (* A crash or budget exhaustion mid-statement leaves the reserved
     instance unfilled; record what was already read so that the crash
     point can anchor slicing (crash-failure sessions). *)
  try exec_reserved st scope ctx stmt
  with Abort_exn _ as e ->
    fill st ctx ~kind:Trace.Kother ~value:Value.Vunit;
    raise e

and exec_reserved st scope ctx stmt =
  let sid = stmt.Ast.sid in
  match stmt.Ast.skind with
  | Ast.Swhile _ -> assert false (* handled by exec_stmt *)
  | Ast.Sdecl (typ, x, init) ->
    let v =
      match init with
      | Some e -> eval st scope ctx e
      | None -> Value.default_of_typ typ
    in
    let v = maybe_value_switch st ctx sid v in
    let cell =
      match scope with
      | Gscope ->
        Hashtbl.replace st.globals x v;
        Cell.Global x
      | Fscope f ->
        Hashtbl.replace f.vars x v;
        Cell.Local (f.fid, x)
    in
    write_cell st ctx cell v;
    fill st ctx ~kind:Trace.Kassign ~value:v
  | Ast.Sassign (x, e) ->
    let v = eval st scope ctx e in
    let v = maybe_value_switch st ctx sid v in
    write_var st ctx scope x v;
    fill st ctx ~kind:Trace.Kassign ~value:v
  | Ast.Sstore (a, idx_expr, e) ->
    let cell, av = read_var st scope a in
    record_use st ctx cell av;
    let arr = get_array st (Value.as_array av) in
    let i = Value.as_int (eval st scope ctx idx_expr) in
    check_bounds arr i;
    let v = eval st scope ctx e in
    let v = maybe_value_switch st ctx sid v in
    arr.(i) <- Value.as_int v;
    write_cell st ctx (Cell.Elem (Value.as_array av, i)) v;
    fill st ctx ~kind:Trace.Kassign ~value:v
  | Ast.Sif (cond, then_blk, else_blk) ->
    let b = Value.as_bool (eval st scope ctx cond) in
    let b = maybe_switch st ctx sid b in
    fill st ctx ~kind:(Trace.Kpredicate b) ~value:(Value.Vbool b);
    exec_block st scope ~parent:ctx.idx (if b then then_blk else else_blk)
  | Ast.Sbreak ->
    fill st ctx ~kind:Trace.Kother ~value:Value.Vunit;
    raise Brk
  | Ast.Scontinue ->
    fill st ctx ~kind:Trace.Kother ~value:Value.Vunit;
    raise Cont
  | Ast.Sreturn e_opt ->
    let v =
      match e_opt with Some e -> eval st scope ctx e | None -> Value.Vunit
    in
    let fid = match scope with Fscope f -> f.fid | Gscope -> -1 in
    write_cell st ctx (Cell.Ret fid) v;
    fill st ctx ~kind:Trace.Kreturn ~value:v;
    raise (Ret_exn v)
  | Ast.Sexpr ({ Ast.edesc = Ast.Ecall (fname, _); _ } as e) ->
    let kind =
      if Builtin.of_name fname = Some Builtin.Print then Trace.Koutput
      else Trace.Kcall
    in
    let v = eval st scope ctx e in
    fill st ctx ~kind ~value:v
  | Ast.Sexpr e ->
    let v = eval st scope ctx e in
    fill st ctx ~kind:Trace.Kother ~value:v

and maybe_switch st ctx sid outcome =
  match st.switch with
  | Some { switch_sid; switch_occ }
    when switch_sid = sid && switch_occ = ctx.occ ->
    st.switch_fired <- true;
    not outcome
  | _ -> outcome

and maybe_value_switch st ctx sid value =
  let value =
    if st.chaos_corrupted then value
    else
      match Chaos.corrupt st.chaos ~step:st.steps value with
      | Some v ->
        st.chaos_corrupted <- true;
        v
      | None -> value
  in
  match st.vswitch with
  | Some { vswitch_sid; vswitch_occ; vswitch_value }
    when vswitch_sid = sid && vswitch_occ = ctx.occ ->
    st.switch_fired <- true;
    vswitch_value
  | _ -> value

let run_uninstrumented ?switch ?vswitch ?chaos ?(budget = default_budget)
    ?(tracing = true) prog ~input =
  let funcs = Hashtbl.create 16 in
  List.iter (fun fn -> Hashtbl.replace funcs fn.Ast.fname fn) prog.Ast.funcs;
  let budget = Chaos.budget_cap chaos budget in
  let st =
    {
      funcs;
      globals = Hashtbl.create 16;
      arrays = Hashtbl.create 16;
      next_array = 0;
      next_frame = 0;
      input;
      outputs = Vec.create ~dummy:(-1, 0);
      trace = (if tracing then Some (Trace.create ()) else None);
      def_tbl = Hashtbl.create 256;
      arr_origin = Hashtbl.create 16;
      occ_tbl = Hashtbl.create 64;
      switch;
      vswitch;
      chaos;
      chaos_corrupted = false;
      switch_fired = false;
      steps = 0;
      budget;
    }
  in
  let outcome =
    try
      exec_block st Gscope ~parent:(-1) prog.Ast.globals;
      (match Ast.find_func prog "main" with
      | None -> crash "program has no main function"
      | Some fn ->
        let fid = st.next_frame in
        st.next_frame <- fid + 1;
        let frame = { fid; vars = Hashtbl.create 8 } in
        (try exec_block st (Fscope frame) ~parent:(-1) fn.Ast.fbody
         with Ret_exn _ -> ()));
      Ok ()
    with Abort_exn reason -> Error reason
  in
  {
    trace = st.trace;
    outputs = Vec.to_list st.outputs;
    outcome;
    steps = st.steps;
    switch_fired = st.switch_fired;
  }

(* Observability wrapper.  Nothing is recorded per interpreter step —
   the run reports its totals exactly once, on completion, so the hot
   path ([reserve]/[eval]/[exec_stmt]) is identical with and without
   [obs]. *)
let run ?obs ?switch ?vswitch ?chaos ?budget ?tracing prog ~input =
  let go () =
    run_uninstrumented ?switch ?vswitch ?chaos ?budget ?tracing prog ~input
  in
  match obs with
  | None -> go ()
  | Some obs ->
    let r = Exom_obs.Obs.with_span obs ~cat:"interp" "interp.run" go in
    Exom_obs.Obs.incr obs "interp.runs";
    Exom_obs.Obs.add obs "interp.steps" r.steps;
    (match r.trace with
    | Some tr -> Exom_obs.Obs.add obs "interp.trace_records" (Trace.length tr)
    | None -> ());
    r

let output_values (r : run) = List.map snd r.outputs
