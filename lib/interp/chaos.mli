(** Deterministic, seed-driven fault injection for the interpreter.

    The demand-driven locator survives only as much hostility as its
    verification runs throw at it: switched re-executions routinely
    crash, loop until the budget timer, or (in a buggy interpreter or
    under memory pressure) die with an exception the slicing machinery
    never anticipated.  This module manufactures exactly those failures
    on purpose, from a single integer seed, so tests can sweep seeds and
    prove that no injected fault ever escapes the resilience layer.

    A chaos spec is threaded into {!Interp.run} by the verification
    engine only — the failing run under diagnosis is never injected —
    and fires at a seed-chosen step of the re-execution.  The same seed
    always produces the same fault at the same step. *)

type fault =
  | Crash_at of int
      (** abort with [Crashed] at step N — a plausible runtime error *)
  | Truncate_budget of int
      (** cap the step budget at N: a spuriously tight timer *)
  | Corrupt_value of int
      (** corrupt the value produced by the first assignment executed at
          or after step N (ints are bit-flipped, booleans negated),
          poisoning the program state and the recorded trace from there
          on *)
  | Raise_at of int
      (** raise {!Injected} at step N — an exception the interpreter
          does {e not} convert to an outcome, modelling the failure mode
          the resilience layer must contain *)
  | Kill_worker of int
      (** raise {!Killed_worker} at step N — a {e fatal} exception that
          the resilience layer must {e not} contain: it models the death
          of the worker domain executing the re-execution (OOM, stack
          overflow), and is re-raised through every containment layer so
          the scheduler's supervisor sees the worker die *)

(** The one exception {!Interp.run} lets escape, by design. *)
exception Injected of string

(** The fatal exception modelling worker-domain death.  Unlike
    {!Injected}, the guard re-raises it: only the pool supervisor may
    absorb it (by requeueing the orphaned task, respawning the domain
    and eventually quarantining the killer). *)
exception Killed_worker of string

(** Is this exception one the containment layers must re-raise? *)
val is_fatal : exn -> bool

type t = { seed : int; fault : fault }

(** [of_seed seed] derives a fault kind and a firing step (in
    [\[1, max_step\]], default 4096) deterministically from [seed]. *)
val of_seed : ?max_step:int -> int -> t

val fault_to_string : fault -> string
val pp : Format.formatter -> t -> unit

(** {2 Interpreter hooks} — all are no-ops on [None]. *)

(** The effective step budget under the spec. *)
val budget_cap : t option -> int -> int

(** What happens at [step]: raises {!Injected} itself for [Raise_at];
    reports [`Crash] for [Crash_at] so the interpreter can route it
    through its normal abort machinery. *)
val action : t option -> step:int -> [ `Continue | `Crash of string ]

(** [Some corrupted] when a {!Corrupt_value} fault wants to fire at
    [step] and the value admits corruption; the caller is responsible
    for firing it at most once per run. *)
val corrupt : t option -> step:int -> Value.t -> Value.t option
