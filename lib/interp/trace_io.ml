(* Plain-text serialization of execution traces: a versioned header,
   then one instance per line:

     idx sid occ parent kind value | use cell:def:value ... | def cell:value ...

   The format is line-oriented and whitespace-separated so traces can be
   grepped, diffed and post-processed outside the process that produced
   them (the CLI's --dump-trace), and round-trips exactly.  Parsing is
   two-phase — each line is decoded into a record before anything is
   committed to the trace — so a malformed line never leaves a
   half-reserved instance behind, which is what makes the salvage mode
   (recover the valid prefix of a truncated dump) sound. *)

let version = 1

let header_prefix = "#exom-trace"

let header = Printf.sprintf "%s v%d" header_prefix version

type error = { line : int; msg : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.msg

(* Internal, per-token parse failure; carries only the message, the
   line number is attached by the driver. *)
exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let string_of_value = function
  | Value.Vint n -> "i" ^ string_of_int n
  | Value.Vbool b -> if b then "bt" else "bf"
  | Value.Varr id -> "a" ^ string_of_int id
  | Value.Vunit -> "u"

let int_of_token what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> bad "bad %s %S" what s

let value_of_string s =
  let num off = int_of_token "value" (String.sub s off (String.length s - off)) in
  match s with
  | "u" -> Value.Vunit
  | "bt" -> Value.Vbool true
  | "bf" -> Value.Vbool false
  | _ when s <> "" && s.[0] = 'i' -> Value.Vint (num 1)
  | _ when s <> "" && s.[0] = 'a' -> Value.Varr (num 1)
  | _ -> bad "bad value %S" s

let string_of_cell = function
  | Cell.Global x -> "G." ^ x
  | Cell.Local (fid, x) -> Printf.sprintf "L.%d.%s" fid x
  | Cell.Elem (arr, i) -> Printf.sprintf "E.%d.%d" arr i
  | Cell.Ret fid -> Printf.sprintf "R.%d" fid

let cell_of_string s =
  match String.split_on_char '.' s with
  | "G" :: rest -> Cell.Global (String.concat "." rest)
  | "L" :: fid :: rest ->
    Cell.Local (int_of_token "frame id" fid, String.concat "." rest)
  | [ "E"; arr; i ] ->
    Cell.Elem (int_of_token "array id" arr, int_of_token "index" i)
  | [ "R"; fid ] -> Cell.Ret (int_of_token "frame id" fid)
  | _ -> bad "bad cell %S" s

let string_of_kind = function
  | Trace.Kassign -> "assign"
  | Trace.Kpredicate true -> "pred+"
  | Trace.Kpredicate false -> "pred-"
  | Trace.Koutput -> "output"
  | Trace.Kcall -> "call"
  | Trace.Kreturn -> "return"
  | Trace.Kother -> "other"

let kind_of_string = function
  | "assign" -> Trace.Kassign
  | "pred+" -> Trace.Kpredicate true
  | "pred-" -> Trace.Kpredicate false
  | "output" -> Trace.Koutput
  | "call" -> Trace.Kcall
  | "return" -> Trace.Kreturn
  | "other" -> Trace.Kother
  | s -> bad "bad kind %S" s

let write_instance buf (inst : Trace.instance) =
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %s %s |" inst.Trace.idx inst.Trace.sid
       inst.Trace.occ inst.Trace.parent
       (string_of_kind inst.Trace.kind)
       (string_of_value inst.Trace.value));
  List.iter
    (fun (c, d, v) ->
      Buffer.add_string buf
        (Printf.sprintf " %s:%d:%s" (string_of_cell c) d (string_of_value v)))
    inst.Trace.uses;
  Buffer.add_string buf " |";
  List.iter
    (fun (c, v) ->
      Buffer.add_string buf
        (Printf.sprintf " %s:%s" (string_of_cell c) (string_of_value v)))
    inst.Trace.defs;
  Buffer.add_char buf '\n'

let to_string trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Trace.iter (write_instance buf) trace;
  Buffer.contents buf

(* [cell:def:value] — cells may contain dots but not colons. *)
let parse_use s =
  match String.split_on_char ':' s with
  | [ c; d; v ] -> (cell_of_string c, int_of_token "definition index" d,
                    value_of_string v)
  | _ -> bad "bad use %S" s

let parse_def s =
  match String.split_on_char ':' s with
  | [ c; v ] -> (cell_of_string c, value_of_string v)
  | _ -> bad "bad def %S" s

(* A fully decoded line, not yet committed to any trace. *)
type parsed = {
  p_idx : int;
  p_sid : int;
  p_occ : int;
  p_parent : int;
  p_kind : Trace.ikind;
  p_value : Value.t;
  p_uses : (Cell.t * int * Value.t) list;
  p_defs : (Cell.t * Value.t) list;
}

let parse_line line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  match words with
  | idx :: sid :: occ :: parent :: kind :: value :: "|" :: rest ->
    let rec split_uses acc = function
      | "|" :: defs -> (List.rev acc, defs)
      | u :: more -> split_uses (parse_use u :: acc) more
      | [] -> bad "missing defs separator"
    in
    let uses, defs = split_uses [] rest in
    {
      p_idx = int_of_token "instance index" idx;
      p_sid = int_of_token "sid" sid;
      p_occ = int_of_token "occurrence" occ;
      p_parent = int_of_token "parent" parent;
      p_kind = kind_of_string kind;
      p_value = value_of_string value;
      p_uses = uses;
      p_defs = List.map parse_def defs;
    }
  | _ -> bad "malformed instance line %S" line

let commit trace p =
  let expected = Trace.length trace in
  if p.p_idx <> expected then
    bad "non-contiguous instance index (expected %d, got %d)" expected p.p_idx;
  let idx =
    Trace.reserve trace ~sid:p.p_sid ~occ:p.p_occ ~parent:p.p_parent
  in
  Trace.fill trace idx ~kind:p.p_kind ~uses:p.p_uses ~defs:p.p_defs
    ~value:p.p_value

(* The header is optional (pre-versioning dumps have none), but a
   present one must carry a version we understand. *)
let check_header line =
  match String.split_on_char ' ' (String.trim line) with
  | prefix :: v :: _ when prefix = header_prefix ->
    if v <> Printf.sprintf "v%d" version then
      bad "unsupported trace format %s (this reader understands v%d)" v version
  | _ -> bad "malformed trace header %S" line

(* Shared driver: commit lines until the end or the first malformed
   line, reporting how the parse ended. *)
let parse_all s =
  let trace = Trace.create () in
  let lines = String.split_on_char '\n' s in
  let rec go lineno = function
    | [] -> (trace, None)
    | line :: rest -> (
      let line' = String.trim line in
      match
        if line' = "" then ()
        else if line'.[0] = '#' then begin
          if
            String.length line' >= String.length header_prefix
            && String.sub line' 0 (String.length header_prefix) = header_prefix
          then check_header line'
          (* other #-lines are comments *)
        end
        else commit trace (parse_line line')
      with
      | () -> go (lineno + 1) rest
      | exception Bad msg -> (trace, Some { line = lineno; msg }))
  in
  go 1 lines

let of_string_result s =
  match parse_all s with
  | trace, None -> Ok trace
  | _, Some e -> Error e

let of_string s =
  match of_string_result s with
  | Ok trace -> trace
  | Error e -> failwith ("Trace_io: " ^ error_to_string e)

let salvage_of_string s = parse_all s

let save path trace =
  Exom_util.Vfs.get_ok
    (Exom_util.Vfs.write_file_atomic ~tmp:(path ^ ".tmp") path
       (to_string trace))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string (read_file path)

let load_result path = of_string_result (read_file path)

let salvage_load path = salvage_of_string (read_file path)
