type fault =
  | Crash_at of int
  | Truncate_budget of int
  | Corrupt_value of int
  | Raise_at of int
  | Kill_worker of int

exception Injected of string
exception Killed_worker of string

let is_fatal = function Killed_worker _ -> true | _ -> false

type t = { seed : int; fault : fault }

(* A self-contained integer mixer (no [Random], whose global state would
   make seeds replay differently across processes): two rounds of the
   xorshift-multiply finalizer, masked to stay positive. *)
let mix x =
  let m = 0x45d9f3b in
  let x = x land max_int in
  let x = (x lxor (x lsr 16)) * m land max_int in
  let x = (x lxor (x lsr 16)) * m land max_int in
  x lxor (x lsr 16)

let of_seed ?(max_step = 4096) seed =
  if max_step < 1 then invalid_arg "Chaos.of_seed: max_step must be >= 1";
  let step = 1 + (mix (seed lxor 0x5bf03635) mod max_step) in
  let fault =
    match mix seed mod 5 with
    | 0 -> Crash_at step
    | 1 -> Truncate_budget step
    | 2 -> Corrupt_value step
    | 3 -> Raise_at step
    | _ -> Kill_worker step
  in
  { seed; fault }

let fault_to_string = function
  | Crash_at n -> Printf.sprintf "crash at step %d" n
  | Truncate_budget n -> Printf.sprintf "budget truncated to %d steps" n
  | Corrupt_value n -> Printf.sprintf "value corrupted at step %d" n
  | Raise_at n -> Printf.sprintf "exception injected at step %d" n
  | Kill_worker n -> Printf.sprintf "worker killed at step %d" n

let pp ppf t =
  Format.fprintf ppf "chaos(seed=%d: %s)" t.seed (fault_to_string t.fault)

let budget_cap t budget =
  match t with
  | Some { fault = Truncate_budget n; _ } -> min budget n
  | _ -> budget

let action t ~step =
  match t with
  | Some { seed; fault = Crash_at n } when step = n ->
    `Crash (Printf.sprintf "chaos: injected crash (seed %d, step %d)" seed n)
  | Some { seed; fault = Raise_at n } when step = n ->
    raise
      (Injected
         (Printf.sprintf "chaos: injected exception (seed %d, step %d)" seed n))
  | Some { seed; fault = Kill_worker n } when step = n ->
    raise
      (Killed_worker
         (Printf.sprintf "chaos: worker killed (seed %d, step %d)" seed n))
  | _ -> `Continue

let corrupt t ~step v =
  match t with
  | Some { fault = Corrupt_value n; _ } when step >= n -> (
    match v with
    | Value.Vint k -> Some (Value.Vint (lnot k))
    | Value.Vbool b -> Some (Value.Vbool (not b))
    | Value.Varr _ | Value.Vunit -> None)
  | _ -> None
