(** Cross-run audit: spine diff, metric drift, ledger diff and
    resume-lineage walks composed into one verdict — the engine behind
    [exom audit RUN_A RUN_B] and the CI trace gate.

    A run is any artifact a localization leaves behind: a Chrome trace
    ([--trace-out]), an observability JSONL log ([--metrics-out]) or a
    ledger/journal.  {!load} sniffs the format; {!audit} compares the
    legs both sides support (or exactly the requested ones); {!clean}
    is the gate predicate and {!render} the post-mortem. *)

type run = {
  path : string;
  spans : Exom_obs.Span.t list option;
  metrics : Exom_obs.Metrics.t option;
  events : Exom_ledger.Ledger.event list option;
  resumes : Exom_ledger.Ledger.resume_info list;
      (** resume-marker payloads when the file is a journal *)
  torn : Exom_obs.Export.salvage option;
      (** obs JSONL torn tail, located for citation *)
  ledger_torn : bool;  (** journal torn tail *)
}

(** Load and sniff one artifact.  Ledgers and journals are read
    tolerantly (markers and torn tails recorded, not fatal); version
    skew and mid-file corruption still error. *)
val load : string -> (run, string) result

type leg = Spine_leg | Metrics_leg | Ledger_leg

type ledger_diff = {
  ld_equal : bool;
  ld_older : int;  (** event counts *)
  ld_newer : int;
  ld_divergence : (int * string * string) option;
      (** first differing event (index, older, newer); [None] with
          [ld_equal = false] means one stream is a strict prefix *)
}

type t = {
  a : run;
  b : run;
  lanes : Exom_obs.Spine.lanes;
  spine : (Exom_obs.Spine.t * Exom_obs.Spine.t * Exom_obs.Spine.edit list) option;
  drift : Exom_obs.Metrics.drift_finding list option;
  ledger : ledger_diff option;
}

(** [audit ?lanes ?tolerance ?direction_of ?legs a b].  Without
    [legs], every leg both runs support is compared (two runs with no
    comparable leg error out).  With [legs], exactly those are
    compared, and a side that cannot provide a requested leg is an
    error — a gate must not pass by comparing nothing.  [lanes]
    selects the spine projection (default [All]; use [Coordinator] for
    resume-vs-uninterrupted comparisons); [tolerance]/[direction_of]
    parameterize {!Exom_obs.Metrics.drift}. *)
val audit :
  ?lanes:Exom_obs.Spine.lanes ->
  ?tolerance:float ->
  ?direction_of:(string -> Exom_obs.Metrics.direction) ->
  ?legs:leg list ->
  run -> run ->
  (t, string) result

(** No spine edits, no metric breach, equal ledgers (absent legs are
    vacuously clean). *)
val clean : t -> bool

(** The full post-mortem: lineage, spine edit script, drift table,
    ledger divergence, final CLEAN/DRIFT verdict. *)
val render : t -> string

(** The run's resume markers, ready for
    {!Exom_ledger.Explain.render}'s [?replay]. *)
val replay_of : run -> Exom_ledger.Ledger.resume_info list
