(* Cross-run audit: one verdict composed from the deterministic
   comparators the pipeline already trusts individually — the span
   spine ({!Exom_obs.Spine}), metric drift ({!Exom_obs.Metrics.drift}),
   the ledger event stream, and the resume-marker lineage of salvaged
   journals.  `exom audit RUN_A RUN_B` is the CLI face; the CI trace
   gate and the regression harness call the same functions.

   A "run" here is any artifact a localization leaves behind: a Chrome
   trace (`--trace-out`), an observability JSONL log (`--metrics-out`),
   or a ledger/journal.  {!load} sniffs the format and extracts
   whatever legs the file supports; {!audit} compares the legs both
   sides have (or exactly the legs the caller requests) and
   {!clean}/{!render} turn the result into an exit code and a
   post-mortem. *)

module Span = Exom_obs.Span
module Spine = Exom_obs.Spine
module Metrics = Exom_obs.Metrics
module Export = Exom_obs.Export
module Ledger = Exom_ledger.Ledger
module Json = Exom_obs.Json

(* {2 Loading runs} *)

type run = {
  path : string;
  spans : Span.t list option;
  metrics : Metrics.t option;
  events : Ledger.event list option;
  resumes : Ledger.resume_info list;
      (* resume-marker payloads when the file is a journal *)
  torn : Export.salvage option;  (* obs JSONL torn tail, located *)
  ledger_torn : bool;  (* journal torn tail *)
}

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Ok content
  | exception Sys_error e -> Error e

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let empty path =
  { path; spans = None; metrics = None; events = None; resumes = [];
    torn = None; ledger_torn = false }

(* Sniff: ledger header -> tolerant journal read (markers kept); obs
   JSONL header -> metrics + spans; a JSON object with traceEvents ->
   Chrome trace (spans only). *)
let load path =
  let* content = read_file path in
  if Ledger.is_ledger content then
    let* r = Ledger.recover_string content in
    Ok
      { (empty path) with
        events = Some r.Ledger.r_events;
        resumes = r.Ledger.r_resumes;
        ledger_torn = r.Ledger.r_truncated;
      }
  else
    let is_chrome =
      match Json.parse (String.trim content) with
      | Ok j -> Json.member "traceEvents" j <> None
      | Error _ -> false
    in
    if is_chrome then
      let* spans = Export.spans_of_chrome content in
      Ok { (empty path) with spans = Some spans }
    else
      let* spans, torn = Export.spans_of_jsonl content in
      let* metrics, _ = Export.metrics_of_jsonl content in
      Ok { (empty path) with spans = Some spans; metrics = Some metrics; torn }

(* {2 The verdict} *)

type leg = Spine_leg | Metrics_leg | Ledger_leg

type ledger_diff = {
  ld_equal : bool;
  ld_older : int;  (* event counts *)
  ld_newer : int;
  ld_divergence : (int * string * string) option;
      (* first differing event: 0-based index, both renderings; [None]
         with [ld_equal = false] means one stream is a strict prefix *)
}

type t = {
  a : run;
  b : run;
  lanes : Spine.lanes;
  spine : (Spine.t * Spine.t * Spine.edit list) option;
  drift : Metrics.drift_finding list option;
  ledger : ledger_diff option;
}

let diff_ledgers ea eb =
  let ja = List.map (fun e -> Json.to_string (Ledger.event_json e)) ea in
  let jb = List.map (fun e -> Json.to_string (Ledger.event_json e)) eb in
  let rec first_div i xs ys =
    match (xs, ys) with
    | [], [] | [], _ | _, [] -> None
    | x :: xs', y :: ys' ->
      if x = y then first_div (i + 1) xs' ys' else Some (i, x, y)
  in
  let div = first_div 0 ja jb in
  {
    ld_equal = ja = jb;
    ld_older = List.length ja;
    ld_newer = List.length jb;
    ld_divergence = div;
  }

(* Compare the legs both runs support, or exactly [legs] when given
   (an explicitly requested leg one side cannot provide is an error —
   a gate must not silently pass by comparing nothing). *)
let audit ?(lanes = Spine.All) ?(tolerance = 0.0) ?direction_of ?legs a b =
  let want leg =
    match legs with None -> true | Some ls -> List.mem leg ls
  in
  let explicit = legs <> None in
  let missing what p = Error (Printf.sprintf "%s has no %s" p what) in
  let* spine =
    match (want Spine_leg, a.spans, b.spans) with
    | false, _, _ -> Ok None
    | true, Some sa, Some sb ->
      let pa = Spine.of_spans ~lanes sa and pb = Spine.of_spans ~lanes sb in
      Ok (Some (pa, pb, Spine.diff pa pb))
    | true, None, _ when explicit -> missing "spans" a.path
    | true, _, None when explicit -> missing "spans" b.path
    | true, _, _ -> Ok None
  in
  let* drift =
    match (want Metrics_leg, a.metrics, b.metrics) with
    | false, _, _ -> Ok None
    | true, Some ma, Some mb -> Ok (Some (Metrics.drift ~tolerance ?direction_of ma mb))
    | true, None, _ when explicit -> missing "metrics" a.path
    | true, _, None when explicit -> missing "metrics" b.path
    | true, _, _ -> Ok None
  in
  let* ledger =
    match (want Ledger_leg, a.events, b.events) with
    | false, _, _ -> Ok None
    | true, Some ea, Some eb -> Ok (Some (diff_ledgers ea eb))
    | true, None, _ when explicit -> missing "ledger events" a.path
    | true, _, None when explicit -> missing "ledger events" b.path
    | true, _, _ -> Ok None
  in
  if spine = None && drift = None && ledger = None then
    Error
      (Printf.sprintf "nothing to compare: %s and %s share no comparable leg"
         a.path b.path)
  else Ok { a; b; lanes; spine; drift; ledger }

let clean t =
  (match t.spine with Some (_, _, edits) -> edits = [] | None -> true)
  && (match t.drift with
     | Some findings -> not (Metrics.has_drift findings)
     | None -> true)
  && match t.ledger with Some d -> d.ld_equal | None -> true

(* {2 Rendering} *)

let render_lineage b run =
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  if run.resumes <> [] || run.ledger_torn || run.torn <> None then begin
    pr "  %s:\n" run.path;
    List.iteri
      (fun i (g : Ledger.resume_info) ->
        pr "    resume %d: replayed %d event%s%s\n" (i + 1)
          g.Ledger.ri_replayed
          (if g.Ledger.ri_replayed = 1 then "" else "s")
          (if g.Ledger.ri_truncated then
             " (predecessor's torn tail dropped)"
           else ""))
      run.resumes;
    if run.ledger_torn then pr "    journal tail torn and dropped\n";
    match run.torn with
    | Some { Export.torn_line; torn_byte } ->
      pr "    obs log torn at line %d (byte %d); tail dropped\n" torn_line
        torn_byte
    | None -> ()
  end

let render t =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "=== Audit: %s vs %s ===\n" t.a.path t.b.path;
  if
    t.a.resumes <> [] || t.b.resumes <> [] || t.a.ledger_torn
    || t.b.ledger_torn || t.a.torn <> None || t.b.torn <> None
  then begin
    pr "\n--- Lineage ---\n";
    render_lineage b t.a;
    render_lineage b t.b
  end;
  (match t.spine with
  | None -> ()
  | Some (pa, pb, edits) ->
    pr "\n--- Spine (%s lanes) ---\n" (Spine.lanes_to_string t.lanes);
    pr "%d vs %d spans\n" (Spine.size pa) (Spine.size pb);
    Buffer.add_string b (Spine.render_edits edits));
  (match t.drift with
  | None -> ()
  | Some findings ->
    pr "\n--- Metric drift ---\n";
    Buffer.add_string b (Metrics.render_drift findings));
  (match t.ledger with
  | None -> ()
  | Some d ->
    pr "\n--- Ledger ---\n";
    if d.ld_equal then pr "event streams identical (%d events)\n" d.ld_older
    else begin
      pr "event streams differ: %d vs %d events\n" d.ld_older d.ld_newer;
      match d.ld_divergence with
      | Some (i, x, y) ->
        let clip s =
          if String.length s > 160 then String.sub s 0 157 ^ "..." else s
        in
        pr "first divergence at event %d:\n  older: %s\n  newer: %s\n" i
          (clip x) (clip y)
      | None ->
        pr "one stream is a strict prefix of the other (a killed or \
            still-running journal?)\n"
    end);
  pr "\nverdict: %s\n" (if clean t then "CLEAN" else "DRIFT");
  Buffer.contents b

(* The salvaged journal's resume markers, for [exom explain]'s
   "Resume replay" section ({!Exom_ledger.Explain.render}'s [?replay]). *)
let replay_of run = run.resumes
