(** Corpus campaigns: generate a manifest of validated (program, fault,
    input) triples, run the locator over every triple — sharded across
    worker processes against one shared sharded store — and leave
    byte-deterministic artifacts behind.

    {b Artifacts} (all under one campaign directory):
    - [manifest.json] — the corpus: [{"schema":"exom.corpus","version":1}]
      plus one record per triple with both sources inline, the failing
      input, the ground-truth root (line + sids) and static features.
      Byte-deterministic in [(seed, count, family)].
    - [outcomes.shard<k>.jsonl] — shard [k]'s append-only row journal,
      fsynced after every row; the crash-safe record of completed
      triples.
    - [journals/<id>.jsonl] — each triple's ledger journal
      ({!Exom_ledger.Ledger.attach_journal}); a triple killed mid-run is
      resumed from it by the PR-5 replay machinery.
    - [outcomes.jsonl] — the merged artifact: a schema header line
      followed by one row per triple in id order.  Contains no
      wall-clock, shard, or job-count fields, so it is byte-identical
      across reruns, [-j], and shard counts.

    {b Resume}: a re-run with [--resume] keeps every row already in a
    shard journal verbatim, replays any triple whose ledger journal is
    complete, and re-runs the rest.  One documented wrinkle (shared with
    [exom serve]): a triple killed {e mid-localization} re-runs against
    whatever verdicts it had already persisted, so its store-tier row
    counters can legitimately differ from an uninterrupted run's; every
    other field, and every other row, is byte-identical. *)

(** One corpus entry. *)
type triple = {
  t_id : string;  (** "t00042" — position in the manifest *)
  t_seed : int;  (** the factory/seeder seed that produced it *)
  t_family : string;
  t_class : Seeder.fault_class;
  t_root_line : int;
  t_root_sids : int list;
  t_stmts : int;
  t_predicates : int;
  t_procs : int;
  t_loc : int;
  t_input : int list;
  t_correct : string;
  t_faulty : string;
}

type manifest = {
  m_seed : int;
  m_count : int;
  m_family : string;  (** a {!Factory.families} name, or ["mixed"] *)
  m_attempts : int;  (** generation attempts consumed (yield telemetry) *)
  m_triples : triple list;
}

val schema_name : string
val schema_version : int

(** [generate ~seed ~count ()] draws programs from the factory
    (rotating the three stock families when [family] is ["mixed"], the
    default) and seeds + validates one fault per program until [count]
    triples exist.  Deterministic in [(seed, count, family, classes)].
    Raises [Failure] for an unknown family or when the seeder's yield
    collapses (a classes filter that never validates). *)
val generate :
  ?family:string ->
  ?classes:Seeder.fault_class list ->
  seed:int ->
  count:int ->
  unit ->
  manifest

val manifest_to_string : manifest -> string
val manifest_of_string : string -> (manifest, string) result
val write_manifest : string -> manifest -> unit
val load_manifest : string -> (manifest, string) result

(** One outcome row.  Every field is deterministic at any job count. *)
type outcome = {
  o_id : string;
  o_class : string;
  o_family : string;
  o_status : string;
      (** ["located"] | ["not_located"] | ["no_failure"] | ["error"] *)
  o_counts : (string * int) list;
      (** {!Exom_serve.Serve.counts_of_report} keys, fixed order *)
  o_stmts : int;
  o_predicates : int;
  o_loc : int;
}

val located : outcome -> bool

(** [count row key] — 0 when absent. *)
val count : outcome -> string -> int

val outcome_to_string : outcome -> string
val outcome_of_string : string -> (outcome, string) result

(** The merged-outcomes header line for [manifest]. *)
val outcomes_header : manifest -> string

(** Tolerant JSONL row reader: parses rows until the first torn or
    foreign line (a crash may tear the tail), dropping the rest. *)
val read_rows : string -> outcome list

(** [shard_journal dir k] — shard [k]'s row journal path. *)
val shard_journal : string -> int -> string

(** Rows already journaled under [dir] (all shard files, any past shard
    count), deduped by id. *)
val journaled_rows : string -> outcome list

(** Create the campaign directory layout ([dir], [dir]/store,
    [dir]/journals) if missing. *)
val ensure_layout : string -> unit

(** Delete a previous campaign's artifacts under [dir] (row journals,
    ledger journals, store, merged outcomes) so a fresh run cannot see
    them.  The manifest and anything else in [dir] are left alone. *)
val reset : string -> unit

(** Run one triple in-process against the campaign directory's shared
    store, journaling its ledger under [dir]/journals and resuming from
    a prior journal when one matches.  [pool] is the caller's supervised
    worker pool (one per shard, reused across triples).  [config]
    overrides the locator's configuration (e.g. [ranking = None] for a
    static-order control leg). *)
val run_triple :
  ?config:Exom_core.Demand.config ->
  ?pool:Exom_sched.Pool.t ->
  dir:string ->
  triple ->
  outcome

(** Run one triple through a daemon at [socket] instead (the
    campaign-over-daemon path); rows come from the reply's [sv_counts].
    [Error] on transport failure. *)
val run_triple_via :
  socket:string -> triple -> (outcome, string) result

(** [run_shard ~dir ~manifest ~shard ~shards ~skip ()] runs this
    shard's slice of the manifest (triples [i] with [i mod shards =
    shard], skipping ids in [skip]), appending each row to the shard
    journal as it completes.  [jobs] sizes the worker pool ([None] =
    {!Exom_sched.Pool.default}); [socket] routes execution through a
    daemon instead of running in-process.  Returns the rows written. *)
val run_shard :
  ?config:Exom_core.Demand.config ->
  ?jobs:int ->
  ?socket:string ->
  dir:string ->
  manifest:manifest ->
  shard:int ->
  shards:int ->
  skip:(string -> bool) ->
  unit ->
  outcome list

(** Merge all journaled rows into [outcomes.jsonl] (header + rows in id
    order, restricted to manifest ids).  Returns the rows and the ids
    the journals were missing. *)
val merge : dir:string -> manifest:manifest -> outcome list * string list

(** In-process campaign driver (tests; the CLI forks instead): runs
    shards [0..shards-1] sequentially, then merges. *)
val run_local :
  ?config:Exom_core.Demand.config ->
  ?jobs:int ->
  ?resume:bool ->
  dir:string ->
  manifest:manifest ->
  shards:int ->
  unit ->
  outcome list * string list

type summary = {
  s_total : int;
  s_located : int;
  s_by_status : (string * int) list;  (** status → rows, sorted *)
  s_by_class : (string * (int * int)) list;
      (** class → (rows, located), sorted *)
}

val summarize : outcome list -> summary
val render_summary : summary -> string

(** {2 Campaign metric registries}

    Each shard reduces its journaled rows to a
    ["corpus.<class>.<count>"] counter registry written as
    [metrics.shard<k>.jsonl]; {!merge} writes the campaign-level
    [metrics.jsonl] from the deduped merged rows.  Counters merge by
    sum, so the canonical registry equals the absorption of the shard
    registries over any disjoint partition — byte-deterministic across
    reruns, [-j] and shard counts, like [outcomes.jsonl].  All files
    are {!Exom_obs.Export} JSONL, readable by [exom stats] and
    [exom audit]. *)

val shard_metrics : string -> int -> string
val campaign_metrics : string -> string
val registry_of_rows : outcome list -> Exom_obs.Metrics.t

(** The per-fault-class rollup [corpus report] prints next to the
    outcome tables: mean verification work per triple and a
    verifications-per-triple histogram. *)
val render_rollup : outcome list -> string
