module Ast = Exom_lang.Ast
module Loc = Exom_lang.Loc
module Pretty = Exom_lang.Pretty
module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Session = Exom_core.Session

type fault_class =
  | Stmt_delete
  | Guard_strengthen
  | Guard_weaken
  | Call_drop
  | Flag_init

let all_classes =
  [ Stmt_delete; Guard_strengthen; Guard_weaken; Call_drop; Flag_init ]

let class_to_string = function
  | Stmt_delete -> "stmt_delete"
  | Guard_strengthen -> "guard_strengthen"
  | Guard_weaken -> "guard_weaken"
  | Call_drop -> "call_drop"
  | Flag_init -> "flag_init"

let class_of_string = function
  | "stmt_delete" -> Some Stmt_delete
  | "guard_strengthen" -> Some Guard_strengthen
  | "guard_weaken" -> Some Guard_weaken
  | "call_drop" -> Some Call_drop
  | "flag_init" -> Some Flag_init
  | _ -> None

let e d = { Ast.edesc = d; eloc = Loc.dummy }
let conj c = e (Ast.Ebinop (Ast.And, c, e (Ast.Ebool false)))
let disj c = e (Ast.Ebinop (Ast.Or, c, e (Ast.Ebool true)))

(* Bottom-up statement rewriting over a whole program (globals too:
   Flag_init targets global initializers as well as locals). *)
let rec map_block f b = List.map (map_stmt f) b

and map_stmt f st =
  let st =
    match st.Ast.skind with
    | Ast.Sif (c, t, el) ->
      { st with Ast.skind = Ast.Sif (c, map_block f t, map_block f el) }
    | Ast.Swhile (c, b) -> { st with Ast.skind = Ast.Swhile (c, map_block f b) }
    | _ -> st
  in
  f st

let map_program f prog =
  {
    Ast.globals = map_block f prog.Ast.globals;
    funcs =
      List.map
        (fun fn -> { fn with Ast.fbody = map_block f fn.Ast.fbody })
        prog.Ast.funcs;
  }

let user_funcs prog =
  List.filter_map
    (fun fn -> if fn.Ast.fname = "main" then None else Some fn.Ast.fname)
    prog.Ast.funcs

let calls_user_func names block =
  List.exists
    (fun st ->
      match st.Ast.skind with
      | Ast.Sexpr { Ast.edesc = Ast.Ecall (f, _); _ } -> List.mem f names
      | _ -> false)
    block

(* Variables read by any predicate condition: Flag_init only targets
   declarations that (directly) feed a guard, which is what makes the
   mutation an omission candidate rather than a plain value error. *)
let predicate_vars prog =
  let vars = ref [] in
  Ast.iter_program
    (fun st ->
      match st.Ast.skind with
      | Ast.Sif (c, _, _) | Ast.Swhile (c, _) ->
        vars := Ast.expr_vars !vars c
      | _ -> ())
    prog;
  !vars

let sites prog =
  let names = user_funcs prog in
  let pvars = predicate_vars prog in
  let of_class cls =
    let acc = ref [] in
    Ast.iter_program
      (fun st ->
        let hit =
          match (cls, st.Ast.skind) with
          | Stmt_delete, Ast.Sassign (x, { Ast.edesc = rhs; _ }) ->
            rhs <> Ast.Evar x
          | Guard_strengthen, Ast.Sif (_, t, _) ->
            t <> [] && not (calls_user_func names t)
          | Guard_strengthen, Ast.Swhile (_, b) -> b <> []
          | Guard_weaken, Ast.Sif (_, _, el) -> el <> []
          | Call_drop, Ast.Sif (_, t, _) -> calls_user_func names t
          | Flag_init, Ast.Sdecl (Ast.Tint, x, Some { Ast.edesc = Ast.Eint _; _ })
            ->
            List.mem x pvars
          | _ -> false
        in
        if hit then acc := (cls, st.Ast.sid) :: !acc)
      prog;
    List.rev !acc
  in
  List.concat_map of_class all_classes

let apply prog cls sid =
  let changed = ref false in
  let f st =
    if st.Ast.sid <> sid then st
    else
      let mutated =
        match (cls, st.Ast.skind) with
        | Stmt_delete, Ast.Sassign (x, { Ast.edesc = rhs; _ })
          when rhs <> Ast.Evar x ->
          Some (Ast.Sassign (x, e (Ast.Evar x)))
        | Guard_strengthen, Ast.Sif (c, t, el) when t <> [] ->
          Some (Ast.Sif (conj c, t, el))
        | Guard_strengthen, Ast.Swhile (c, b) when b <> [] ->
          Some (Ast.Swhile (conj c, b))
        | Guard_weaken, Ast.Sif (c, t, el) when el <> [] ->
          Some (Ast.Sif (disj c, t, el))
        | Call_drop, Ast.Sif (c, t, el)
          when calls_user_func (user_funcs prog) t ->
          Some (Ast.Sif (conj c, t, el))
        | ( Flag_init,
            Ast.Sdecl (Ast.Tint, x, Some { Ast.edesc = Ast.Eint n; _ }) ) ->
          Some (Ast.Sdecl (Ast.Tint, x, Some (e (Ast.Eint (if n = 0 then 1 else 0)))))
        | _ -> None
      in
      match mutated with
      | Some skind ->
        changed := true;
        { st with Ast.skind }
      | None -> st
  in
  let prog' = map_program f prog in
  if !changed then
    Some (Typecheck.parse_and_check (Pretty.program_to_string prog'))
  else None

type seeded = {
  sd_class : fault_class;
  sd_root_line : int;
  sd_root_sids : int list;
  sd_correct : Ast.program;
  sd_faulty : Ast.program;
  sd_correct_src : string;
  sd_faulty_src : string;
  sd_input : int list;
}

(* Validation runs under a tight step budget: a mutation that unbounds
   a loop (e.g. Stmt_delete on a loop increment) spins forever and must
   be rejected cheaply — and the cutoff must be deterministic, because
   it decides which faults enter the corpus. *)
let validation_budget = 50_000

let validates ~correct ~faulty ~input =
  let rc = Interp.run ~budget:validation_budget correct ~input in
  let rf = Interp.run ~budget:validation_budget faulty ~input in
  match (rc.Interp.outcome, rf.Interp.outcome) with
  | Ok (), Ok () -> (
    let expected = Interp.output_values rc in
    match Session.classify_outputs ~outputs:rf.Interp.outputs ~expected with
    | exception Session.No_failure -> false
    | _ -> (
      match (rc.Interp.trace, rf.Interp.trace) with
      | Some tc, Some tf ->
        (* true omission: some statement ran strictly fewer times *)
        let omitted = ref false in
        Hashtbl.iter
          (fun sid _ ->
            if Trace.occurrences tf sid < Trace.occurrences tc sid then
              omitted := true)
          (Ast.stmt_table correct);
        (* aligned anchor: the first divergent output position must be
           produced by the {e same} print statement in both runs, with
           a different value.  A purely positional shift (the faulty
           stream missing prints, so position k holds some unrelated
           print) anchors the search at an instance with no potential
           dependence on the root — unlocatable by construction, and
           exactly the manifestation the paper's technique does not
           claim.  Requiring a same-statement value divergence is the
           technique's applicability condition. *)
        let rec anchor_aligned fo co =
          match (fo, co) with
          | (fi, fv) :: frest, (ci, cv) :: crest ->
            if fv = cv then anchor_aligned frest crest
            else (Trace.get tf fi).Trace.sid = (Trace.get tc ci).Trace.sid
          | _ -> false
        in
        !omitted && anchor_aligned rf.Interp.outputs rc.Interp.outputs
      | _ -> false))
  | _ -> false

let rotate n xs =
  if xs = [] then []
  else
    let n = n mod List.length xs in
    let rec split i acc = function
      | rest when i = 0 -> rest @ List.rev acc
      | x :: rest -> split (i - 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    split n [] xs

let root_of faulty sid =
  let line = ref 0 and sids = ref [] in
  Ast.iter_program
    (fun st -> if st.Ast.sid = sid then line := Loc.line st.Ast.sloc)
    faulty;
  Ast.iter_program
    (fun st -> if Loc.line st.Ast.sloc = !line then sids := st.Ast.sid :: !sids)
    faulty;
  (!line, List.rev !sids)

let seed_fault ?(classes = all_classes) ~seed ~prog ~input () =
  let st = Random.State.make [| 0x0fa1; seed |] in
  let candidates =
    List.filter (fun (c, _) -> List.mem c classes) (sites prog)
  in
  if candidates = [] then None
  else begin
    (* alternates are drawn before the search loop so randomness
       consumption — hence determinism — is independent of which site
       validates first *)
    let rot = Random.State.int st (List.length candidates) in
    let alternates =
      List.init 4 (fun _ ->
          List.init
            (8 + Random.State.int st 9)
            (fun _ -> Random.State.int st 101 - 50))
    in
    let inputs = input :: alternates in
    let try_site (cls, sid) =
      match apply prog cls sid with
      | None -> None
      | Some faulty -> (
        match
          List.find_opt
            (fun input -> validates ~correct:prog ~faulty ~input)
            inputs
        with
        | None -> None
        | Some input ->
          let line, sids = root_of faulty sid in
          Some
            {
              sd_class = cls;
              sd_root_line = line;
              sd_root_sids = sids;
              sd_correct = prog;
              sd_faulty = faulty;
              sd_correct_src = Pretty.program_to_string prog;
              sd_faulty_src = Pretty.program_to_string faulty;
              sd_input = input;
            })
    in
    List.find_map try_site (rotate rot candidates)
  end
