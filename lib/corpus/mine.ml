module Json = Exom_obs.Json

let schema_name = "exom.corpus.mine"
let schema_version = 1

type bucket = {
  b_key : string;
  b_n : int;
  b_located : int;
  b_not_located : int;
  b_failed : int;
  b_mean_iterations : float;
  b_mean_verifications : float;
  b_mean_verify_queries : float;
  b_mean_store_hits : float;
}

type table = {
  mi_total : int;
  mi_located : int;
  mi_not_located : int;
  mi_failed : int;
  mi_by_class : bucket list;
  mi_by_family : bucket list;
  mi_by_size : bucket list;
  mi_by_density : bucket list;
}

let ran (o : Campaign.outcome) =
  o.Campaign.o_status = "located" || o.Campaign.o_status = "not_located"

let bucket_of key rows =
  let n = List.length rows in
  let ran_rows = List.filter ran rows in
  let mean f =
    match ran_rows with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc r -> acc +. float_of_int (f r)) 0.0 ran_rows
      /. float_of_int (List.length ran_rows)
  in
  {
    b_key = key;
    b_n = n;
    b_located = List.length (List.filter Campaign.located rows);
    b_not_located =
      List.length
        (List.filter (fun r -> r.Campaign.o_status = "not_located") rows);
    b_failed = List.length (List.filter (fun r -> not (ran r)) rows);
    b_mean_iterations = mean (fun r -> Campaign.count r "iterations");
    b_mean_verifications = mean (fun r -> Campaign.count r "verifications");
    b_mean_verify_queries = mean (fun r -> Campaign.count r "verify_queries");
    b_mean_store_hits =
      mean (fun r ->
          Campaign.count r "store_hits" + Campaign.count r "store_disk_hits");
  }

(* Group rows by a key function; buckets sort by key so the table is
   independent of row order beyond the per-bucket means. *)
let group key_of rows =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let k = key_of r in
      Hashtbl.replace tbl k (r :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    rows;
  Hashtbl.fold (fun k rs acc -> (k, List.rev rs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (k, rs) -> bucket_of k rs)

let size_bucket (o : Campaign.outcome) =
  let s = o.Campaign.o_stmts in
  if s <= 10 then "stmts<=10"
  else if s <= 20 then "stmts11-20"
  else if s <= 40 then "stmts21-40"
  else "stmts>40"

let density_bucket (o : Campaign.outcome) =
  if o.Campaign.o_stmts = 0 then "density0-10"
  else
    let d =
      float_of_int o.Campaign.o_predicates /. float_of_int o.Campaign.o_stmts
    in
    if d < 0.10 then "density0-10"
    else if d < 0.20 then "density10-20"
    else if d < 0.30 then "density20-30"
    else "density30+"

let mine rows =
  {
    mi_total = List.length rows;
    mi_located = List.length (List.filter Campaign.located rows);
    mi_not_located =
      List.length
        (List.filter (fun r -> r.Campaign.o_status = "not_located") rows);
    mi_failed = List.length (List.filter (fun r -> not (ran r)) rows);
    mi_by_class = group (fun r -> r.Campaign.o_class) rows;
    mi_by_family = group (fun r -> r.Campaign.o_family) rows;
    mi_by_size = group size_bucket rows;
    mi_by_density = group density_bucket rows;
  }

(* {2 Codec} *)

let num n = Json.Num (float_of_int n)

(* Means are rounded to 4 decimals before encoding so the document
   stays readable; the rounding is itself deterministic. *)
let fnum f = Json.Num (Float.round (f *. 10_000.0) /. 10_000.0)

let bucket_to_json b =
  Json.Obj
    [
      ("key", Json.Str b.b_key);
      ("n", num b.b_n);
      ("located", num b.b_located);
      ("not_located", num b.b_not_located);
      ("failed", num b.b_failed);
      ("mean_iterations", fnum b.b_mean_iterations);
      ("mean_verifications", fnum b.b_mean_verifications);
      ("mean_verify_queries", fnum b.b_mean_verify_queries);
      ("mean_store_hits", fnum b.b_mean_store_hits);
    ]

let table_to_string t =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str schema_name);
         ("version", num schema_version);
         ("total", num t.mi_total);
         ("located", num t.mi_located);
         ("not_located", num t.mi_not_located);
         ("failed", num t.mi_failed);
         ("by_class", Json.Arr (List.map bucket_to_json t.mi_by_class));
         ("by_family", Json.Arr (List.map bucket_to_json t.mi_by_family));
         ("by_size", Json.Arr (List.map bucket_to_json t.mi_by_size));
         ("by_density", Json.Arr (List.map bucket_to_json t.mi_by_density));
       ])
  ^ "\n"

let ( let* ) = Result.bind

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let int_field name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

let float_field name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

let bucket_of_json j =
  let* b_key = str_field "key" j in
  let* b_n = int_field "n" j in
  let* b_located = int_field "located" j in
  let* b_not_located = int_field "not_located" j in
  let* b_failed = int_field "failed" j in
  let* b_mean_iterations = float_field "mean_iterations" j in
  let* b_mean_verifications = float_field "mean_verifications" j in
  let* b_mean_verify_queries = float_field "mean_verify_queries" j in
  let* b_mean_store_hits = float_field "mean_store_hits" j in
  Ok
    {
      b_key; b_n; b_located; b_not_located; b_failed; b_mean_iterations;
      b_mean_verifications; b_mean_verify_queries; b_mean_store_hits;
    }

let buckets_field name j =
  match Json.member name j with
  | Some (Json.Arr l) ->
    List.fold_left
      (fun acc bj ->
        let* acc = acc in
        let* b = bucket_of_json bj in
        Ok (b :: acc))
      (Ok []) l
    |> Result.map List.rev
  | _ -> Error (Printf.sprintf "missing bucket array %S" name)

let table_of_string s =
  let* j = Json.parse s in
  let* schema = str_field "schema" j in
  let* version = int_field "version" j in
  if schema <> schema_name then Error (Printf.sprintf "foreign schema %S" schema)
  else if version <> schema_version then
    Error (Printf.sprintf "unsupported %s version %d" schema_name version)
  else
    let* mi_total = int_field "total" j in
    let* mi_located = int_field "located" j in
    let* mi_not_located = int_field "not_located" j in
    let* mi_failed = int_field "failed" j in
    let* mi_by_class = buckets_field "by_class" j in
    let* mi_by_family = buckets_field "by_family" j in
    let* mi_by_size = buckets_field "by_size" j in
    let* mi_by_density = buckets_field "by_density" j in
    Ok
      {
        mi_total; mi_located; mi_not_located; mi_failed; mi_by_class;
        mi_by_family; mi_by_size; mi_by_density;
      }

let render t =
  let b = Buffer.create 512 in
  let rate n d = if d = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int d in
  Printf.bprintf b
    "corpus mine: %d rows, located %d (%.1f%%), NOT_ID %d (%.1f%%), failed %d\n"
    t.mi_total t.mi_located
    (rate t.mi_located t.mi_total)
    t.mi_not_located
    (rate t.mi_not_located t.mi_total)
    t.mi_failed;
  let section title buckets =
    Printf.bprintf b "%s:\n" title;
    Printf.bprintf b
      "  %-18s %5s %8s %7s %7s %8s %8s\n"
      "key" "n" "located" "NOT_ID" "failed" "iter" "verifs";
    List.iter
      (fun bk ->
        Printf.bprintf b "  %-18s %5d %7.1f%% %7d %7d %8.2f %8.2f\n" bk.b_key
          bk.b_n
          (rate bk.b_located bk.b_n)
          bk.b_not_located bk.b_failed bk.b_mean_iterations
          bk.b_mean_verifications)
      buckets
  in
  section "by fault class" t.mi_by_class;
  section "by family" t.mi_by_family;
  section "by program size" t.mi_by_size;
  section "by predicate density" t.mi_by_density;
  Buffer.contents b
