(** Mechanical execution-omission fault seeding.

    Every fault class is an {e expression-level} mutation of a single
    statement, so statement counts — and therefore statement ids — are
    preserved between the correct and faulty programs: the oracle can
    align the two runs and the mutated statement's line is the ground
    truth the locator is scored against (the same invariant the
    hand-written benchmarks in [lib/bench] rely on).

    A candidate fault is kept only when validation shows a {e true
    omission error} on some input: both runs terminate normally, the
    outputs diverge (so a failure can be anchored), and at least one
    statement executes strictly fewer times in the faulty run — the
    faulty run omits execution the correct run performs. *)

type fault_class =
  | Stmt_delete
      (** [x = e] becomes the no-op [x = x]: the update is omitted *)
  | Guard_strengthen
      (** [if]/[while] condition [c] becomes [(c) && false]: the
          then-branch / loop body is never entered *)
  | Guard_weaken
      (** [if] condition [c] (with a non-empty else) becomes
          [(c) || true]: the else-branch is never entered *)
  | Call_drop
      (** guard-strengthen on an [if] whose then-branch calls a user
          procedure: the call is dropped *)
  | Flag_init
      (** an [int] initializer feeding a predicate is replaced by a
          different constant: downstream guards flip *)

val all_classes : fault_class list
val class_to_string : fault_class -> string
val class_of_string : string -> fault_class option

(** Candidate seeding sites of a program: [(class, sid)] pairs in
    deterministic (class-major, statement-order) order. *)
val sites : Exom_lang.Ast.program -> (fault_class * int) list

(** [apply prog cls sid] mutates statement [sid] according to [cls] and
    returns the re-parsed (typechecked, sids assigned) faulty program,
    or [None] when the class does not apply to that statement. *)
val apply :
  Exom_lang.Ast.program -> fault_class -> int -> Exom_lang.Ast.program option

(** A validated seeded fault. *)
type seeded = {
  sd_class : fault_class;
  sd_root_line : int;  (** 1-based line of the mutated statement *)
  sd_root_sids : int list;  (** every sid on that line *)
  sd_correct : Exom_lang.Ast.program;
  sd_faulty : Exom_lang.Ast.program;
  sd_correct_src : string;
  sd_faulty_src : string;
  sd_input : int list;  (** the validated failing input *)
}

(** Does [input] expose [faulty] as a true omission error against
    [correct]?  (Both terminate, outputs diverge and anchor a failure,
    and some statement runs strictly fewer times in the faulty run.) *)
val validates :
  correct:Exom_lang.Ast.program ->
  faulty:Exom_lang.Ast.program ->
  input:int list ->
  bool

(** [seed_fault ?classes ~seed ~prog ~input ()] tries the candidate
    sites of [prog] in a seed-determined order, validating each against
    [input] first and then against a few seed-derived alternates, and
    returns the first validated fault.  Deterministic in
    [(classes, seed, prog, input)]. *)
val seed_fault :
  ?classes:fault_class list ->
  seed:int ->
  prog:Exom_lang.Ast.program ->
  input:int list ->
  unit ->
  seeded option
