(** The corpus program factory: a seed-deterministic generator of small
    well-typed MCL programs, promoted from the qcheck harness in
    [test/test_prop.ml] so the property tests and the corpus pipeline
    share one generator.

    Programs are built from int globals, helper procedures that read and
    update the globals behind guards (the natural substrate for
    execution-omission faults), and a [main] of declarations,
    assignments, prints, bounded [while] loops, [if] statements and
    helper calls.  All names are globally fresh (the typechecker rejects
    shadowing), every loop is counter-bounded and the helper call graph
    is acyclic, so generated programs always terminate well inside the
    interpreter's step budget.

    Determinism: generation consumes randomness only through the given
    [Random.State.t] (or the state derived from [seed]), so the same
    seed and knobs produce byte-identical programs in every process. *)

(** Size/shape knobs of one program family. *)
type knobs = {
  k_size : int;  (** statement budget of [main]'s top level *)
  k_depth : int;  (** maximum branch/loop nesting depth *)
  k_procs : int;  (** helper procedures (0 = [main] only) *)
  k_proc_depth : int;
      (** call-chain depth: helper [i] may call helpers [j < i] up to
          this many levels deep *)
  k_loops : bool;  (** allow counter-bounded [while] loops *)
  k_input : int;  (** upper bound on the generated input list length *)
}

val default_knobs : knobs

(** The three stock families used by corpus generation: ["small"],
    ["medium"], ["large"]. *)
val families : (string * knobs) list

val knobs_of_family : string -> knobs option

(** [generate ?knobs ~seed ()] derives a fresh [Random.State.t] from
    [seed] and returns a typechecked program (statement ids assigned by
    a pretty-print/re-parse round trip) plus an input for it. *)
val generate : ?knobs:knobs -> seed:int -> unit -> Exom_lang.Ast.program * int list

(** The qcheck-style entry point kept for [test_prop]: generate from an
    explicit random state with {!default_knobs}. *)
val gen_program : Random.State.t -> Exom_lang.Ast.program * int list

(** [gen_with ~knobs st] — {!gen_program} with explicit knobs. *)
val gen_with : knobs:knobs -> Random.State.t -> Exom_lang.Ast.program * int list

(** {2 Static features for the corpus manifest and the miner} *)

type features = {
  f_stmts : int;  (** statement count *)
  f_predicates : int;  (** [if]/[while] statements *)
  f_procs : int;  (** functions, [main] included *)
  f_loc : int;  (** non-blank source lines *)
}

val features : Exom_lang.Ast.program -> features
