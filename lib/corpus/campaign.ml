module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Json = Exom_obs.Json
module Oracle = Exom_core.Oracle
module Session = Exom_core.Session
module Demand = Exom_core.Demand
module Recover = Exom_core.Recover
module Ledger = Exom_ledger.Ledger
module Store = Exom_sched.Store
module Pool = Exom_sched.Pool
module Proto = Exom_serve.Proto
module Client = Exom_serve.Client
module Serve = Exom_serve.Serve
module Metrics = Exom_obs.Metrics
module Export = Exom_obs.Export
module Vfs = Exom_util.Vfs

(* The campaign's degradation contract for storage faults: absorb the
   error into [corpus.io_failures] (acknowledged so the chaos gate can
   account for it) and keep the campaign moving — a full disk under one
   shard must not abort the fleet.  Raisers (a row journal that cannot
   be appended even after a repair + retry) quarantine just their shard:
   [run_local] catches, acks and continues with the next shard; the
   quarantined shard's triples surface as [missing] ids in {!merge} and
   are re-runnable with [--resume]. *)
let note_io e =
  Vfs.ack e ~by:"corpus.io_failures";
  Printf.eprintf "exom: corpus: %s\n%!" (Vfs.error_message e)

let schema_name = "exom.corpus"
let schema_version = 1

type triple = {
  t_id : string;
  t_seed : int;
  t_family : string;
  t_class : Seeder.fault_class;
  t_root_line : int;
  t_root_sids : int list;
  t_stmts : int;
  t_predicates : int;
  t_procs : int;
  t_loc : int;
  t_input : int list;
  t_correct : string;
  t_faulty : string;
}

type manifest = {
  m_seed : int;
  m_count : int;
  m_family : string;
  m_attempts : int;
  m_triples : triple list;
}

(* {2 Generation} *)

let generate ?(family = "mixed") ?classes ~seed ~count () =
  let family_names = List.map fst Factory.families in
  if family <> "mixed" && not (List.mem family family_names) then
    failwith (Printf.sprintf "unknown program family %S" family);
  let knobs_at attempt =
    let name =
      if family = "mixed" then
        List.nth family_names (attempt mod List.length family_names)
      else family
    in
    (name, Option.get (Factory.knobs_of_family name))
  in
  let cap = (100 * count) + 1000 in
  let triples = ref [] and kept = ref 0 and attempts = ref 0 in
  while !kept < count do
    if !attempts >= cap then
      failwith
        (Printf.sprintf
           "corpus generation stalled: %d/%d triples after %d attempts (is \
            the fault-class filter satisfiable?)"
           !kept count !attempts);
    let fam, knobs = knobs_at !attempts in
    (* one seed per attempt, derived injectively from (seed, attempt) *)
    let pseed = (seed * 1_000_003) + !attempts in
    incr attempts;
    let prog, input = Factory.generate ~knobs ~seed:pseed () in
    match Seeder.seed_fault ?classes ~seed:pseed ~prog ~input () with
    | None -> ()
    | Some sd ->
      let f = Factory.features sd.Seeder.sd_faulty in
      triples :=
        {
          t_id = Printf.sprintf "t%05d" !kept;
          t_seed = pseed;
          t_family = fam;
          t_class = sd.Seeder.sd_class;
          t_root_line = sd.Seeder.sd_root_line;
          t_root_sids = sd.Seeder.sd_root_sids;
          t_stmts = f.Factory.f_stmts;
          t_predicates = f.Factory.f_predicates;
          t_procs = f.Factory.f_procs;
          t_loc = f.Factory.f_loc;
          t_input = sd.Seeder.sd_input;
          t_correct = sd.Seeder.sd_correct_src;
          t_faulty = sd.Seeder.sd_faulty_src;
        }
        :: !triples;
      incr kept
  done;
  {
    m_seed = seed;
    m_count = count;
    m_family = family;
    m_attempts = !attempts;
    m_triples = List.rev !triples;
  }

(* {2 Manifest codec} *)

let num n = Json.Num (float_of_int n)
let nums xs = Json.Arr (List.map num xs)

let triple_to_json t =
  Json.Obj
    [
      ("id", Json.Str t.t_id);
      ("seed", num t.t_seed);
      ("family", Json.Str t.t_family);
      ("class", Json.Str (Seeder.class_to_string t.t_class));
      ("root_line", num t.t_root_line);
      ("root_sids", nums t.t_root_sids);
      ("stmts", num t.t_stmts);
      ("predicates", num t.t_predicates);
      ("procs", num t.t_procs);
      ("loc", num t.t_loc);
      ("input", nums t.t_input);
      ("correct", Json.Str t.t_correct);
      ("faulty", Json.Str t.t_faulty);
    ]

let manifest_to_string m =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str schema_name);
         ("version", num schema_version);
         ("seed", num m.m_seed);
         ("count", num m.m_count);
         ("family", Json.Str m.m_family);
         ("attempts", num m.m_attempts);
         ("triples", Json.Arr (List.map triple_to_json m.m_triples));
       ])
  ^ "\n"

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let int_field name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

let ints_field name j =
  match Option.bind (Json.member name j) Json.to_list with
  | Some l ->
    Ok (List.filter_map (fun v -> Option.map int_of_float (Json.to_float v)) l)
  | None -> Error (Printf.sprintf "missing array field %S" name)

let ( let* ) = Result.bind

let triple_of_json j =
  let* t_id = str_field "id" j in
  let* t_seed = int_field "seed" j in
  let* t_family = str_field "family" j in
  let* cls = str_field "class" j in
  let* t_class =
    match Seeder.class_of_string cls with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown fault class %S" cls)
  in
  let* t_root_line = int_field "root_line" j in
  let* t_root_sids = ints_field "root_sids" j in
  let* t_stmts = int_field "stmts" j in
  let* t_predicates = int_field "predicates" j in
  let* t_procs = int_field "procs" j in
  let* t_loc = int_field "loc" j in
  let* t_input = ints_field "input" j in
  let* t_correct = str_field "correct" j in
  let* t_faulty = str_field "faulty" j in
  Ok
    {
      t_id; t_seed; t_family; t_class; t_root_line; t_root_sids; t_stmts;
      t_predicates; t_procs; t_loc; t_input; t_correct; t_faulty;
    }

let manifest_of_string s =
  let* j = Json.parse s in
  let* schema = str_field "schema" j in
  let* version = int_field "version" j in
  if schema <> schema_name then
    Error (Printf.sprintf "foreign schema %S" schema)
  else if version <> schema_version then
    Error (Printf.sprintf "unsupported %s version %d" schema_name version)
  else
    let* m_seed = int_field "seed" j in
    let* m_count = int_field "count" j in
    let* m_family = str_field "family" j in
    let* m_attempts = int_field "attempts" j in
    let* triples =
      match Json.member "triples" j with
      | Some (Json.Arr l) ->
        List.fold_left
          (fun acc tj ->
            let* acc = acc in
            let* t = triple_of_json tj in
            Ok (t :: acc))
          (Ok []) l
        |> Result.map List.rev
      | _ -> Error "missing triples array"
    in
    Ok { m_seed; m_count; m_family; m_attempts; m_triples = triples }

(* Generate-time writes (the manifest) have no degradation tier: a
   campaign without a manifest cannot run, so failure raises. *)
let write_file path contents =
  Vfs.get_ok (Vfs.write_file_atomic ~tmp:(path ^ ".tmp") path contents)

let write_manifest path m = write_file path (manifest_to_string m)

let load_manifest path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> manifest_of_string s

(* {2 Outcome rows} *)

type outcome = {
  o_id : string;
  o_class : string;
  o_family : string;
  o_status : string;
  o_counts : (string * int) list;
  o_stmts : int;
  o_predicates : int;
  o_loc : int;
}

let located o = o.o_status = "located"

let count o key =
  match List.assoc_opt key o.o_counts with Some v -> v | None -> 0

let outcome_to_string o =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str o.o_id);
         ("class", Json.Str o.o_class);
         ("family", Json.Str o.o_family);
         ("status", Json.Str o.o_status);
         ("counts", Json.Obj (List.map (fun (k, v) -> (k, num v)) o.o_counts));
         ("stmts", num o.o_stmts);
         ("predicates", num o.o_predicates);
         ("loc", num o.o_loc);
       ])

let outcome_of_string s =
  let* j = Json.parse s in
  let* o_id = str_field "id" j in
  let* o_class = str_field "class" j in
  let* o_family = str_field "family" j in
  let* o_status = str_field "status" j in
  let o_counts =
    match Json.member "counts" j with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (function k, Json.Num v -> Some (k, int_of_float v) | _ -> None)
        kvs
    | _ -> []
  in
  let* o_stmts = int_field "stmts" j in
  let* o_predicates = int_field "predicates" j in
  let* o_loc = int_field "loc" j in
  Ok { o_id; o_class; o_family; o_status; o_counts; o_stmts; o_predicates; o_loc }

let outcomes_header m =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str (schema_name ^ ".outcomes"));
         ("version", num schema_version);
         ("seed", num m.m_seed);
         ("count", num m.m_count);
         ("family", Json.Str m.m_family);
       ])

let is_header line =
  match Json.parse line with
  | Ok j -> Json.member "schema" j <> None
  | Error _ -> false

(* Tolerant row reader: a crash can tear the journal's last line, so
   parsing stops (rather than fails) at the first bad line. *)
let read_rows path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> []
  | contents ->
    let lines = String.split_on_char '\n' contents in
    let rec go acc = function
      | [] -> List.rev acc
      | line :: rest when String.trim line = "" -> go acc rest
      | line :: rest when is_header line -> go acc rest
      | line :: rest -> (
        match outcome_of_string line with
        | Ok row -> go (row :: acc) rest
        | Error _ -> List.rev acc)
    in
    go [] lines

let shard_journal dir k =
  Filename.concat dir (Printf.sprintf "outcomes.shard%d.jsonl" k)

(* {2 Campaign metric registries}

   Each shard reduces its journaled rows to a metrics registry
   ("corpus.<class>.<count>" counters plus triples/located) written as
   [metrics.shard<k>.jsonl]; the merge writes the campaign-level
   [metrics.jsonl].  Counters merge by sum, so the canonical registry
   — computed from the deduped merged rows — equals the absorption of
   the shard registries whenever the partition is disjoint: the merged
   file is byte-deterministic across reruns, [-j] and shard counts,
   exactly like [outcomes.jsonl]. *)

let shard_metrics dir k =
  Filename.concat dir (Printf.sprintf "metrics.shard%d.jsonl" k)

let campaign_metrics dir = Filename.concat dir "metrics.jsonl"

let registry_of_rows rows =
  let reg = Metrics.create () in
  List.iter
    (fun r ->
      let name k = Printf.sprintf "corpus.%s.%s" r.o_class k in
      Metrics.incr reg (name "triples");
      if located r then Metrics.incr reg (name "located");
      List.iter (fun (k, v) -> Metrics.add reg (name k) v) r.o_counts)
    rows;
  reg

let journaled_rows dir =
  let files =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | entries ->
      Array.to_list entries
      |> List.filter (fun f ->
             String.length f > 14
             && String.sub f 0 14 = "outcomes.shard"
             && Filename.check_suffix f ".jsonl")
      |> List.sort compare
  in
  let seen = Hashtbl.create 64 in
  List.concat_map (fun f -> read_rows (Filename.concat dir f)) files
  |> List.filter (fun r ->
         if Hashtbl.mem seen r.o_id then false
         else begin
           Hashtbl.add seen r.o_id ();
           true
         end)

(* {2 Running triples} *)

let store_dir dir = Filename.concat dir "store"
let journals_dir dir = Filename.concat dir "journals"

let ensure_dir d = Vfs.get_ok (Vfs.ensure_dir d)

let ensure_layout dir =
  ensure_dir dir;
  ensure_dir (store_dir dir);
  ensure_dir (journals_dir dir)

let run_triple ?config ?pool ~dir triple =
  let row status counts =
    {
      o_id = triple.t_id;
      o_class = Seeder.class_to_string triple.t_class;
      o_family = triple.t_family;
      o_status = status;
      o_counts = counts;
      o_stmts = triple.t_stmts;
      o_predicates = triple.t_predicates;
      o_loc = triple.t_loc;
    }
  in
  match
    ( Typecheck.parse_and_check triple.t_faulty,
      Typecheck.parse_and_check triple.t_correct )
  with
  | exception _ -> row "error" []
  | prog, correct -> (
    let input = triple.t_input in
    match Oracle.expected ~correct_prog:correct ~input with
    | exception _ -> row "error" []
    | expected -> (
      let store = Store.create ~dir:(store_dir dir) () in
      let ledger = Ledger.create () in
      match
        Session.create ~store ~ledger ~prog ~input ~expected
          ~profile_inputs:[ input ] ()
      with
      | exception Session.No_failure -> row "no_failure" []
      | exception _ -> row "error" []
      | session ->
        let lpath = Filename.concat (journals_dir dir) (triple.t_id ^ ".jsonl") in
        let plan =
          if Sys.file_exists lpath then
            match Recover.plan_of_file lpath with
            | Ok p when Recover.matches_session p session -> Some p
            | Ok _ | Error _ -> None
          else None
        in
        (match plan with Some p -> Recover.prime session p | None -> ());
        Ledger.attach_journal ledger lpath;
        (match plan with
        | Some p ->
          Ledger.resume_marker ledger ~replayed:p.Recover.salvaged_events
            ~truncated:p.Recover.truncated
        | None -> ());
        let oracle =
          Oracle.create ~faulty_trace:session.Session.trace
            ~correct_prog:correct ~input
        in
        let report =
          Demand.locate ?config ?pool session ~oracle
            ~root_sids:triple.t_root_sids
        in
        Ledger.close_journal ledger;
        (* the canonical ledger is a convenience next to the journal;
           losing it costs a resume (the journal replays), not the row *)
        (match Ledger.write_result lpath ledger with
        | Ok () -> ()
        | Error e -> note_io e);
        row
          (if report.Demand.found then "located" else "not_located")
          (Serve.counts_of_report report)))

let run_triple_via ~socket triple =
  let req =
    Proto.Locate
      {
        Proto.lc_program = triple.t_faulty;
        lc_correct = triple.t_correct;
        lc_input = triple.t_input;
        lc_root_line = Some triple.t_root_line;
        lc_deadline = None;
      }
  in
  let row status counts =
    {
      o_id = triple.t_id;
      o_class = Seeder.class_to_string triple.t_class;
      o_family = triple.t_family;
      o_status = status;
      o_counts = counts;
      o_stmts = triple.t_stmts;
      o_predicates = triple.t_predicates;
      o_loc = triple.t_loc;
    }
  in
  match Client.request ~socket req with
  | Error e -> Error e
  | Ok (Proto.Served s) ->
    Ok
      (row
         (if s.Proto.sv_found then "located" else "not_located")
         s.Proto.sv_counts)
  | Ok (Proto.Shed reason) -> Error ("request shed: " ^ reason)
  | Ok (Proto.Failed reason) ->
    (* the daemon's explicit per-triple verdicts are rows, not campaign
       failures: a no-divergence reply mirrors the in-process
       No_failure and anything else is an error row *)
    let no_failure_marker = "nothing to locate" in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec scan i =
        i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
      in
      scan 0
    in
    Ok (row (if contains reason no_failure_marker then "no_failure" else "error") [])
  | Ok Proto.Pong | Ok (Proto.Counters _) -> Error "unexpected reply kind"

(* {2 Sharded campaign} *)

(* One row, one [write], one [fsync] — through the checked façade.  A
   failed append is retried once after truncating away any torn tail
   (a short write would otherwise stop the tolerant reader in front of
   every later row); the per-path fault budget means a seeded storm
   lets the retry through.  A second failure raises — [run_local]
   quarantines the shard and moves on. *)
let append_row path row =
  let line = outcome_to_string row ^ "\n" in
  let size () =
    match Unix.stat path with
    | { Unix.st_size; _ } -> st_size
    | exception Unix.Unix_error _ -> 0
  in
  let before = size () in
  match Vfs.append path line with
  | Ok () -> ()
  | Error e ->
    note_io e;
    (try if size () > before then Unix.truncate path before
     with Unix.Unix_error _ -> ());
    (match Vfs.append path line with
    | Ok () -> ()
    | Error e -> raise (Vfs.Io_error e))

let shard_slice manifest ~shard ~shards =
  List.filteri (fun i _ -> i mod shards = shard) manifest.m_triples

let run_shard ?config ?jobs ?socket ~dir ~manifest ~shard ~shards ~skip () =
  ensure_layout dir;
  let triples =
    List.filter (fun t -> not (skip t.t_id)) (shard_slice manifest ~shard ~shards)
  in
  let journal = shard_journal dir shard in
  let pool =
    match socket with
    | Some _ -> None
    | None -> (
      match jobs with
      | Some j -> Some (Pool.create ~jobs:j ())
      | None -> Some (Pool.default ()))
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      let rows =
        List.map
          (fun t ->
            let row =
              match socket with
              | Some socket -> (
                match run_triple_via ~socket t with
                | Ok row -> row
                | Error e -> failwith (Printf.sprintf "%s: %s" t.t_id e))
              | None -> run_triple ?config ?pool ~dir t
            in
            append_row journal row;
            row)
          triples
      in
      (* the shard registry covers the whole journal (resumed rows
         included), not just this invocation's slice; it is derived
         data, so a failed write degrades rather than raises *)
      (match
         Export.write_metrics (shard_metrics dir shard)
           (registry_of_rows (read_rows journal))
       with
      | Ok () -> ()
      | Error e -> note_io e);
      rows)

let merge ~dir ~manifest =
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun r -> if not (Hashtbl.mem by_id r.o_id) then Hashtbl.add by_id r.o_id r)
    (journaled_rows dir);
  let rows, missing =
    List.fold_left
      (fun (rows, missing) t ->
        match Hashtbl.find_opt by_id t.t_id with
        | Some r -> (r :: rows, missing)
        | None -> (rows, t.t_id :: missing))
      ([], []) manifest.m_triples
  in
  let rows = List.rev rows and missing = List.rev missing in
  let b = Buffer.create 4096 in
  Buffer.add_string b (outcomes_header manifest);
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b (outcome_to_string r);
      Buffer.add_char b '\n')
    rows;
  (* the merged artifacts are derived from the journals: a failed write
     degrades (re-running [merge] rebuilds them), the rows still return *)
  let outcomes = Filename.concat dir "outcomes.jsonl" in
  (match
     Vfs.write_file_atomic ~tmp:(outcomes ^ ".tmp") outcomes
       (Buffer.contents b)
   with
  | Ok () -> ()
  | Error e -> note_io e);
  (match Export.write_metrics (campaign_metrics dir) (registry_of_rows rows) with
  | Ok () -> ()
  | Error e -> note_io e);
  (rows, missing)

(* A fresh (non-resume) run must not see a previous campaign's rows,
   journals or verdicts. *)
let reset dir =
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if
          f = "journals" || f = "store" || f = "outcomes.jsonl"
          || f = "metrics.jsonl"
          || (String.length f > 14 && String.sub f 0 14 = "outcomes.shard")
          || (String.length f > 13 && String.sub f 0 13 = "metrics.shard")
        then rm p)
      (Sys.readdir dir)

let run_local ?config ?jobs ?(resume = false) ~dir ~manifest ~shards () =
  ensure_layout dir;
  if not resume then reset dir;
  ensure_layout dir;
  let skip =
    if resume then begin
      let done_ids = Hashtbl.create 64 in
      List.iter (fun r -> Hashtbl.add done_ids r.o_id ()) (journaled_rows dir);
      Hashtbl.mem done_ids
    end
    else fun _ -> false
  in
  for shard = 0 to shards - 1 do
    match run_shard ?config ?jobs ~dir ~manifest ~shard ~shards ~skip () with
    | _ -> ()
    | exception Vfs.Io_error e ->
      (* quarantine just this shard: its un-journaled triples come back
         as [missing] from the merge and a [--resume] picks them up *)
      Vfs.ack e ~by:"corpus.io_failures";
      Printf.eprintf "exom: corpus: shard %d quarantined: %s\n%!" shard
        (Vfs.error_message e)
  done;
  merge ~dir ~manifest

(* {2 Summaries} *)

type summary = {
  s_total : int;
  s_located : int;
  s_by_status : (string * int) list;
  s_by_class : (string * (int * int)) list;
}

let summarize rows =
  let bump tbl key f init =
    Hashtbl.replace tbl key
      (f (match Hashtbl.find_opt tbl key with Some v -> v | None -> init))
  in
  let statuses = Hashtbl.create 8 and classes = Hashtbl.create 8 in
  List.iter
    (fun r ->
      bump statuses r.o_status (fun n -> n + 1) 0;
      bump classes r.o_class
        (fun (n, loc) -> (n + 1, if located r then loc + 1 else loc))
        (0, 0))
    rows;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    s_total = List.length rows;
    s_located = List.length (List.filter located rows);
    s_by_status = sorted statuses;
    s_by_class = sorted classes;
  }

let render_summary s =
  let b = Buffer.create 256 in
  let rate n d = if d = 0 then 0.0 else float_of_int n /. float_of_int d in
  Printf.bprintf b "triples: %d, located: %d (%.1f%%)\n" s.s_total s.s_located
    (100.0 *. rate s.s_located s.s_total);
  Printf.bprintf b "by status:\n";
  List.iter
    (fun (st, n) -> Printf.bprintf b "  %-14s %d\n" st n)
    s.s_by_status;
  Printf.bprintf b "by fault class:\n";
  List.iter
    (fun (cls, (n, loc)) ->
      Printf.bprintf b "  %-18s %4d located %4d (%.1f%%)\n" cls n loc
        (100.0 *. rate loc n))
    s.s_by_class;
  Buffer.contents b

(* The campaign-level observability rollup `corpus report` prints next
   to the outcome tables: per fault class, the mean verification work
   per triple and a histogram of verifications per triple.  A class
   whose faults suddenly verify more (or stop hitting the store) shows
   up here without opening a single trace — the fleet-level face of
   the same deterministic counts the spine and the drift gate use. *)
let render_rollup rows =
  if rows = [] then ""
  else begin
    let b = Buffer.create 512 in
    let classes =
      List.sort_uniq compare (List.map (fun r -> r.o_class) rows)
    in
    Printf.bprintf b "verification work by fault class (mean per triple):\n";
    Printf.bprintf b "  %-18s %7s %7s %8s %8s %11s\n" "class" "triples"
      "iters" "verifs" "queries" "store hits";
    List.iter
      (fun cls ->
        let rs = List.filter (fun r -> r.o_class = cls) rows in
        let n = List.length rs in
        let mean key =
          float_of_int (List.fold_left (fun a r -> a + count r key) 0 rs)
          /. float_of_int (max 1 n)
        in
        Printf.bprintf b "  %-18s %7d %7.1f %8.1f %8.1f %11.1f\n" cls n
          (mean "iterations") (mean "verifications") (mean "verify_queries")
          (mean "store_hits"))
      classes;
    Printf.bprintf b "verifications per triple (histogram):\n";
    let buckets =
      [ ("0", 0, 0); ("1-2", 1, 2); ("3-5", 3, 5); ("6-10", 6, 10);
        ("11+", 11, max_int) ]
    in
    List.iter
      (fun cls ->
        let rs = List.filter (fun r -> r.o_class = cls) rows in
        Printf.bprintf b "  %-18s" cls;
        List.iter
          (fun (label, lo, hi) ->
            let c =
              List.length
                (List.filter
                   (fun r ->
                     let v = count r "verifications" in
                     v >= lo && v <= hi)
                   rs)
            in
            Printf.bprintf b " %s:%-4d" label c)
          buckets;
        Buffer.add_char b '\n')
      classes;
    Buffer.contents b
  end
