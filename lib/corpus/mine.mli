(** The corpus miner: aggregate campaign outcome rows into the feature
    tables the evidence-driven-ranking work consumes — which execution
    features (program size, fault class, predicate density) predict
    diagnosis outcome (located rate, iterations, verification count).

    The output is a single JSON document
    [{"schema":"exom.corpus.mine","version":1,...}] plus a rendered
    text summary; both are byte-deterministic functions of the rows. *)

(** One aggregation bucket. *)
type bucket = {
  b_key : string;  (** class name, family name, or range label *)
  b_n : int;  (** rows in the bucket *)
  b_located : int;
  b_not_located : int;  (** the NOT_ID rows: ran, root never reached *)
  b_failed : int;  (** no_failure + error rows *)
  b_mean_iterations : float;  (** over rows that ran *)
  b_mean_verifications : float;
  b_mean_verify_queries : float;
  b_mean_store_hits : float;  (** memory + disk tiers *)
}

type table = {
  mi_total : int;
  mi_located : int;
  mi_not_located : int;
  mi_failed : int;
  mi_by_class : bucket list;
  mi_by_family : bucket list;
  mi_by_size : bucket list;  (** statement-count ranges *)
  mi_by_density : bucket list;  (** predicates-per-statement ranges *)
}

val schema_name : string
val schema_version : int

val mine : Campaign.outcome list -> table

(** The JSON document, newline-terminated. *)
val table_to_string : table -> string

val table_of_string : string -> (table, string) result

(** Human-readable summary. *)
val render : table -> string
