module Ast = Exom_lang.Ast
module Loc = Exom_lang.Loc
module Pretty = Exom_lang.Pretty
module Typecheck = Exom_lang.Typecheck

type knobs = {
  k_size : int;
  k_depth : int;
  k_procs : int;
  k_proc_depth : int;
  k_loops : bool;
  k_input : int;
}

(* The default knobs reproduce the distribution the qcheck harness has
   always used: a main-only program of 2-8 top-level statements, depth-2
   nesting, inputs of up to 16 ints. *)
let default_knobs =
  { k_size = 8; k_depth = 2; k_procs = 0; k_proc_depth = 0; k_loops = true;
    k_input = 16 }

let families =
  [
    ("small", default_knobs);
    ( "medium",
      { k_size = 12; k_depth = 3; k_procs = 2; k_proc_depth = 1;
        k_loops = true; k_input = 20 } );
    ( "large",
      { k_size = 16; k_depth = 3; k_procs = 4; k_proc_depth = 2;
        k_loops = true; k_input = 24 } );
  ]

let knobs_of_family name = List.assoc_opt name families

let e d = { Ast.edesc = d; eloc = Loc.dummy }
let s k = { Ast.sid = 0; sloc = Loc.dummy; skind = k }

(* Generating imperatively against a [Random.State.t] keeps the
   fresh-name counter and scope threading readable (this is the same
   generator test_prop always embedded, now knob-parameterized). *)
let gen_with ~knobs st =
  let ctr = ref 0 in
  let fresh () =
    incr ctr;
    Printf.sprintf "x%d" !ctr
  in
  let int_in lo hi = lo + Random.State.int st (hi - lo + 1) in
  let pick xs = List.nth xs (Random.State.int st (List.length xs)) in
  (* All input is read by a prologue of globals ([int xN = input();]),
     and expressions reference those variables.  A bare [input()] inside
     a branch would let an omitted branch shift the input cursor, making
     the divergence flow through stream *position* — which is not a cell,
     so no dependence (explicit or potential) ever reaches the root:
     unlocatable by construction, and not the manifestation the paper
     studies.  Reading everything up front keeps every divergence in
     cells the slicer tracks, like the paper's subject programs. *)
  let input_vars = ref [] in
  let rec gen_int depth vars =
    if depth = 0 || int_in 0 2 = 0 then
      match vars with
      | [] -> e (Ast.Eint (int_in (-20) 20))
      | _ when int_in 0 1 = 0 -> e (Ast.Evar (pick vars))
      | _ -> e (Ast.Eint (int_in (-20) 20))
    else
      match int_in 0 4 with
      | 0 -> e (Ast.Eunop (Ast.Neg, gen_int (depth - 1) vars))
      | 1 when !input_vars <> [] -> e (Ast.Evar (pick !input_vars))
      | 1 -> e (Ast.Eint (int_in (-20) 20))
      | _ ->
        let op = pick [ Ast.Add; Ast.Sub; Ast.Mul ] in
        e (Ast.Ebinop (op, gen_int (depth - 1) vars, gen_int (depth - 1) vars))
  in
  let rec gen_bool depth vars =
    if depth = 0 || int_in 0 1 = 0 then
      let op = pick [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ] in
      e (Ast.Ebinop (op, gen_int 1 vars, gen_int 1 vars))
    else
      match int_in 0 2 with
      | 0 -> e (Ast.Eunop (Ast.Not, gen_bool (depth - 1) vars))
      | _ ->
        let op = pick [ Ast.And; Ast.Or ] in
        e
          (Ast.Ebinop (op, gen_bool (depth - 1) vars, gen_bool (depth - 1) vars))
  in
  let print_stmt vars = s (Ast.Sexpr (e (Ast.Ecall ("print", [ gen_int 2 vars ])))) in
  let call_stmt name = s (Ast.Sexpr (e (Ast.Ecall (name, [])))) in
  (* Returns the statements plus the scope extended with this level's
     declarations; declarations inside nested blocks stay local.
     [helpers] names the procedures callable from this block — helper
     calls are emitted bare or behind a generated guard, the latter
     being the natural call-drop seeding site. *)
  let rec gen_stmts ~helpers depth vars budget =
    if budget = 0 then ([], vars)
    else
      let hi = if helpers = [] then 5 else 6 in
      let stmt, vars =
        match int_in 0 hi with
        | 0 ->
          let x = fresh () in
          (s (Ast.Sdecl (Ast.Tint, x, Some (gen_int 2 vars))), x :: vars)
        | 1 when vars <> [] ->
          (s (Ast.Sassign (pick vars, gen_int 2 vars)), vars)
        | 2 -> (print_stmt vars, vars)
        | 3 when depth > 0 ->
          let then_b, _ = gen_stmts ~helpers (depth - 1) vars (int_in 1 3) in
          let else_b, _ =
            if int_in 0 1 = 0 then ([], vars)
            else gen_stmts ~helpers (depth - 1) vars (int_in 1 3)
          in
          (s (Ast.Sif (gen_bool 1 vars, then_b, else_b)), vars)
        | 4 when depth > 0 && knobs.k_loops ->
          (* Counter-bounded loop; the counter is never in scope for the
             body, so no generated assignment can unbound it. *)
          let i = fresh () in
          let body, _ = gen_stmts ~helpers (depth - 1) vars (int_in 1 3) in
          let incr_i =
            s
              (Ast.Sassign
                 (i, e (Ast.Ebinop (Ast.Add, e (Ast.Evar i), e (Ast.Eint 1)))))
          in
          let cond =
            e (Ast.Ebinop (Ast.Lt, e (Ast.Evar i), e (Ast.Eint (int_in 0 4))))
          in
          ( s
              (Ast.Sif
                 ( e (Ast.Ebool true),
                   [
                     s (Ast.Sdecl (Ast.Tint, i, Some (e (Ast.Eint 0))));
                     s (Ast.Swhile (cond, body @ [ incr_i ]));
                   ],
                   [] )),
            vars )
        | 6 ->
          let h = pick helpers in
          if int_in 0 1 = 0 then (call_stmt h, vars)
          else (s (Ast.Sif (gen_bool 1 vars, [ call_stmt h ], [])), vars)
        | _ ->
          let x = fresh () in
          (s (Ast.Sdecl (Ast.Tint, x, Some (gen_int 2 vars))), x :: vars)
      in
      let rest, vars = gen_stmts ~helpers depth vars (budget - 1) in
      (stmt :: rest, vars)
  in
  let n_inputs = min knobs.k_input (2 + int_in 0 4) in
  let globals = ref [] and global_vars = ref [] in
  for _ = 1 to n_inputs do
    let g = fresh () in
    globals :=
      s (Ast.Sdecl (Ast.Tint, g, Some (e (Ast.Ecall ("input", []))))) :: !globals;
    input_vars := g :: !input_vars;
    global_vars := g :: !global_vars
  done;
  let n_globals = (if knobs.k_procs > 0 then 1 else 0) + int_in 0 2 in
  for _ = 1 to n_globals do
    let g = fresh () in
    globals :=
      s (Ast.Sdecl (Ast.Tint, g, Some (e (Ast.Eint (int_in (-9) 9)))))
      :: !globals;
    global_vars := g :: !global_vars
  done;
  (* Helper procedures: parameterless, reading and updating the globals
     (often behind guards), acyclic call graph bounded by k_proc_depth. *)
  let helper_funcs = ref [] and helper_levels = ref [] in
  for i = 1 to knobs.k_procs do
    let name = Printf.sprintf "h%d" i in
    let callable =
      List.filter_map
        (fun (h, lvl) -> if lvl < knobs.k_proc_depth then Some h else None)
        !helper_levels
    in
    let body, _ =
      gen_stmts ~helpers:callable
        (min 2 knobs.k_depth)
        !global_vars (int_in 1 4)
    in
    (* guarantee an observable effect candidate: a guarded global update *)
    let body =
      body
      @ [
          s
            (Ast.Sif
               ( gen_bool 1 !global_vars,
                 [
                   s
                     (Ast.Sassign
                        ( pick !global_vars,
                          gen_int 2 !global_vars ));
                 ],
                 [] ));
        ]
    in
    let level =
      1
      + List.fold_left
          (fun acc (h, lvl) -> if List.mem h callable then max acc lvl else acc)
          0 !helper_levels
    in
    helper_levels := (name, level) :: !helper_levels;
    helper_funcs :=
      { Ast.fname = name; fret = Ast.Tvoid; fparams = []; fbody = body;
        floc = Loc.dummy }
      :: !helper_funcs
  done;
  let helpers = List.rev_map (fun f -> f.Ast.fname) !helper_funcs in
  let body, vars =
    gen_stmts ~helpers knobs.k_depth !global_vars (int_in 2 knobs.k_size)
  in
  (* close with prints so every program has output to anchor a failure
     on: one over the locals, one over each global a helper may touch *)
  let body =
    body @ [ print_stmt vars ]
    @ List.map (fun g -> s (Ast.Sexpr (e (Ast.Ecall ("print", [ e (Ast.Evar g) ]))))) !global_vars
  in
  let main =
    {
      Ast.fname = "main";
      fret = Ast.Tvoid;
      fparams = [];
      fbody = body;
      floc = Loc.dummy;
    }
  in
  let prog =
    { Ast.globals = List.rev !globals; funcs = List.rev !helper_funcs @ [ main ] }
  in
  (* Re-parse so statement ids are assigned; the generator leaves them 0.
     The input has exactly one value per prologue read: the programs
     consume all of it, deterministically, before [main] runs. *)
  let input = List.init n_inputs (fun _ -> int_in (-50) 50) in
  (Typecheck.parse_and_check (Pretty.program_to_string prog), input)

let gen_program st = gen_with ~knobs:default_knobs st

let generate ?(knobs = default_knobs) ~seed () =
  gen_with ~knobs (Random.State.make [| 0x5eed; seed |])

type features = {
  f_stmts : int;
  f_predicates : int;
  f_procs : int;
  f_loc : int;
}

let features prog =
  let preds = ref 0 in
  Ast.iter_program (fun st -> if Ast.is_predicate st then incr preds) prog;
  let loc =
    Pretty.program_to_string prog
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.length
  in
  {
    f_stmts = Ast.stmt_count prog;
    f_predicates = !preds;
    f_procs = List.length prog.Ast.funcs;
    f_loc = loc;
  }
