(** Evidence-driven ranking of PD candidates.

    Every verification of a candidate [(p, u)] costs a switched
    re-execution, but the paper's verifier orders candidates statically
    and learns nothing across runs.  This module turns the verdicts a
    run has already produced into a per-predicate posterior yield and
    uses it to (a) order each expansion's candidates so high-yield
    predicates verify first and (b) cut the low-yield tail of a
    predicate's instances once enough evidence has accumulated (the
    early-exit policy).

    Determinism contract: a scorer's output is a pure function of the
    static features it was created with and the sequence of
    {!observe} calls — no wall-clock, no randomness, no job-count or
    cache-state dependence.  All scores are rounded to 4 decimals
    before they are compared or recorded, so ties (and therefore
    orders) are byte-stable across platforms.

    The optional prior comes from a [corpus mine] feature table (the
    ["exom.corpus.mine"] v1 JSON): the located rate of the size and
    predicate-density buckets matching the program under analysis
    seeds the posterior before any local evidence exists. *)

(** A parsed [corpus mine] table, reduced to the bucket statistics the
    prior uses. *)
type model

(** Strict parser for the ["exom.corpus.mine"] v1 document.  Anything
    else — corrupt or truncated JSON, a foreign schema, an unsupported
    version, missing buckets — is an [Error] with a one-line reason;
    this function never raises. *)
val model_of_string : string -> (model, string) result

(** [load_model path]: {!model_of_string} over the file's contents;
    unreadable files are an [Error], never an exception. *)
val load_model : string -> (model, string) result

type config = {
  alpha : float;
      (** pseudo-observation weight of the prior (Laplace-style
          smoothing); higher = slower to move off the prior *)
  base_prior : float;  (** prior yield when no model bucket applies *)
  cut_threshold : float;
      (** posterior yield below which a predicate's extra instances are
          cut (its best instance always survives) *)
  min_obs : int;
      (** observations of a predicate required before the cut may
          apply at all *)
  model : model option;  (** optional mined prior *)
}

val default_config : config

(** The mutable scorer state for one localization run. *)
type t

(** [create ?stmts ?predicates config] — the static features, when
    given, select the model's size and density buckets for the prior. *)
val create : ?stmts:int -> ?predicates:int -> config -> t

(** The prior yield in effect (model bucket blend or [base_prior]). *)
val prior : t -> float

(** Feed one verdict for static predicate [sid].  Call on the
    coordinator, in ledger order, with the verdicts {e returned} by a
    batch — those are identical whether they came from a live run, the
    store, or a resume replay, which is what keeps ranking warm/cold
    and kill/resume invariant. *)
val observe : t -> sid:int -> verdict:[ `Strong_id | `Id | `Not_id ] -> unit

(** Observations recorded for [sid] so far. *)
val observations : t -> sid:int -> int

(** The posterior yield of [sid], rounded to 4 decimals:
    [(2·strong + id + alpha·prior) / (2·strong + id + not_id + alpha)]. *)
val score : t -> sid:int -> float

(** One ranked candidate: kept candidates verify in list order; cut
    ones are skipped by this expansion (and recorded as such in the
    ledger's [rank] event). *)
type decision = { d_idx : int; d_sid : int; d_score : float; d_kept : bool }

(** [plan t candidates] ranks an expansion's candidates
    [(instance idx, sid)]: descending score, ties in ascending idx (so
    a run with no evidence reproduces the static order exactly).  A
    predicate's first-ranked instance is always kept; its later
    instances are cut iff it has at least [min_obs] observations and
    its score is below [cut_threshold]. *)
val plan : t -> (int * int) list -> decision list
