module Json = Exom_obs.Json

(* The mined prior.  Only the bucket statistics the prior consumes are
   kept: (bucket key -> located rate) for the size and density
   sections.  Bucket keys replicate the miner's encoding so a table
   mined by one build ranks in another. *)

let schema_name = "exom.corpus.mine"
let schema_version = 1

type model = {
  m_by_size : (string * float) list;
  m_by_density : (string * float) list;
}

let ( let* ) = Result.bind

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let int_field name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

(* One bucket -> (key, located rate); an empty bucket contributes no
   rate (filtered by the caller). *)
let bucket_rate j =
  let* key = str_field "key" j in
  let* n = int_field "n" j in
  let* located = int_field "located" j in
  if n < 0 || located < 0 || located > n then
    Error (Printf.sprintf "bucket %S: inconsistent counts" key)
  else if n = 0 then Ok None
  else Ok (Some (key, float_of_int located /. float_of_int n))

let buckets_field name j =
  match Json.member name j with
  | Some (Json.Arr l) ->
    List.fold_left
      (fun acc bj ->
        let* acc = acc in
        let* b = bucket_rate bj in
        Ok (match b with None -> acc | Some b -> b :: acc))
      (Ok []) l
    |> Result.map List.rev
  | _ -> Error (Printf.sprintf "missing bucket array %S" name)

let model_of_string s =
  let* j = Json.parse s in
  let* schema = str_field "schema" j in
  let* version = int_field "version" j in
  if schema <> schema_name then
    Error (Printf.sprintf "foreign schema %S (expected %S)" schema schema_name)
  else if version <> schema_version then
    Error
      (Printf.sprintf "unsupported %s version %d (this reader understands %d)"
         schema_name version schema_version)
  else
    let* m_by_size = buckets_field "by_size" j in
    let* m_by_density = buckets_field "by_density" j in
    Ok { m_by_size; m_by_density }

let load_model path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | content -> model_of_string content

type config = {
  alpha : float;
  base_prior : float;
  cut_threshold : float;
  min_obs : int;
  model : model option;
}

let default_config =
  { alpha = 2.0; base_prior = 0.5; cut_threshold = 0.15; min_obs = 6;
    model = None }

(* 4-decimal rounding: every score that leaves this module (ordering
   keys, ledger events) goes through this, so comparisons are
   byte-stable. *)
let round4 f = Float.round (f *. 10_000.0) /. 10_000.0

(* The miner's bucket keys (see Exom_corpus.Mine): reproduced here
   because the corpus library sits above this one in the dependency
   order. *)
let size_key stmts =
  if stmts <= 10 then "stmts<=10"
  else if stmts <= 20 then "stmts11-20"
  else if stmts <= 40 then "stmts21-40"
  else "stmts>40"

let density_key ~stmts ~predicates =
  if stmts = 0 then "density0-10"
  else
    let d = float_of_int predicates /. float_of_int stmts in
    if d < 0.10 then "density0-10"
    else if d < 0.20 then "density10-20"
    else if d < 0.30 then "density20-30"
    else "density30+"

(* Per-predicate evidence: strong/weak implicit-dependence verdicts and
   refutations observed so far this run. *)
type cell = { mutable strong : int; mutable id : int; mutable notid : int }

type t = {
  cfg : config;
  prior : float;
  cells : (int, cell) Hashtbl.t;
}

let bucket_prior model ~stmts ~predicates =
  let rates =
    List.filter_map Fun.id
      [
        List.assoc_opt (size_key stmts) model.m_by_size;
        List.assoc_opt (density_key ~stmts ~predicates) model.m_by_density;
      ]
  in
  match rates with
  | [] -> None
  | _ ->
    let mean = List.fold_left ( +. ) 0.0 rates /. float_of_int (List.length rates) in
    (* clamped so a degenerate table (all-located or none-located
       buckets) can neither pin every score to 1 nor cut everything *)
    Some (Float.min 0.95 (Float.max 0.05 mean))

let create ?stmts ?predicates cfg =
  let prior =
    match (cfg.model, stmts) with
    | Some m, Some st ->
      let preds = Option.value ~default:0 predicates in
      Option.value ~default:cfg.base_prior
        (bucket_prior m ~stmts:st ~predicates:preds)
    | _ -> cfg.base_prior
  in
  { cfg; prior = round4 prior; cells = Hashtbl.create 32 }

let prior t = t.prior

let cell t sid =
  match Hashtbl.find_opt t.cells sid with
  | Some c -> c
  | None ->
    let c = { strong = 0; id = 0; notid = 0 } in
    Hashtbl.replace t.cells sid c;
    c

let observe t ~sid ~verdict =
  let c = cell t sid in
  match verdict with
  | `Strong_id -> c.strong <- c.strong + 1
  | `Id -> c.id <- c.id + 1
  | `Not_id -> c.notid <- c.notid + 1

let observations t ~sid =
  match Hashtbl.find_opt t.cells sid with
  | None -> 0
  | Some c -> c.strong + c.id + c.notid

(* Smoothed posterior yield: strong verdicts weigh double (they carry
   Definition 4's evidence, not just Definition 2's), the prior enters
   as [alpha] pseudo-observations.  With no evidence this is exactly
   [prior], so untouched predicates tie and fall back to static order. *)
let score t ~sid =
  let strong, id, notid =
    match Hashtbl.find_opt t.cells sid with
    | None -> (0, 0, 0)
    | Some c -> (c.strong, c.id, c.notid)
  in
  let pos = (2.0 *. float_of_int strong) +. float_of_int id in
  let neg = float_of_int notid in
  round4 ((pos +. (t.cfg.alpha *. t.prior)) /. (pos +. neg +. t.cfg.alpha))

type decision = { d_idx : int; d_sid : int; d_score : float; d_kept : bool }

let plan t candidates =
  let scored =
    List.map (fun (idx, sid) -> (idx, sid, score t ~sid)) candidates
  in
  (* descending score; ties in ascending instance idx = the static
     order (scores are already rounded, so this comparison is the one
     the ledger records) *)
  let ordered =
    List.stable_sort
      (fun (ia, _, sa) (ib, _, sb) ->
        match compare sb sa with 0 -> compare ia ib | c -> c)
      scored
  in
  let kept_of_sid = Hashtbl.create 8 in
  List.map
    (fun (idx, sid, sc) ->
      let first = not (Hashtbl.mem kept_of_sid sid) in
      let cold = observations t ~sid < t.cfg.min_obs in
      let kept = first || cold || sc >= t.cfg.cut_threshold in
      if first then Hashtbl.replace kept_of_sid sid ();
      { d_idx = idx; d_sid = sid; d_score = sc; d_kept = kept })
    ordered
