(* exom: the command-line front end.

   Subcommands:
     run     execute an MCL program (optionally dumping the trace)
     info    front-end and static-analysis facts about a program
     slice   dynamic slice of one output
     rslice  relevant slice of one output (potential dependences)
     locate  full demand-driven localization against a corrected program
     explain causal narrative of a --ledger-out provenance ledger, or
             confidence analysis of a failing run (ranked candidates)
     recover inspect a killed run's journaled ledger (what --resume replays)
     dot     Graphviz rendering of the dynamic dependence graph
     regions the execution's region decomposition (Definition 3)
     bench   run one benchmark fault (or, with --all, the whole suite,
             optionally appending a perf snapshot to a history file;
             --export writes the fault's sources/input for exom client)
     regress compare two bench snapshots and flag metric regressions
     stats   pretty-print (or --diff) --metrics-out event logs
     serve   localization daemon over a Unix-domain socket (crash-safe:
             accepted requests survive SIGKILL; --resume replays them)
     client  send one localization request to a daemon (--stress N for
             N concurrent clients)
     corpus  corpus factory: gen (seeded manifest of validated omission
             faults), run (sharded campaign, crash-safe resume), report,
             mine (feature tables), seed (inject one fault in a file)
     chaos   seeded storage-fault storm over suite faults and corpus
             triples (io-chaos + worker kills + kill/resume cuts);
             --check gates on the degradation-contract invariants      *)

module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Loc = Exom_lang.Loc
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Proginfo = Exom_cfg.Proginfo
module Slice = Exom_ddg.Slice
module Relevant = Exom_ddg.Relevant
module Session = Exom_core.Session
module Oracle = Exom_core.Oracle
module Demand = Exom_core.Demand
module B = Exom_bench.Bench_types
module Runner = Exom_bench.Runner
module Suite = Exom_bench.Suite
module Perf = Exom_bench.Perf
module Ledger = Exom_ledger.Ledger
module Lexplain = Exom_ledger.Explain
module Rank = Exom_rank.Rank
module Vfs = Exom_util.Vfs

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Crash-consistent: a kill mid-write leaves the old file or the new
   one, never a torn hybrid (same discipline as Ledger.write and the
   store's entry writer).  CLI outputs have no degradation tier — a
   failed write is the command's failure. *)
let write_file path content =
  Vfs.get_ok (Vfs.write_file_atomic ~tmp:(path ^ ".tmp") path content)

let compile_file path =
  try Ok (Typecheck.parse_and_check (read_file path)) with
  | Loc.Error (loc, msg) ->
    Error (Printf.sprintf "%s:%d:%d: %s" path (Loc.line loc) (Loc.col loc) msg)
  | Failure msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

let parse_ints s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x -> int_of_string (String.trim x))

(* Common options *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MCL source file")

let input_arg =
  Arg.(
    value & opt string ""
    & info [ "input"; "i" ] ~docv:"INTS"
        ~doc:"Program input: comma- or space-separated integers")

let text_arg =
  Arg.(
    value & opt (some string) None
    & info [ "text" ]
        ~doc:
          "Program input as text: encoded as length followed by character \
           codes (the convention of the benchmark programs)")

let resolve_input input text =
  match text with
  | Some t -> B.input_of_string t
  | None -> parse_ints input

let output_index_arg =
  Arg.(
    value & opt int 0
    & info [ "output"; "o" ] ~docv:"N" ~doc:"Index of the output to slice on (0-based)")

(* run *)

let run_cmd =
  let action file input text tracing dump_trace =
    match compile_file file with
    | Error e ->
      prerr_endline e;
      1
    | Ok prog ->
      let tracing = tracing || dump_trace <> None in
      let run = Interp.run ~tracing prog ~input:(resolve_input input text) in
      List.iter (fun (_, v) -> Printf.printf "%d\n" v) run.Interp.outputs;
      (match (dump_trace, run.Interp.trace) with
      | Some path, Some t ->
        Exom_interp.Trace_io.save path t;
        Printf.eprintf "trace written to %s\n" path
      | _ -> ());
      (match run.Interp.outcome with
      | Ok () ->
        (match run.Interp.trace with
        | Some t ->
          Printf.eprintf "(%d steps, %d trace instances)\n" run.Interp.steps
            (Trace.length t)
        | None -> Printf.eprintf "(%d steps)\n" run.Interp.steps);
        0
      | Error Interp.Budget_exhausted ->
        prerr_endline "aborted: step budget exhausted";
        2
      | Error (Interp.Crashed msg) ->
        Printf.eprintf "crashed: %s\n" msg;
        2)
  in
  let tracing =
    Arg.(value & flag & info [ "trace" ] ~doc:"Collect an execution trace")
  in
  let dump_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-trace" ] ~docv:"FILE"
          ~doc:"Write the execution trace to FILE (implies --trace)")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute an MCL program")
    Term.(const action $ file_arg $ input_arg $ text_arg $ tracing $ dump_trace)

(* info *)

let info_cmd =
  let action file =
    match compile_file file with
    | Error e ->
      prerr_endline e;
      1
    | Ok prog ->
      let info = Proginfo.build prog in
      Printf.printf "functions:  %d\n" (List.length prog.Ast.funcs);
      Printf.printf "globals:    %d\n" (List.length prog.Ast.globals);
      Printf.printf "statements: %d\n" (Ast.stmt_count prog);
      let preds = ref 0 in
      Ast.iter_program (fun s -> if Ast.is_predicate s then incr preds) prog;
      Printf.printf "predicates: %d\n" !preds;
      List.iter
        (fun fn ->
          let cfg = Proginfo.cfg_of info (Some fn.Ast.fname) in
          Printf.printf "cfg %-16s %3d nodes\n" fn.Ast.fname cfg.Exom_cfg.Cfg.nnodes)
        prog.Ast.funcs;
      0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Front-end and static-analysis facts")
    Term.(const action $ file_arg)

(* slice / rslice *)

let slice_common ~relevant file input text output_index =
  match compile_file file with
  | Error e ->
    prerr_endline e;
    1
  | Ok prog -> (
    let run = Interp.run prog ~input:(resolve_input input text) in
    let trace = Option.get run.Interp.trace in
    match List.nth_opt run.Interp.outputs output_index with
    | None ->
      Printf.eprintf "program produced %d outputs; no output %d\n"
        (List.length run.Interp.outputs) output_index;
      1
    | Some (criterion, value) ->
      let info = Proginfo.build prog in
      let slice =
        if relevant then
          Relevant.relevant_slice (Relevant.create info trace)
            ~criteria:[ criterion ]
        else Slice.compute trace ~criteria:[ criterion ]
      in
      Printf.printf "%s slice of output %d (value %d): %d statements, %d instances\n"
        (if relevant then "relevant" else "dynamic")
        output_index value (Slice.static_size slice) (Slice.dynamic_size slice);
      List.iter
        (fun sid ->
          let stmt = Proginfo.stmt_of_sid info sid in
          Printf.printf "  line %-4d %s\n" (Loc.line stmt.Ast.sloc)
            (Exom_lang.Pretty.stmt_head stmt))
        (Slice.sids slice);
      0)

let slice_cmd =
  let action file input text output_index =
    slice_common ~relevant:false file input text output_index
  in
  Cmd.v
    (Cmd.info "slice" ~doc:"Dynamic slice of one output")
    Term.(const action $ file_arg $ input_arg $ text_arg $ output_index_arg)

let rslice_cmd =
  let action file input text output_index =
    slice_common ~relevant:true file input text output_index
  in
  Cmd.v
    (Cmd.info "rslice"
       ~doc:"Relevant slice of one output (explicit + potential dependences)")
    Term.(const action $ file_arg $ input_arg $ text_arg $ output_index_arg)

(* locate *)

module Guard = Exom_core.Guard
module Recover = Exom_core.Recover
module Chaos = Exom_interp.Chaos
module Pool = Exom_sched.Pool
module Store = Exom_sched.Store
module Obs = Exom_obs.Obs
module Export = Exom_obs.Export
module Json = Exom_obs.Json

(* Observability: span recording is enabled exactly when --trace-out is
   given (metrics are always live — reports are built from them). *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's span tree as Chrome trace-event JSON to FILE \
           (loadable in chrome://tracing or Perfetto); also enables span \
           recording")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics (and spans, when recorded) as a \
           versioned JSONL event log to FILE; read it back with \
           $(b,exom stats)")

let ledger_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger-out" ] ~docv:"FILE"
        ~doc:
          "Write the localization's provenance ledger (per-iteration \
           slice snapshots, every verification with its alignment \
           evidence) as versioned JSONL to FILE; render it with \
           $(b,exom explain FILE).  Byte-identical at any -j")

let make_ledger ledger_out = Option.map (fun _ -> Ledger.create ()) ledger_out

let write_ledger ledger ~ledger_out =
  match (ledger_out, ledger) with
  | Some path, Some l ->
    (* detach the write-ahead journal first, then atomically replace it
       with the canonical serialization (byte-identical at any -j;
       resume markers and torn debris gone) *)
    Ledger.close_journal l;
    Ledger.write path l;
    Printf.eprintf "ledger written to %s\n" path
  | _ -> ()

let make_obs ~trace_out = Obs.create ~trace:(trace_out <> None) ()

let write_obs obs ~trace_out ~metrics_out =
  (match trace_out with
  | Some path ->
    Vfs.get_ok (Export.write_chrome path obs);
    Printf.eprintf "trace written to %s\n" path
  | None -> ());
  match metrics_out with
  | Some path ->
    Vfs.get_ok (Export.write_jsonl path obs);
    Printf.eprintf "metrics written to %s\n" path
  | None -> ()

(* -j: verification scheduler parallelism.  Defaults to the EXOM_JOBS
   environment variable (1 when unset); 0 means one job per core. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Verification jobs: switched re-executions of one Demand \
           iteration run on N domains (0 = one per core; default \
           \\$(b,EXOM_JOBS) or 1).  Reports are identical at any N")

let make_pool jobs =
  match jobs with
  | None -> Pool.default ()
  | Some j when j < 0 -> invalid_arg "exom: -j must be >= 0"
  | Some j -> Pool.create ~jobs:j ()

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent verdict store: cached verification verdicts are \
           read from and written to DIR (created if missing), keyed by \
           content hash of program, input, switch, budget and mode")

let print_store_stats (st : Store.stats) =
  Printf.printf
    "store: %d mem + %d disk hits / %d misses (hit rate %.0f%%), %d writes, \
     %d evictions, %d corrupted\n"
    st.Store.hits st.Store.disk_hits st.Store.misses
    (100.0 *. Store.hit_rate st)
    st.Store.writes st.Store.evictions st.Store.corrupted

let resilience_policy ~max_retries ~deadline ~breaker =
  match (max_retries, deadline, breaker) with
  | Some r, _, _ when r < 0 -> Error "exom: --max-retries must be >= 0"
  | _, Some d, _ when d <= 0.0 ->
    Error "exom: --verify-deadline must be positive"
  | _, _, Some k when k < 1 -> Error "exom: --breaker must be >= 1"
  | _ ->
    let backoff =
      match max_retries with
      | None -> Guard.default_policy.Guard.backoff
      | Some r ->
        (* grow the cap with the retries so every requested doubling can
           actually happen *)
        Exom_util.Backoff.make ~factor:2 ~max_retries:r
          ~cap_factor:(1 lsl min r 20)
    in
    Ok
      {
        Guard.backoff;
        deadline;
        breaker_threshold =
          Option.value ~default:Guard.default_policy.Guard.breaker_threshold
            breaker;
      }

let print_robustness (report : Demand.report) =
  let g = report.Demand.robustness in
  Printf.printf
    "robustness: %d re-executions (%d completed, %d aborted, %d retried), \
     breaker trips %d (skips %d), deadline expirations %d, contained \
     exceptions %d, quarantined %d\n"
    report.Demand.verifications g.Guard.completed g.Guard.aborted
    g.Guard.retried g.Guard.breaker_trips g.Guard.breaker_skips
    g.Guard.deadline_expired g.Guard.captured g.Guard.quarantined;
  (match report.Demand.degraded with
  | Some reason -> Printf.printf "DEGRADED result: %s\n" reason
  | None -> ());
  List.iter
    (fun (sid, f) ->
      Printf.printf "  s%-4d %s\n" sid (Guard.failure_to_string f))
    report.Demand.failures

let locate_cmd =
  let action file correct_file input text root_line chaos_seed verify_deadline
      max_retries breaker jobs store_dir trace_out metrics_out ledger_out
      resume no_rank rank_model =
    match (compile_file file, compile_file correct_file) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      1
    | Ok faulty, Ok correct -> (
      match resilience_policy ~max_retries ~deadline:verify_deadline ~breaker with
      | Error e ->
        prerr_endline e;
        1
      | Ok policy -> (
      (* The salvage read happens before the journal is re-attached to
         the same path (attaching truncates). *)
      match
        match resume with
        | None -> Ok None
        | Some path -> (
          match Recover.plan_of_file path with
          | Ok plan -> Ok (Some plan)
          | Error e -> Error (Printf.sprintf "%s: %s" path e))
      with
      | Error e ->
        prerr_endline e;
        1
      | Ok resume_plan -> (
      (* --resume implies journaling back to the same ledger path *)
      let ledger_out =
        match (ledger_out, resume) with
        | (Some _ as out), _ -> out
        | None, (Some _ as out) -> out
        | None, None -> None
      in
      let input = resolve_input input text in
      let expected = Oracle.expected ~correct_prog:correct ~input in
      let chaos = Option.map Chaos.of_seed chaos_seed in
      (match chaos with
      | Some c -> Format.eprintf "%a@." Chaos.pp c
      | None -> ());
      let pool = make_pool jobs in
      let obs = make_obs ~trace_out in
      let ledger = make_ledger ledger_out in
      let store =
        Option.map (fun dir -> Store.create ~obs ~dir ()) store_dir
      in
      match
        Session.create ~obs ~policy ?chaos ?store ?ledger ~prog:faulty ~input
          ~expected ~profile_inputs:[ input ] ()
      with
      | exception Session.No_failure ->
        prerr_endline "the two programs agree on this input: nothing to locate";
        1
      | session ->
        let info = session.Session.info in
        let replayed =
          match resume_plan with
          | None -> None
          | Some plan ->
            if Recover.matches_session plan session then begin
              Recover.prime session plan;
              Some plan
            end
            else begin
              Printf.eprintf
                "resume: journal does not describe this program/input/budget; \
                 starting cold\n";
              None
            end
        in
        (* journaled iterations: every event is written ahead to the
           ledger path (flushed per event, fsynced per iteration), so a
           kill leaves a resumable journal instead of nothing *)
        (match (ledger, ledger_out) with
        | Some l, Some path ->
          Ledger.attach_journal l path;
          (match replayed with
          | Some plan ->
            Ledger.resume_marker l ~replayed:plan.Recover.salvaged_events
              ~truncated:plan.Recover.truncated
          | None -> ())
        | _ -> ());
        let oracle =
          Oracle.create ~faulty_trace:session.Session.trace
            ~correct_prog:correct ~input
        in
        let root_sids =
          match root_line with
          | Some line ->
            let sids = ref [] in
            Ast.iter_program
              (fun s -> if Loc.line s.Ast.sloc = line then sids := s.Ast.sid :: !sids)
              faulty;
            !sids
          | None ->
            (* no ground truth given: run to exhaustion and report *)
            [ -1 ]
        in
        (* a bad model file degrades to the static verification order
           with a diagnostic — it must never kill the localization *)
        let config =
          if no_rank then { Demand.default_config with ranking = None }
          else
            match rank_model with
            | None -> Demand.default_config
            | Some path -> (
              match Rank.load_model path with
              | Ok model ->
                {
                  Demand.default_config with
                  ranking =
                    Some { Rank.default_config with Rank.model = Some model };
                }
              | Error e ->
                Printf.eprintf
                  "rank model %s: %s; falling back to the static \
                   verification order\n"
                  path e;
                { Demand.default_config with ranking = None })
        in
        let report = Demand.locate ~config ~pool session ~oracle ~root_sids in
        write_obs obs ~trace_out ~metrics_out;
        write_ledger ledger ~ledger_out;
        (match replayed with
        | Some plan ->
          Printf.printf
            "resume: %d batch(es) (%d verifications) replayed from the \
             journal, %d in-flight event(s) re-verified live%s\n"
            plan.Recover.replayed_batches plan.Recover.replayed_verifications
            plan.Recover.dropped_events
            (if plan.Recover.truncated then " (torn tail dropped)" else "")
        | None -> ());
        Printf.printf
          "verifications: %d (of %d queries), iterations: %d, implicit \
           edges: %d, user prunings: %d\n"
          report.Demand.verifications report.Demand.verify_queries
          report.Demand.iterations report.Demand.expanded_edges
          report.Demand.user_prunings;
        let sup = Pool.supervision pool in
        Printf.printf "scheduler: %d job(s)%s\n" (Pool.jobs pool)
          (if sup.Pool.degraded then
             ", DEGRADED: respawn budget exhausted, draining inline"
           else if sup.Pool.respawns > 0 then
             Printf.sprintf ", %d worker(s) respawned" sup.Pool.respawns
           else "");
        print_store_stats report.Demand.store;
        print_robustness report;
        (match root_line with
        | Some line ->
          Printf.printf "root cause (line %d) %s\n" line
            (if report.Demand.found then "LOCATED" else "not located")
        | None -> ());
        print_endline "final fault candidate set:";
        List.iter
          (fun sid ->
            let stmt = Proginfo.stmt_of_sid info sid in
            Printf.printf "  line %-4d %s\n" (Loc.line stmt.Ast.sloc)
              (Exom_lang.Pretty.stmt_head stmt))
          (Slice.sids report.Demand.ips);
        0)))
  in
  let correct_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "correct" ] ~docv:"FILE" ~doc:"The corrected program (the oracle)")
  in
  let root_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "root-line" ] ~docv:"LINE"
          ~doc:"Ground-truth fault line (stops the search when reached)")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:
            "Inject a deterministic, seed-derived fault (crash, budget \
             truncation, value corruption, or a raw exception) into every \
             switched re-execution; the locator must degrade, not die")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "verify-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock deadline for one verification: budget escalation \
             stops once it is exceeded")
  in
  let max_retries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Budget-escalation retries for a switched run that exhausts its \
             step budget (each retry doubles the budget)")
  in
  let breaker_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "breaker" ] ~docv:"K"
          ~doc:
            "Circuit-breaker threshold: stop re-verifying a predicate after \
             K consecutive aborted switched runs")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"LEDGER"
          ~doc:
            "Resume a killed localization from its journaled ledger \
             (written by --ledger-out): completed verification batches \
             are replayed from the journal instead of re-executed, the \
             batch in flight at the kill is re-verified live, and the \
             final report and ledger are byte-identical to an \
             uninterrupted run.  Implies $(b,--ledger-out) LEDGER \
             unless given.  Pass the same program, input and flags as \
             the killed run — a mismatched journal is detected and the \
             run starts cold")
  in
  let no_rank_arg =
    Arg.(
      value & flag
      & info [ "no-rank" ]
          ~doc:
            "Disable evidence-driven verification ordering: candidates \
             verify in the paper's static order with the static guard \
             knobs (the control for ranked-vs-static comparisons)")
  in
  let rank_model_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rank-model" ] ~docv:"FILE"
          ~doc:
            "Seed the candidate ranking with a mined prior table \
             ($(b,exom corpus mine --json)).  A corrupt, truncated or \
             version-mismatched file is rejected with a diagnostic and \
             the run falls back to the static verification order")
  in
  Cmd.v
    (Cmd.info "locate"
       ~doc:"Demand-driven execution-omission-error localization")
    Term.(
      const action $ file_arg $ correct_arg $ input_arg $ text_arg $ root_arg
      $ chaos_seed_arg $ deadline_arg $ max_retries_arg $ breaker_arg
      $ jobs_arg $ store_arg $ trace_out_arg $ metrics_out_arg
      $ ledger_out_arg $ resume_arg $ no_rank_arg $ rank_model_arg)

(* recover *)

let recover_cmd =
  let action file =
    match Recover.plan_of_file file with
    | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      1
    | Ok plan ->
      Printf.printf "%s:\n" file;
      print_string (Recover.describe plan);
      0
  in
  let ledger_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LEDGER"
          ~doc:
            "A journaled (possibly torn) provenance ledger left behind \
             by a killed $(b,exom locate --ledger-out) run")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Inspect a killed run's journaled ledger: what is salvageable, \
          what a $(b,--resume) would replay, and whether the tail was torn")
    Term.(const action $ ledger_file_arg)

(* explain

   Two modes sharing one entry point, distinguished by sniffing the
   positional FILE: a provenance ledger (written by --ledger-out)
   renders as a causal narrative; an MCL source falls back to the
   confidence analysis (which then needs --correct). *)

let explain_ledger file content dot_out =
  (* Strict parse first (a corrupted ledger must not render); a file
     that fails it may still be a killed run's journal — resume markers
     and a torn tail are exactly what the salvage reader tolerates, and
     what the lineage section of the narrative is for. *)
  let parsed =
    match Ledger.of_string content with
    | Ok events -> Ok (events, None, [])
    | Error strict_err -> (
      match Ledger.recover_string content with
      | Ok r ->
        Printf.eprintf
          "%s: salvaged journal (%d event(s)%s)\n" file
          (List.length r.Ledger.r_events)
          (if r.Ledger.r_truncated then ", torn tail dropped" else "");
        Ok
          ( r.Ledger.r_events,
            Some
              {
                Lexplain.resumes = r.Ledger.r_markers;
                torn_tail = r.Ledger.r_truncated;
              },
            r.Ledger.r_resumes )
      | Error _ -> Error strict_err)
  in
  match parsed with
  | Error e ->
    Printf.eprintf "%s: %s\n" file e;
    1
  | Ok (events, lineage, replay) ->
    print_string (Lexplain.render ?lineage ~replay events);
    (match dot_out with
    | Some path ->
      write_file path (Lexplain.dot events);
      Printf.eprintf "causal graph written to %s\n" path
    | None -> ());
    0

let explain_cmd =
  let action file correct_file input text top dot_out =
    match read_file file with
    | exception Sys_error e ->
      prerr_endline e;
      1
    | content when Ledger.is_ledger content -> explain_ledger file content dot_out
    | _ -> (
    match correct_file with
    | None ->
      prerr_endline
        "exom explain: FILE is not a provenance ledger, so this is the \
         confidence analysis — which needs --correct FILE";
      1
    | Some correct_file -> (
    match (compile_file file, compile_file correct_file) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      1
    | Ok faulty, Ok correct -> (
      let input = resolve_input input text in
      let expected = Oracle.expected ~correct_prog:correct ~input in
      match
        Session.create ~prog:faulty ~input ~expected ~profile_inputs:[ input ]
          ()
      with
      | exception Session.No_failure ->
        prerr_endline "the two programs agree on this input";
        1
      | session ->
        let info = session.Session.info in
        let trace = session.Session.trace in
        let conf =
          Exom_conf.Confidence.compute info session.Session.profile trace
            ~correct:session.Session.correct_outputs ~benign:[] ~implicit:[]
        in
        let slice =
          Exom_ddg.Slice.compute trace
            ~criteria:[ session.Session.wrong_output ]
        in
        let ps =
          Exom_conf.Prune.compute trace ~slice ~conf
            ~criterion:session.Session.wrong_output
        in
        Printf.printf
          "failure at instance #%d (line %d)%s; slice %d/%d; pruned %d\n\n"
          session.Session.wrong_output
          (Proginfo.line_of_sid info
             (Exom_interp.Trace.get trace session.Session.wrong_output)
               .Exom_interp.Trace.sid)
          (match session.Session.vexp with
          | Some v -> Printf.sprintf ", expected %s" (Exom_interp.Value.to_string v)
          | None -> " (crash)")
          (Exom_ddg.Slice.static_size slice)
          (Exom_ddg.Slice.dynamic_size slice)
          (Exom_conf.Prune.size ps);
        print_endline
          "most suspicious instances (confidence, dependence distance, alt \
           set):";
        List.iteri
          (fun i (e : Exom_conf.Prune.entry) ->
            if i < top then begin
              let inst = Exom_interp.Trace.get trace e.Exom_conf.Prune.idx in
              let stmt = Proginfo.stmt_of_sid info inst.Exom_interp.Trace.sid in
              let alt =
                match Exom_conf.Confidence.alt_set conf e.Exom_conf.Prune.idx with
                | None -> "unconstrained"
                | Some s ->
                  Printf.sprintf "{%s}"
                    (String.concat ","
                       (List.map Exom_interp.Value.to_string
                          (Exom_conf.Confidence.Vset.elements s)))
              in
              Printf.printf "  %.3f  d=%-3d line %-4d occ %-3d = %-6s %s  %s\n"
                e.Exom_conf.Prune.confidence e.Exom_conf.Prune.distance
                (Exom_lang.Loc.line stmt.Ast.sloc)
                inst.Exom_interp.Trace.occ
                (Exom_interp.Value.to_string inst.Exom_interp.Trace.value)
                (Exom_lang.Pretty.stmt_head stmt)
                alt
            end)
          (Exom_conf.Prune.entries ps);
        0)))
  in
  let correct_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "correct" ] ~docv:"FILE"
          ~doc:"The corrected program (confidence mode only)")
  in
  let top_arg =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"Number of ranked instances to show")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Also export the verified causal graph as Graphviz (ledger mode \
             only)")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Causal narrative of a provenance ledger (from --ledger-out), or \
          confidence analysis of a failing run (with --correct)")
    Term.(
      const action $ file_arg $ correct_arg $ input_arg $ text_arg $ top_arg
      $ dot_arg)

(* dot *)

let dot_cmd =
  let action file input text output_index full =
    match compile_file file with
    | Error e ->
      prerr_endline e;
      1
    | Ok prog -> (
      let run = Interp.run prog ~input:(resolve_input input text) in
      let trace = Option.get run.Interp.trace in
      let info = Proginfo.build prog in
      let describe idx =
        let inst = Exom_interp.Trace.get trace idx in
        Printf.sprintf "L%d #%d = %s"
          (Proginfo.line_of_sid info inst.Exom_interp.Trace.sid)
          idx
          (Exom_interp.Value.to_string inst.Exom_interp.Trace.value)
      in
      match List.nth_opt run.Interp.outputs output_index with
      | None ->
        Printf.eprintf "no output %d\n" output_index;
        1
      | Some (criterion, _) ->
        let slice =
          if full then None
          else Some (Slice.compute trace ~criteria:[ criterion ])
        in
        print_string
          (Exom_ddg.Dot.render ?slice ~highlight:[ criterion ] ~describe trace);
        0)
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Render the whole trace, not just the slice")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Graphviz rendering of the dynamic dependence graph (slice of one output)")
    Term.(
      const action $ file_arg $ input_arg $ text_arg $ output_index_arg $ full)

(* regions *)

let regions_cmd =
  let action file input text by_line =
    match compile_file file with
    | Error e ->
      prerr_endline e;
      1
    | Ok prog ->
      let run = Interp.run prog ~input:(resolve_input input text) in
      let trace = Option.get run.Interp.trace in
      let reg = Exom_align.Region.build trace in
      let info = Proginfo.build prog in
      let label =
        if by_line then
          Some
            (fun r idx ->
              Proginfo.line_of_sid info (Exom_align.Region.sid r idx))
        else None
      in
      print_endline (Exom_align.Region.render_forest ?label reg);
      0
  in
  let by_line =
    Arg.(
      value & flag
      & info [ "lines" ] ~doc:"Label regions with source lines instead of statement ids")
  in
  Cmd.v
    (Cmd.info "regions"
       ~doc:"The execution's region decomposition (Definition 3), paper-style")
    Term.(const action $ file_arg $ input_arg $ text_arg $ by_line)

(* bench *)

let default_label () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let bench_suite jobs json_out history label corpus_count no_rank =
  let jobs =
    match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  let label = match label with Some l -> l | None -> default_label () in
  let config =
    if no_rank then Some { Demand.default_config with Demand.ranking = None }
    else None
  in
  let s = Perf.run_suite ?config ~jobs ~label ?corpus_count () in
  Printf.printf "suite %s (%d job(s)): %d/%d located\n" s.Perf.label s.Perf.jobs
    s.Perf.located s.Perf.total;
  List.iter
    (fun r ->
      Printf.printf
        "  %-8s %-6s %s  verifications %d (of %d queries), iterations %d, \
         edges %d, prunings %d\n"
        r.Perf.r_bench r.Perf.r_fault
        (if r.Perf.r_found then "LOCATED    " else "not located")
        r.Perf.r_verifications r.Perf.r_queries r.Perf.r_iterations
        r.Perf.r_edges r.Perf.r_prunings)
    s.Perf.rows;
  Printf.printf
    "  totals: %d switched runs (%.3fs), %d interpreter runs, store hit rate \
     %.0f%%, wall %.3fs\n"
    s.Perf.verify_runs s.Perf.verify_seconds s.Perf.interp_runs
    (100.0 *. s.Perf.store_hit_rate)
    s.Perf.wall_seconds;
  Printf.printf
    "  warm store: hit rate %.0f%%, %d switched run(s) still dispatched\n"
    (100.0 *. s.Perf.warm_hit_rate)
    s.Perf.warm_verify_runs;
  (match s.Perf.corpus with
  | Some c ->
    Printf.printf
      "  corpus (seed %d): %d/%d located, %d failed, mean iterations %.2f, \
       mean verifications %.2f, wall %.3fs\n"
      c.Perf.c_seed c.Perf.c_located c.Perf.c_total c.Perf.c_failed
      c.Perf.c_mean_iterations c.Perf.c_mean_verifications
      c.Perf.c_wall_seconds
  | None -> ());
  (match json_out with
  | Some path ->
    Perf.write path s;
    Printf.eprintf "snapshot written to %s\n" path
  | None -> ());
  (match history with
  | Some path ->
    Perf.append_history path s;
    Printf.eprintf "snapshot appended to %s\n" path
  | None -> ());
  0

(* --export: materialize one fault as files so external drivers (the
   serve-stress CI job, exom client) can feed it back without linking
   the suite. *)
(* The machine-readable side of --export: external drivers (the corpus
   campaign runner, the serve-stress CI job) consume the fixture without
   hardcoding file names. *)
let fixtures_manifest entries =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "exom.fixtures");
         ("version", Json.Num 1.0);
         ( "fixtures",
           Json.Arr
             (List.map
                (fun (name, fid, input, root_line) ->
                  Json.Obj
                    [
                      ("name", Json.Str name);
                      ("fid", Json.Str fid);
                      ("faulty", Json.Str "faulty.mc");
                      ("correct", Json.Str "correct.mc");
                      ( "input",
                        Json.Arr
                          (List.map
                             (fun i -> Json.Num (float_of_int i))
                             input) );
                      ("root_line", Json.Num (float_of_int root_line));
                    ])
                entries) );
       ])
  ^ "\n"

let bench_export name fid dir bench fault =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  write_file (Filename.concat dir "faulty.mc") (B.faulty_source bench fault);
  write_file (Filename.concat dir "correct.mc") bench.B.source;
  write_file
    (Filename.concat dir "input.txt")
    (String.concat " " (List.map string_of_int fault.B.failing_input) ^ "\n");
  write_file
    (Filename.concat dir "root_line.txt")
    (string_of_int (B.fault_line bench fault) ^ "\n");
  write_file
    (Filename.concat dir "fixtures.json")
    (fixtures_manifest
       [ (name, fid, fault.B.failing_input, B.fault_line bench fault) ]);
  Printf.printf
    "%s %s exported to %s (faulty.mc correct.mc input.txt root_line.txt \
     fixtures.json)\n"
    name fid dir;
  0

let bench_one name fid jobs store_dir trace_out metrics_out ledger_out export
    no_rank =
  match Suite.find name with
    | None ->
      Printf.eprintf "unknown benchmark %s (have: %s)\n" name
        (String.concat ", " (List.map (fun b -> b.B.name) Suite.all));
      1
    | Some bench -> (
      match Suite.find_fault bench fid with
      | None ->
        Printf.eprintf "unknown fault %s (have: %s)\n" fid
          (String.concat ", "
             (List.map (fun f -> f.B.fid) bench.B.faults));
        1
      | Some fault when export <> None ->
        bench_export name fid (Option.get export) bench fault
      | Some fault ->
        let pool = make_pool jobs in
        let obs = make_obs ~trace_out in
        let store =
          Option.map (fun dir -> Store.create ~obs ~dir ()) store_dir
        in
        let ledger = make_ledger ledger_out in
        let config =
          if no_rank then Some { Demand.default_config with Demand.ranking = None }
          else None
        in
        let r = Runner.run_fault ~obs ~pool ?store ?ledger ?config bench fault in
        write_obs obs ~trace_out ~metrics_out;
        write_ledger ledger ~ledger_out;
        Printf.printf "%s %s (%d job(s)): %s\n" name fid (Pool.jobs pool)
          fault.B.description;
        Printf.printf
          "  RS %d/%d  DS %d/%d  PS %d/%d  IPS %d/%d\n"
          r.Runner.rs.Runner.static_size r.Runner.rs.Runner.dynamic_size
          r.Runner.ds.Runner.static_size r.Runner.ds.Runner.dynamic_size
          r.Runner.ps.Runner.static_size r.Runner.ps.Runner.dynamic_size
          r.Runner.ips.Runner.static_size r.Runner.ips.Runner.dynamic_size;
        Printf.printf
          "  prunings %d, verifications %d (of %d queries), iterations %d, \
           edges %d -> %s\n"
          r.Runner.report.Demand.user_prunings
          r.Runner.report.Demand.verifications
          r.Runner.report.Demand.verify_queries
          r.Runner.report.Demand.iterations
          r.Runner.report.Demand.expanded_edges
          (if r.Runner.report.Demand.found then "LOCATED" else "not located");
        Printf.printf "  ";
        print_store_stats r.Runner.report.Demand.store;
        let g = r.Runner.robustness in
        Printf.printf
          "  robustness: %d completed, %d aborted, %d retried, breaker \
           trips/skips %d/%d, deadline %d, captured %d\n"
          g.Guard.completed g.Guard.aborted g.Guard.retried
          g.Guard.breaker_trips g.Guard.breaker_skips g.Guard.deadline_expired
          g.Guard.captured;
        0)

let bench_cmd =
  let action name fid all jobs store_dir trace_out metrics_out ledger_out
      json_out history label export corpus_count no_rank =
    if all then bench_suite jobs json_out history label corpus_count no_rank
    else
      match (name, fid) with
      | Some name, Some fid ->
        bench_one name fid jobs store_dir trace_out metrics_out ledger_out
          export no_rank
      | _ ->
        prerr_endline "exom bench: need BENCH FAULT (or --all for the suite)";
        1
  in
  let name_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"flexsim | grepsim | gzipsim | sedsim")
  in
  let fid_arg =
    Arg.(
      value & pos 1 (some string) None
      & info [] ~docv:"FAULT" ~doc:"Fault id, e.g. V2-F3")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Run the whole suite and reduce it to a perf snapshot")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"With --all: write the snapshot as a single-line JSON file")
  in
  let history_arg =
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_history.jsonl") (some string) None
      & info [ "history" ] ~docv:"FILE"
          ~doc:
            "With --all: append the snapshot to a history JSONL file \
             (default $(b,BENCH_history.jsonl))")
  in
  let label_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"TAG"
          ~doc:"Snapshot label (default: today's date)")
  in
  let export_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:
            "Instead of running the fault, write its materials to DIR: \
             $(b,faulty.mc), $(b,correct.mc), $(b,input.txt) (failing \
             input as integers) and $(b,root_line.txt) — the files \
             $(b,exom client) and $(b,exom locate) need to reproduce it")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "corpus" ] ~docv:"N"
          ~doc:
            "With --all: also run a fixed-seed N-triple generated-corpus \
             campaign and record it as the snapshot's corpus leg \
             (schema v3)")
  in
  let no_rank_arg =
    Arg.(
      value & flag
      & info [ "no-rank" ]
          ~doc:
            "With --all: run the suite (and corpus leg) under the static \
             verification order instead of evidence-driven ranking — the \
             control snapshot for the rank gate")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run one benchmark fault from the built-in suite, or the whole \
          suite with --all")
    Term.(
      const action $ name_arg $ fid_arg $ all_arg $ jobs_arg $ store_arg
      $ trace_out_arg $ metrics_out_arg $ ledger_out_arg $ json_arg
      $ history_arg $ label_arg $ export_arg $ corpus_arg $ no_rank_arg)

(* regress *)

let regress_cmd =
  let action old_file new_file tolerance time_tolerance check =
    match (Perf.load old_file, Perf.load new_file) with
    | Error e, _ ->
      Printf.eprintf "%s: %s\n" old_file e;
      1
    | _, Error e ->
      Printf.eprintf "%s: %s\n" new_file e;
      1
    | Ok old_s, Ok new_s ->
      Printf.printf "old: %s (%d job(s), %d/%d located)\n" old_s.Perf.label
        old_s.Perf.jobs old_s.Perf.located old_s.Perf.total;
      Printf.printf "new: %s (%d job(s), %d/%d located)\n" new_s.Perf.label
        new_s.Perf.jobs new_s.Perf.located new_s.Perf.total;
      let findings = Perf.compare ~tolerance ~time_tolerance old_s new_s in
      print_string (Perf.render findings);
      if check && Perf.has_regression findings then 1 else 0
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline snapshot (file or history JSONL)")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate snapshot (file or history JSONL)")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.1
      & info [ "tolerance" ] ~docv:"REL"
          ~doc:"Relative tolerance for deterministic counts (0.1 = 10%)")
  in
  let time_tolerance_arg =
    Arg.(
      value & opt float 0.5
      & info [ "time-tolerance" ] ~docv:"REL"
          ~doc:"Relative tolerance for wall-clock figures")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Exit non-zero if any regression is flagged")
  in
  Cmd.v
    (Cmd.info "regress"
       ~doc:
         "Compare two perf snapshots from $(b,exom bench --all) and flag \
          metric movements beyond tolerance")
    Term.(
      const action $ old_arg $ new_arg $ tolerance_arg $ time_tolerance_arg
      $ check_arg)

(* stats *)

let stats_cmd =
  let load_metrics file =
    match read_file file with
    | exception Sys_error e -> Error e
    | content -> (
      match Export.metrics_of_jsonl content with
      | Error e -> Error (Printf.sprintf "%s: %s" file e)
      | Ok (reg, salvaged) ->
        (match salvaged with
        | Some { Export.torn_line; torn_byte } ->
          Printf.eprintf
            "%s: torn record at line %d (byte %d) dropped (salvaged)\n" file
            torn_line torn_byte
        | None -> ());
        Ok reg)
  in
  let action file file2 diff no_timings tolerance =
    match (load_metrics file, file2) with
    | Error e, _ ->
      prerr_endline e;
      1
    | Ok reg, None ->
      if diff then begin
        prerr_endline "exom stats: --diff needs a second FILE";
        1
      end
      else begin
        print_string (Exom_obs.Metrics.render ~timings:(not no_timings) reg);
        0
      end
    | Ok reg, Some file2 -> (
      match load_metrics file2 with
      | Error e ->
        prerr_endline e;
        1
      | Ok reg2 -> (
        print_string
          (Exom_obs.Metrics.render_diff ~timings:(not no_timings) reg reg2);
        (* --tolerance turns the diff into a gate: exit 1 when any
           deterministic scalar moved beyond it *)
        match tolerance with
        | None -> 0
        | Some tolerance ->
          let findings = Exom_obs.Metrics.drift ~tolerance reg reg2 in
          let breaches =
            List.filter
              (fun f -> f.Exom_obs.Metrics.d_breach)
              findings
          in
          if breaches = [] then 0
          else begin
            print_string (Exom_obs.Metrics.render_drift breaches);
            Printf.eprintf
              "exom stats: %d metric(s) drifted beyond tolerance %.2f\n"
              (List.length breaches) tolerance;
            1
          end))
  in
  let stats_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A JSONL event log written by --metrics-out")
  in
  let stats_file2_arg =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"FILE2"
          ~doc:"A second event log to compare against (side-by-side diff)")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:"Compare two event logs side by side (implied by FILE2)")
  in
  let no_timings_arg =
    Arg.(
      value & flag
      & info [ "no-timings" ]
          ~doc:
            "Suppress wall-clock figures, leaving the subset that is \
             bit-identical across job counts and machines")
  in
  let tolerance_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "tolerance" ] ~docv:"REL"
          ~doc:
            "Turn the diff into a gate: exit non-zero when any \
             deterministic scalar (counter, gauge, timer count) moved by \
             more than REL relative to FILE (0.0 = any movement)")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Pretty-print the metric tree of a --metrics-out event log, or \
          diff two of them")
    Term.(
      const action $ stats_file_arg $ stats_file2_arg $ diff_arg
      $ no_timings_arg $ tolerance_arg)

(* serve *)

module Serve = Exom_serve.Serve
module Proto = Exom_serve.Proto
module Client = Exom_serve.Client

let serve_cmd =
  let action state socket jobs queue_limit shards lease retries resume trace =
    if queue_limit < 1 then begin
      prerr_endline "exom serve: --queue-limit must be >= 1";
      1
    end
    else if retries < 0 then begin
      prerr_endline "exom serve: --request-retries must be >= 0";
      1
    end
    else begin
      let socket_path =
        match socket with
        | Some s -> s
        | None -> Filename.concat state "exom.sock"
      in
      let base = Serve.default_config ~socket_path ~state_dir:state in
      let jobs =
        match jobs with None -> base.Serve.jobs | Some j -> j
      in
      Serve.run
        {
          base with
          Serve.jobs;
          queue_limit;
          shards;
          lease;
          request_retries = retries;
          resume;
          trace;
        }
    end
  in
  let state_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "state" ] ~docv:"DIR"
          ~doc:
            "Daemon state directory (created if missing): accepted \
             requests, their journaled ledgers and the shared sharded \
             verdict store live under it, so a killed daemon restarted \
             with $(b,--resume) replays every in-flight request")
  in
  let socket_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket to listen on (default DIR/exom.sock)")
  in
  let queue_limit_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Bounded request queue: further locate requests are shed \
             with an explicit reply instead of growing memory")
  in
  let shards_arg =
    Arg.(
      value & opt int Store.default_shards
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Store partition count for a fresh store directory (an \
             existing store's manifest wins)")
  in
  let lease_arg =
    Arg.(
      value & opt float Store.default_lease
      & info [ "lease" ] ~docv:"SECONDS"
          ~doc:
            "Store writer-lock lease: a shard lock older than this is \
             stolen, so a crashed writer never wedges the cache")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "request-retries" ] ~docv:"N"
          ~doc:
            "Re-runs of a request whose localization came back DEGRADED \
             (transient worker kills), with exponential backoff")
  in
  let resume_flag =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay journaled in-flight requests from the state \
             directory before accepting new ones; each replays to a \
             ledger byte-identical to an uninterrupted run")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record a span tree per request and export it as a Chrome \
             trace under DIR/traces/<fingerprint>.trace.json, keyed by \
             the request fingerprint for cross-run auditing")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Localization daemon: concurrent requests over a Unix-domain \
          socket, one shared sharded verdict store, crash-safe journaling")
    Term.(
      const action $ state_arg $ socket_opt_arg $ jobs_arg $ queue_limit_arg
      $ shards_arg $ lease_arg $ retries_arg $ resume_flag $ trace_flag)

(* client *)

let client_cmd =
  let print_served (s : Proto.served) =
    print_string s.Proto.sv_report;
    Printf.eprintf "fingerprint %s\nledger %s%s\n" s.Proto.sv_fingerprint
      s.Proto.sv_ledger
      (if s.Proto.sv_replayed then " (replayed from journal)" else "")
  in
  let action file correct_file input text root_line deadline socket stress ping
      stats =
    if ping then begin
      match Client.request ~socket Proto.Ping with
      | Ok Proto.Pong ->
        print_endline "pong";
        0
      | Ok _ ->
        prerr_endline "unexpected reply to ping";
        1
      | Error e ->
        prerr_endline e;
        1
    end
    else if stats then begin
      match Client.request ~socket Proto.Stats with
      | Ok (Proto.Counters kvs) ->
        List.iter (fun (k, v) -> Printf.printf "%-18s %d\n" k v) kvs;
        0
      | Ok _ ->
        prerr_endline "unexpected reply to stats";
        1
      | Error e ->
        prerr_endline e;
        1
    end
    else
      match (file, correct_file) with
      | None, _ | _, None ->
        prerr_endline
          "exom client: need FILE and --correct FILE (or --ping / --stats)";
        1
      | Some file, Some correct_file -> (
        match (read_file file, read_file correct_file) with
        | exception Sys_error e ->
          prerr_endline e;
          1
        | program, correct -> (
          let locate =
            {
              Proto.lc_program = program;
              lc_correct = correct;
              lc_input = resolve_input input text;
              lc_root_line = root_line;
              lc_deadline = deadline;
            }
          in
          match stress with
          | Some n ->
            let r = Client.stress ~socket ~clients:n [ locate ] in
            Printf.printf
              "stress: %d client(s): %d served (%d replayed), %d shed, %d \
               failed, %d transport errors\n"
              n r.Client.st_served r.Client.st_replayed r.Client.st_shed
              r.Client.st_failed r.Client.st_errors;
            if r.Client.st_failed = 0 && r.Client.st_errors = 0 then 0 else 1
          | None -> (
            match Client.request ~socket (Proto.Locate locate) with
            | Ok (Proto.Served s) ->
              print_served s;
              0
            | Ok (Proto.Shed reason) ->
              Printf.eprintf "shed by the daemon: %s\n" reason;
              2
            | Ok (Proto.Failed reason) ->
              Printf.eprintf "request failed: %s\n" reason;
              1
            | Ok (Proto.Pong | Proto.Counters _) ->
              prerr_endline "unexpected reply";
              1
            | Error e ->
              prerr_endline e;
              1)))
  in
  let opt_file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Faulty MCL source to localize")
  in
  let correct_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "correct" ] ~docv:"FILE" ~doc:"The corrected program (the oracle)")
  in
  let root_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "root-line" ] ~docv:"LINE"
          ~doc:"Ground-truth fault line (stops the search when reached)")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request deadline, enforced by the daemon (verification \
             escalation stops; a request stale in the queue is shed)")
  in
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's Unix-domain socket")
  in
  let stress_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "stress" ] ~docv:"N"
          ~doc:
            "Fire the request from N concurrent connections (one domain \
             each) and tally served/shed/failed")
  in
  let ping_flag =
    Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe: expect pong")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print the daemon's request counters")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one localization request to an $(b,exom serve) daemon \
          (--stress N for N concurrent clients)")
    Term.(
      const action $ opt_file_arg $ correct_arg $ input_arg $ text_arg
      $ root_arg $ deadline_arg $ socket_arg $ stress_arg $ ping_flag
      $ stats_flag)

(* corpus *)

module Factory = Exom_corpus.Factory
module Seeder = Exom_corpus.Seeder
module Campaign = Exom_corpus.Campaign
module Mine = Exom_corpus.Mine

let corpus_classes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "classes" ] ~docv:"C1,C2"
        ~doc:
          "Restrict seeding to these fault classes (stmt_delete, \
           guard_strengthen, guard_weaken, call_drop, flag_init)")

let parse_classes = function
  | None -> Ok None
  | Some s ->
    let names =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
    in
    let rec go acc = function
      | [] -> Ok (Some (List.rev acc))
      | n :: rest -> (
        match Seeder.class_of_string n with
        | Some c -> go (c :: acc) rest
        | None -> Error (Printf.sprintf "unknown fault class %S" n))
    in
    go [] names

let corpus_gen_cmd =
  let action seed count family classes out =
    match parse_classes classes with
    | Error e ->
      Printf.eprintf "%s\n" e;
      1
    | Ok classes -> (
      match Campaign.generate ?classes ~family ~seed ~count () with
      | exception Failure e ->
        Printf.eprintf "%s\n" e;
        1
      | manifest ->
        Campaign.write_manifest out manifest;
        Printf.eprintf "%d triples (family %s, %d generation attempts) -> %s\n"
          (List.length manifest.Campaign.m_triples)
          manifest.Campaign.m_family manifest.Campaign.m_attempts out;
        0)
  in
  let seed_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "seed" ] ~docv:"S" ~doc:"Corpus seed (determines every triple)")
  in
  let count_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "count" ] ~docv:"N" ~doc:"Validated triples to generate")
  in
  let family_arg =
    Arg.(
      value & opt string "mixed"
      & info [ "family" ] ~docv:"FAM"
          ~doc:
            "Program family: small, medium, large, or mixed (rotate all \
             three)")
  in
  let out_arg =
    Arg.(
      value & opt string "manifest.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Manifest output path")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a corpus manifest: factory programs + seeded, validated \
          execution-omission faults.  Byte-deterministic in (seed, count, \
          family, classes)")
    Term.(
      const action $ seed_arg $ count_arg $ family_arg $ corpus_classes_arg
      $ out_arg)

let corpus_run_cmd =
  let action manifest_path dir shards jobs resume socket =
    match Campaign.load_manifest manifest_path with
    | Error e ->
      Printf.eprintf "%s: %s\n" manifest_path e;
      1
    | Ok manifest when shards < 1 ->
      ignore manifest;
      Printf.eprintf "--shards must be >= 1\n";
      1
    | Ok manifest ->
      Campaign.ensure_layout dir;
      if not resume then Campaign.reset dir;
      Campaign.ensure_layout dir;
      let skip =
        if resume then begin
          let h = Hashtbl.create 64 in
          List.iter
            (fun r -> Hashtbl.add h r.Campaign.o_id ())
            (Campaign.journaled_rows dir);
          Hashtbl.mem h
        end
        else fun _ -> false
      in
      let failed = ref 0 in
      let run_one shard =
        try
          ignore
            (Campaign.run_shard ?jobs ?socket ~dir ~manifest ~shard ~shards
               ~skip ())
        with e ->
          Printf.eprintf "shard %d failed: %s\n%!" shard (Printexc.to_string e);
          incr failed
      in
      if shards = 1 then run_one 0
      else begin
        (* fork-per-shard: children are forked before any domain pool
           exists (each shard creates its own), which is the only safe
           ordering of fork and domains *)
        let pids =
          List.init shards (fun shard ->
              match Unix.fork () with
              | 0 ->
                let code =
                  try
                    ignore
                      (Campaign.run_shard ?jobs ?socket ~dir ~manifest ~shard
                         ~shards ~skip ());
                    0
                  with e ->
                    Printf.eprintf "shard %d failed: %s\n%!" shard
                      (Printexc.to_string e);
                    1
                in
                exit code
              | pid -> pid)
        in
        List.iter
          (fun pid ->
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> ()
            | _, _ -> incr failed)
          pids
      end;
      let rows, missing = Campaign.merge ~dir ~manifest in
      print_string (Campaign.render_summary (Campaign.summarize rows));
      Printf.printf "outcomes: %s\n" (Filename.concat dir "outcomes.jsonl");
      Printf.printf "metrics: %s\n" (Campaign.campaign_metrics dir);
      if missing <> [] then begin
        Printf.eprintf "%d triples have no outcome row (first: %s)\n"
          (List.length missing) (List.hd missing);
        2
      end
      else if !failed > 0 then 1
      else 0
  in
  let manifest_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST" ~doc:"Corpus manifest (from corpus gen)")
  in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Campaign directory: shared store, ledger journals and outcome \
             rows live here")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"P"
          ~doc:
            "Worker processes: triples are dealt round-robin across P \
             forked shards sharing one store.  Outcomes are byte-identical \
             at any P")
  in
  let resume_flag =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Keep rows already journaled under --dir and re-run only the \
             missing triples (replaying complete per-triple journals)")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Run triples through the exom serve daemon listening on PATH \
             instead of in-process")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the localization campaign over a corpus manifest, sharded \
          across processes against one shared store; crash-safe and \
          resumable (--resume)")
    Term.(
      const action $ manifest_arg $ dir_arg $ shards_arg $ jobs_arg
      $ resume_flag $ socket_arg)

let corpus_rows_of_path path =
  let file =
    if Sys.is_directory path then Filename.concat path "outcomes.jsonl"
    else path
  in
  (file, Campaign.read_rows file)

let corpus_report_cmd =
  let action path min_located =
    let file, rows = corpus_rows_of_path path in
    if rows = [] then begin
      Printf.eprintf "no outcome rows in %s\n" file;
      1
    end
    else begin
      let s = Campaign.summarize rows in
      print_string (Campaign.render_summary s);
      print_string (Campaign.render_rollup rows);
      match min_located with
      | None -> 0
      | Some floor ->
        let rate = float_of_int s.Campaign.s_located /. float_of_int s.Campaign.s_total in
        if rate >= floor then 0
        else begin
          Printf.eprintf "located rate %.3f below floor %.3f\n" rate floor;
          1
        end
    end
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH" ~doc:"Campaign directory or outcomes.jsonl")
  in
  let floor_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-located" ] ~docv:"RATE"
          ~doc:"Exit nonzero when the located rate is below RATE (0..1)")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarize campaign outcomes (optionally gate on located rate)")
    Term.(const action $ path_arg $ floor_arg)

let corpus_mine_cmd =
  let action path out =
    let file, rows = corpus_rows_of_path path in
    if rows = [] then begin
      Printf.eprintf "no outcome rows in %s\n" file;
      1
    end
    else begin
      let table = Mine.mine rows in
      (match out with
      | Some o ->
        write_file o (Mine.table_to_string table);
        Printf.eprintf "feature table -> %s\n" o
      | None -> ());
      print_string (Mine.render table);
      0
    end
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH" ~doc:"Campaign directory or outcomes.jsonl")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the feature table as JSON to FILE")
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Mine campaign outcomes into feature tables (located rate, \
          iterations and verifications by fault class, family, program \
          size, predicate density)")
    Term.(const action $ path_arg $ out_arg)

let corpus_seed_cmd =
  let action file seed cls line input out =
    let source = read_file file in
    match Typecheck.parse_and_check source with
    | exception Loc.Error (loc, msg) ->
      Printf.eprintf "%s:%d:%d: %s\n" file (Loc.line loc) (Loc.col loc) msg;
      1
    | prog -> (
      let cls =
        Option.map
          (fun c ->
            match Seeder.class_of_string c with
            | Some c -> c
            | None -> failwith (Printf.sprintf "unknown fault class %S" c))
          cls
      in
      let line_of_sid p sid =
        let l = ref 0 in
        Ast.iter_program
          (fun st -> if st.Ast.sid = sid then l := Loc.line st.Ast.sloc)
          p;
        !l
      in
      let sites =
        Seeder.sites prog
        |> List.filter (fun (c, sid) ->
               (match cls with Some cls -> c = cls | None -> true)
               &&
               match line with
               | Some line -> line_of_sid prog sid = line
               | None -> true)
      in
      let input = parse_ints input in
      let inputs =
        if input = [] then
          let st = Random.State.make [| 0x0fa1; seed |] in
          List.init 6 (fun _ ->
              List.init
                (8 + Random.State.int st 9)
                (fun _ -> Random.State.int st 101 - 50))
        else [ input ]
      in
      let validated =
        List.find_map
          (fun (c, sid) ->
            match Seeder.apply prog c sid with
            | None -> None
            | Some faulty ->
              List.find_opt
                (fun input -> Seeder.validates ~correct:prog ~faulty ~input)
                inputs
              |> Option.map (fun input -> (c, sid, faulty, input)))
          sites
      in
      match validated with
      | None ->
        Printf.eprintf
          "no validated omission fault at the requested sites (%d candidates)\n"
          (List.length sites);
        1
      | Some (c, sid, faulty, input) ->
        (* the emitted faulty.mc is the pretty-printed mutant, so the
           recorded root line must use its numbering, not the input
           file's (sids survive the reparse: mutations preserve
           statement order and count) *)
        let line = line_of_sid faulty sid in
        let faulty_src = Exom_lang.Pretty.program_to_string faulty in
        (match out with
        | Some dir ->
          (try Unix.mkdir dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          write_file (Filename.concat dir "faulty.mc") faulty_src;
          write_file (Filename.concat dir "correct.mc") source;
          write_file
            (Filename.concat dir "input.txt")
            (String.concat " " (List.map string_of_int input) ^ "\n");
          write_file
            (Filename.concat dir "root_line.txt")
            (string_of_int line ^ "\n");
          write_file
            (Filename.concat dir "fixtures.json")
            (fixtures_manifest
               [
                 ( Filename.remove_extension (Filename.basename file),
                   Seeder.class_to_string c, input, line );
               ])
        | None -> print_string faulty_src);
        Printf.eprintf
          "seeded %s at line %d (sid %d), failing input: %s\n"
          (Seeder.class_to_string c) line sid
          (String.concat "," (List.map string_of_int input));
        0)
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S" ~doc:"Seed for candidate-input derivation")
  in
  let class_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "class" ] ~docv:"CLS" ~doc:"Restrict to one fault class")
  in
  let line_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "line" ] ~docv:"N" ~doc:"Restrict to statements on line N")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:
            "Write faulty.mc, correct.mc, input.txt, root_line.txt and \
             fixtures.json to DIR (default: faulty source on stdout)")
  in
  Cmd.v
    (Cmd.info "seed"
       ~doc:
         "Seed one validated execution-omission fault into a correct MCL \
          program")
    Term.(
      const action $ file_arg $ seed_arg $ class_arg $ line_arg $ input_arg
      $ out_arg)

let corpus_cmd =
  Cmd.group
    (Cmd.info "corpus"
       ~doc:
         "Corpus factory: generate thousands of seeded omission faults, run \
          sharded campaigns, mine the evidence")
    [ corpus_gen_cmd; corpus_run_cmd; corpus_report_cmd; corpus_mine_cmd;
      corpus_seed_cmd ]

(* chaos *)

module Storm = Exom_bench.Storm

let chaos_cmd =
  let action seed jobs corpus dir out faults check =
    let faults =
      match faults with
      | [] -> None
      | fs ->
        Some
          (List.map
             (fun s ->
               match String.index_opt s '/' with
               | Some i ->
                 ( String.sub s 0 i,
                   String.sub s (i + 1) (String.length s - i - 1) )
               | None ->
                 raise
                   (Invalid_argument
                      (Printf.sprintf "--fault %S: expected BENCH/FID" s)))
             fs)
    in
    let dir =
      match dir with
      | Some d -> d
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "exom_chaos_%d" (Unix.getpid ()))
    in
    match Storm.run ~jobs ~corpus ?faults ~seed ~dir () with
    | exception Invalid_argument m | exception Failure m ->
      Printf.eprintf "exom chaos: %s\n" m;
      1
    | report ->
      print_string (Storm.render report);
      (match out with
      | Some path ->
        write_file path (Json.to_string (Storm.report_to_json report) ^ "\n");
        Printf.eprintf "storm report written to %s\n" path
      | None -> ());
      if check && not report.Storm.r_ok then 1 else 0
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Storm seed: the same seed replays the same faults")
  in
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Verification pool size per localization (>= 2 gives worker \
             kills a supervisor)")
  in
  let corpus_arg =
    Arg.(
      value & opt int 20
      & info [ "corpus" ] ~docv:"N"
          ~doc:"Corpus triples for the campaign legs (0 disables them)")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Scratch workspace for journals, stores and campaign state \
             (default: a per-process directory under the system temp dir)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the storm report as JSON")
  in
  let faults_arg =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"BENCH/FID"
          ~doc:
            "Suite fault to storm, as $(b,bench/fault-id) (repeatable; \
             default gzipsim/V2-F3 and grepsim/V4-F2)")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit non-zero on any violated invariant: a raised \
             localization, a wrong verdict, a non-identical undegraded \
             resume, or an unaccounted injected fault")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Storm every persistence path with seeded storage faults \
          (ENOSPC, EIO, torn writes, torn renames) composed with worker \
          kills and kill+resume cuts, and audit the degradation \
          contracts")
    Term.(
      const action $ seed_arg $ jobs_arg $ corpus_arg $ dir_arg $ out_arg
      $ faults_arg $ check_arg)

(* audit *)

module Audit = Exom_audit
module Spine = Exom_obs.Spine

let lanes_conv =
  let parse s =
    match Spine.lanes_of_string s with
    | Some l -> Ok l
    | None ->
      Error (`Msg (Printf.sprintf "unknown lane projection %S" s))
  in
  Arg.conv (parse, fun ppf l -> Fmt.string ppf (Spine.lanes_to_string l))

let audit_cmd =
  let action run_a run_b spine metrics ledger lanes tolerance check =
    let legs =
      (if spine then [ Audit.Spine_leg ] else [])
      @ (if metrics then [ Audit.Metrics_leg ] else [])
      @ if ledger then [ Audit.Ledger_leg ] else []
    in
    let legs = if legs = [] then None else Some legs in
    match (Audit.load run_a, Audit.load run_b) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      1
    | Ok a, Ok b -> (
      match Audit.audit ~lanes ~tolerance ?legs a b with
      | Error e ->
        prerr_endline e;
        1
      | Ok t ->
        print_string (Audit.render t);
        if check && not (Audit.clean t) then 1 else 0)
  in
  let run_a_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"RUN_A"
          ~doc:
            "The reference run: a Chrome trace (--trace-out), a JSONL \
             event log (--metrics-out) or a ledger/journal")
  in
  let run_b_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"RUN_B" ~doc:"The run to audit against RUN_A")
  in
  let spine_flag =
    Arg.(
      value & flag
      & info [ "spine" ]
          ~doc:
            "Compare the span spines (error if either side lacks spans)")
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Compare the metric registries (error if either side lacks \
             them)")
  in
  let ledger_flag =
    Arg.(
      value & flag
      & info [ "ledger" ]
          ~doc:
            "Compare the ledger event streams (error if either side is \
             not a ledger)")
  in
  let lanes_arg =
    Arg.(
      value
      & opt lanes_conv Spine.All
      & info [ "lanes" ] ~docv:"PROJECTION"
          ~doc:
            "Spine projection: $(b,all) for uninterrupted-run \
             comparisons (-j1 vs -j4), $(b,coordinator) for \
             resume-vs-uninterrupted comparisons (replayed batches have \
             no worker-lane spans)")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.0
      & info [ "tolerance" ] ~docv:"REL"
          ~doc:
            "Relative metric movement tolerated before the drift leg \
             breaches (0.0 = any movement)")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Exit non-zero unless the verdict is CLEAN (the CI gate)")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Diff two runs' deterministic residue — span spine, metric \
          drift, ledger stream, resume lineage — into one verdict")
    Term.(
      const action $ run_a_arg $ run_b_arg $ spine_flag $ metrics_flag
      $ ledger_flag $ lanes_arg $ tolerance_arg $ check_flag)

(* trace *)

let trace_spine_cmd =
  let action file lanes out =
    match read_file file with
    | exception Sys_error e ->
      prerr_endline e;
      1
    | content -> (
      match Export.spans_of_string content with
      | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
      | Ok (spans, salvage) ->
        (match salvage with
        | Some { Export.torn_line; torn_byte } ->
          Printf.eprintf
            "%s: torn record at line %d (byte %d) dropped (salvaged)\n"
            file torn_line torn_byte
        | None -> ());
        let spine = Spine.of_spans ~lanes spans in
        (match out with
        | Some path -> write_file path (Spine.to_string spine ^ "\n")
        | None -> print_string (Spine.render spine));
        0)
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A Chrome trace (--trace-out) or JSONL event log \
             (--metrics-out)")
  in
  let lanes_arg =
    Arg.(
      value
      & opt lanes_conv Spine.All
      & info [ "lanes" ] ~docv:"PROJECTION"
          ~doc:"Projection to extract: $(b,all) or $(b,coordinator)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:
            "Write the versioned spine codec (exom.spine v1) to PATH \
             instead of rendering the tree")
  in
  Cmd.v
    (Cmd.info "spine"
       ~doc:
         "Extract the deterministic span spine from a trace export: the \
          wall-clock-free canonical tree exom audit compares")
    Term.(const action $ file_arg $ lanes_arg $ out_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Operate on trace exports (--trace-out / --metrics-out)")
    [ trace_spine_cmd ]

let () =
  let doc = "locating execution omission errors via implicit dependences" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default
          (Cmd.info "exom" ~version:"1.0.0" ~doc)
          [ run_cmd; info_cmd; slice_cmd; rslice_cmd; locate_cmd; explain_cmd;
            recover_cmd; dot_cmd; regions_cmd; bench_cmd; regress_cmd;
            stats_cmd; audit_cmd; trace_cmd; serve_cmd; client_cmd;
            corpus_cmd; chaos_cmd ]))
