module Trace = Exom_interp.Trace
module Interp = Exom_interp.Interp

(* The paper's "union dependence graph": the union of all unique
   dependences exercised while executing a large number of test cases
   (§4, the static component).  The authors used it to compute potential
   dependences; here it serves as an alternative backend for condition
   (iv) of Definition 1 — a definition statement is considered able to
   reach a use statement only if some test run actually witnessed the
   def-use pair, instead of the purely static def-clear path analysis.

   Witnessed pairs are an under-approximation of feasible pairs (tests
   may miss paths) and an over-approximation of the failing run's pairs
   — exactly the hybrid character the paper ascribes to relevant
   slicing. *)

type t = {
  pairs : (int * int, unit) Hashtbl.t;  (* (def sid, use sid) *)
  executed : (int, unit) Hashtbl.t;  (* sids seen executing in any run *)
  mutable runs : int;
}

let create () =
  { pairs = Hashtbl.create 256; executed = Hashtbl.create 128; runs = 0 }

let add_trace t trace =
  t.runs <- t.runs + 1;
  Trace.iter
    (fun inst ->
      Hashtbl.replace t.executed inst.Trace.sid ();
      List.iter
        (fun (_, def_idx, _) ->
          if def_idx >= 0 then
            let def_sid = (Trace.get trace def_idx).Trace.sid in
            Hashtbl.replace t.pairs (def_sid, inst.Trace.sid) ())
        inst.Trace.uses)
    trace

let add_run t (run : Interp.run) =
  Option.iter (add_trace t) run.Interp.trace

let collect prog inputs =
  let t = create () in
  List.iter (fun input -> add_run t (Interp.run prog ~input)) inputs;
  t

let observed t ~def_sid ~use_sid = Hashtbl.mem t.pairs (def_sid, use_sid)

let executed t sid = Hashtbl.mem t.executed sid

(* The condition-(iv) evidence filter.  A definition that never executed
   in any test run cannot have been witnessed — and that is precisely
   the execution-omission situation, so absence of evidence must not
   disqualify it.  Among definitions that did execute, a def-use pair no
   run ever witnessed is discarded (the way the union graph prunes the
   static analysis's false pairs). *)
let evidence_filter t ~def_sid ~use_sid =
  observed t ~def_sid ~use_sid || not (executed t def_sid)

let size t = Hashtbl.length t.pairs
let runs t = t.runs
