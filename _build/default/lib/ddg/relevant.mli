(** Relevant slicing (Gyimóthy et al. [3], as characterized in §2 of the
    paper): dynamic slicing augmented with *potential dependence* edges
    between a use and the earlier predicate instances whose opposite
    branch could have brought a different definition to the use
    (Definition 1).

    This is the baseline the paper's technique improves on: it always
    captures execution omission errors but over-approximates, so its
    dynamic sizes blow up (Table 2, the RS columns). *)

type t

(** [create ?observed info trace]: [observed] is the optional
    condition-(iv) evidence filter, typically
    {!Union_graph.evidence_filter} over a test suite's runs. *)
val create :
  ?observed:(def_sid:int -> use_sid:int -> bool) ->
  Exom_cfg.Proginfo.t ->
  Exom_interp.Trace.t ->
  t

(** PD(u): the predicate instances the use instance [u] potentially
    depends on, per Definition 1 (conditions (i)-(iii) checked
    dynamically on the trace, condition (iv) statically, cached). *)
val pd : t -> int -> int list

(** Static locations a dynamic use cell may stand for (array elements
    map to the alias classes read by the statement). *)
val locs_of_use_cell :
  t -> use_sid:int -> Exom_interp.Cell.t -> Exom_cfg.Locs.loc list

(** Relevant slice of the criteria: closure over explicit + potential
    dependence edges (PD edges generated lazily). *)
val relevant_slice : t -> criteria:int list -> Slice.t

(** [is_control_ancestor t ~anc ~of_] — is instance [anc] on the region
    (dynamic control) ancestor chain of instance [of_]? *)
val is_control_ancestor : t -> anc:int -> of_:int -> bool
