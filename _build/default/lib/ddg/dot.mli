(** Graphviz rendering of dynamic dependence graphs.

    Edges point from a use to its definition (backward, the slicing
    direction): data dependences solid, dynamic control dependences
    dashed, verified implicit dependences bold red.  [describe] supplies
    node labels (e.g. "line 12 (#5) = 42"); [slice] restricts the output
    to a slice's instances; [highlight] fills the given instances. *)

val render :
  ?slice:Slice.t ->
  ?implicit:(int * int) list ->
  ?highlight:int list ->
  describe:(int -> string) ->
  Exom_interp.Trace.t ->
  string
