module Cell = Exom_interp.Cell
module Trace = Exom_interp.Trace
module Locs = Exom_cfg.Locs
module Potential = Exom_cfg.Potential
module Proginfo = Exom_cfg.Proginfo

type t = {
  info : Proginfo.t;
  potential : Potential.t;
  trace : Trace.t;
  by_sid : (int, int list) Hashtbl.t;  (* sid -> instance idxs, ascending *)
  pred_sids : int list;  (* every predicate sid that executed *)
  static_pd_cache : (int, (int * bool) list) Hashtbl.t;
      (* use sid -> (pred sid, taken) pairs satisfying condition (iv) *)
}

let create ?observed info trace =
  let by_sid = Hashtbl.create 64 in
  Trace.iter
    (fun inst ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt by_sid inst.Trace.sid)
      in
      Hashtbl.replace by_sid inst.Trace.sid (inst.Trace.idx :: cur))
    trace;
  let pred_sids = ref [] in
  Hashtbl.iter
    (fun sid idxs ->
      Hashtbl.replace by_sid sid (List.rev idxs);
      if Proginfo.is_predicate info sid then pred_sids := sid :: !pred_sids)
    by_sid;
  {
    info;
    potential = Potential.create ?observed info;
    trace;
    by_sid;
    pred_sids = !pred_sids;
    static_pd_cache = Hashtbl.create 64;
  }

(* Static locations a dynamic use cell may stand for. *)
let locs_of_use_cell t ~use_sid cell =
  let fname = Proginfo.func_of_sid t.info use_sid in
  match cell with
  | Cell.Global x -> [ Locs.Lvar (None, x) ]
  | Cell.Local (_, x) -> [ Locs.loc_of_var (Proginfo.locs t.info) ~fname x ]
  | Cell.Elem _ -> Locs.array_uses (Proginfo.locs t.info) use_sid
  | Cell.Ret _ -> []

(* All (predicate sid, taken outcome) pairs satisfying condition (iv)
   for some *static* use location of statement [use_sid] (the stable
   superset of any dynamic instance's use cells, so the result is
   cacheable per statement). *)
let static_pd t ~use_sid =
  match Hashtbl.find_opt t.static_pd_cache use_sid with
  | Some r -> r
  | None ->
    let locs =
      Locs.Lset.elements (Locs.uses (Proginfo.locs t.info) use_sid)
    in
    let result = ref [] in
    List.iter
      (fun pred_sid ->
        List.iter
          (fun taken ->
            let qualifies =
              List.exists
                (fun loc ->
                  Potential.could_reach_differently t.potential ~pred_sid
                    ~taken ~use_sid ~loc)
                locs
            in
            if qualifies then result := (pred_sid, taken) :: !result)
          [ true; false ])
      t.pred_sids;
    Hashtbl.replace t.static_pd_cache use_sid !result;
    !result

(* Dynamic (transitive) control ancestors of an instance: its region
   ancestor chain. *)
let is_control_ancestor t ~anc ~of_:idx =
  let rec walk i = i >= 0 && (i = anc || walk (Trace.get t.trace i).Trace.parent) in
  walk (Trace.get t.trace idx).Trace.parent

(* Instances of [sid] with branch outcome [taken] in the open interval
   (lo, hi). *)
let instances_between t sid taken ~lo ~hi =
  match Hashtbl.find_opt t.by_sid sid with
  | None -> []
  | Some idxs ->
    List.filter
      (fun i ->
        i > lo && i < hi
        && Trace.branch_of (Trace.get t.trace i) = Some taken)
      idxs

(* PD(u) of Definition 1: the executed predicate instances that use
   instance [u] potentially depends on.

   (i)   the predicate instance precedes u;
   (ii)  u is not (dynamically, transitively) control dependent on it;
   (iii) the definition reaching the use occurs before it;
   (iv)  a different definition could reach the use had it evaluated the
         other way (static, cached per use statement). *)
let pd t u =
  let inst = Trace.get t.trace u in
  let use_sid = inst.Trace.sid in
  let result = ref [] in
  List.iter
    (fun (cell, def_idx, _) ->
      let locs = locs_of_use_cell t ~use_sid cell in
      if locs <> [] then begin
        let cell_locs_pd =
          List.filter
            (fun (pred_sid, taken) ->
              List.exists
                (fun loc ->
                  Potential.could_reach_differently t.potential ~pred_sid
                    ~taken ~use_sid ~loc)
                locs)
            (static_pd t ~use_sid)
        in
        List.iter
          (fun (pred_sid, taken) ->
            let candidates =
              instances_between t pred_sid taken ~lo:def_idx ~hi:u
            in
            List.iter
              (fun p ->
                if not (is_control_ancestor t ~anc:p ~of_:u) then
                  result := p :: !result)
              candidates)
          cell_locs_pd
      end)
    inst.Trace.uses;
  List.sort_uniq compare !result

(* The relevant slice: closure over explicit + potential dependences.
   PD edges are generated lazily per instance as the closure reaches it,
   which keeps the (potentially enormous) edge set implicit. *)
let relevant_slice t ~criteria = Slice.compute ~extra:(pd t) t.trace ~criteria
