(** Dynamic slices: backward transitive closure over the dynamic
    dependence graph encoded in a trace (data dependences from recorded
    def-use pairs, dynamic control dependences from control parents).

    The [extra] hook supplies additional predecessor edges — the
    mechanism by which relevant slicing (potential dependences) and the
    demand-driven algorithm (verified implicit dependences) extend the
    graph.  Slice sizes are reported both as dynamic (# instances) and
    static (# unique statements), matching Table 2 of the paper. *)

module Iset : Set.S with type elt = int

type t

val compute :
  ?extra:(int -> int list) ->
  Exom_interp.Trace.t ->
  criteria:int list ->
  t

(** A slice-shaped value from an explicit instance set (negative indices
    are ignored). *)
val of_instances : Exom_interp.Trace.t -> int list -> t

val members : t -> Iset.t
val mem : t -> int -> bool
val mem_sid : t -> int -> bool
val dynamic_size : t -> int
val static_size : t -> int
val to_list : t -> int list
val sids : t -> int list

(** Explicit dependence predecessors of one instance. *)
val explicit_preds : Exom_interp.Trace.t -> int -> int list

(** Shortest backward dependence chain from the [criterion] to any
    instance of [from_sids]; returns it source-first.  This is the
    paper's OS — the failure-inducing dependence chain of Table 3. *)
val shortest_chain :
  ?extra:(int -> int list) ->
  Exom_interp.Trace.t ->
  criterion:int ->
  from_sids:int list ->
  int list option
