(** The union dependence graph of the paper's §4: all unique static
    def-use dependences exercised over a set of test runs.  Used as an
    alternative, evidence-based backend for condition (iv) of potential
    dependences (see {!Exom_cfg.Potential} and the RS-backend ablation
    in [bench/main.ml]). *)

type t

val create : unit -> t
val add_trace : t -> Exom_interp.Trace.t -> unit
val add_run : t -> Exom_interp.Interp.run -> unit
val collect : Exom_lang.Ast.program -> int list list -> t

(** Was a value defined at [def_sid] ever observed flowing to a use at
    [use_sid]? *)
val observed : t -> def_sid:int -> use_sid:int -> bool

(** Did [sid] execute in any recorded run? *)
val executed : t -> int -> bool

(** The filter to plug into {!Exom_cfg.Potential.create}: witnessed
    pairs pass; unwitnessed pairs whose definition *did* execute are
    discarded; never-executed definitions (the omission case) pass. *)
val evidence_filter : t -> def_sid:int -> use_sid:int -> bool

val size : t -> int
val runs : t -> int
