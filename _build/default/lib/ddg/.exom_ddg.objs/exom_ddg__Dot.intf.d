lib/ddg/dot.mli: Exom_interp Slice
