lib/ddg/union_graph.ml: Exom_interp Hashtbl List Option
