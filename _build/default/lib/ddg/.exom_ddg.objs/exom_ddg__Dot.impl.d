lib/ddg/dot.ml: Buffer Exom_interp List Printf Slice String
