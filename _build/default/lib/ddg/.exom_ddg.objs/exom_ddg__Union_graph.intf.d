lib/ddg/union_graph.mli: Exom_interp Exom_lang
