lib/ddg/slice.mli: Exom_interp Set
