lib/ddg/relevant.ml: Exom_cfg Exom_interp Hashtbl List Option Slice
