lib/ddg/slice.ml: Array Exom_interp Int List Queue Set
