lib/ddg/relevant.mli: Exom_cfg Exom_interp Slice
