module Trace = Exom_interp.Trace
module Iset = Set.Make (Int)

type t = {
  members : Iset.t;  (* instance indices *)
  sids : Iset.t;  (* static statements covered *)
}

let members t = t.members
let mem t idx = Iset.mem idx t.members
let mem_sid t sid = Iset.mem sid t.sids
let dynamic_size t = Iset.cardinal t.members
let static_size t = Iset.cardinal t.sids
let to_list t = Iset.elements t.members
let sids t = Iset.elements t.sids

(* Dependence predecessors of an instance: the defining instances of its
   uses (data) and its control parent (dynamic control dependence). *)
let explicit_preds trace idx =
  let inst = Trace.get trace idx in
  let data =
    List.filter_map
      (fun (_, def, _) -> if def >= 0 then Some def else None)
      inst.Trace.uses
  in
  if inst.Trace.parent >= 0 then inst.Trace.parent :: data else data

(* Backward transitive closure from [criteria] over explicit dependences
   plus any [extra] predecessor edges (used for implicit/potential
   dependence edges by the callers). *)
let compute ?(extra = fun _ -> []) trace ~criteria =
  let members = ref Iset.empty in
  let rec visit idx =
    if idx >= 0 && (not (Iset.mem idx !members)) && idx < Trace.length trace
    then begin
      members := Iset.add idx !members;
      List.iter visit (explicit_preds trace idx);
      List.iter visit (extra idx)
    end
  in
  List.iter visit criteria;
  let sids =
    Iset.fold
      (fun idx acc -> Iset.add (Trace.get trace idx).Trace.sid acc)
      !members Iset.empty
  in
  { members = !members; sids }

let of_instances trace idxs =
  let members = Iset.of_list (List.filter (fun i -> i >= 0) idxs) in
  let sids =
    Iset.fold
      (fun idx acc -> Iset.add (Trace.get trace idx).Trace.sid acc)
      members Iset.empty
  in
  { members; sids }

(* Shortest dependence path (in edges) from some instance of [from_sids]
   to the [criterion] instance, following explicit + extra dependence
   edges backwards from the criterion.  Returns the instance chain from
   the source to the criterion — the paper's OS, the failure-inducing
   dependence chain (Table 3). *)
let shortest_chain ?(extra = fun _ -> []) trace ~criterion ~from_sids =
  let n = Trace.length trace in
  if criterion < 0 || criterion >= n then None
  else begin
    let prev = Array.make n (-2) in
    (* -2 unvisited, -1 source of BFS *)
    let queue = Queue.create () in
    prev.(criterion) <- -1;
    Queue.add criterion queue;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      let inst = Trace.get trace idx in
      if List.mem inst.Trace.sid from_sids then found := Some idx
      else
        List.iter
          (fun p ->
            if p >= 0 && p < n && prev.(p) = -2 then begin
              prev.(p) <- idx;
              Queue.add p queue
            end)
          (explicit_preds trace idx @ extra idx)
    done;
    match !found with
    | None -> None
    | Some src ->
      let rec chain idx acc =
        if idx = -1 then acc
        else chain prev.(idx) (idx :: acc)
      in
      (* prev links point towards the criterion *)
      Some (List.rev (chain src []))
  end
