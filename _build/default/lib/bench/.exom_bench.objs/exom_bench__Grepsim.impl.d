lib/bench/grepsim.ml: Bench_types
