lib/bench/gzipsim.mli: Bench_types
