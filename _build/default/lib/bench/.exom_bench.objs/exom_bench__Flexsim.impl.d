lib/bench/flexsim.ml: Bench_types
