lib/bench/runner.mli: Bench_types Exom_core
