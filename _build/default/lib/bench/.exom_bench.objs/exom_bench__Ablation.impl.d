lib/bench/ablation.ml: Bench_types Exom_conf Exom_core Exom_ddg Exom_interp Exom_lang List
