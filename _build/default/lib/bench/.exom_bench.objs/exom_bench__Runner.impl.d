lib/bench/runner.ml: Bench_types Exom_core Exom_ddg Exom_interp Exom_lang List Option Printf Suite Sys
