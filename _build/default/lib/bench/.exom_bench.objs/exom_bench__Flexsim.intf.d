lib/bench/flexsim.mli: Bench_types
