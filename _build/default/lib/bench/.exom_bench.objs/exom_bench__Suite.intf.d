lib/bench/suite.mli: Bench_types
