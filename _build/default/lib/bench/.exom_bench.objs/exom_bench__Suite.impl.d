lib/bench/suite.ml: Bench_types Flexsim Grepsim Gzipsim List Sedsim
