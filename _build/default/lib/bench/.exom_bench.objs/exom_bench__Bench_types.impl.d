lib/bench/bench_types.ml: Char Exom_lang List Printf String
