lib/bench/bench_types.mli: Exom_lang
