lib/bench/grepsim.mli: Bench_types
