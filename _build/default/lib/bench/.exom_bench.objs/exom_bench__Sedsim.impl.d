lib/bench/sedsim.ml: Bench_types
