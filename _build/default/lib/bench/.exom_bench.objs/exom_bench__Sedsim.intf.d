lib/bench/sedsim.mli: Bench_types
