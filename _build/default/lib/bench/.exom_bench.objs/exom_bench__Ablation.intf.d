lib/bench/ablation.mli: Bench_types Exom_core
