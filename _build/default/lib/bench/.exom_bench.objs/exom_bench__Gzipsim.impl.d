lib/bench/gzipsim.ml: Bench_types
