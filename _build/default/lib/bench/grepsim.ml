(* grepsim: the grep stand-in — a line-oriented pattern matcher with a
   recursive backtracking engine supporting '.', trailing '*' and '+',
   and a '^' anchor, plus optional case folding.  Like grep, it prints nothing
   until it terminates (only the final summary), which is exactly why
   the paper's grep error produced the largest failure-inducing chain:
   there are few correct outputs to prune against.

   Input encoding: pattern (length-prefixed), then text
   (length-prefixed, lines separated by '\n'). *)

let source =
  {|// grepsim: pattern matcher over lines
int fold_flag = 1;
int anchor_code = 94;
int star_code = 42;
int plus_code = 43;
int dot_code = 46;
int[] pat;
int plen = 0;
int[] line_buf;
int llen = 0;
int match_count = 0;
int first_match = 0 - 1;
int lines_seen = 0;
int check = 0;

int fold(int ch) {
  int r = ch;
  if (fold_flag == 1 && ch >= 65 && ch <= 90) {
    r = ch + 32;
  }
  return r;
}

int chars_equal(int pc, int tc) {
  int r = 0;
  if (pc == dot_code) {
    r = 1;
  } else {
    if (fold(pc) == fold(tc)) {
      r = 1;
    }
  }
  return r;
}

int match_here(int pi, int ti) {
  int res = 0 - 1;
  if (pi >= plen) {
    res = 1;
  }
  if (res < 0 && pi + 1 < plen) {
    if (pat[pi + 1] == star_code) {
      res = match_star(pat[pi], pi + 2, ti);
    }
  }
  if (res < 0 && pi + 1 < plen) {
    if (pat[pi + 1] == plus_code) {
      if (ti < llen && chars_equal(pat[pi], line_buf[ti]) == 1) {
        res = match_star(pat[pi], pi + 2, ti + 1);
      } else {
        res = 0;
      }
    }
  }
  if (res < 0) {
    if (ti < llen && chars_equal(pat[pi], line_buf[ti]) == 1) {
      res = match_here(pi + 1, ti + 1);
    } else {
      res = 0;
    }
  }
  return res;
}

int match_star(int pc, int pi, int ti) {
  int res = 0;
  int t = ti;
  int go = 1;
  while (go == 1) {
    if (match_here(pi, t) == 1) {
      res = 1;
      go = 0;
    } else {
      if (t < llen && chars_equal(pc, line_buf[t]) == 1) {
        t = t + 1;
      } else {
        go = 0;
      }
    }
  }
  return res;
}

int match_line() {
  int res = 0;
  if (plen > 0 && pat[0] == anchor_code) {
    res = match_here(1, 0);
  } else {
    int off = 0;
    int go2 = 1;
    while (go2 == 1) {
      if (match_here(0, off) == 1) {
        res = 1;
        go2 = 0;
      } else {
        off = off + 1;
        if (off > llen) {
          go2 = 0;
        }
      }
    }
  }
  return res;
}

void main() {
  plen = input();
  pat = new_array(plen + 1);
  int i = 0;
  while (i < plen) {
    pat[i] = input();
    i = i + 1;
  }
  int n = input();
  int[] text = new_array(n + 1);
  int j = 0;
  while (j < n) {
    text[j] = input();
    j = j + 1;
  }
  line_buf = new_array(n + 1);
  int pos = 0;
  while (pos <= n) {
    llen = 0;
    while (pos < n && text[pos] != 10) {
      line_buf[llen] = text[pos];
      llen = llen + 1;
      pos = pos + 1;
    }
    pos = pos + 1;
    lines_seen = lines_seen + 1;
    if (match_line() == 1) {
      match_count = match_count + 1;
      if (first_match < 0) {
        first_match = lines_seen;
      }
      check = check + lines_seen * 13;
    }
  }
  print(lines_seen);
  print(match_count);
  print(first_match);
  print(check);
}
|}

(* pattern then text, both length-prefixed *)
let grep_input pattern textstr =
  Bench_types.input_of_string pattern @ Bench_types.input_of_string textstr

let faults =
  [ {
      Bench_types.fid = "V4-F2";
      description =
        "case folding disabled: uppercase text never matches a lowercase \
         pattern, so matching lines are silently dropped";
      pattern = "int fold_flag = 1;";
      replacement = "int fold_flag = 0;";
      failing_input = grep_input "ab" "xABy\nqq\nAB\nzab";
    };
    {
      Bench_types.fid = "V5-F1";
      description =
        "plus-operator code mistyped: 'x+' patterns are treated as two          literal characters and one-or-more matching is omitted";
      pattern = "int plus_code = 43;";
      replacement = "int plus_code = 64;";
      failing_input = grep_input "ab+c" "abbc\nabc\nadc";
    };
    {
      Bench_types.fid = "V4-F5";
      description =
        "anchor code mistyped: '^' patterns are treated as literals and \
         anchored matching is omitted";
      pattern = "int anchor_code = 94;";
      replacement = "int anchor_code = 64;";
      failing_input = grep_input "^ab" "ab here\nnot ab\nabc";
    } ]

let bench =
  {
    Bench_types.name = "grepsim";
    description = "a unix utility to print lines matching a pattern (backtracking matcher)";
    error_type = "seeded";
    source;
    faults;
    test_inputs =
      [ grep_input "ab" "ab\ncd";
        grep_input "a*b" "aab\nxb\nccc";
        grep_input "ab+" "abb\nab\na";
        grep_input "a.c" "abc\nadc\nxyz";
        grep_input "zz" "a\nb\nc";
        grep_input "q" "q" ];
  }
