(** The benchmark suite of the paper's Table 1: flexsim, grepsim,
    gzipsim, sedsim, and every (benchmark, fault) row of Tables 2-3. *)

val all : Bench_types.t list
val find : string -> Bench_types.t option
val find_fault : Bench_types.t -> string -> Bench_types.fault option
val rows : (Bench_types.t * Bench_types.fault) list
