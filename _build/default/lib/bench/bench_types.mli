(** The benchmark model: a correct MCL program plus seeded faults given
    as expression-level line mutations (preserving statement ids so the
    faulty and corrected runs align). *)

type fault = {
  fid : string;
  description : string;
  pattern : string;  (** unique substring of the line to mutate *)
  replacement : string;
  failing_input : int list;
}

type t = {
  name : string;
  description : string;
  error_type : string;
  source : string;
  faults : fault list;
  test_inputs : int list list;
}

(** Length-prefixed character codes — the text input convention of the
    benchmark programs. *)
val input_of_string : string -> int list

(** These raise [Invalid_argument] when the pattern is absent. *)
val fault_line : t -> fault -> int

val faulty_source : t -> fault -> string
val root_sids : t -> fault -> Exom_lang.Ast.program -> int list

val loc_count : t -> int
val procedure_count : Exom_lang.Ast.program -> int
